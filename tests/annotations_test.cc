// Runtime behavior of the annotated mutex wrappers
// (common/thread_annotations.h). The *compile-time* contract is
// exercised by tests/static/ (negative-compile cases under Clang);
// here we check that the wrappers actually synchronize — these tests
// are the ones the thread-sanitizer CI job leans on.

#include <atomic>
#include <condition_variable>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace nous {
namespace {

TEST(AnnotatedMutexTest, MutexLockSerializesIncrements) {
  struct Counted {
    AnnotatedMutex mutex;
    int value GUARDED_BY(mutex) = 0;
  } counted;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counted] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(counted.mutex);
        ++counted.value;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(counted.mutex);
  EXPECT_EQ(counted.value, kThreads * kIters);
}

TEST(AnnotatedMutexTest, LockableInterfaceWorks) {
  AnnotatedMutex mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  mu.lock();
  mu.unlock();
}

TEST(AnnotatedSharedMutexTest, WriterExcludesReaders) {
  struct Shared {
    AnnotatedSharedMutex mutex;
    std::vector<int> values GUARDED_BY(mutex);
  } shared;
  constexpr int kWriters = 2;
  constexpr int kReaders = 6;
  constexpr int kWrites = 500;
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kWrites; ++i) {
        WriterMutexLock lock(shared.mutex);
        // Two entries per write; readers check the invariant.
        shared.values.push_back(i);
        shared.values.push_back(i);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&shared, &torn] {
      for (int i = 0; i < kWrites; ++i) {
        ReaderMutexLock lock(shared.mutex);
        if (shared.values.size() % 2 != 0) torn = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load());
  ReaderMutexLock lock(shared.mutex);
  EXPECT_EQ(shared.values.size(),
            static_cast<size_t>(kWriters * kWrites * 2));
}

TEST(AnnotatedSharedMutexTest, SharedLockableInterfaceWorks) {
  AnnotatedSharedMutex mu;
  EXPECT_TRUE(mu.try_lock_shared());
  EXPECT_TRUE(mu.try_lock_shared());  // shared is re-enterable by peers
  EXPECT_FALSE(mu.try_lock());        // writer blocked by readers
  mu.unlock_shared();
  mu.unlock_shared();
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock_shared());  // reader blocked by writer
  mu.unlock();
}

TEST(UniqueLockTest, ConditionVariableHandshake) {
  // Producer/consumer through the UniqueLock + explicit predicate-loop
  // pattern that WaitGroup/ThreadPool use internally.
  struct Mailbox {
    AnnotatedMutex mutex;
    std::condition_variable ready;
    int message GUARDED_BY(mutex) = 0;
    bool has_message GUARDED_BY(mutex) = false;
  } box;
  std::thread producer([&box] {
    MutexLock lock(box.mutex);
    box.message = 42;
    box.has_message = true;
    box.ready.notify_one();
  });
  int received = 0;
  {
    UniqueLock lock(box.mutex);
    while (!box.has_message) box.ready.wait(lock.std_lock());
    received = box.message;
  }
  producer.join();
  EXPECT_EQ(received, 42);
}

TEST(UniqueLockTest, GuardsAgainstConcurrentMutation) {
  struct Counted {
    AnnotatedMutex mutex;
    int value GUARDED_BY(mutex) = 0;
  } counted;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counted] {
      for (int i = 0; i < 1000; ++i) {
        UniqueLock lock(counted.mutex);
        ++counted.value;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(counted.mutex);
  EXPECT_EQ(counted.value, 4000);
}

TEST(AnnotatedPoolTest, WaitGroupStillBalances) {
  // The WaitGroup/ThreadPool conversion to annotated mutexes must not
  // change semantics: n submissions, n completions, Wait() returns.
  ThreadPool pool(4);
  WaitGroup wg;
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); }, &wg);
  }
  wg.Wait();
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace nous
