#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "obs/trace_buffer.h"
#include "replication/telemetry.h"
#include "server/api.h"
#include "server/http_server.h"
#include "server/json_writer.h"
#include "common/status.h"

namespace nous {
namespace {

// ---------- JsonWriter ----------

TEST(JsonWriterTest, ObjectsArraysAndValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("x");
  w.Key("n");
  w.Number(1.5);
  w.Key("i");
  w.Int(-3);
  w.Key("b");
  w.Bool(true);
  w.Key("z");
  w.Null();
  w.Key("arr");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.Result(),
            "{\"s\":\"x\",\"n\":1.5,\"i\":-3,\"b\":true,\"z\":null,"
            "\"arr\":[1,2]}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"),
            "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.BeginArray();
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.EndArray();
  w.EndObject();
  w.BeginObject();
  w.EndObject();
  w.EndArray();
  EXPECT_EQ(w.Result(), "[{\"a\":[]},{}]");
}

// ---------- UrlDecode ----------

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("tell+me+about+DJI"), "tell me about DJI");
  EXPECT_EQ(UrlDecode("a%20b%2Fc"), "a b/c");
  EXPECT_EQ(UrlDecode("100%"), "100%");    // dangling percent kept
  EXPECT_EQ(UrlDecode("%zz"), "%zz");      // bad hex kept
}

// ---------- HTTP round trip ----------

/// Minimal test client: one request, full response text.
std::string HttpGet(uint16_t port, const std::string& request_text) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::send(fd, request_text.data(), request_text.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& target) {
  return HttpGet(port, "GET " + target +
                           " HTTP/1.1\r\nHost: x\r\n\r\n");
}

/// Opens a connection and sends `text` without reading the response
/// (for tests that need several requests in flight at once).
int ConnectAndSend(uint16_t port, const std::string& text) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  if (!text.empty()) ::send(fd, text.data(), text.size(), 0);
  return fd;
}

std::string RecvAll(int fd) {
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture()
      : world_(WorldModel::BuildDroneWorld(SmallWorld())),
        kb_(BuildCuratedKb(world_, Ontology::DroneDefault(), {})),
        nous_(&kb_, FastOptions()),
        api_(&nous_),
        server_([this](const HttpRequest& r) { return api_.Handle(r); }) {
    NOUS_CHECK_OK(nous_.IngestText("DJI acquired Talon Works.", Date{2014, 3, 5},
                     "wsj"));
    nous_.Finalize();
    Status status = server_.Start(0);  // ephemeral port
    EXPECT_TRUE(status.ok()) << status;
  }
  ~ServerFixture() override { server_.Stop(); }

  static DroneWorldConfig SmallWorld() {
    DroneWorldConfig config;
    config.num_companies = 5;
    config.num_people = 3;
    config.num_products = 3;
    config.num_events = 10;
    return config;
  }
  static Nous::Options FastOptions() {
    Nous::Options options;
    options.pipeline.lda.iterations = 3;
    options.pipeline.bpr.epochs = 1;
    return options;
  }

  WorldModel world_;
  CuratedKb kb_;
  Nous nous_;
  NousApi api_;
  HttpServer server_;
};

TEST_F(ServerFixture, ServesDemoPage) {
  std::string response = Get(server_.port(), "/");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/html"), std::string::npos);
  EXPECT_NE(response.find("NOUS"), std::string::npos);
}

TEST_F(ServerFixture, EntityQueryReturnsJsonFacts) {
  std::string response =
      Get(server_.port(), "/api/query?q=tell+me+about+DJI");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"kind\":\"entity\""), std::string::npos);
  EXPECT_NE(response.find("\"subject\":\"DJI\""), std::string::npos);
  EXPECT_NE(response.find("\"source\":\"wsj\""), std::string::npos);
}

TEST_F(ServerFixture, UnknownEntityIs404) {
  std::string response =
      Get(server_.port(), "/api/query?q=tell+me+about+Nobody+Corp");
  EXPECT_NE(response.find("404"), std::string::npos);
  EXPECT_NE(response.find("\"error\""), std::string::npos);
}

TEST_F(ServerFixture, MissingQueryParamIs400) {
  std::string response = Get(server_.port(), "/api/query");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(ServerFixture, UnknownRouteIs404) {
  std::string response = Get(server_.port(), "/api/nope");
  EXPECT_NE(response.find("404"), std::string::npos);
}

TEST_F(ServerFixture, StatsEndpoint) {
  std::string response = Get(server_.port(), "/api/stats");
  EXPECT_NE(response.find("\"vertices\":"), std::string::npos);
  EXPECT_NE(response.find("\"documents\":1"), std::string::npos);
}

TEST_F(ServerFixture, StatsReportLatencyQuantilesPerStage) {
  std::string response = Get(server_.port(), "/api/stats");
  EXPECT_NE(response.find("\"latency\":{"), std::string::npos);
  // The fixture ingested a document, so the pipeline stages recorded
  // latency samples with p50/p90/p99 quantiles.
  for (const char* stage :
       {"\"nous_extraction_latency_seconds\":{",
        "\"nous_mapping_latency_seconds\":{",
        "\"nous_confidence_latency_seconds\":{",
        "\"nous_mining_latency_seconds\":{"}) {
    EXPECT_NE(response.find(stage), std::string::npos) << stage;
  }
  EXPECT_NE(response.find("\"p50\":"), std::string::npos);
  EXPECT_NE(response.find("\"p90\":"), std::string::npos);
  EXPECT_NE(response.find("\"p99\":"), std::string::npos);
}

TEST_F(ServerFixture, MetricsEndpointServesPrometheusExposition) {
  // Hit the query endpoint first so the query-stage instruments exist.
  Get(server_.port(), "/api/query?q=tell+me+about+DJI");
  std::string response = Get(server_.port(), "/api/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);

  // Pipeline counters from the fixture's ingest.
  EXPECT_NE(response.find("# TYPE nous_pipeline_documents_total counter"),
            std::string::npos);
  // At least this fixture's single ingest (the process-wide registry
  // may have accumulated more across tests in the same binary).
  EXPECT_NE(response.find("\nnous_pipeline_documents_total "),
            std::string::npos);
  EXPECT_NE(response.find("nous_extraction_triples_total"),
            std::string::npos);
  EXPECT_NE(response.find("nous_mapping_mapped_total"), std::string::npos);

  // Latency histograms for the Figure-1 stages, in exposition shape.
  for (const char* stage :
       {"nous_extraction_latency_seconds", "nous_mapping_latency_seconds",
        "nous_confidence_latency_seconds", "nous_mining_latency_seconds",
        "nous_query_latency_seconds"}) {
    std::string type_line = std::string("# TYPE ") + stage + " histogram";
    EXPECT_NE(response.find(type_line), std::string::npos) << stage;
    EXPECT_NE(response.find(std::string(stage) + "_bucket{le=\"+Inf\"}"),
              std::string::npos)
        << stage;
    EXPECT_NE(response.find(std::string(stage) + "_sum"), std::string::npos)
        << stage;
    EXPECT_NE(response.find(std::string(stage) + "_count"),
              std::string::npos)
        << stage;
  }

  // Query counter carries the class label; HTTP counter the status code.
  EXPECT_NE(response.find("nous_query_total{class=\"entity\"}"),
            std::string::npos);
  EXPECT_NE(response.find("nous_http_requests_total{code=\"200\"}"),
            std::string::npos);
}

TEST_F(ServerFixture, MetricsEndpointRejectsPost) {
  std::string request =
      "POST /api/metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
  std::string response = HttpGet(server_.port(), request);
  EXPECT_NE(response.find("404"), std::string::npos);
}

TEST_F(ServerFixture, IngestEndpointGrowsGraph) {
  std::string body = "Parrot acquired Windermere.";
  std::string request =
      "POST /api/ingest?source=test&year=2015 HTTP/1.1\r\nHost: x\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  std::string response = HttpGet(server_.port(), request);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"accepted\":1"), std::string::npos);
  // The fact is immediately queryable (dynamic KG).
  std::string query =
      Get(server_.port(), "/api/query?q=tell+me+about+Parrot");
  EXPECT_NE(query.find("Windermere"), std::string::npos);
}

// Regression: the year/month/day query parameters used to go through
// atoi, so "?year=abc" silently ingested with year 0 and "?month=13"
// produced an impossible timestamp. Every malformed or out-of-range
// date field is now a 400 and nothing is ingested.
TEST_F(ServerFixture, MalformedIngestDateIs400) {
  std::string body = "Parrot acquired Windermere.";
  for (const char* params :
       {"year=abc", "year=0", "year=10000", "month=13", "month=0",
        "day=32", "day=0", "day=2x"}) {
    std::string request =
        "POST /api/ingest?source=test&" + std::string(params) +
        " HTTP/1.1\r\nHost: x\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    std::string response = HttpGet(server_.port(), request);
    EXPECT_NE(response.find("400"), std::string::npos) << params;
    EXPECT_NE(response.find("invalid"), std::string::npos) << params;
  }
}

TEST_F(ServerFixture, EmptyIngestBodyIs400) {
  std::string request =
      "POST /api/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
  std::string response = HttpGet(server_.port(), request);
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(ServerFixture, MalformedRequestIs400) {
  std::string response = HttpGet(server_.port(), "GARBAGE\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(ServerFixture, SequentialRequestsSurvive) {
  for (int i = 0; i < 20; ++i) {
    std::string response = Get(server_.port(), "/api/stats");
    ASSERT_NE(response.find("200 OK"), std::string::npos);
  }
}

TEST_F(ServerFixture, HealthzIsAlwaysOk) {
  std::string response = Get(server_.port(), "/api/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
}

TEST_F(ServerFixture, ReadyzFollowsSetReady) {
  std::string response = Get(server_.port(), "/api/readyz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ready\""), std::string::npos);

  api_.SetReady(false);  // what graceful shutdown does before Stop()
  response = Get(server_.port(), "/api/readyz");
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("draining"), std::string::npos);
  // Liveness is unaffected by drain — only readiness flips.
  EXPECT_NE(Get(server_.port(), "/api/healthz").find("200 OK"),
            std::string::npos);

  api_.SetReady(true);
  response = Get(server_.port(), "/api/readyz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

// ---------- Request tracing (/api/trace, DESIGN.md §5.12) ----------

/// Value of header `name` in a raw HTTP response ("" when absent).
std::string HeaderValue(const std::string& response,
                        const std::string& name) {
  std::string needle = "\r\n" + name + ": ";
  size_t pos = response.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  size_t end = response.find("\r\n", pos);
  return response.substr(pos, end - pos);
}

TEST_F(ServerFixture, ResponsesCarryTraceIdHeader) {
  std::string response = Get(server_.port(), "/api/stats");
  std::string trace_id = HeaderValue(response, "X-Nous-Trace-Id");
  ASSERT_FALSE(trace_id.empty());
  EXPECT_NE(std::strtoull(trace_id.c_str(), nullptr, 10), 0u);
}

TEST_F(ServerFixture, TraceEndpointServesChromeTraceJson) {
  // Generate at least one traced request first.
  Get(server_.port(), "/api/query?q=tell+me+about+DJI");
  std::string response = Get(server_.port(), "/api/trace?limit=50");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  // Chrome trace-event envelope, loadable in Perfetto.
  EXPECT_NE(response.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(response.find("\"displayTimeUnit\":\"ms\""),
            std::string::npos);
  EXPECT_NE(response.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(response.find("\"cat\":\"nous\""), std::string::npos);
  // Ids are exported as decimal strings (64-bit safe in JSON).
  EXPECT_NE(response.find("\"trace_id\":\""), std::string::npos);
  EXPECT_NE(response.find("\"span_id\":\""), std::string::npos);
  // The body is a complete JSON object.
  size_t body_start = response.find("\r\n\r\n");
  ASSERT_NE(body_start, std::string::npos);
  std::string body = response.substr(body_start + 4);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back() == '}' ||
                (body.back() == '\n' && body[body.size() - 2] == '}'),
            true);
}

TEST_F(ServerFixture, QueryRequestFormsSingleTraceTree) {
  std::string response =
      Get(server_.port(), "/api/query?q=tell+me+about+DJI");
  std::string header = HeaderValue(response, "X-Nous-Trace-Id");
  ASSERT_FALSE(header.empty());
  uint64_t trace_id = std::strtoull(header.c_str(), nullptr, 10);
  ASSERT_NE(trace_id, 0u);

  // The buffered spans for this request form one tree: a single
  // http_request root, with every other span reachable from it.
  std::vector<SpanRecord> trace =
      TraceBuffer::Global().CollectTrace(trace_id);
  ASSERT_GE(trace.size(), 2u);  // http_request + api_query at least
  size_t roots = 0;
  uint64_t root_span_id = 0;
  std::set<uint64_t> span_ids;
  for (const SpanRecord& s : trace) span_ids.insert(s.span_id);
  for (const SpanRecord& s : trace) {
    if (s.parent_span_id == 0) {
      ++roots;
      root_span_id = s.span_id;
      EXPECT_STREQ(s.name, "http_request");
    } else {
      EXPECT_TRUE(span_ids.count(s.parent_span_id))
          << s.name << " has dangling parent";
    }
  }
  EXPECT_EQ(roots, 1u);
  ASSERT_NE(root_span_id, 0u);

  // And the trace is visible through the export endpoint.
  std::string exported = Get(server_.port(), "/api/trace?limit=2000");
  EXPECT_NE(exported.find("\"trace_id\":\"" + header + "\""),
            std::string::npos);
}

TEST_F(ServerFixture, TraceEndpointRejectsBadLimit) {
  EXPECT_NE(Get(server_.port(), "/api/trace?limit=0").find("400"),
            std::string::npos);
  EXPECT_NE(Get(server_.port(), "/api/trace?limit=-3").find("400"),
            std::string::npos);
}

TEST_F(ServerFixture, StatsReportVersionAndCacheCounters) {
  // A query warms the cache counters (fixture cache is on by default).
  Get(server_.port(), "/api/query?q=tell+me+about+DJI");
  Get(server_.port(), "/api/query?q=tell+me+about+DJI");
  std::string response = Get(server_.port(), "/api/stats");
  EXPECT_NE(response.find("\"kg_version\":"), std::string::npos);
  EXPECT_NE(response.find("\"snapshot_publishes\":"), std::string::npos);
  EXPECT_NE(response.find("\"snapshot_graph_bytes\":"),
            std::string::npos);
  EXPECT_NE(response.find("\"query_cache\":{"), std::string::npos);
  EXPECT_NE(response.find("\"hits\":"), std::string::npos);
  EXPECT_NE(response.find("\"misses\":"), std::string::npos);
  EXPECT_NE(response.find("\"evictions\":"), std::string::npos);
}

// ---------- Overload & abuse hardening (DESIGN.md §5.10) ----------

TEST(HttpServerHardeningTest, OversizedHeadersAre431) {
  HttpServerOptions options;
  options.max_header_bytes = 256;
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; },
                    options);
  ASSERT_TRUE(server.Start(0).ok());
  std::string request = "GET / HTTP/1.1\r\nX-Filler: " +
                        std::string(1000, 'a') + "\r\n\r\n";
  std::string response = HttpGet(server.port(), request);
  EXPECT_NE(response.find("431"), std::string::npos);
  server.Stop();
}

TEST(HttpServerHardeningTest, OversizedBodyIs413) {
  HttpServerOptions options;
  options.max_body_bytes = 64;
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; },
                    options);
  ASSERT_TRUE(server.Start(0).ok());
  // Declared oversized: rejected from the Content-Length header alone,
  // before the server reads (or the client even sends) the body.
  std::string declared =
      "POST /api/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 5000\r\n\r\n";
  EXPECT_NE(HttpGet(server.port(), declared).find("413"),
            std::string::npos);
  // In-bounds body on the same server still works.
  std::string small_body = "ok";
  std::string small =
      "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: " +
      std::to_string(small_body.size()) + "\r\n\r\n" + small_body;
  EXPECT_NE(HttpGet(server.port(), small).find("200 OK"),
            std::string::npos);
  server.Stop();
}

TEST(HttpServerHardeningTest, StalledClientGets408NotAWedgedWorker) {
  HttpServerOptions options;
  options.io_timeout_ms = 200;
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; },
                    options);
  ASSERT_TRUE(server.Start(0).ok());
  // Send half a request and stall: the per-socket deadline fires and
  // the server answers 408 instead of waiting forever.
  int fd = ConnectAndSend(server.port(), "GET / HTTP/1.1\r\nHost:");
  std::string response = RecvAll(fd);
  EXPECT_NE(response.find("408"), std::string::npos);
  // The worker is free again.
  EXPECT_NE(Get(server.port(), "/").find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(HttpServerHardeningTest, PrematureDisconnectDoesNotCrashTheServer) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; },
                    HttpServerOptions{});
  ASSERT_TRUE(server.Start(0).ok());
  for (int i = 0; i < 5; ++i) {
    int fd = ConnectAndSend(server.port(), "GET /par");
    ::close(fd);  // hang up mid-request
  }
  int bare = ConnectAndSend(server.port(), "");
  ::close(bare);  // hang up before sending anything
  EXPECT_NE(Get(server.port(), "/").find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(HttpServerHardeningTest, FloodBeyondMaxInflightIsShedWith503) {
  HttpServerOptions options;
  options.num_threads = 2;
  options.max_inflight = 1;
  HttpServer server(
      [](const HttpRequest&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return HttpResponse{};
      },
      options);
  ASSERT_TRUE(server.Start(0).ok());

  // Occupy the single in-flight slot with a slow request...
  int slow = ConnectAndSend(server.port(),
                            "GET /slow HTTP/1.1\r\nHost: x\r\n\r\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...then flood: with the slot taken, new connections are shed
  // immediately with 503 instead of queueing without bound.
  size_t shed = 0;
  for (int i = 0; i < 4; ++i) {
    std::string response = Get(server.port(), "/flood");
    if (response.find("503") != std::string::npos) ++shed;
  }
  EXPECT_GE(shed, 1u);
  // The slow request was accepted before the flood and still completes
  // normally (shedding rejects new work, never started work).
  EXPECT_NE(RecvAll(slow).find("200 OK"), std::string::npos);
  server.Stop();
}

// ---------- Replication serving tier ----------

/// Canned ReplicationTelemetry so the serving-tier contract (version
/// header, staleness gate, read-only mode, stats) is testable without
/// standing up a real leader/follower pair.
class FakeReplication : public ReplicationTelemetry {
 public:
  ReplicationView View() const override { return view; }
  ReplicationView view;
};

TEST_F(ServerFixture, EveryResponseCarriesTheKgVersionHeader) {
  for (const char* path : {"/", "/api/stats", "/api/query?q=DJI"}) {
    std::string response = Get(server_.port(), path);
    EXPECT_NE(response.find("X-Nous-Kg-Version: "), std::string::npos)
        << path;
  }
  // The advertised version is the fixture's actual KG version, so
  // clients can track bounded staleness end to end.
  std::string response = Get(server_.port(), "/api/stats");
  size_t at = response.find("X-Nous-Kg-Version: ");
  ASSERT_NE(at, std::string::npos);
  EXPECT_GT(std::atoll(response.c_str() + at + 19), 0);
}

TEST_F(ServerFixture, ReadyzIs503WhenReplicaLagExceedsTheBound) {
  FakeReplication repl;
  repl.view.role = "follower";
  repl.view.kg_version = 3;
  repl.view.leader_kg_version = 9;
  repl.view.lag_versions = 6;
  api_.ConfigureReplication(&repl, /*max_staleness_versions=*/2,
                            /*read_only=*/true);
  std::string response = Get(server_.port(), "/api/readyz");
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("lags leader"), std::string::npos);
}

TEST_F(ServerFixture, ReadyzIs503UntilTheFirstLeaderHeartbeat) {
  FakeReplication repl;
  repl.view.role = "follower";
  repl.view.leader_kg_version = 0;  // never heard from the leader
  api_.ConfigureReplication(&repl, /*max_staleness_versions=*/2,
                            /*read_only=*/true);
  std::string response = Get(server_.port(), "/api/readyz");
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("staleness unknown"), std::string::npos);
}

TEST_F(ServerFixture, ReadyzIs200WhenLagIsWithinTheBound) {
  FakeReplication repl;
  repl.view.role = "follower";
  repl.view.kg_version = 8;
  repl.view.leader_kg_version = 9;
  repl.view.lag_versions = 1;
  api_.ConfigureReplication(&repl, /*max_staleness_versions=*/2,
                            /*read_only=*/true);
  std::string response = Get(server_.port(), "/api/readyz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

TEST_F(ServerFixture, ReadOnlyFollowerRejectsIngestWith403) {
  FakeReplication repl;
  repl.view.role = "follower";
  repl.view.leader_kg_version = 1;
  repl.view.kg_version = 1;
  api_.ConfigureReplication(&repl, 0, /*read_only=*/true);
  std::string body = "Parrot acquired Windermere.";
  std::string request =
      "POST /api/ingest?source=test&year=2015 HTTP/1.1\r\nHost: x\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  std::string response = HttpGet(server_.port(), request);
  EXPECT_NE(response.find("403"), std::string::npos);
  EXPECT_NE(response.find("read-only"), std::string::npos);
  // Reads still serve.
  EXPECT_NE(Get(server_.port(), "/api/stats").find("200 OK"),
            std::string::npos);
}

TEST_F(ServerFixture, StatsReportReplicationState) {
  FakeReplication repl;
  repl.view.role = "follower";
  repl.view.connected = true;
  repl.view.last_seq = 7;
  repl.view.kg_version = 4;
  repl.view.leader_seq = 7;
  repl.view.leader_kg_version = 5;
  repl.view.lag_versions = 1;
  repl.view.frames_applied = 12;
  api_.ConfigureReplication(&repl, /*max_staleness_versions=*/3,
                            /*read_only=*/true);
  std::string response = Get(server_.port(), "/api/stats");
  EXPECT_NE(response.find("\"replication\":{"), std::string::npos);
  EXPECT_NE(response.find("\"role\":\"follower\""), std::string::npos);
  EXPECT_NE(response.find("\"lag_versions\":1"), std::string::npos);
  EXPECT_NE(response.find("\"max_staleness_versions\":3"),
            std::string::npos);
  EXPECT_NE(response.find("\"frames_applied\":12"), std::string::npos);
}

TEST_F(ServerFixture, StatsOmitReplicationWhenNotConfigured) {
  std::string response = Get(server_.port(), "/api/stats");
  EXPECT_EQ(response.find("\"replication\":{"), std::string::npos);
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  uint16_t port = server.port();
  EXPECT_GT(port, 0);
  server.Stop();
  server.Stop();  // no double-free / hang
  SUCCEED();
}

}  // namespace
}  // namespace nous
