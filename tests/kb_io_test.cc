#include <sstream>

#include <gtest/gtest.h>

#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "kb/kb_io.h"

namespace nous {
namespace {

CuratedKb MakeSampleKb() {
  CuratedKb kb(Ontology::DroneDefault());
  KbEntity dji;
  dji.name = "DJI";
  dji.aliases = {"DJI Technology"};
  dji.type_name = "company";
  dji.ner_type = EntityType::kOrganization;
  dji.context_terms = {"drone", "quadcopter"};
  dji.prior = 12.0;
  size_t dji_id = kb.AddEntity(std::move(dji));
  KbEntity seattle;
  seattle.name = "Seattle";
  seattle.type_name = "city";
  seattle.ner_type = EntityType::kLocation;
  seattle.prior = 3.0;
  size_t seattle_id = kb.AddEntity(std::move(seattle));
  kb.AddFact(dji_id, "headquarteredIn", seattle_id, 123456);
  return kb;
}

TEST(KbIoTest, RoundTripPreservesEverything) {
  CuratedKb original = MakeSampleKb();
  std::stringstream buffer;
  ASSERT_TRUE(SaveCuratedKb(original, buffer).ok());
  auto loaded = LoadCuratedKb(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const CuratedKb& kb = **loaded;

  ASSERT_EQ(kb.entities().size(), 2u);
  auto dji = kb.FindByName("DJI");
  ASSERT_TRUE(dji.has_value());
  const KbEntity& e = kb.entities()[*dji];
  EXPECT_EQ(e.type_name, "company");
  EXPECT_EQ(e.ner_type, EntityType::kOrganization);
  EXPECT_DOUBLE_EQ(e.prior, 12.0);
  EXPECT_EQ(e.aliases, (std::vector<std::string>{"DJI Technology"}));
  EXPECT_EQ(e.context_terms,
            (std::vector<std::string>{"drone", "quadcopter"}));

  ASSERT_EQ(kb.facts().size(), 1u);
  EXPECT_EQ(kb.facts()[0].predicate, "headquarteredIn");
  EXPECT_EQ(kb.facts()[0].timestamp, 123456);
  // Alias index rebuilt.
  EXPECT_EQ(kb.Candidates("dji technology").size(), 1u);
  // Ontology round-trips.
  EXPECT_TRUE(kb.ontology().IsSubtypeOf("company", "organization"));
  EXPECT_TRUE(kb.ontology().FindPredicate("acquired").has_value());
}

TEST(KbIoTest, GeneratedKbRoundTrips) {
  DroneWorldConfig wc;
  wc.num_companies = 10;
  wc.num_events = 40;
  WorldModel world = WorldModel::BuildDroneWorld(wc);
  CuratedKb original =
      BuildCuratedKb(world, Ontology::DroneDefault(), {});
  std::stringstream buffer;
  ASSERT_TRUE(SaveCuratedKb(original, buffer).ok());
  auto loaded = LoadCuratedKb(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->entities().size(), original.entities().size());
  EXPECT_EQ((*loaded)->facts().size(), original.facts().size());
  for (size_t i = 0; i < original.entities().size(); ++i) {
    EXPECT_EQ((*loaded)->entities()[i].name,
              original.entities()[i].name);
  }
}

TEST(KbIoTest, RejectsMalformedInput) {
  const char* kBad[] = {
      "not a header\n",
      "#nous-kb v1\nN\tX\tcompany\tBOGUS_NER\t1\n",
      "#nous-kb v1\nA\tUnknown\talias\n",
      "#nous-kb v1\nN\tX\tcompany\tORG\t1\nN\tX\tcompany\tORG\t1\n",
      "#nous-kb v1\nF\tA\tp\tB\t0\n",  // unknown endpoints
      "#nous-kb v1\nQ\twhat\n",
  };
  for (const char* input : kBad) {
    std::stringstream buffer(input);
    EXPECT_FALSE(LoadCuratedKb(buffer).ok()) << input;
  }
}

TEST(KbIoTest, EveryTruncationEitherFailsCleanlyOrLoadsAPrefix) {
  DroneWorldConfig wc;
  wc.num_companies = 6;
  wc.num_events = 15;
  WorldModel world = WorldModel::BuildDroneWorld(wc);
  CuratedKb original =
      BuildCuratedKb(world, Ontology::DroneDefault(), {});
  std::stringstream buffer;
  ASSERT_TRUE(SaveCuratedKb(original, buffer).ok());
  const std::string full = buffer.str();
  ASSERT_GT(full.size(), 0u);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    auto loaded = LoadCuratedKb(truncated);
    if (loaded.ok()) {
      EXPECT_LE((*loaded)->entities().size(), original.entities().size())
          << "cut=" << cut;
      EXPECT_LE((*loaded)->facts().size(), original.facts().size())
          << "cut=" << cut;
    }
  }
}

TEST(KbIoTest, SingleByteCorruptionNeverCrashesTheLoader) {
  CuratedKb kb = MakeSampleKb();
  std::stringstream buffer;
  ASSERT_TRUE(SaveCuratedKb(kb, buffer).ok());
  const std::string full = buffer.str();
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string image = full;
    image[pos] ^= 0x01;
    std::stringstream corrupted(image);
    // Error Status or a well-formed KB — never a crash.
    auto loaded = LoadCuratedKb(corrupted);
    (void)loaded;
  }
}

TEST(KbIoTest, FileRoundTripAndMissingFile) {
  CuratedKb kb = MakeSampleKb();
  std::string path = testing::TempDir() + "/nous_kb_io_test.txt";
  ASSERT_TRUE(SaveCuratedKbToFile(kb, path).ok());
  auto loaded = LoadCuratedKbFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->entities().size(), 2u);
  EXPECT_EQ(LoadCuratedKbFromFile("/no/such/file").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace nous
