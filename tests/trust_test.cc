#include <gtest/gtest.h>

#include "core/nous.h"
#include "core/source_trust.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "common/status.h"

namespace nous {
namespace {

TEST(SourceTrustTest, PriorAppliesToUnknownSources) {
  SourceTrustTracker tracker(0.7, 10.0);
  EXPECT_DOUBLE_EQ(tracker.Trust(42), 0.7);
  EXPECT_DOUBLE_EQ(tracker.Observations(42), 0.0);
}

TEST(SourceTrustTest, CorroborationRaisesTrust) {
  SourceTrustTracker tracker(0.5, 4.0);
  for (int i = 0; i < 20; ++i) tracker.RecordCorroborated(1);
  EXPECT_GT(tracker.Trust(1), 0.9);
  EXPECT_DOUBLE_EQ(tracker.Observations(1), 20.0);
}

TEST(SourceTrustTest, UncorroboratedReportsLowerTrust) {
  SourceTrustTracker tracker(0.7, 10.0);
  for (int i = 0; i < 30; ++i) tracker.RecordUncorroborated(2);
  EXPECT_LT(tracker.Trust(2), 0.3);
  EXPECT_GT(tracker.Trust(2), 0.0);
}

TEST(SourceTrustTest, TrustAlwaysInUnitInterval) {
  SourceTrustTracker tracker;
  for (int i = 0; i < 100; ++i) {
    tracker.RecordCorroborated(1);
    tracker.RecordUncorroborated(2);
  }
  for (SourceId s : {1u, 2u, 3u}) {
    EXPECT_GT(tracker.Trust(s), 0.0);
    EXPECT_LT(tracker.Trust(s), 1.0);
  }
  EXPECT_EQ(tracker.KnownSources().size(), 2u);
}

TEST(SourceTrustTest, MixedHistoryLandsBetween) {
  SourceTrustTracker tracker(0.5, 2.0);
  for (int i = 0; i < 10; ++i) tracker.RecordCorroborated(1);
  for (int i = 0; i < 10; ++i) tracker.RecordUncorroborated(1);
  EXPECT_NEAR(tracker.Trust(1), 0.5, 0.05);
}

TEST(SourceTrustTest, RelativeTrustComparesToBaseRate) {
  SourceTrustTracker tracker(0.5, 2.0);
  // Source 1 corroborates at 50%, source 2 never; base rate lands
  // between them.
  for (int i = 0; i < 20; ++i) {
    tracker.RecordCorroborated(1);
    tracker.RecordUncorroborated(1);
    tracker.RecordUncorroborated(2);
    tracker.RecordUncorroborated(2);
  }
  EXPECT_DOUBLE_EQ(tracker.RelativeTrust(1), 1.0);  // above average
  EXPECT_LT(tracker.RelativeTrust(2), 0.5);         // well below
  EXPECT_GT(tracker.RelativeTrust(2), 0.0);
  // A fresh source sits at the prior, above the dragged-down global
  // rate, so it is not penalized.
  EXPECT_DOUBLE_EQ(tracker.RelativeTrust(99), 1.0);
}

TEST(SourceTrustTest, UniformCorpusPenalizesNobody) {
  // Every source single-reports: all trusts are low but equal, so all
  // relative trusts are ~1 and no confidence is damped.
  SourceTrustTracker tracker;
  for (int i = 0; i < 50; ++i) {
    tracker.RecordUncorroborated(1);
    tracker.RecordUncorroborated(2);
    tracker.RecordUncorroborated(3);
  }
  for (SourceId s : {1u, 2u, 3u}) {
    EXPECT_NEAR(tracker.RelativeTrust(s), 1.0, 0.05);
  }
}

// ---------- Pipeline integration ----------

class TrustPipelineFixture : public ::testing::Test {
 protected:
  TrustPipelineFixture()
      : world_(WorldModel::BuildDroneWorld(Config())),
        kb_(BuildCuratedKb(world_, Ontology::DroneDefault(), {})) {}
  static DroneWorldConfig Config() {
    DroneWorldConfig config;
    config.num_companies = 8;
    config.num_events = 40;
    return config;
  }
  WorldModel world_;
  CuratedKb kb_;
};

TEST_F(TrustPipelineFixture, CrossSourceAgreementBuildsTrust) {
  Nous::Options options;
  options.pipeline.lda.iterations = 5;
  options.pipeline.bpr.epochs = 2;
  Nous nous(&kb_, options);
  Date d{2014, 3, 5};
  // The same fact reported by two feeds corroborates both.
  NOUS_CHECK_OK(nous.IngestText("DJI acquired Talon Works.", d, "feed_a"));
  NOUS_CHECK_OK(nous.IngestText("DJI acquired Talon Works.", d, "feed_b"));
  const PropertyGraph& g = nous.graph();
  auto a = g.sources().Lookup("feed_a");
  auto b = g.sources().Lookup("feed_b");
  ASSERT_TRUE(a && b);
  const SourceTrustTracker& trust = nous.pipeline().source_trust();
  double baseline = SourceTrustTracker().Trust(999);
  EXPECT_GT(trust.Trust(*b), baseline);  // corroborated on arrival

  // A feed that only reports unique unverifiable facts loses trust.
  NOUS_CHECK_OK(nous.IngestText("Parrot praised Windermere.", d, "gossip"));
  NOUS_CHECK_OK(nous.IngestText("Windermere praised Parrot.", d, "gossip"));
  auto gossip = g.sources().Lookup("gossip");
  ASSERT_TRUE(gossip.has_value());
  EXPECT_LT(trust.Trust(*gossip), baseline);
}

TEST_F(TrustPipelineFixture, FreshSourceNotPenalized) {
  Nous::Options with;
  with.pipeline.lda.iterations = 5;
  with.pipeline.bpr.epochs = 2;
  with.pipeline.enable_source_trust = true;
  Nous::Options without = with;
  without.pipeline.enable_source_trust = false;

  auto confidence_of = [this](Nous::Options options) {
    Nous nous(&kb_, options);
    NOUS_CHECK_OK(nous.IngestText("DJI acquired Talon Works.", Date{2014, 3, 5},
                    "some_feed"));
    double conf = -1;
    nous.graph().ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
      if (!rec.meta.curated) conf = rec.meta.confidence;
    });
    return conf;
  };
  double trusted = confidence_of(without);
  double tempered = confidence_of(with);
  ASSERT_GT(trusted, 0);
  ASSERT_GT(tempered, 0);
  // A fresh source sits at the prior == global base rate, so relative
  // trust is 1 and confidence is untouched.
  EXPECT_NEAR(tempered, trusted, 1e-9);
}

TEST_F(TrustPipelineFixture, BelowAverageSourceLosesConfidence) {
  Nous::Options options;
  options.pipeline.lda.iterations = 5;
  options.pipeline.bpr.epochs = 2;
  Nous nous(&kb_, options);
  Date d{2014, 3, 5};
  // Corroborated feeds raise the base rate.
  NOUS_CHECK_OK(nous.IngestText("DJI acquired Talon Works.", d, "feed_a"));
  NOUS_CHECK_OK(nous.IngestText("DJI acquired Talon Works.", d, "feed_b"));
  NOUS_CHECK_OK(nous.IngestText("Parrot acquired Windermere.", d, "feed_a"));
  NOUS_CHECK_OK(nous.IngestText("Parrot acquired Windermere.", d, "feed_b"));
  // Gossip only produces unique, never-corroborated claims.
  for (int i = 0; i < 8; ++i) {
    NOUS_CHECK_OK(nous.IngestText("Parrot praised Windermere.", d, "gossip"));
    NOUS_CHECK_OK(nous.IngestText("Windermere praised Parrot.", d, "gossip"));
  }
  const PropertyGraph& g = nous.graph();
  auto gossip = g.sources().Lookup("gossip");
  auto feed_a = g.sources().Lookup("feed_a");
  ASSERT_TRUE(gossip && feed_a);
  const SourceTrustTracker& trust = nous.pipeline().source_trust();
  EXPECT_LT(trust.RelativeTrust(*gossip), trust.RelativeTrust(*feed_a));
  EXPECT_LT(trust.RelativeTrust(*gossip), 1.0);
}

TEST_F(TrustPipelineFixture, DistantSupervisionSwitchWorks) {
  Nous::Options off;
  off.pipeline.lda.iterations = 5;
  off.pipeline.bpr.epochs = 2;
  off.pipeline.enable_distant_supervision = false;
  Nous nous(&kb_, off);
  // Report a curated pair with an unseeded phrase: no evidence accrues.
  ASSERT_FALSE(kb_.facts().empty());
  const KbFact& fact = kb_.facts()[0];
  NOUS_CHECK_OK(nous.IngestText(kb_.entities()[fact.subject].name + " praised " +
                      kb_.entities()[fact.object].name + ".",
                  Date{2014, 1, 1}, "wsj"));
  EXPECT_EQ(nous.stats().ds_alignments, 0u);
  EXPECT_DOUBLE_EQ(
      nous.pipeline().mapper().EvidenceWeight(fact.predicate, "praise"),
      0.0);
}

}  // namespace
}  // namespace nous
