// Copy-on-write graph core: CowVec/CowIdIndex unit behavior, the
// randomized COW-vs-deep-copy equivalence property (DESIGN.md §5.13),
// shared/private footprint accounting, and checkpoint bit-identity on
// the chunked representation. ISSUE 7's correctness pins: a Clone()
// must be indistinguishable from the full deep copy it replaced —
// identical ids, slot layout, adjacency order, and derived indexes —
// no matter how either copy is mutated afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "graph/cow.h"
#include "graph/property_graph.h"
#include "graph/types.h"

namespace nous {
namespace {

std::string Serialize(const PropertyGraph& g) {
  BinaryWriter w;
  g.SaveBinary(&w);
  return w.Take();
}

// ---- CowVec ----

TEST(CowVecTest, PushBackIndexResize) {
  CowVec<int> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 1000; ++i) v.PushBack(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
  v.Resize(1500);
  ASSERT_EQ(v.size(), 1500u);
  EXPECT_EQ(v[999], 999);
  EXPECT_EQ(v[1499], 0);  // default-constructed tail
  v.Mutable(1499) = 7;
  EXPECT_EQ(v[1499], 7);
}

TEST(CowVecTest, CopiesShareUntilWritten) {
  CowVec<int> a;
  for (int i = 0; i < 600; ++i) a.PushBack(i);
  CowVec<int> b = a;
  // Writing through one copy must not be visible through the other.
  b.Mutable(5) = -1;
  EXPECT_EQ(a[5], 5);
  EXPECT_EQ(b[5], -1);
  a.Mutable(300) = -2;
  EXPECT_EQ(a[300], -2);
  EXPECT_EQ(b[300], 300);
  // Untouched slots still agree.
  EXPECT_EQ(a[599], b[599]);
}

TEST(CowVecTest, MutationCopiesOnlyTouchedChunks) {
  CowVec<int> a;
  // 16 full chunks.
  for (size_t i = 0; i < 16 * CowVec<int>::kChunkSize; ++i) {
    a.PushBack(static_cast<int>(i));
  }
  CowVec<int> b = a;
  CowCounters::Reset();
  b.Mutable(0) = -1;  // chunk 0
  b.Mutable(1) = -1;  // chunk 0 again: already private
  b.Mutable(5 * CowVec<int>::kChunkSize) = -1;  // chunk 5
  EXPECT_EQ(CowCounters::ChunkCopies().load(), 2u);
  EXPECT_EQ(CowCounters::SpineCopies().load(), 1u);
}

TEST(CowVecTest, DetachMakesFullyPrivate) {
  CowVec<std::vector<int>> a;
  for (int i = 0; i < 300; ++i) a.PushBack({i, i + 1});
  CowVec<std::vector<int>> b = a;
  b.Detach();
  auto deep = [](const std::vector<int>& x) {
    return x.capacity() * sizeof(int);
  };
  CowFootprint fa;
  a.AddFootprint(&fa, deep);
  EXPECT_EQ(fa.shared_bytes, 0u) << "detach must drop all sharing";
  b.Mutable(0).push_back(-1);
  EXPECT_EQ(a[0].size(), 2u);
  EXPECT_EQ(b[0].size(), 3u);
}

TEST(CowVecTest, FootprintSplitsSharedAndPrivate) {
  CowVec<int> a;
  for (size_t i = 0; i < 8 * CowVec<int>::kChunkSize; ++i) {
    a.PushBack(static_cast<int>(i));
  }
  auto deep = [](int) { return size_t{0}; };
  CowFootprint alone;
  a.AddFootprint(&alone, deep);
  EXPECT_EQ(alone.shared_bytes, 0u);
  EXPECT_GT(alone.private_bytes, 0u);

  CowVec<int> b = a;
  CowFootprint shared;
  a.AddFootprint(&shared, deep);
  EXPECT_EQ(shared.private_bytes, 0u) << "all chunks shared with b";
  EXPECT_EQ(shared.shared_bytes, alone.private_bytes + alone.shared_bytes);

  // One write: exactly one chunk (plus b's now-private spine) diverges.
  b.Mutable(0) = -1;
  CowFootprint after;
  b.AddFootprint(&after, deep);
  EXPECT_GT(after.private_bytes, 0u);
  EXPECT_GT(after.shared_bytes, after.private_bytes);
}

// ---- Randomized COW-vs-deep-copy equivalence (the tentpole pin) ----

struct OpMixer {
  std::mt19937 rng;
  std::vector<std::string> labels;
  std::vector<std::string> predicates;

  explicit OpMixer(uint32_t seed, int label_pool = 40) : rng(seed) {
    // Mixed-case labels exercise the folded index's collision path.
    for (int i = 0; i < label_pool; ++i) {
      labels.push_back("Entity" + std::to_string(i));
    }
    for (int i = 0; i < label_pool / 4; ++i) {
      labels.push_back("entity" + std::to_string(i));
    }
    for (int i = 0; i < 8; ++i) predicates.push_back("pred" + std::to_string(i));
  }

  void Step(PropertyGraph* g) {
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {  // add an edge (dominant op)
        TimedTriple t;
        t.triple.subject = labels[rng() % labels.size()];
        t.triple.predicate = predicates[rng() % predicates.size()];
        t.triple.object = labels[rng() % labels.size()];
        t.confidence = 0.5 + (rng() % 50) / 100.0;
        t.timestamp = static_cast<Timestamp>(rng() % 10000);
        t.source = "src" + std::to_string(rng() % 3);
        g->AddTriple(t);
        break;
      }
      case 3: {  // retract a random slot (may already be dead)
        if (g->NumEdgeSlots() > 0) {
          // NotFound on an already-dead slot is expected here.
          Status st =
              g->RemoveEdge(static_cast<EdgeId>(rng() % g->NumEdgeSlots()));
          (void)st;
        }
        break;
      }
      case 4: {  // rescore (finalize path)
        if (g->NumEdgeSlots() > 0) {
          g->SetEdgeConfidence(static_cast<EdgeId>(rng() % g->NumEdgeSlots()),
                               (rng() % 100) / 100.0);
        }
        break;
      }
      case 5: {  // vertex properties
        if (g->NumVertices() > 0) {
          VertexId v = static_cast<VertexId>(rng() % g->NumVertices());
          g->SetVertexType(v, g->types().Intern("T" + std::to_string(rng() % 4)));
          g->AddVertexTerm(v, g->terms().Intern("w" + std::to_string(rng() % 30)),
                           1.0);
        }
        break;
      }
      case 6: {  // topics
        if (g->NumVertices() > 0) {
          VertexId v = static_cast<VertexId>(rng() % g->NumVertices());
          g->SetVertexTopics(v, {0.25, 0.25, 0.5});
        }
        break;
      }
      case 7: {  // new vertex without edges
        g->GetOrAddVertex("Solo" + std::to_string(rng() % 20));
        break;
      }
    }
  }
};

// Derived indexes are not serialized, so SaveBinary equality alone
// does not pin them; probe them explicitly. `exact_order` compares
// per-predicate partitions positionally — true for clone-vs-deep-copy
// pairs (identical maintenance history). A loaded graph rebuilds the
// partitions from the merged adjacency lists, whose entry order can
// legitimately differ from incrementally maintained ones after
// RemoveEdge's swap-with-back (a pre-COW property), so round-trip
// checks compare them as sets.
void ExpectDerivedIndexesEqual(const PropertyGraph& a, const PropertyGraph& b,
                               bool exact_order = true) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.MaxEdgeTimestamp(), b.MaxEdgeTimestamp());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    std::string folded = a.VertexLabel(v);
    for (char& c : folded) c = static_cast<char>(tolower(c));
    EXPECT_EQ(a.FindVertexFolded(folded), b.FindVertexFolded(folded))
        << "folded lookup diverged for " << folded;
    auto canonical = [exact_order](const std::vector<AdjEntry>& entries) {
      std::vector<AdjEntry> c = entries;
      if (!exact_order) {
        std::sort(c.begin(), c.end(), [](const AdjEntry& x, const AdjEntry& y) {
          return x.edge < y.edge;
        });
      }
      return c;
    };
    for (PredicateId p = 0; p < a.predicates().size(); ++p) {
      std::vector<AdjEntry> ea = canonical(a.OutEdgesWithPredicate(v, p));
      std::vector<AdjEntry> eb = canonical(b.OutEdgesWithPredicate(v, p));
      ASSERT_EQ(ea.size(), eb.size());
      for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].edge, eb[i].edge);
        EXPECT_EQ(ea[i].neighbor, eb[i].neighbor);
        EXPECT_EQ(ea[i].predicate, eb[i].predicate);
      }
      std::vector<AdjEntry> ia = canonical(a.InEdgesWithPredicate(v, p));
      std::vector<AdjEntry> ib = canonical(b.InEdgesWithPredicate(v, p));
      ASSERT_EQ(ia.size(), ib.size());
      for (size_t i = 0; i < ia.size(); ++i) {
        EXPECT_EQ(ia[i].edge, ib[i].edge);
      }
    }
  }
}

TEST(CowEquivalenceTest, CloneMatchesDeepCopyUnderRandomOps) {
  for (uint32_t seed : {11u, 29u, 47u}) {
    PropertyGraph g;
    OpMixer mix(seed);
    // Retained snapshots with the bytes they serialized to at clone
    // time; later mutation of the live graph must never change them.
    std::vector<std::pair<PropertyGraph, std::string>> retained;
    for (int step = 0; step < 1200; ++step) {
      mix.Step(&g);
      if (step % 150 == 149) {
        PropertyGraph cow = g.Clone();
        PropertyGraph deep = g.Clone();
        deep.Detach();
        std::string live_bytes = Serialize(g);
        EXPECT_EQ(Serialize(cow), live_bytes)
            << "COW clone differs from source (seed " << seed << " step "
            << step << ")";
        EXPECT_EQ(Serialize(deep), live_bytes)
            << "deep copy differs from source (seed " << seed << " step "
            << step << ")";
        ExpectDerivedIndexesEqual(cow, deep);
        retained.emplace_back(std::move(cow), std::move(live_bytes));
      }
    }
    // Snapshot isolation: every retained clone still serializes to the
    // bytes captured when it was taken.
    for (auto& [snap, bytes] : retained) {
      EXPECT_EQ(Serialize(snap), bytes)
          << "retained snapshot mutated by later ops (seed " << seed << ")";
    }
    // And mutating an old snapshot must not leak into the live graph.
    std::string live_bytes = Serialize(g);
    if (!retained.empty()) {
      PropertyGraph& old = retained.front().first;
      OpMixer mutator(seed + 1);
      for (int i = 0; i < 100; ++i) mutator.Step(&old);
      EXPECT_EQ(Serialize(g), live_bytes);
    }
  }
}

TEST(CowEquivalenceTest, SaveLoadRoundTripOnChunkedRepresentation) {
  PropertyGraph g;
  OpMixer mix(13);
  for (int step = 0; step < 800; ++step) mix.Step(&g);
  // Round-trip the live graph and a COW clone of it: both must load
  // back to byte-identical state (KgVersionSurvivesCrashRecovery's
  // graph-layer guarantee on the chunked representation).
  for (const PropertyGraph* src : {&g}) {
    std::string bytes = Serialize(*src);
    PropertyGraph loaded;
    BinaryReader reader(bytes);
    ASSERT_TRUE(loaded.LoadBinary(&reader).ok());
    EXPECT_EQ(Serialize(loaded), bytes);
    ExpectDerivedIndexesEqual(*src, loaded, /*exact_order=*/false);
  }
  PropertyGraph clone = g.Clone();
  std::string clone_bytes = Serialize(clone);
  PropertyGraph loaded;
  BinaryReader reader(clone_bytes);
  ASSERT_TRUE(loaded.LoadBinary(&reader).ok());
  EXPECT_EQ(Serialize(loaded), Serialize(g));
}

TEST(CowEquivalenceTest, FoldedLookupKeepsLowestIdAcrossCollisions) {
  PropertyGraph g;
  VertexId first = g.GetOrAddVertex("DJI");
  g.GetOrAddVertex("dji");
  g.GetOrAddVertex("Dji");
  EXPECT_EQ(g.FindVertexFolded("dJI"), std::optional<VertexId>(first));
  PropertyGraph clone = g.Clone();
  EXPECT_EQ(clone.FindVertexFolded("dJI"), std::optional<VertexId>(first));
  // Exact match still beats the folded index.
  EXPECT_EQ(g.FindVertexFolded("dji"), g.FindVertex("dji"));
}

// ---- Footprint accounting on a whole graph ----

// A graph large enough to span many chunks in every container
// (thousands of vertices and edges), so a clustered delta's chunk
// count is visibly smaller than the graph's.
PropertyGraph BuildLargeGraph() {
  PropertyGraph g;
  OpMixer mix(7, /*label_pool=*/6000);
  for (int step = 0; step < 8000; ++step) mix.Step(&g);
  return g;
}

// A realistic ingest delta: a handful of new facts about one entity,
// touching a bounded set of chunks no matter how big the graph is.
void ApplyClusteredDelta(PropertyGraph* g, int salt) {
  for (int i = 0; i < 10; ++i) {
    TimedTriple t;
    t.triple.subject = "Entity0";
    t.triple.predicate = "pred" + std::to_string(i % 3);
    t.triple.object = "Entity" + std::to_string(1 + (salt + i) % 5);
    t.confidence = 0.9;
    t.timestamp = 5000 + salt;
    t.source = "src0";
    g->AddTriple(t);
  }
}

TEST(CowFootprintTest, CloneSharesAlmostEverything) {
  PropertyGraph g = BuildLargeGraph();
  CowFootprint alone = g.Footprint();
  EXPECT_EQ(alone.shared_bytes, 0u);

  PropertyGraph snap = g.Clone();
  CowFootprint fp = g.Footprint();
  EXPECT_EQ(fp.private_bytes, 0u) << "fresh clone shares every chunk";
  EXPECT_EQ(fp.total_bytes(), alone.total_bytes());

  // A clustered delta unshares a small fraction.
  ApplyClusteredDelta(&g, 1);
  CowFootprint after = g.Footprint();
  EXPECT_GT(after.private_bytes, 0u);
  EXPECT_GT(after.shared_bytes, 4 * after.private_bytes)
      << "a 10-fact delta must not unshare a significant fraction of a "
         "multi-thousand-edge graph";

  // ApproxMemoryBytes is the total of the split.
  EXPECT_EQ(g.ApproxMemoryBytes(), after.total_bytes());
}

TEST(CowFootprintTest, PublishCostIsDeltaNotGraphSize) {
  PropertyGraph g = BuildLargeGraph();

  // Publish epoch 1: clone, then a fixed-size delta.
  PropertyGraph snap1 = g.Clone();
  CowCounters::Reset();
  ApplyClusteredDelta(&g, 1);
  uint64_t delta_copies = CowCounters::ChunkCopies().load();
  EXPECT_GT(delta_copies, 0u);
  EXPECT_LE(delta_copies, 32u)
      << "a 10-fact clustered delta should unshare a bounded chunk count";

  // Publish epoch 2 behaves the same — cost does not accumulate.
  PropertyGraph snap2 = g.Clone();
  CowCounters::Reset();
  ApplyClusteredDelta(&g, 2);
  uint64_t delta_copies2 = CowCounters::ChunkCopies().load();
  EXPECT_GT(delta_copies2, 0u);
  EXPECT_LE(delta_copies2, 32u);

  // The retired model: a deep copy rewrites every shared chunk — an
  // order of magnitude (plus) more chunk copies than the delta.
  CowCounters::Reset();
  PropertyGraph deep = g.Clone();
  deep.Detach();
  uint64_t deep_copies = CowCounters::ChunkCopies().load();
  EXPECT_GT(deep_copies, 10 * delta_copies)
      << "deep copy must cost O(graph), COW delta O(delta)";
}

}  // namespace
}  // namespace nous
