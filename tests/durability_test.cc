// Crash-safety guarantees (DESIGN.md §5.10): the WAL commits exactly
// what it acknowledges, checkpoints restore bit-identical pipeline
// state, and kill -9 at any byte offset of the log recovers a KG equal
// to the last durable batch — torn tails are CRC-detected and dropped,
// never crashed on. Fault injection (NOUS_FAULTS) drives the failure
// paths deterministically.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "core/nous.h"
#include "core/pipeline.h"
#include "corpus/article_generator.h"
#include "corpus/world_model.h"
#include "durability/checkpoint.h"
#include "durability/fs_util.h"
#include "durability/manager.h"
#include "durability/wal.h"
#include "durability/wal_codec.h"
#include "kb/kb_generator.h"

namespace nous {
namespace {

/// A per-test scratch directory with no stale durability files.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "nous_durability_" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  for (const char* file :
       {"/wal.log", "/checkpoint.nous", "/checkpoint.nous.tmp"}) {
    EXPECT_TRUE(RemoveFile(dir + file).ok());
  }
  return dir;
}

std::string ReadFile(const std::string& path) {
  auto contents = ReadFileToString(path);
  EXPECT_TRUE(contents.ok()) << contents.status();
  return contents.ok() ? *contents : std::string();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(out.good());
}

/// Byte offset just past each intact frame of a WAL image (the file
/// magic counts as offset 0's "boundary").
std::vector<size_t> FrameEnds(const std::string& wal) {
  std::vector<size_t> ends;
  size_t off = 8;  // file magic
  // Frame header: [u32 magic][u64 seq][u32 len][u32 crc] = 20 bytes,
  // with len at header offset 12.
  while (off + 20 <= wal.size()) {
    uint32_t len = 0;
    std::memcpy(&len, wal.data() + off + 12, sizeof(len));
    if (off + 20 + len > wal.size()) break;
    off += 20 + len;
    ends.push_back(off);
  }
  return ends;
}

class FaultGuard {
 public:
  FaultGuard() { FaultInjector::Global().Reset(); }
  ~FaultGuard() { FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// WAL framing

TEST(WalTest, RoundTripsRecords) {
  std::string dir = FreshDir("wal_roundtrip");
  std::string path = dir + "/wal.log";
  const std::vector<std::string> payloads = {
      "first", "", std::string("bin\0ary\xff", 8), std::string(3000, 'x'),
      "tail"};
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
    for (size_t i = 0; i < payloads.size(); ++i) {
      ASSERT_TRUE(writer.Append(i + 1, payloads[i]).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  auto read = WalReader::ReadAll(path);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(read->records[i].seq, i + 1);
    EXPECT_EQ(read->records[i].payload, payloads[i]);
  }
  EXPECT_EQ(read->dropped_bytes, 0u);
  EXPECT_EQ(read->dropped_records, 0u);
  EXPECT_EQ(read->valid_bytes, ReadFile(path).size());
}

TEST(WalTest, MissingFileReadsAsEmptyLog) {
  auto read = WalReader::ReadAll(FreshDir("wal_missing") + "/wal.log");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->dropped_bytes, 0u);
}

TEST(WalTest, TruncationAtEveryByteKeepsExactlyTheCommittedPrefix) {
  std::string dir = FreshDir("wal_truncate");
  std::string path = dir + "/wal.log";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
    ASSERT_TRUE(writer.Append(1, "alpha payload").ok());
    ASSERT_TRUE(writer.Append(2, "beta").ok());
    ASSERT_TRUE(writer.Append(3, std::string(40, 'c')).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  const std::string full = ReadFile(path);
  const std::vector<size_t> ends = FrameEnds(full);
  ASSERT_EQ(ends.size(), 3u);

  std::string cut_path = dir + "/wal_cut.log";
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(cut_path, full.substr(0, cut));
    auto read = WalReader::ReadAll(cut_path);
    ASSERT_TRUE(read.ok()) << "cut=" << cut << ": " << read.status();
    size_t expect_records = 0;
    size_t expect_valid = cut >= 8 ? 8 : 0;
    for (size_t end : ends) {
      if (cut >= end) {
        ++expect_records;
        expect_valid = end;
      }
    }
    EXPECT_EQ(read->records.size(), expect_records) << "cut=" << cut;
    EXPECT_EQ(read->valid_bytes, expect_valid) << "cut=" << cut;
    EXPECT_EQ(read->dropped_bytes, cut - expect_valid) << "cut=" << cut;
    for (size_t i = 0; i < read->records.size(); ++i) {
      EXPECT_EQ(read->records[i].seq, i + 1);
    }
  }
}

TEST(WalTest, MidFileCorruptionDropsEverythingAfterIt) {
  std::string dir = FreshDir("wal_corrupt");
  std::string path = dir + "/wal.log";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
    ASSERT_TRUE(writer.Append(1, "intact record").ok());
    ASSERT_TRUE(writer.Append(2, "soon to be flipped").ok());
    ASSERT_TRUE(writer.Append(3, "unreachable after the flip").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string image = ReadFile(path);
  const std::vector<size_t> ends = FrameEnds(image);
  ASSERT_EQ(ends.size(), 3u);
  image[ends[0] + 25] ^= 0x40;  // inside record 2's payload
  WriteFile(path, image);

  auto read = WalReader::ReadAll(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "intact record");
  EXPECT_EQ(read->valid_bytes, ends[0]);
  EXPECT_GT(read->dropped_bytes, 0u);
}

TEST(WalTest, WrongFileMagicIsDataLossNotGarbageRecords) {
  std::string dir = FreshDir("wal_magic");
  std::string path = dir + "/wal.log";
  WriteFile(path, "NOTAWAL0 some bytes that are long enough");
  auto read = WalReader::ReadAll(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST(WalTest, ReopeningAnEmptyFileRewritesTheMagic) {
  // Recovery truncates a log whose tail tore inside the magic to zero
  // bytes; appending afterwards must still yield a readable file.
  std::string dir = FreshDir("wal_empty_reopen");
  std::string path = dir + "/wal.log";
  WriteFile(path, "");
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
  ASSERT_TRUE(writer.Append(1, "after reset").ok());
  ASSERT_TRUE(writer.Close().ok());
  auto read = WalReader::ReadAll(path);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "after reset");
}

TEST(WalTest, TornAppendFaultIsDroppedAndTheLogStaysAppendable) {
  FaultGuard guard;
  std::string dir = FreshDir("wal_torn_fault");
  std::string path = dir + "/wal.log";
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
  ASSERT_TRUE(writer.Append(1, "committed").ok());
  FaultInjector::Global().Arm("wal_append", FaultKind::kTorn, 1);
  EXPECT_FALSE(writer.Append(2, "torn in half").ok());
  ASSERT_TRUE(writer.Close().ok());

  auto read = WalReader::ReadAll(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "committed");
  EXPECT_GT(read->dropped_bytes, 0u);
  EXPECT_EQ(read->dropped_records, 1u);

  // Recovery protocol: truncate to the valid prefix, reopen, append.
  ASSERT_TRUE(TruncateFile(path, read->valid_bytes).ok());
  WalWriter again;
  ASSERT_TRUE(again.Open(path, WalOptions{}).ok());
  ASSERT_TRUE(again.Append(2, "retried").ok());
  ASSERT_TRUE(again.Close().ok());
  auto reread = WalReader::ReadAll(path);
  ASSERT_TRUE(reread.ok());
  ASSERT_EQ(reread->records.size(), 2u);
  EXPECT_EQ(reread->records[1].payload, "retried");
}

TEST(WalTest, FailedAppendFaultWritesNothing) {
  FaultGuard guard;
  std::string dir = FreshDir("wal_fail_fault");
  std::string path = dir + "/wal.log";
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
  FaultInjector::Global().Arm("wal_append", FaultKind::kFail, 1);
  EXPECT_FALSE(writer.Append(1, "never lands").ok());
  ASSERT_TRUE(writer.Close().ok());
  auto read = WalReader::ReadAll(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->dropped_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Checkpoint files

TEST(CheckpointTest, RoundTrips) {
  std::string path = FreshDir("ckpt_roundtrip") + "/checkpoint.nous";
  CheckpointData data;
  data.last_applied_seq = 42;
  data.state = std::string("opaque\0state\xfe", 13);
  ASSERT_TRUE(WriteCheckpointFile(path, data).ok());
  auto read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->last_applied_seq, 42u);
  EXPECT_EQ(read->state, data.state);
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  auto read =
      ReadCheckpointFile(FreshDir("ckpt_missing") + "/checkpoint.nous");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, EveryTruncationAndBitFlipIsDetected) {
  std::string dir = FreshDir("ckpt_corrupt");
  std::string path = dir + "/checkpoint.nous";
  CheckpointData data;
  data.last_applied_seq = 7;
  data.state = "the pipeline state payload, long enough to matter";
  ASSERT_TRUE(WriteCheckpointFile(path, data).ok());
  const std::string full = ReadFile(path);

  std::string probe = dir + "/probe.nous";
  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteFile(probe, full.substr(0, cut));
    auto read = ReadCheckpointFile(probe);
    EXPECT_FALSE(read.ok()) << "cut=" << cut;
  }
  for (size_t flip = 0; flip < full.size(); ++flip) {
    std::string image = full;
    image[flip] ^= 0x01;
    WriteFile(probe, image);
    auto read = ReadCheckpointFile(probe);
    EXPECT_FALSE(read.ok()) << "flip=" << flip;
  }
}

TEST(CheckpointTest, FailedAtomicWritePreservesThePreviousCheckpoint) {
  FaultGuard guard;
  std::string path = FreshDir("ckpt_atomic") + "/checkpoint.nous";
  CheckpointData old_data;
  old_data.last_applied_seq = 1;
  old_data.state = "old durable state";
  ASSERT_TRUE(WriteCheckpointFile(path, old_data).ok());

  CheckpointData new_data;
  new_data.last_applied_seq = 2;
  new_data.state = "new state that must not half-land";
  FaultInjector::Global().Arm("atomic_write", FaultKind::kFail, 1);
  EXPECT_FALSE(WriteCheckpointFile(path, new_data).ok());
  // Re-arm from a clean hit counter (non-sticky ordinals are absolute).
  FaultInjector::Global().Reset();
  FaultInjector::Global().Arm("atomic_write", FaultKind::kTorn, 1);
  EXPECT_FALSE(WriteCheckpointFile(path, new_data).ok());

  auto read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->last_applied_seq, 1u);
  EXPECT_EQ(read->state, "old durable state");
}

// ---------------------------------------------------------------------------
// Batch codec

TEST(WalCodecTest, RoundTripsArticlesAndDropsGold) {
  std::vector<Article> batch(2);
  batch[0].id = "doc_1";
  batch[0].date = Date{2016, 3, 9};
  batch[0].source = "wsj";
  batch[0].text = "DJI acquired SkyWard Labs.";
  batch[0].gold.push_back({});  // evaluation-only, must not survive
  batch[1].id = "adhoc_7";
  batch[1].date = Date{1999, 12, 31};
  batch[1].source = "";
  batch[1].text = std::string("binary\0text", 11);

  std::string payload = EncodeArticleBatch(batch);
  auto decoded = DecodeArticleBatch(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].id, "doc_1");
  EXPECT_EQ((*decoded)[0].date.year, 2016);
  EXPECT_EQ((*decoded)[0].date.month, 3);
  EXPECT_EQ((*decoded)[0].date.day, 9);
  EXPECT_EQ((*decoded)[0].source, "wsj");
  EXPECT_EQ((*decoded)[0].text, batch[0].text);
  EXPECT_TRUE((*decoded)[0].gold.empty());
  EXPECT_EQ((*decoded)[1].id, "adhoc_7");
  EXPECT_EQ((*decoded)[1].text, batch[1].text);
}

TEST(WalCodecTest, EveryTruncatedPayloadIsRejectedNotCrashed) {
  std::vector<Article> batch(1);
  batch[0].id = "doc";
  batch[0].date = Date{2016, 1, 1};
  batch[0].source = "s";
  batch[0].text = "some text";
  std::string payload = EncodeArticleBatch(batch);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeArticleBatch(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
  auto trailing = DecodeArticleBatch(payload + "x");
  EXPECT_FALSE(trailing.ok());
}

// ---------------------------------------------------------------------------
// DurabilityManager protocol

TEST(DurabilityManagerTest, LogThenRecoverReplaysInSequence) {
  std::string dir = FreshDir("mgr_cycle");
  DurabilityOptions options;
  options.dir = dir;
  options.fsync_policy = FsyncPolicy::kNever;
  {
    DurabilityManager manager(options);
    auto recovered = manager.Recover();
    ASSERT_TRUE(recovered.ok());
    EXPECT_FALSE(recovered->has_checkpoint);
    EXPECT_TRUE(recovered->replay.empty());
    ASSERT_TRUE(manager.OpenWal(0).ok());
    for (const char* payload : {"one", "two", "three"}) {
      auto seq = manager.LogBatch(payload);
      ASSERT_TRUE(seq.ok());
    }
    EXPECT_EQ(manager.last_logged_seq(), 3u);
  }
  DurabilityManager manager(options);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->replay.size(), 3u);
  EXPECT_EQ(recovered->replay[0].payload, "one");
  EXPECT_EQ(recovered->replay[2].payload, "three");
  EXPECT_EQ(recovered->replay[2].seq, 3u);
}

TEST(DurabilityManagerTest, CheckpointResetsWalAndFloorsReplay) {
  std::string dir = FreshDir("mgr_ckpt");
  DurabilityOptions options;
  options.dir = dir;
  options.fsync_policy = FsyncPolicy::kNever;
  {
    DurabilityManager manager(options);
    ASSERT_TRUE(manager.Recover().ok());
    ASSERT_TRUE(manager.OpenWal(0).ok());
    ASSERT_TRUE(manager.LogBatch("pre ckpt 1").ok());
    ASSERT_TRUE(manager.LogBatch("pre ckpt 2").ok());
    ASSERT_TRUE(manager.WriteCheckpoint("snapshot at seq 2").ok());
    ASSERT_TRUE(manager.LogBatch("post ckpt").ok());
  }
  DurabilityManager manager(options);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(recovered->has_checkpoint);
  EXPECT_EQ(recovered->checkpoint.last_applied_seq, 2u);
  EXPECT_EQ(recovered->checkpoint.state, "snapshot at seq 2");
  ASSERT_EQ(recovered->replay.size(), 1u);
  EXPECT_EQ(recovered->replay[0].seq, 3u);
  EXPECT_EQ(recovered->replay[0].payload, "post ckpt");
}

TEST(DurabilityManagerTest, RecoverTruncatesTheTornTailOnDisk) {
  std::string dir = FreshDir("mgr_truncate");
  DurabilityOptions options;
  options.dir = dir;
  options.fsync_policy = FsyncPolicy::kNever;
  {
    DurabilityManager manager(options);
    ASSERT_TRUE(manager.Recover().ok());
    ASSERT_TRUE(manager.OpenWal(0).ok());
    ASSERT_TRUE(manager.LogBatch("whole").ok());
  }
  // Simulate a torn append left by a crash.
  std::string wal_path = dir + "/wal.log";
  WriteFile(wal_path, ReadFile(wal_path) + "half a fra");
  {
    DurabilityManager manager(options);
    auto recovered = manager.Recover();
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered->dropped_records, 1u);
    EXPECT_GT(recovered->dropped_bytes, 0u);
    ASSERT_EQ(recovered->replay.size(), 1u);
  }
  // The torn bytes are gone: a second recovery is clean.
  DurabilityManager manager(options);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->dropped_bytes, 0u);
  ASSERT_EQ(recovered->replay.size(), 1u);
}

TEST(DurabilityManagerTest, ShouldCheckpointFollowsTheConfiguredCadence) {
  std::string dir = FreshDir("mgr_cadence");
  DurabilityOptions options;
  options.dir = dir;
  options.fsync_policy = FsyncPolicy::kNever;
  options.checkpoint_interval_batches = 2;
  DurabilityManager manager(options);
  ASSERT_TRUE(manager.Recover().ok());
  ASSERT_TRUE(manager.OpenWal(0).ok());
  EXPECT_FALSE(manager.ShouldCheckpoint());
  ASSERT_TRUE(manager.LogBatch("a").ok());
  EXPECT_FALSE(manager.ShouldCheckpoint());
  ASSERT_TRUE(manager.LogBatch("b").ok());
  EXPECT_TRUE(manager.ShouldCheckpoint());
  ASSERT_TRUE(manager.WriteCheckpoint("state").ok());
  EXPECT_FALSE(manager.ShouldCheckpoint());
}

// ---------------------------------------------------------------------------
// End-to-end: pipeline state + Nous crash recovery

class DurabilityPipelineFixture : public ::testing::Test {
 protected:
  DurabilityPipelineFixture()
      : world_(WorldModel::BuildDroneWorld(WorldConfig())),
        kb_(BuildCuratedKb(world_, Ontology::DroneDefault(), Coverage())) {}

  static DroneWorldConfig WorldConfig() {
    DroneWorldConfig config;
    config.num_companies = 10;
    config.num_people = 6;
    config.num_products = 6;
    config.num_events = 36;
    config.seed = 11;
    return config;
  }
  static KbCoverage Coverage() {
    KbCoverage coverage;
    coverage.entity_coverage = 0.6;
    coverage.fact_coverage = 0.9;
    return coverage;
  }
  static Nous::Options FastOptions() {
    Nous::Options options;
    options.pipeline.lda.iterations = 30;
    options.pipeline.bpr.epochs = 4;
    options.pipeline.miner.min_support = 3;
    // A short refresh interval so the BPR cadence crosses checkpoint
    // boundaries (docs_since_refresh_ must survive recovery).
    options.pipeline.bpr_refresh_interval = 5;
    options.pipeline.num_threads = 2;
    return options;
  }
  Nous::Options DurableOptions(const std::string& dir,
                               size_t checkpoint_interval = 0) {
    Nous::Options options = FastOptions();
    options.durability.dir = dir;
    options.durability.fsync_policy = FsyncPolicy::kNever;  // speed
    options.durability.checkpoint_interval_batches = checkpoint_interval;
    return options;
  }

  std::vector<Article> MakeArticles() {
    CorpusConfig config;
    config.pronoun_rate = 0.2;
    config.alias_rate = 0.2;
    return ArticleGenerator(&world_, config).GenerateArticles();
  }
  /// The articles split into full batches of `kBatchSize` (callers
  /// assert the count so the replay arithmetic below stays exact).
  static std::vector<std::vector<Article>> MakeBatches(
      const std::vector<Article>& articles, size_t count) {
    std::vector<std::vector<Article>> batches;
    for (size_t start = 0; start + kBatchSize <= articles.size() &&
                           batches.size() < count;
         start += kBatchSize) {
      batches.emplace_back(articles.begin() + start,
                           articles.begin() + start + kBatchSize);
    }
    return batches;
  }

  using EdgeRow = std::tuple<std::string, std::string, std::string, double,
                             Timestamp, bool>;
  static std::vector<EdgeRow> DumpEdges(const PropertyGraph& g) {
    std::vector<EdgeRow> rows;
    g.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
      rows.emplace_back(g.VertexLabel(rec.subject),
                        g.predicates().GetString(rec.predicate),
                        g.VertexLabel(rec.object), rec.meta.confidence,
                        rec.meta.timestamp, rec.meta.curated);
    });
    return rows;
  }
  static std::vector<EdgeRow> Dump(Nous& nous) {
    ReaderMutexLock lock(nous.kg_mutex());
    return DumpEdges(nous.graph());
  }
  static size_t Documents(Nous& nous) {
    ReaderMutexLock lock(nous.kg_mutex());
    return nous.stats().documents;
  }

  /// A non-durable reference that ingested `batches[0..count)`.
  std::vector<EdgeRow> ReferenceEdges(
      const std::vector<std::vector<Article>>& batches, size_t count) {
    Nous reference(&kb_, FastOptions());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(reference.IngestBatch(batches[i]).ok());
    }
    return Dump(reference);
  }

  static constexpr size_t kBatchSize = 3;
  WorldModel world_;
  CuratedKb kb_;
};

TEST_F(DurabilityPipelineFixture,
       SaveStateRestoresEverythingThatShapesFutureIngest) {
  auto articles = MakeArticles();
  ASSERT_GE(articles.size(), 12u);
  const size_t half = articles.size() / 2;

  KgPipeline original(&kb_, FastOptions().pipeline);
  original.IngestBatch(articles.data(), half);
  std::string payload = original.SaveState();

  KgPipeline restored(&kb_, FastOptions().pipeline);
  Status load = restored.LoadState(payload);
  ASSERT_TRUE(load.ok()) << load;

  // Restored state matches now...
  {
    ReaderMutexLock lock_a(original.kg_mutex());
    ReaderMutexLock lock_b(restored.kg_mutex());
    EXPECT_EQ(DumpEdges(original.graph()), DumpEdges(restored.graph()));
    EXPECT_EQ(original.stats().documents, restored.stats().documents);
  }
  // ...and keeps matching as both ingest the same future: this is the
  // strong check that linker aliases, mapper evidence, BPR parameters
  // + RNG, source trust, and the refresh cadence all round-tripped.
  original.IngestBatch(articles.data() + half, articles.size() - half);
  restored.IngestBatch(articles.data() + half, articles.size() - half);
  original.Finalize();
  restored.Finalize();
  {
    ReaderMutexLock lock_a(original.kg_mutex());
    ReaderMutexLock lock_b(restored.kg_mutex());
    EXPECT_EQ(DumpEdges(original.graph()), DumpEdges(restored.graph()));
    EXPECT_EQ(original.stats().accepted_triples,
              restored.stats().accepted_triples);
    EXPECT_EQ(original.stats().new_entities, restored.stats().new_entities);
  }
}

TEST_F(DurabilityPipelineFixture, LoadStateRejectsAMismatchedCuratedKb) {
  KgPipeline original(&kb_, FastOptions().pipeline);
  std::string payload = original.SaveState();

  KbCoverage smaller;
  smaller.entity_coverage = 0.3;
  smaller.fact_coverage = 0.4;
  CuratedKb other_kb =
      BuildCuratedKb(world_, Ontology::DroneDefault(), smaller);
  KgPipeline restored(&other_kb, FastOptions().pipeline);
  Status load = restored.LoadState(payload);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.code(), StatusCode::kFailedPrecondition);
}

TEST_F(DurabilityPipelineFixture, LoadStateRejectsTruncatedPayloads) {
  auto articles = MakeArticles();
  KgPipeline original(&kb_, FastOptions().pipeline);
  original.IngestBatch(articles.data(), std::min<size_t>(6, articles.size()));
  std::string payload = original.SaveState();
  ASSERT_GT(payload.size(), 64u);
  // Sampled prefixes (every payload byte would re-run LoadState tens of
  // thousands of times); includes the pathological early cuts.
  std::vector<size_t> cuts = {0, 1, 3, 7, 9, 16, 33, 64};
  for (size_t i = 1; i < 40; ++i) {
    cuts.push_back(payload.size() * i / 40);
  }
  for (size_t cut : cuts) {
    if (cut >= payload.size()) continue;
    KgPipeline probe(&kb_, FastOptions().pipeline);
    Status load = probe.LoadState(std::string_view(payload).substr(0, cut));
    EXPECT_FALSE(load.ok()) << "cut=" << cut;
  }
  KgPipeline probe(&kb_, FastOptions().pipeline);
  EXPECT_FALSE(probe.LoadState(payload + "trailing").ok());
}

TEST_F(DurabilityPipelineFixture, RecoverGuardsAgainstMisuse) {
  // No durability directory configured.
  Nous plain(&kb_, FastOptions());
  auto no_dir = plain.Recover();
  ASSERT_FALSE(no_dir.ok());
  EXPECT_EQ(no_dir.status().code(), StatusCode::kFailedPrecondition);

  // Recover after ingest started.
  std::string dir = FreshDir("nous_guards");
  auto articles = MakeArticles();
  Nous late(&kb_, DurableOptions(dir));
  ASSERT_TRUE(late.Ingest(articles[0]).ok());  // non-durable fast path
  auto after_ingest = late.Recover();
  ASSERT_FALSE(after_ingest.ok());
  EXPECT_EQ(after_ingest.status().code(), StatusCode::kFailedPrecondition);

  // Double enable.
  Nous twice(&kb_, DurableOptions(FreshDir("nous_guards2")));
  ASSERT_TRUE(twice.EnableDurability().ok());
  EXPECT_TRUE(twice.durable());
  auto again = twice.Recover();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DurabilityPipelineFixture, WalOnlyCrashRecoversBitIdenticalKg) {
  std::string dir = FreshDir("nous_wal_only");
  auto articles = MakeArticles();
  auto batches = MakeBatches(articles, 4);
  ASSERT_EQ(batches.size(), 4u);

  {
    Nous durable(&kb_, DurableOptions(dir));
    ASSERT_TRUE(durable.EnableDurability().ok());
    for (const auto& batch : batches) {
      ASSERT_TRUE(durable.IngestBatch(batch).ok());
    }
    // Destructor = crash: no checkpoint was ever written.
  }
  ASSERT_FALSE(FileExists(dir + "/checkpoint.nous"));

  Nous recovered(&kb_, DurableOptions(dir));
  auto stats = recovered.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->restored_checkpoint);
  EXPECT_EQ(stats->replayed_batches, 4u);
  EXPECT_EQ(stats->replayed_articles, 12u);
  EXPECT_EQ(stats->dropped_wal_records, 0u);
  EXPECT_EQ(Dump(recovered), ReferenceEdges(batches, 4));

  // The recovered instance keeps evolving exactly like an instance
  // that never crashed.
  auto more = MakeBatches(articles, 5);
  if (more.size() > 4) {
    ASSERT_TRUE(recovered.IngestBatch(more[4]).ok());
    EXPECT_EQ(Dump(recovered), ReferenceEdges(more, 5));
  }
}

TEST_F(DurabilityPipelineFixture, CheckpointPlusWalReplayRecovers) {
  std::string dir = FreshDir("nous_ckpt_wal");
  auto articles = MakeArticles();
  auto batches = MakeBatches(articles, 4);
  ASSERT_EQ(batches.size(), 4u);

  {
    Nous durable(&kb_, DurableOptions(dir));
    ASSERT_TRUE(durable.EnableDurability().ok());
    ASSERT_TRUE(durable.IngestBatch(batches[0]).ok());
    ASSERT_TRUE(durable.IngestBatch(batches[1]).ok());
    ASSERT_TRUE(durable.Checkpoint().ok());
    ASSERT_TRUE(durable.IngestBatch(batches[2]).ok());
    ASSERT_TRUE(durable.IngestBatch(batches[3]).ok());
  }
  ASSERT_TRUE(FileExists(dir + "/checkpoint.nous"));

  Nous recovered(&kb_, DurableOptions(dir));
  auto stats = recovered.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->restored_checkpoint);
  EXPECT_EQ(stats->replayed_batches, 2u);
  EXPECT_EQ(Documents(recovered), 12u);
  EXPECT_EQ(Dump(recovered), ReferenceEdges(batches, 4));

  // Post-recovery Finalize (LDA + BPR rescore) also matches: the BPR
  // tables and RNG were restored bit-exactly by the checkpoint.
  Nous reference(&kb_, FastOptions());
  for (const auto& batch : batches) {
    ASSERT_TRUE(reference.IngestBatch(batch).ok());
  }
  recovered.Finalize();
  reference.Finalize();
  EXPECT_EQ(Dump(recovered), Dump(reference));
}

TEST_F(DurabilityPipelineFixture,
       CrashAtEveryWalRecordBoundaryRecoversThePrefix) {
  std::string dir = FreshDir("nous_crash_offsets");
  auto articles = MakeArticles();
  auto batches = MakeBatches(articles, 4);
  ASSERT_EQ(batches.size(), 4u);

  {
    Nous durable(&kb_, DurableOptions(dir));
    ASSERT_TRUE(durable.EnableDurability().ok());
    for (const auto& batch : batches) {
      ASSERT_TRUE(durable.IngestBatch(batch).ok());
    }
  }
  const std::string wal = ReadFile(dir + "/wal.log");
  const std::vector<size_t> ends = FrameEnds(wal);
  ASSERT_EQ(ends.size(), 4u);

  // References for every surviving prefix length.
  std::vector<std::vector<EdgeRow>> refs;
  for (size_t k = 0; k <= 4; ++k) refs.push_back(ReferenceEdges(batches, k));

  // Truncation points: every record boundary, plus offsets that tear
  // the frame header, the payload, and the final byte of each record —
  // and a cut inside the file magic itself.
  std::vector<std::pair<size_t, size_t>> cases;  // (cut, surviving records)
  cases.emplace_back(5, 0);
  cases.emplace_back(8, 0);
  size_t prev = 8;
  for (size_t i = 0; i < ends.size(); ++i) {
    cases.emplace_back(prev + 2, i);                   // torn frame header
    cases.emplace_back(prev + (ends[i] - prev) / 2, i);  // torn payload
    cases.emplace_back(ends[i] - 1, i);                // one byte short
    cases.emplace_back(ends[i], i + 1);                // clean boundary
    prev = ends[i];
  }

  for (const auto& [cut, survivors] : cases) {
    std::string crash_dir = FreshDir("nous_crash_probe");
    WriteFile(crash_dir + "/wal.log", wal.substr(0, cut));

    Nous recovered(&kb_, DurableOptions(crash_dir));
    auto stats = recovered.Recover();
    ASSERT_TRUE(stats.ok()) << "cut=" << cut << ": " << stats.status();
    EXPECT_EQ(stats->replayed_batches, survivors) << "cut=" << cut;
    const bool clean_boundary =
        cut == 8 ||
        std::find(ends.begin(), ends.end(), cut) != ends.end();
    if (clean_boundary) {
      EXPECT_EQ(stats->dropped_wal_bytes, 0u) << "cut=" << cut;
    } else {
      EXPECT_GT(stats->dropped_wal_bytes, 0u) << "cut=" << cut;
    }
    EXPECT_EQ(Documents(recovered), survivors * kBatchSize)
        << "cut=" << cut;
    EXPECT_EQ(Dump(recovered), refs[survivors]) << "cut=" << cut;

    // The recovered instance is immediately durable again: the torn
    // tail was truncated away, so new ingest appends cleanly.
    ASSERT_TRUE(recovered.IngestBatch(batches[0]).ok()) << "cut=" << cut;
  }
}

TEST_F(DurabilityPipelineFixture, AutomaticCheckpointsTriggerOnCadence) {
  std::string dir = FreshDir("nous_auto_ckpt");
  auto articles = MakeArticles();
  auto batches = MakeBatches(articles, 4);
  {
    Nous durable(&kb_, DurableOptions(dir, /*checkpoint_interval=*/2));
    ASSERT_TRUE(durable.EnableDurability().ok());
    ASSERT_TRUE(durable.IngestBatch(batches[0]).ok());
    EXPECT_FALSE(FileExists(dir + "/checkpoint.nous"));
    ASSERT_TRUE(durable.IngestBatch(batches[1]).ok());
    EXPECT_TRUE(FileExists(dir + "/checkpoint.nous"));
    ASSERT_TRUE(durable.IngestBatch(batches[2]).ok());
  }
  Nous recovered(&kb_, DurableOptions(dir));
  auto stats = recovered.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->restored_checkpoint);
  EXPECT_EQ(stats->replayed_batches, 1u);
  EXPECT_EQ(Dump(recovered), ReferenceEdges(batches, 3));
}

TEST_F(DurabilityPipelineFixture, FailedWalAppendIsNotApplied) {
  FaultGuard guard;
  std::string dir = FreshDir("nous_append_fail");
  auto articles = MakeArticles();
  auto batches = MakeBatches(articles, 2);

  Nous durable(&kb_, DurableOptions(dir));
  ASSERT_TRUE(durable.EnableDurability().ok());
  ASSERT_TRUE(durable.IngestBatch(batches[0]).ok());
  auto before = Dump(durable);

  FaultInjector::Global().Arm("wal_append", FaultKind::kFail, 1);
  Status failed = durable.IngestBatch(batches[1]);
  ASSERT_FALSE(failed.ok());
  // Log-before-apply: the rejected batch left no trace in the KG.
  EXPECT_EQ(Dump(durable), before);
  EXPECT_EQ(Documents(durable), kBatchSize);

  // After the fault clears, the same batch goes through.
  FaultInjector::Global().Reset();
  ASSERT_TRUE(durable.IngestBatch(batches[1]).ok());
  EXPECT_EQ(Dump(durable), ReferenceEdges(batches, 2));
}

TEST_F(DurabilityPipelineFixture, TornWalAppendIsDroppedAtRecovery) {
  FaultGuard guard;
  std::string dir = FreshDir("nous_append_torn");
  auto articles = MakeArticles();
  auto batches = MakeBatches(articles, 2);

  {
    Nous durable(&kb_, DurableOptions(dir));
    ASSERT_TRUE(durable.EnableDurability().ok());
    ASSERT_TRUE(durable.IngestBatch(batches[0]).ok());
    FaultInjector::Global().Arm("wal_append", FaultKind::kTorn, 1);
    ASSERT_FALSE(durable.IngestBatch(batches[1]).ok());
    FaultInjector::Global().Reset();
  }
  Nous recovered(&kb_, DurableOptions(dir));
  auto stats = recovered.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->replayed_batches, 1u);
  EXPECT_EQ(stats->dropped_wal_records, 1u);
  EXPECT_GT(stats->dropped_wal_bytes, 0u);
  EXPECT_EQ(Dump(recovered), ReferenceEdges(batches, 1));
}

TEST_F(DurabilityPipelineFixture, AdhocIdsNeverCollideAcrossRecovery) {
  std::string dir = FreshDir("nous_adhoc");
  {
    Nous durable(&kb_, DurableOptions(dir));
    ASSERT_TRUE(durable.EnableDurability().ok());
    ASSERT_TRUE(durable
                    .IngestText("DJI acquired SkyWard Labs.",
                                Date{2016, 1, 1}, "cli")
                    .ok());
    ASSERT_TRUE(durable
                    .IngestText("DJI launched Phantom 3.", Date{2016, 1, 2},
                                "cli")
                    .ok());
  }
  Nous recovered(&kb_, DurableOptions(dir));
  ASSERT_TRUE(recovered.Recover().ok());
  // The crashed instance handed out adhoc_0 and adhoc_1; replay must
  // fast-forward the counter past both.
  EXPECT_EQ(recovered.pipeline().ReserveAdhocId(), "adhoc_2");
}

TEST_F(DurabilityPipelineFixture, KgVersionSurvivesCrashRecovery) {
  std::string dir = FreshDir("nous_version_recovery");
  auto articles = MakeArticles();
  auto batches = MakeBatches(articles, 4);
  ASSERT_EQ(batches.size(), 4u);

  // Reference: an instance that never crashes. Bootstrap = version 1,
  // each IngestBatch bumps once.
  Nous reference(&kb_, FastOptions());
  for (const auto& batch : batches) {
    ASSERT_TRUE(reference.IngestBatch(batch).ok());
  }
  ASSERT_NE(reference.snapshot(), nullptr);
  const uint64_t reference_version = reference.snapshot()->version();
  EXPECT_EQ(reference_version, 1u + batches.size());

  {
    Nous durable(&kb_, DurableOptions(dir));
    ASSERT_TRUE(durable.EnableDurability().ok());
    ASSERT_TRUE(durable.IngestBatch(batches[0]).ok());
    ASSERT_TRUE(durable.IngestBatch(batches[1]).ok());
    // Checkpoint captures kg_version alongside the KG state...
    ASSERT_TRUE(durable.Checkpoint().ok());
    ASSERT_TRUE(durable.IngestBatch(batches[2]).ok());
    ASSERT_TRUE(durable.IngestBatch(batches[3]).ok());
    // ...and the last two batches exist only in the WAL.
  }

  Nous recovered(&kb_, DurableOptions(dir));
  auto stats = recovered.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->restored_checkpoint);
  EXPECT_EQ(stats->replayed_batches, 2u);

  // Checkpoint restore + one bump per replayed batch lands on exactly
  // the version the uncrashed instance reached, so version-keyed query
  // caches stay coherent across a crash.
  ASSERT_NE(recovered.snapshot(), nullptr);
  EXPECT_EQ(recovered.snapshot()->version(), reference_version);

  // And the counter keeps advancing from there, not from a stale base.
  auto more = MakeBatches(articles, 5);
  if (more.size() > 4) {
    ASSERT_TRUE(recovered.IngestBatch(more[4]).ok());
    EXPECT_EQ(recovered.snapshot()->version(), reference_version + 1);
  }
}

}  // namespace
}  // namespace nous
