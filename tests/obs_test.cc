#include <atomic>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nous {
namespace {

// ---------- Counter / Gauge ----------

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
}

// ---------- LatencyHistogram ----------

TEST(LatencyHistogramTest, ObserveAndSnapshot) {
  LatencyHistogram h(FixedHistogram::Exponential(1e-6, 10, 8));
  h.Observe(1e-5);
  h.Observe(1e-3);
  h.Observe(0.1);
  FixedHistogram snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count(), 3u);
  EXPECT_NEAR(snapshot.sum(), 0.10101, 1e-6);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count(), 0u);
}

TEST(LatencyHistogramTest, StripedRecordingFromManyThreadsMergesExactly) {
  // Recording threads land on distinct stripes (round-robin
  // assignment); the snapshot must merge every stripe so no
  // observation is lost and the aggregate statistics are exact.
  LatencyHistogram h(FixedHistogram::Exponential(1e-6, 4, 14));
  constexpr size_t kThreads = 2 * LatencyHistogram::kStripes;
  constexpr size_t kPerThread = 5000;
  {
    ThreadPool pool(kThreads);
    pool.ParallelFor(kThreads, [&h](size_t t) {
      for (size_t i = 0; i < kPerThread; ++i) {
        h.Observe(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  FixedHistogram snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count(), kThreads * kPerThread);
  double expected_sum = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    expected_sum += kPerThread * 1e-6 * static_cast<double>(t + 1);
  }
  EXPECT_NEAR(snapshot.sum(), expected_sum, expected_sum * 1e-9);
  EXPECT_NEAR(snapshot.max(), 1e-6 * kThreads, 1e-12);
  // Reset clears every stripe, not just the calling thread's.
  h.Reset();
  EXPECT_EQ(h.Snapshot().count(), 0u);
}

TEST(LatencyHistogramTest, ConcurrentObserveAndSnapshot) {
  // Scrapes (Snapshot) racing with recorders must be safe and never
  // under-count once recording quiesces.
  LatencyHistogram h(FixedHistogram::Exponential(1e-6, 4, 14));
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) {
      FixedHistogram s = h.Snapshot();
      ASSERT_LE(s.count(), 8u * 2000u);
    }
  });
  {
    ThreadPool pool(8);
    pool.ParallelFor(8, [&h](size_t) {
      for (size_t i = 0; i < 2000; ++i) h.Observe(1e-4);
    });
  }
  stop.store(true);
  scraper.join();
  EXPECT_EQ(h.Snapshot().count(), 8u * 2000u);
}

// ---------- MetricsRegistry ----------

TEST(MetricsRegistryTest, SameNameSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("nous_test_total", "help");
  Counter* b = registry.GetCounter("nous_test_total");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("nous_test_total", "", {{"class", "entity"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(labeled, registry.GetCounter("nous_test_total", "",
                                         {{"class", "entity"}}));
}

TEST(MetricsRegistryTest, ResetAllKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("nous_reset_total");
  Gauge* g = registry.GetGauge("nous_reset_gauge");
  LatencyHistogram* h = registry.GetHistogram("nous_reset_latency_seconds");
  c->Increment(5);
  g->Set(2.0);
  h->Observe(0.5);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Snapshot().count(), 0u);
  // Still usable after reset.
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry registry;
  ThreadPool pool(8);
  constexpr size_t kPerThread = 2000;
  pool.ParallelFor(8, [&registry](size_t t) {
    // Every thread races registration of the same instruments.
    Counter* c = registry.GetCounter("nous_concurrent_total");
    LatencyHistogram* h =
        registry.GetHistogram("nous_concurrent_latency_seconds");
    Counter* labeled = registry.GetCounter(
        "nous_concurrent_labeled_total", "",
        {{"thread", t % 2 == 0 ? "even" : "odd"}});
    for (size_t i = 0; i < kPerThread; ++i) {
      c->Increment();
      labeled->Increment();
      h->Observe(1e-6 * static_cast<double>(i + 1));
    }
  });
  EXPECT_EQ(registry.GetCounter("nous_concurrent_total")->Value(),
            8 * kPerThread);
  EXPECT_EQ(registry.GetHistogram("nous_concurrent_latency_seconds")
                ->Snapshot()
                .count(),
            8 * kPerThread);
  uint64_t even = registry
                      .GetCounter("nous_concurrent_labeled_total", "",
                                  {{"thread", "even"}})
                      ->Value();
  uint64_t odd = registry
                     .GetCounter("nous_concurrent_labeled_total", "",
                                 {{"thread", "odd"}})
                     ->Value();
  EXPECT_EQ(even + odd, 8 * kPerThread);
}

TEST(MetricsRegistryTest, RowsReportValuesAndQuantiles) {
  MetricsRegistry registry;
  registry.GetCounter("nous_rows_total")->Increment(7);
  registry.GetGauge("nous_rows_gauge")->Set(1.25);
  LatencyHistogram* h = registry.GetHistogram("nous_rows_latency_seconds");
  for (int i = 1; i <= 100; ++i) h->Observe(i * 1e-4);
  auto counters = registry.CounterRows();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].name, "nous_rows_total");
  EXPECT_EQ(counters[0].value, 7u);
  auto gauges = registry.GaugeRows();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges[0].value, 1.25);
  auto histograms = registry.HistogramRows();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].count, 100u);
  EXPECT_GT(histograms[0].p90, histograms[0].p50);
  EXPECT_GE(histograms[0].p99, histograms[0].p90);
  EXPECT_LE(histograms[0].p99, histograms[0].max);
}

// ---------- Prometheus exposition ----------

TEST(PrometheusTest, CounterAndGaugeExposition) {
  MetricsRegistry registry;
  registry.GetCounter("nous_expo_total", "Things counted")->Increment(3);
  registry
      .GetCounter("nous_expo_labeled_total", "", {{"class", "entity"}})
      ->Increment();
  registry.GetGauge("nous_expo_gauge", "A level")->Set(0.5);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP nous_expo_total Things counted\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nous_expo_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("nous_expo_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("nous_expo_labeled_total{class=\"entity\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nous_expo_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("nous_expo_gauge 0.5\n"), std::string::npos);
}

TEST(PrometheusTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.GetHistogram(
      "nous_expo_latency_seconds", "Latency", {0.1, 1.0, 10.0});
  h->Observe(0.05);   // le 0.1
  h->Observe(0.5);    // le 1.0
  h->Observe(0.5);    // le 1.0
  h->Observe(100.0);  // +Inf
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE nous_expo_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("nous_expo_latency_seconds_bucket{le=\"0.1\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("nous_expo_latency_seconds_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("nous_expo_latency_seconds_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("nous_expo_latency_seconds_bucket{le=\"+Inf\"} 4\n"),
      std::string::npos);
  EXPECT_NE(text.find("nous_expo_latency_seconds_count 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("nous_expo_latency_seconds_sum 101.05\n"),
            std::string::npos);
}

TEST(PrometheusTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry
      .GetCounter("nous_escape_total", "", {{"q", "say \"hi\"\\now"}})
      ->Increment();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("{q=\"say \\\"hi\\\"\\\\now\"}"), std::string::npos);
}

// ---------- TraceSpan / NOUS_SPAN ----------

TEST(TraceSpanTest, RecordsIntoHistogram) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("nous_span_latency_seconds");
  { TraceSpan span("span", h); }
  FixedHistogram snapshot = h->Snapshot();
  EXPECT_EQ(snapshot.count(), 1u);
  EXPECT_GE(snapshot.sum(), 0.0);
}

TEST(TraceSpanTest, NullHistogramStillTimes) {
  TraceSpan span("untracked", nullptr);
  EXPECT_GE(span.ElapsedSeconds(), 0.0);
}

TEST(TraceSpanTest, MacroRegistersGlobalHistogram) {
  { NOUS_SPAN("obs_test_stage"); }
  { NOUS_SPAN("obs_test_stage"); }
  LatencyHistogram* h = MetricsRegistry::Global().GetHistogram(
      "nous_obs_test_stage_latency_seconds");
  EXPECT_GE(h->Snapshot().count(), 2u);
}

// ---------- Summary printing ----------

TEST(SummaryTest, PrintsCountersAndLatencies) {
  MetricsRegistry registry;
  registry.GetCounter("nous_summary_total")->Increment(9);
  registry.GetHistogram("nous_summary_latency_seconds")->Observe(0.002);
  std::ostringstream os;
  registry.PrintSummary(os);
  std::string out = os.str();
  EXPECT_NE(out.find("metrics summary"), std::string::npos);
  EXPECT_NE(out.find("nous_summary_total"), std::string::npos);
  EXPECT_NE(out.find("nous_summary_latency_seconds"), std::string::npos);
}

}  // namespace
}  // namespace nous
