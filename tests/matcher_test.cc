#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "graph/graph_generator.h"
#include "graph/property_graph.h"
#include "graph/temporal_window.h"
#include "mining/continuous_query.h"
#include "mining/pattern_matcher.h"
#include "mining/subgraph_enum.h"

namespace nous {
namespace {

TypeId NoLabel(uint64_t) { return kInvalidType; }

class MatcherFixture : public ::testing::Test {
 protected:
  MatcherFixture() {
    a_ = g_.GetOrAddVertex("a");
    b_ = g_.GetOrAddVertex("b");
    c_ = g_.GetOrAddVertex("c");
    d_ = g_.GetOrAddVertex("d");
    p_ = g_.predicates().Intern("p");
    q_ = g_.predicates().Intern("q");
    g_.AddEdge(a_, p_, b_, {});
    g_.AddEdge(b_, q_, c_, {});
    g_.AddEdge(a_, p_, d_, {});
    g_.AddEdge(d_, q_, c_, {});
  }
  PropertyGraph g_;
  VertexId a_, b_, c_, d_;
  PredicateId p_, q_;
};

TEST_F(MatcherFixture, SingleEdgePatternFindsAllEdges) {
  Pattern pattern = Pattern::Canonicalize({{0, p_, 1}}, NoLabel);
  auto matches = MatchPattern(g_, pattern);
  EXPECT_EQ(matches.size(), 2u);  // (a,b) and (a,d)
  for (const PatternMatch& m : matches) {
    EXPECT_EQ(m.vertices.size(), 2u);
    EXPECT_EQ(m.edges.size(), 1u);
    EXPECT_EQ(g_.Edge(m.edges[0]).predicate, p_);
  }
}

TEST_F(MatcherFixture, ChainPatternMatchesBothChains) {
  Pattern chain =
      Pattern::Canonicalize({{0, p_, 1}, {1, q_, 2}}, NoLabel);
  auto matches = MatchPattern(g_, chain);
  // a-p->b-q->c and a-p->d-q->c.
  ASSERT_EQ(matches.size(), 2u);
  std::set<VertexId> mids;
  for (const PatternMatch& m : matches) {
    // Vertex list parallels pattern variable positions; the chain's
    // middle variable maps to b or d.
    for (VertexId v : m.vertices) {
      if (v == b_ || v == d_) mids.insert(v);
    }
  }
  EXPECT_EQ(mids, (std::set<VertexId>{b_, d_}));
}

TEST_F(MatcherFixture, NoMatchesForAbsentPredicatePattern) {
  PredicateId r = g_.predicates().Intern("r");
  Pattern pattern = Pattern::Canonicalize({{0, r, 1}}, NoLabel);
  EXPECT_TRUE(MatchPattern(g_, pattern).empty());
}

TEST_F(MatcherFixture, LimitStopsEarly) {
  Pattern pattern = Pattern::Canonicalize({{0, p_, 1}}, NoLabel);
  MatchOptions options;
  options.limit = 1;
  EXPECT_EQ(MatchPattern(g_, pattern, options).size(), 1u);
  EXPECT_EQ(CountPatternMatches(g_, pattern, options), 1u);
}

TEST_F(MatcherFixture, TypeConstraintsFilter) {
  g_.SetVertexType(a_, g_.types().Intern("company"));
  g_.SetVertexType(b_, g_.types().Intern("product"));
  g_.SetVertexType(d_, g_.types().Intern("company"));
  TypeId company = *g_.types().Lookup("company");
  TypeId product = *g_.types().Lookup("product");
  auto label = [&](uint64_t v) -> TypeId {
    return v == 0 ? company : product;
  };
  // (company)-p->(product): only a-p->b qualifies (d is a company).
  Pattern typed = Pattern::Canonicalize({{0, p_, 1}}, label);
  MatchOptions options;
  options.use_vertex_types = true;
  auto matches = MatchPattern(g_, typed, options);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(std::count(matches[0].vertices.begin(),
                         matches[0].vertices.end(), b_) == 1);
}

TEST_F(MatcherFixture, InjectivityRejectsVertexReuse) {
  // Pattern (?0)-p->(?1), (?0)-p->(?2) requires distinct ?1 != ?2.
  Pattern star = Pattern::Canonicalize({{0, p_, 1}, {0, p_, 2}}, NoLabel);
  auto matches = MatchPattern(g_, star);
  // Assignments: (a; b,d) and (a; d,b) — automorphic pair, but never
  // (a; b,b).
  EXPECT_EQ(matches.size(), 2u);
  for (const PatternMatch& m : matches) {
    std::set<VertexId> distinct(m.vertices.begin(), m.vertices.end());
    EXPECT_EQ(distinct.size(), m.vertices.size());
  }
}

TEST_F(MatcherFixture, PinRestrictsToEdge) {
  Pattern chain =
      Pattern::Canonicalize({{0, p_, 1}, {1, q_, 2}}, NoLabel);
  // Pin the q-position edge to (d,q,c): only the d-chain matches.
  auto dq = g_.FindEdge(d_, q_, c_);
  ASSERT_TRUE(dq.has_value());
  int q_position = chain.edges()[0].pred == q_ ? 0 : 1;
  MatchOptions options;
  options.pin_pattern_edge = q_position;
  options.pin_edge = *dq;
  auto matches = MatchPattern(g_, chain, options);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_NE(std::find(matches[0].vertices.begin(),
                      matches[0].vertices.end(), d_),
            matches[0].vertices.end());
}

/// The matcher must agree with exhaustive subset enumeration on random
/// graphs: the set of matched edge-subsets for a pattern equals the
/// enumerated subsets canonicalizing to that pattern.
class MatcherEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherEquivalenceTest, AgreesWithEnumeration) {
  StreamConfig config;
  config.num_edges = 150;
  config.num_entities = 25;
  config.num_predicates = 3;
  config.seed = GetParam();
  PropertyGraph g;
  for (const TimedTriple& t : GenerateStream(config)) g.AddTriple(t);

  // Target pattern: 2-edge chain with the two most common predicates.
  Pattern chain = Pattern::Canonicalize({{0, 0, 1}, {1, 1, 2}}, NoLabel);

  // Ground truth via enumeration.
  std::set<std::vector<EdgeId>> expected;
  MinerConfig mc;
  mc.max_edges = 2;
  g.ForEachEdge([&](EdgeId anchor, const EdgeRecord&) {
    EnumerateConnectedSubsets(
        g, anchor, mc, /*older_only=*/true,
        [&](const std::vector<EdgeId>& subset) {
          if (subset.size() != 2) return;
          if (CanonicalizeEdgeSet(g, subset, false) == chain) {
            expected.insert(subset);
          }
        });
  });

  std::set<std::vector<EdgeId>> found;
  for (const PatternMatch& m : MatchPattern(g, chain)) {
    std::vector<EdgeId> sorted = m.edges;
    std::sort(sorted.begin(), sorted.end());
    found.insert(sorted);
  }
  EXPECT_EQ(found, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherEquivalenceTest,
                         ::testing::Values(3, 5, 8, 13));

// ---------- Continuous detection ----------

TimedTriple Tr(const std::string& s, const std::string& p,
               const std::string& o, Timestamp ts) {
  TimedTriple t;
  t.triple = {s, p, o};
  t.timestamp = ts;
  return t;
}

TEST(ContinuousQueryTest, FiresWhenPatternCompletes) {
  PropertyGraph g;
  TemporalWindow w(&g, 0);
  ContinuousPatternDetector detector;
  w.AddListener(&detector);
  PredicateId acq = g.predicates().Intern("acquired");
  PredicateId inv = g.predicates().Intern("investsIn");
  Pattern star = Pattern::Canonicalize({{0, acq, 1}, {0, inv, 2}},
                                       NoLabel);
  std::vector<ContinuousMatch> events;
  int id = detector.RegisterPattern(
      star, [&events](const ContinuousMatch& m) { events.push_back(m); });

  w.Add(Tr("x", "acquired", "y", 1));
  EXPECT_TRUE(events.empty());  // pattern incomplete
  w.Add(Tr("x", "investsIn", "z", 2));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].query_id, id);
  EXPECT_EQ(events[0].completed_at, 2);
  EXPECT_EQ(detector.NumActiveMatches(id), 1u);
  EXPECT_EQ(detector.TotalMatches(id), 1u);
}

TEST(ContinuousQueryTest, EachMatchFiresExactlyOnce) {
  PropertyGraph g;
  TemporalWindow w(&g, 0);
  ContinuousPatternDetector detector;
  w.AddListener(&detector);
  PredicateId p = g.predicates().Intern("p");
  Pattern edge = Pattern::Canonicalize({{0, p, 1}}, NoLabel);
  int id = detector.RegisterPattern(edge);
  for (int i = 0; i < 5; ++i) {
    w.Add(Tr("s" + std::to_string(i), "p", "o" + std::to_string(i), i));
  }
  EXPECT_EQ(detector.TotalMatches(id), 5u);
  EXPECT_EQ(detector.NumActiveMatches(id), 5u);
}

TEST(ContinuousQueryTest, ExpiryRetractsActiveMatches) {
  PropertyGraph g;
  TemporalWindow w(&g, 2);  // tiny window
  ContinuousPatternDetector detector;
  w.AddListener(&detector);
  PredicateId acq = g.predicates().Intern("acquired");
  PredicateId inv = g.predicates().Intern("investsIn");
  Pattern star = Pattern::Canonicalize({{0, acq, 1}, {0, inv, 2}},
                                       NoLabel);
  int id = detector.RegisterPattern(star);
  w.Add(Tr("x", "acquired", "y", 1));
  w.Add(Tr("x", "investsIn", "z", 2));
  EXPECT_EQ(detector.NumActiveMatches(id), 1u);
  // Third edge expires the acquired edge -> match retracts.
  w.Add(Tr("q", "acquired", "r", 3));
  EXPECT_EQ(detector.NumActiveMatches(id), 0u);
  EXPECT_EQ(detector.TotalMatches(id), 1u);  // history remains
}

TEST(ContinuousQueryTest, MatchAgreesWithBatchMatcher) {
  // After any stream prefix, active matches == batch MatchPattern
  // results (up to automorphism, compared as edge sets).
  PropertyGraph g;
  TemporalWindow w(&g, 60);
  ContinuousPatternDetector detector;
  w.AddListener(&detector);
  Pattern chain = Pattern::Canonicalize({{0, 0, 1}, {1, 1, 2}}, NoLabel);
  g.predicates().Intern("p0");
  g.predicates().Intern("p1");
  int id = detector.RegisterPattern(chain);

  StreamConfig config;
  config.num_edges = 150;
  config.num_entities = 20;
  config.num_predicates = 2;
  config.seed = 4;
  auto stream = GenerateStream(config);
  for (size_t i = 0; i < stream.size(); ++i) {
    w.Add(stream[i]);
    if (i % 37 != 0) continue;
    std::set<std::vector<EdgeId>> active;
    for (const PatternMatch& m : detector.ActiveMatches(id)) {
      std::vector<EdgeId> sorted = m.edges;
      std::sort(sorted.begin(), sorted.end());
      active.insert(sorted);
    }
    std::set<std::vector<EdgeId>> batch;
    for (const PatternMatch& m : MatchPattern(g, chain)) {
      std::vector<EdgeId> sorted = m.edges;
      std::sort(sorted.begin(), sorted.end());
      batch.insert(sorted);
    }
    ASSERT_EQ(active, batch) << "divergence at edge " << i;
  }
}

TEST(ContinuousQueryTest, MultipleQueriesIndependent) {
  PropertyGraph g;
  TemporalWindow w(&g, 0);
  ContinuousPatternDetector detector;
  w.AddListener(&detector);
  PredicateId p = g.predicates().Intern("p");
  PredicateId q = g.predicates().Intern("q");
  int idp = detector.RegisterPattern(
      Pattern::Canonicalize({{0, p, 1}}, NoLabel));
  int idq = detector.RegisterPattern(
      Pattern::Canonicalize({{0, q, 1}}, NoLabel));
  w.Add(Tr("a", "p", "b", 1));
  w.Add(Tr("a", "p", "c", 2));
  w.Add(Tr("a", "q", "d", 3));
  EXPECT_EQ(detector.TotalMatches(idp), 2u);
  EXPECT_EQ(detector.TotalMatches(idq), 1u);
  EXPECT_EQ(detector.TotalMatches(99), 0u);
}

}  // namespace
}  // namespace nous
