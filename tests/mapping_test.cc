#include <gtest/gtest.h>

#include "kb/ontology.h"
#include "mapping/distant_supervision.h"
#include "mapping/predicate_mapper.h"

namespace nous {
namespace {

class MapperFixture : public ::testing::Test {
 protected:
  MapperFixture() : ontology_(Ontology::DroneDefault()),
                    mapper_(&ontology_) {
    mapper_.LoadDefaultSeeds();
  }
  Ontology ontology_;
  PredicateMapper mapper_;
};

TEST_F(MapperFixture, SeedPhrasesMap) {
  MappingDecision d = mapper_.Map("acquire", "company", "company");
  ASSERT_TRUE(d.mapped);
  EXPECT_EQ(d.predicate, "acquired");
  EXPECT_GT(d.score, 0.5);

  d = mapper_.Map("partner_with", "company", "company");
  ASSERT_TRUE(d.mapped);
  EXPECT_EQ(d.predicate, "partneredWith");

  d = mapper_.Map("headquarter_in", "company", "city");
  ASSERT_TRUE(d.mapped);
  EXPECT_EQ(d.predicate, "headquarteredIn");
}

TEST_F(MapperFixture, UnknownPhraseUnmapped) {
  EXPECT_FALSE(mapper_.Map("praise", "company", "company").mapped);
  EXPECT_FALSE(mapper_.Map("", "company", "company").mapped);
}

TEST_F(MapperFixture, TypeGateRejectsIncompatibleArguments) {
  // "acquire" requires company x company; a person object fails.
  EXPECT_FALSE(mapper_.Map("acquire", "company", "person").mapped);
  // Subtypes pass: partneredWith wants organizations, agency is one.
  EXPECT_TRUE(mapper_.Map("partner_with", "company", "agency").mapped);
}

TEST_F(MapperFixture, GenericTypesPassPermissively) {
  EXPECT_TRUE(mapper_.Map("acquire", "", "").mapped);
  EXPECT_TRUE(mapper_.Map("acquire", "thing", "thing").mapped);
  EXPECT_TRUE(mapper_.Map("acquire", "unknown_ner_type", "company").mapped);
}

TEST_F(MapperFixture, CaseInsensitivePhrases) {
  EXPECT_TRUE(mapper_.Map("Acquire", "company", "company").mapped);
}

TEST_F(MapperFixture, AmbiguousEvidenceSplitsScore) {
  // Give "grab" evidence for two predicates; normalized score must not
  // clear the 50-50 threshold ambiguity when min_map_score > 0.5.
  mapper_.AddEvidence("acquired", "grab", 1.0);
  mapper_.AddEvidence("investsIn", "grab", 1.0);
  MappingDecision d = mapper_.Map("grab", "company", "company");
  // Both at 0.5 >= default min 0.3: best wins; score exactly 0.5.
  EXPECT_TRUE(d.mapped);
  EXPECT_DOUBLE_EQ(d.score, 0.5);
  // Tilt the evidence: dominant predicate wins decisively.
  mapper_.AddEvidence("acquired", "grab", 3.0);
  d = mapper_.Map("grab", "company", "company");
  EXPECT_EQ(d.predicate, "acquired");
  EXPECT_GT(d.score, 0.75);
}

TEST_F(MapperFixture, EvidenceWeightAccumulates) {
  EXPECT_DOUBLE_EQ(mapper_.EvidenceWeight("acquired", "acquire"), 1.0);
  mapper_.AddEvidence("acquired", "acquire", 2.5);
  EXPECT_DOUBLE_EQ(mapper_.EvidenceWeight("acquired", "acquire"), 3.5);
  EXPECT_DOUBLE_EQ(mapper_.EvidenceWeight("acquired", "nope"), 0.0);
}

// ---------- Distant supervision ----------

TEST(DistantSupervisionTest, AlignedExamplesTeachNewPhrase) {
  Ontology ontology = Ontology::DroneDefault();
  PredicateMapper mapper(&ontology);
  mapper.LoadDefaultSeeds();
  ASSERT_FALSE(mapper.Map("snap_up", "company", "company").mapped);

  std::vector<DsExample> examples;
  for (int i = 0; i < 5; ++i) {
    examples.push_back({"snap_up", "company", "company", "acquired"});
  }
  DistantSupervisionTrainer trainer;
  DsTrainResult result = trainer.Train(examples, &mapper);
  EXPECT_EQ(result.aligned_used, 5u);
  MappingDecision d = mapper.Map("snap_up", "company", "company");
  ASSERT_TRUE(d.mapped);
  EXPECT_EQ(d.predicate, "acquired");
}

TEST(DistantSupervisionTest, SemiSupervisedPromotionAddsWeight) {
  Ontology ontology = Ontology::DroneDefault();
  PredicateMapper mapper(&ontology);
  mapper.LoadDefaultSeeds();
  double before = mapper.EvidenceWeight("acquired", "acquire");

  // Unaligned examples of a confidently mapped phrase get promoted.
  std::vector<DsExample> examples;
  for (int i = 0; i < 4; ++i) {
    examples.push_back({"acquire", "company", "company", ""});
  }
  DistantSupervisionTrainer trainer;
  DsTrainResult result = trainer.Train(examples, &mapper);
  EXPECT_GT(result.promoted, 0u);
  EXPECT_GT(mapper.EvidenceWeight("acquired", "acquire"), before);
}

TEST(DistantSupervisionTest, LowConfidencePhrasesNotPromoted) {
  Ontology ontology = Ontology::DroneDefault();
  PredicateMapper mapper(&ontology);
  // Ambiguous 50/50 phrase below the 0.6 promote threshold.
  mapper.AddEvidence("acquired", "grab", 1.0);
  mapper.AddEvidence("investsIn", "grab", 1.0);
  std::vector<DsExample> examples = {
      {"grab", "company", "company", ""},
      {"grab", "company", "company", ""},
  };
  DistantSupervisionTrainer trainer;
  DsTrainResult result = trainer.Train(examples, &mapper);
  EXPECT_EQ(result.promoted, 0u);
}

TEST(DistantSupervisionTest, ConflictingAlignmentsResolveByMajority) {
  Ontology ontology = Ontology::DroneDefault();
  PredicateMapper mapper(&ontology);
  std::vector<DsExample> examples;
  for (int i = 0; i < 8; ++i) {
    examples.push_back({"pick_up", "company", "company", "acquired"});
  }
  for (int i = 0; i < 2; ++i) {
    examples.push_back({"pick_up", "company", "company", "investsIn"});
  }
  DistantSupervisionTrainer trainer;
  trainer.Train(examples, &mapper);
  MappingDecision d = mapper.Map("pick_up", "company", "company");
  ASSERT_TRUE(d.mapped);
  EXPECT_EQ(d.predicate, "acquired");
  EXPECT_NEAR(d.score, 0.8, 0.1);
}

}  // namespace
}  // namespace nous
