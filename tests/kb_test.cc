#include <gtest/gtest.h>

#include "corpus/world_model.h"
#include "kb/curated_kb.h"
#include "kb/kb_generator.h"
#include "kb/ontology.h"

namespace nous {
namespace {

// ---------- Ontology ----------

TEST(OntologyTest, SubtypeChainResolves) {
  Ontology o = Ontology::DroneDefault();
  EXPECT_TRUE(o.IsSubtypeOf("company", "organization"));
  EXPECT_TRUE(o.IsSubtypeOf("company", "thing"));
  EXPECT_TRUE(o.IsSubtypeOf("company", "company"));
  EXPECT_FALSE(o.IsSubtypeOf("company", "person"));
  EXPECT_FALSE(o.IsSubtypeOf("unknown_type", "thing"));
}

TEST(OntologyTest, ParentLookup) {
  Ontology o = Ontology::DroneDefault();
  EXPECT_EQ(o.ParentOf("city"), "location");
  EXPECT_EQ(o.ParentOf("thing"), "");
  EXPECT_EQ(o.ParentOf("never_added"), "");
}

TEST(OntologyTest, PredicateLookup) {
  Ontology o = Ontology::DroneDefault();
  auto schema = o.FindPredicate("acquired");
  ASSERT_TRUE(schema.has_value());
  EXPECT_EQ(schema->domain_type, "company");
  EXPECT_EQ(schema->range_type, "company");
  EXPECT_FALSE(o.FindPredicate("bogus").has_value());
}

TEST(OntologyTest, SignatureMatchingHonorsSubtypes) {
  Ontology o = Ontology::DroneDefault();
  // partneredWith wants organization x organization; company qualifies.
  EXPECT_TRUE(o.SignatureMatches("partneredWith", "company", "agency"));
  EXPECT_FALSE(o.SignatureMatches("partneredWith", "person", "company"));
  EXPECT_FALSE(o.SignatureMatches("acquired", "company", "city"));
  EXPECT_FALSE(o.SignatureMatches("bogus", "company", "company"));
}

TEST(OntologyTest, ReAddingTypeUpdatesParent) {
  Ontology o;
  o.AddType("thing", "");
  o.AddType("a", "thing");
  o.AddType("b", "a");
  EXPECT_TRUE(o.IsSubtypeOf("b", "thing"));
  o.AddType("b", "thing");
  EXPECT_TRUE(o.IsSubtypeOf("b", "thing"));
  EXPECT_FALSE(o.IsSubtypeOf("b", "a"));
}

// ---------- CuratedKb ----------

TEST(CuratedKbTest, CandidatesByAliasCaseInsensitive) {
  CuratedKb kb(Ontology::DroneDefault());
  KbEntity e;
  e.name = "DJI";
  e.aliases = {"DJI Technology"};
  e.type_name = "company";
  size_t id = kb.AddEntity(std::move(e));
  EXPECT_EQ(kb.Candidates("dji").size(), 1u);
  EXPECT_EQ(kb.Candidates("dji technology")[0], id);
  EXPECT_TRUE(kb.Candidates("unknown").empty());
  ASSERT_TRUE(kb.FindByName("DJI").has_value());
  EXPECT_FALSE(kb.FindByName("dji").has_value());  // exact canonical
}

TEST(CuratedKbTest, SharedAliasYieldsMultipleCandidates) {
  CuratedKb kb(Ontology::DroneDefault());
  KbEntity a;
  a.name = "Phoenix Labs";
  a.aliases = {"Phoenix"};
  kb.AddEntity(std::move(a));
  KbEntity b;
  b.name = "Phoenix";
  kb.AddEntity(std::move(b));
  EXPECT_EQ(kb.Candidates("Phoenix").size(), 2u);
}

TEST(CuratedKbTest, SurfaceFormsIncludeAliases) {
  CuratedKb kb(Ontology::DroneDefault());
  KbEntity e;
  e.name = "FAA";
  e.aliases = {"Federal Aviation Administration"};
  e.ner_type = EntityType::kOrganization;
  kb.AddEntity(std::move(e));
  auto forms = kb.AllSurfaceForms();
  ASSERT_EQ(forms.size(), 2u);
  EXPECT_EQ(forms[1].first, "Federal Aviation Administration");
}

// ---------- KbGenerator ----------

class KbCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(KbCoverageTest, EntityCoverageApproximatelyHonored) {
  DroneWorldConfig wc;
  wc.num_companies = 20;
  wc.num_people = 15;
  wc.num_products = 10;
  wc.num_events = 80;
  WorldModel world = WorldModel::BuildDroneWorld(wc);
  KbCoverage coverage;
  coverage.entity_coverage = GetParam();
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  double actual = static_cast<double>(kb.entities().size()) /
                  static_cast<double>(world.entities().size());
  EXPECT_NEAR(actual, GetParam(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Coverages, KbCoverageTest,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0));

TEST(KbGeneratorTest, PopularEntitiesCuratedFirst) {
  DroneWorldConfig wc;
  wc.num_companies = 20;
  wc.num_events = 150;
  WorldModel world = WorldModel::BuildDroneWorld(wc);
  KbCoverage coverage;
  coverage.entity_coverage = 0.3;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  // DJI participates in many facts; it should make the 30% cut.
  EXPECT_TRUE(kb.FindByName("DJI").has_value());
  // Curated priors reflect popularity (all >= 1).
  for (const KbEntity& e : kb.entities()) {
    EXPECT_GE(e.prior, 1.0);
  }
}

TEST(KbGeneratorTest, OnlyStaticFactsBetweenCoveredEndpoints) {
  DroneWorldConfig wc;
  wc.num_events = 50;
  WorldModel world = WorldModel::BuildDroneWorld(wc);
  KbCoverage coverage;
  coverage.entity_coverage = 0.5;
  coverage.fact_coverage = 1.0;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  for (const KbFact& f : kb.facts()) {
    ASSERT_LT(f.subject, kb.entities().size());
    ASSERT_LT(f.object, kb.entities().size());
    // Events are never curated.
    EXPECT_TRUE(f.predicate == "headquarteredIn" ||
                f.predicate == "ceoOf" || f.predicate == "worksFor" ||
                f.predicate == "manufactures" || f.predicate == "regulates")
        << f.predicate;
  }
}

TEST(KbGeneratorTest, ZeroCoverageGivesEmptyKb) {
  WorldModel world = WorldModel::BuildDroneWorld(DroneWorldConfig{});
  KbCoverage coverage;
  coverage.entity_coverage = 0.0;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  EXPECT_TRUE(kb.entities().empty());
  EXPECT_TRUE(kb.facts().empty());
}

}  // namespace
}  // namespace nous
