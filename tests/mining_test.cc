#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "graph/graph_generator.h"
#include "graph/property_graph.h"
#include "graph/temporal_window.h"
#include "mining/arabesque_sim.h"
#include "mining/gspan.h"
#include "mining/pattern.h"
#include "mining/streaming_miner.h"
#include "mining/subgraph_enum.h"

namespace nous {
namespace {

TypeId NoLabel(uint64_t) { return kInvalidType; }

// ---------- Pattern canonicalization ----------

TEST(PatternTest, SingleEdgeCanonicalForm) {
  Pattern p = Pattern::Canonicalize({{7, 3, 9}}, NoLabel);
  ASSERT_EQ(p.num_edges(), 1u);
  EXPECT_EQ(p.edges()[0].src, 0);
  EXPECT_EQ(p.edges()[0].dst, 1);
  EXPECT_EQ(p.edges()[0].pred, 3u);
  EXPECT_EQ(p.num_vertices(), 2u);
}

TEST(PatternTest, SelfLoopCanonicalForm) {
  Pattern p = Pattern::Canonicalize({{5, 2, 5}}, NoLabel);
  EXPECT_EQ(p.edges()[0].src, 0);
  EXPECT_EQ(p.edges()[0].dst, 0);
  EXPECT_EQ(p.num_vertices(), 1u);
}

TEST(PatternTest, InvariantUnderVertexRelabeling) {
  // Star: x -p1-> a, x -p2-> b with different concrete ids.
  Pattern p1 = Pattern::Canonicalize({{1, 10, 2}, {1, 20, 3}}, NoLabel);
  Pattern p2 = Pattern::Canonicalize({{99, 20, 7}, {99, 10, 42}}, NoLabel);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(PatternHash()(p1), PatternHash()(p2));
}

TEST(PatternTest, DirectionMatters) {
  Pattern chain = Pattern::Canonicalize({{1, 5, 2}, {2, 5, 3}}, NoLabel);
  Pattern converge = Pattern::Canonicalize({{1, 5, 2}, {3, 5, 2}}, NoLabel);
  EXPECT_FALSE(chain == converge);
}

TEST(PatternTest, VertexLabelsDistinguishPatterns) {
  auto label_a = [](uint64_t v) -> TypeId { return v == 1 ? 7u : 8u; };
  auto label_b = [](uint64_t) -> TypeId { return 7u; };
  Pattern p1 = Pattern::Canonicalize({{1, 5, 2}}, label_a);
  Pattern p2 = Pattern::Canonicalize({{1, 5, 2}}, label_b);
  EXPECT_FALSE(p1 == p2);
}

TEST(PatternTest, ContainsSubPattern) {
  Pattern star =
      Pattern::Canonicalize({{1, 10, 2}, {1, 20, 3}}, NoLabel);
  Pattern edge10 = Pattern::Canonicalize({{1, 10, 2}}, NoLabel);
  Pattern edge30 = Pattern::Canonicalize({{1, 30, 2}}, NoLabel);
  EXPECT_TRUE(star.Contains(edge10));
  EXPECT_FALSE(star.Contains(edge30));
  EXPECT_FALSE(edge10.Contains(star));
  EXPECT_TRUE(star.Contains(star));
}

TEST(PatternTest, SubPatternsAreConnectedAndSmaller) {
  Pattern chain =
      Pattern::Canonicalize({{1, 10, 2}, {2, 20, 3}, {3, 30, 4}}, NoLabel);
  auto subs = chain.SubPatterns();
  // Dropping the middle edge disconnects; only the two end-drops work.
  ASSERT_EQ(subs.size(), 2u);
  for (const Pattern& sub : subs) {
    EXPECT_EQ(sub.num_edges(), 2u);
    EXPECT_TRUE(chain.Contains(sub));
  }
}

TEST(PatternTest, ToStringRendersPredicateNames) {
  Dictionary preds;
  PredicateId acquired = preds.Intern("acquired");
  Pattern p = Pattern::Canonicalize({{1, acquired, 2}}, NoLabel);
  EXPECT_EQ(p.ToString(preds), "(?0)-[acquired]->(?1)");
}

// ---------- Enumeration ----------

TEST(SubgraphEnumTest, EnumeratesSubsetsContainingAnchor) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  VertexId c = g.GetOrAddVertex("c");
  PredicateId p = g.predicates().Intern("p");
  EdgeId e0 = g.AddEdge(a, p, b, {});
  EdgeId e1 = g.AddEdge(b, p, c, {});
  EdgeId e2 = g.AddEdge(a, p, c, {});
  MinerConfig config;
  config.max_edges = 3;
  std::vector<std::vector<EdgeId>> found;
  EnumerateConnectedSubsets(g, e2, config, /*older_only=*/true,
                            [&](const std::vector<EdgeId>& s) {
                              found.push_back(s);
                            });
  // {e2}, {e2,e0}, {e2,e1}, {e2,e0,e1} — all connected, all older.
  EXPECT_EQ(found.size(), 4u);
  for (const auto& subset : found) {
    EXPECT_NE(std::find(subset.begin(), subset.end(), e2), subset.end());
  }
  (void)e0;
  (void)e1;
}

TEST(SubgraphEnumTest, OlderOnlySkipsNewerEdges) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  VertexId c = g.GetOrAddVertex("c");
  PredicateId p = g.predicates().Intern("p");
  EdgeId e0 = g.AddEdge(a, p, b, {});
  g.AddEdge(b, p, c, {});  // newer than anchor
  MinerConfig config;
  config.max_edges = 2;
  size_t count = 0;
  EnumerateConnectedSubsets(g, e0, config, true,
                            [&](const std::vector<EdgeId>&) { ++count; });
  EXPECT_EQ(count, 1u);  // only {e0}
}

// ---------- Streaming miner ----------

TimedTriple Tr(const std::string& s, const std::string& p,
               const std::string& o, Timestamp ts) {
  TimedTriple t;
  t.triple = {s, p, o};
  t.timestamp = ts;
  return t;
}

TEST(StreamingMinerTest, CountsSingleEdgePatternSupport) {
  PropertyGraph g;
  TemporalWindow w(&g, 0);
  MinerConfig config;
  config.min_support = 2;
  StreamingMiner miner(config);
  w.AddListener(&miner);
  w.Add(Tr("a", "likes", "b", 0));
  w.Add(Tr("c", "likes", "d", 1));
  w.Add(Tr("e", "hates", "f", 2));
  auto frequent = miner.FrequentPatterns();
  ASSERT_EQ(frequent.size(), 1u);  // only "likes" reaches support 2
  EXPECT_EQ(frequent[0].support, 2u);
  EXPECT_EQ(frequent[0].embeddings, 2u);
}

TEST(StreamingMinerTest, MniSupportNotEmbeddingCount) {
  PropertyGraph g;
  TemporalWindow w(&g, 0);
  MinerConfig config;
  config.min_support = 3;
  StreamingMiner miner(config);
  w.AddListener(&miner);
  // Same subject fans out to 5 objects: 5 embeddings but subject
  // position has 1 distinct vertex -> MNI support 1.
  for (int i = 0; i < 5; ++i) {
    w.Add(Tr("hubsub", "p", "o" + std::to_string(i), i));
  }
  EXPECT_TRUE(miner.FrequentPatterns().empty());
  Pattern p = Pattern::Canonicalize({{0, 0, 1}}, NoLabel);
  EXPECT_EQ(miner.SupportOf(p), 1u);
}

TEST(StreamingMinerTest, ExpiryDecrementsSupport) {
  PropertyGraph g;
  TemporalWindow w(&g, 2);  // tiny window
  MinerConfig config;
  config.min_support = 1;
  StreamingMiner miner(config);
  w.AddListener(&miner);
  w.Add(Tr("a", "p", "b", 0));
  w.Add(Tr("c", "p", "d", 1));
  EXPECT_EQ(miner.FrequentPatterns()[0].support, 2u);
  w.Add(Tr("e", "q", "f", 2));  // expires (a,p,b)
  auto frequent = miner.FrequentPatterns();
  std::map<size_t, size_t> support_by_edges;
  for (const auto& f : frequent) {
    support_by_edges[f.pattern.edges()[0].pred] = f.support;
  }
  PredicateId p_id = *g.predicates().Lookup("p");
  PredicateId q_id = *g.predicates().Lookup("q");
  EXPECT_EQ(support_by_edges[p_id], 1u);
  EXPECT_EQ(support_by_edges[q_id], 1u);
  EXPECT_GT(miner.total_embeddings_removed(), 0u);
}

TEST(StreamingMinerTest, TwoEdgePatternsFromPlantedStream) {
  PropertyGraph g;
  TemporalWindow w(&g, 0);
  MinerConfig config;
  config.max_edges = 2;
  config.min_support = 5;
  StreamingMiner miner(config);
  w.AddListener(&miner);
  PlantedStreamConfig pc;
  pc.num_events = 400;
  pc.noise_entities = 200;
  pc.patterns = {{"star", {"pa", "pb"}, 0.15}};
  for (const TimedTriple& t : GeneratePlantedStream(pc)) w.Add(t);
  // The planted star (x -pa-> hub0, x -pb-> hub1) must be frequent.
  PredicateId pa = *g.predicates().Lookup("pa");
  PredicateId pb = *g.predicates().Lookup("pb");
  Pattern star = Pattern::Canonicalize(
      {{0, pa, 1}, {0, pb, 2}}, NoLabel);
  EXPECT_GE(miner.SupportOf(star), config.min_support);
  // And it must appear in the frequent report.
  bool found = false;
  for (const auto& stats : miner.FrequentPatterns()) {
    if (stats.pattern == star) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(StreamingMinerTest, ChurnTracksDrift) {
  PropertyGraph g;
  TemporalWindow w(&g, 300);
  MinerConfig config;
  config.max_edges = 2;
  config.min_support = 5;
  StreamingMiner miner(config);
  w.AddListener(&miner);
  PlantedStreamConfig phase1;
  phase1.num_events = 400;
  phase1.patterns = {{"one", {"pa", "pb"}, 0.2}};
  PlantedStreamConfig phase2 = phase1;
  phase2.patterns = {{"two", {"pc", "pd"}, 0.2}};
  auto stream = GenerateDriftStream(phase1, phase2);
  // First phase.
  for (size_t i = 0; i < 400; ++i) w.Add(stream[i]);
  auto churn1 = miner.TakeChurn();
  EXPECT_FALSE(churn1.became_frequent.empty());
  EXPECT_TRUE(churn1.became_infrequent.empty());
  // Second phase: pattern one ages out of the window, two appears.
  for (size_t i = 400; i < stream.size(); ++i) w.Add(stream[i]);
  auto churn2 = miner.TakeChurn();
  EXPECT_FALSE(churn2.became_frequent.empty());
  EXPECT_FALSE(churn2.became_infrequent.empty());
}

TEST(StreamingMinerTest, ClosednessFiltersSubsumedPatterns) {
  PropertyGraph g;
  TemporalWindow w(&g, 0);
  MinerConfig config;
  config.max_edges = 2;
  config.min_support = 3;
  StreamingMiner miner(config);
  w.AddListener(&miner);
  // Every pa edge is accompanied by a pb edge from the same subject:
  // the 1-edge pa pattern has the same support as the 2-edge star, so
  // only the star (and the equally-supported pb edge case) is closed.
  for (int i = 0; i < 5; ++i) {
    std::string x = "x" + std::to_string(i);
    w.Add(Tr(x, "pa", "ya" + std::to_string(i), 2 * i));
    w.Add(Tr(x, "pb", "yb" + std::to_string(i), 2 * i + 1));
  }
  auto frequent = miner.FrequentPatterns();
  auto closed = miner.ClosedFrequentPatterns();
  EXPECT_LT(closed.size(), frequent.size());
  // The 2-edge star must be closed.
  PredicateId pa = *g.predicates().Lookup("pa");
  PredicateId pb = *g.predicates().Lookup("pb");
  Pattern star = Pattern::Canonicalize({{0, pa, 1}, {0, pb, 2}}, NoLabel);
  bool star_closed = false;
  for (const auto& stats : closed) {
    if (stats.pattern == star) star_closed = true;
  }
  EXPECT_TRUE(star_closed);
  // The 1-edge pa pattern must NOT be closed (same support as star).
  Pattern pa_edge = Pattern::Canonicalize({{0, pa, 1}}, NoLabel);
  for (const auto& stats : closed) {
    EXPECT_FALSE(stats.pattern == pa_edge);
  }
}

// ---------- Result equivalence: streaming == re-enumeration ----------

std::map<std::string, std::pair<size_t, size_t>> ToMap(
    const std::vector<PatternStats>& stats, const Dictionary& preds) {
  std::map<std::string, std::pair<size_t, size_t>> result;
  for (const PatternStats& s : stats) {
    result[s.pattern.ToString(preds)] = {s.support, s.embeddings};
  }
  return result;
}

struct EquivalenceCase {
  uint64_t seed;
  size_t max_edges;
  size_t min_support;
  bool use_types;
};

class MinerEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(MinerEquivalenceTest, StreamingMatchesBothBaselines) {
  const EquivalenceCase& param = GetParam();
  PropertyGraph g;
  TemporalWindow w(&g, 250);  // forces expiry churn
  MinerConfig config;
  config.max_edges = param.max_edges;
  config.min_support = param.min_support;
  config.use_vertex_types = param.use_types;
  StreamingMiner miner(config);
  w.AddListener(&miner);

  StreamConfig sc;
  sc.num_edges = 400;
  sc.num_entities = 60;
  sc.num_predicates = 4;
  sc.seed = param.seed;
  for (const TimedTriple& t : GenerateStream(sc)) w.Add(t);

  auto streaming = ToMap(miner.FrequentPatterns(), g.predicates());
  auto arabesque = ToMap(MineArabesqueSim(g, config), g.predicates());
  auto gspan = ToMap(MineGspan(g, config), g.predicates());
  EXPECT_EQ(streaming, arabesque);
  EXPECT_EQ(streaming, gspan);
  EXPECT_FALSE(streaming.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MinerEquivalenceTest,
    ::testing::Values(EquivalenceCase{1, 2, 3, false},
                      EquivalenceCase{2, 2, 5, false},
                      EquivalenceCase{3, 2, 3, true},
                      EquivalenceCase{4, 3, 8, false},
                      EquivalenceCase{5, 3, 10, true},
                      EquivalenceCase{6, 1, 2, false}));

TEST(MinerEquivalenceTest, EquivalenceAfterFullExpiry) {
  PropertyGraph g;
  TemporalWindow w(&g, 50);
  MinerConfig config;
  config.min_support = 2;
  StreamingMiner miner(config);
  w.AddListener(&miner);
  StreamConfig sc;
  sc.num_edges = 300;  // 6x the window: heavy churn
  sc.num_entities = 25;
  sc.num_predicates = 3;
  for (const TimedTriple& t : GenerateStream(sc)) w.Add(t);
  auto streaming = ToMap(miner.FrequentPatterns(), g.predicates());
  auto arabesque = ToMap(MineArabesqueSim(g, config), g.predicates());
  EXPECT_EQ(streaming, arabesque);
  EXPECT_EQ(miner.num_live_embeddings(),
            miner.total_embeddings_created() -
                miner.total_embeddings_removed());
}

// ---------- Baselines directly ----------

TEST(ArabesqueSimTest, CountsEmbeddingsOnStaticGraph) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  VertexId c = g.GetOrAddVertex("c");
  PredicateId p = g.predicates().Intern("p");
  g.AddEdge(a, p, b, {});
  g.AddEdge(b, p, c, {});
  MinerConfig config;
  config.max_edges = 2;
  config.min_support = 1;
  size_t embeddings = 0;
  auto results = MineArabesqueSim(g, config, &embeddings);
  // 2 single-edge embeddings + 1 chain embedding.
  EXPECT_EQ(embeddings, 3u);
  // Patterns: single edge (support 2), chain (support 1).
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].support, 2u);
  EXPECT_EQ(results[1].support, 1u);
}

TEST(ArabesqueSimTest, ParallelVariantMatchesSerial) {
  StreamConfig sc;
  sc.num_edges = 400;
  sc.num_entities = 50;
  sc.num_predicates = 4;
  sc.seed = 9;
  PropertyGraph g;
  for (const TimedTriple& t : GenerateStream(sc)) g.AddTriple(t);
  MinerConfig config;
  config.max_edges = 2;
  config.min_support = 4;
  size_t serial_embeddings = 0, parallel_embeddings = 0;
  auto serial = MineArabesqueSim(g, config, &serial_embeddings);
  ThreadPool pool(4);
  auto parallel =
      MineArabesqueSimParallel(g, config, &pool, &parallel_embeddings);
  EXPECT_EQ(serial_embeddings, parallel_embeddings);
  EXPECT_EQ(ToMap(serial, g.predicates()),
            ToMap(parallel, g.predicates()));
  // Null pool falls back to the serial path.
  auto fallback = MineArabesqueSimParallel(g, config, nullptr);
  EXPECT_EQ(ToMap(serial, g.predicates()),
            ToMap(fallback, g.predicates()));
}

TEST(GspanTest, PruningSkipsInfrequentExtensions) {
  PropertyGraph g;
  // One rare predicate chain that can never reach min_support.
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  VertexId c = g.GetOrAddVertex("c");
  PredicateId rare = g.predicates().Intern("rare");
  g.AddEdge(a, rare, b, {});
  g.AddEdge(b, rare, c, {});
  // A frequent predicate elsewhere.
  PredicateId common = g.predicates().Intern("common");
  for (int i = 0; i < 6; ++i) {
    VertexId s = g.GetOrAddVertex("s" + std::to_string(i));
    VertexId o = g.GetOrAddVertex("o" + std::to_string(i));
    g.AddEdge(s, common, o, {});
  }
  MinerConfig config;
  config.max_edges = 2;
  config.min_support = 3;
  size_t gspan_embeddings = 0, arabesque_embeddings = 0;
  auto gspan_result = MineGspan(g, config, &gspan_embeddings);
  auto arab_result = MineArabesqueSim(g, config, &arabesque_embeddings);
  EXPECT_EQ(ToMap(gspan_result, g.predicates()),
            ToMap(arab_result, g.predicates()));
  // gSpan materializes fewer embeddings thanks to pruning.
  EXPECT_LT(gspan_embeddings, arabesque_embeddings);
}

}  // namespace
}  // namespace nous
