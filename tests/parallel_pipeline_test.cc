// Parallel-ingest guarantees: "extract in parallel, fuse in order"
// must leave the fused KG bit-identical to serial ingestion for any
// thread count, and queries must be safe while another thread is
// ingesting (the shared/exclusive kg_mutex contract).

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/nous.h"
#include "core/pipeline.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "common/status.h"

namespace nous {
namespace {

class ParallelPipelineFixture : public ::testing::Test {
 protected:
  ParallelPipelineFixture()
      : world_(WorldModel::BuildDroneWorld(WorldConfig())),
        kb_(BuildCuratedKb(world_, Ontology::DroneDefault(),
                           Coverage())) {}

  static DroneWorldConfig WorldConfig() {
    DroneWorldConfig config;
    config.num_companies = 12;
    config.num_people = 8;
    config.num_products = 8;
    config.num_events = 80;
    config.seed = 7;
    return config;
  }
  static KbCoverage Coverage() {
    KbCoverage coverage;
    coverage.entity_coverage = 0.6;
    coverage.fact_coverage = 0.9;
    return coverage;
  }
  static Nous::Options FastOptions(size_t num_threads) {
    Nous::Options options;
    options.pipeline.lda.iterations = 40;
    options.pipeline.bpr.epochs = 5;
    options.pipeline.miner.min_support = 3;
    // Exercise the periodic refresh path under both modes.
    options.pipeline.bpr_refresh_interval = 25;
    options.pipeline.num_threads = num_threads;
    return options;
  }
  std::vector<Article> MakeArticles() {
    CorpusConfig config;
    config.pronoun_rate = 0.2;
    config.alias_rate = 0.2;
    config.passive_rate = 0.2;
    return ArticleGenerator(&world_, config).GenerateArticles();
  }

  /// (subject label, predicate, object label, confidence, timestamp,
  /// curated) for every edge, in edge-id order.
  using EdgeRow =
      std::tuple<std::string, std::string, std::string, double,
                 Timestamp, bool>;
  static std::vector<EdgeRow> DumpEdges(const PropertyGraph& g) {
    std::vector<EdgeRow> rows;
    g.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
      rows.emplace_back(g.VertexLabel(rec.subject),
                        g.predicates().GetString(rec.predicate),
                        g.VertexLabel(rec.object), rec.meta.confidence,
                        rec.meta.timestamp, rec.meta.curated);
    });
    return rows;
  }

  static void ExpectStatsEqualModuloTiming(const PipelineStats& a,
                                           const PipelineStats& b) {
    EXPECT_EQ(a.documents, b.documents);
    EXPECT_EQ(a.extractions, b.extractions);
    EXPECT_EQ(a.accepted_triples, b.accepted_triples);
    EXPECT_EQ(a.deduped_triples, b.deduped_triples);
    EXPECT_EQ(a.dropped_low_confidence, b.dropped_low_confidence);
    EXPECT_EQ(a.dropped_unmapped, b.dropped_unmapped);
    EXPECT_EQ(a.mapped_triples, b.mapped_triples);
    EXPECT_EQ(a.unmapped_kept, b.unmapped_kept);
    EXPECT_EQ(a.linked_to_existing, b.linked_to_existing);
    EXPECT_EQ(a.new_entities, b.new_entities);
    EXPECT_EQ(a.ds_alignments, b.ds_alignments);
    EXPECT_EQ(a.retractions, b.retractions);
  }

  WorldModel world_;
  CuratedKb kb_;
};

TEST_F(ParallelPipelineFixture, BatchIngestAtEightThreadsMatchesSerial) {
  auto articles = MakeArticles();

  // Serial reference: one article at a time on one thread.
  Nous serial(&kb_, FastOptions(1));
  for (const Article& a : articles) NOUS_CHECK_OK(serial.Ingest(a));
  serial.Finalize();

  // Batched ingest across 8 extraction threads.
  Nous parallel(&kb_, FastOptions(8));
  parallel.pipeline().IngestBatch(articles);
  parallel.Finalize();

  ASSERT_EQ(serial.graph().NumVertices(), parallel.graph().NumVertices());
  ASSERT_EQ(serial.graph().NumEdges(), parallel.graph().NumEdges());
  auto serial_edges = DumpEdges(serial.graph());
  auto parallel_edges = DumpEdges(parallel.graph());
  ASSERT_EQ(serial_edges.size(), parallel_edges.size());
  for (size_t i = 0; i < serial_edges.size(); ++i) {
    EXPECT_EQ(std::get<0>(serial_edges[i]), std::get<0>(parallel_edges[i]));
    EXPECT_EQ(std::get<1>(serial_edges[i]), std::get<1>(parallel_edges[i]));
    EXPECT_EQ(std::get<2>(serial_edges[i]), std::get<2>(parallel_edges[i]));
    EXPECT_DOUBLE_EQ(std::get<3>(serial_edges[i]),
                     std::get<3>(parallel_edges[i]));
    EXPECT_EQ(std::get<4>(serial_edges[i]), std::get<4>(parallel_edges[i]));
    EXPECT_EQ(std::get<5>(serial_edges[i]), std::get<5>(parallel_edges[i]));
  }
  ExpectStatsEqualModuloTiming(serial.stats(), parallel.stats());
}

TEST_F(ParallelPipelineFixture, IngestStreamBatchingMatchesSerial) {
  // IngestStream batches internally (64 articles per IngestBatch);
  // the result must still equal one-at-a-time ingestion.
  auto articles = MakeArticles();

  Nous serial(&kb_, FastOptions(1));
  for (const Article& a : articles) NOUS_CHECK_OK(serial.Ingest(a));

  Nous streamed(&kb_, FastOptions(4));
  DocumentStream stream(articles);
  NOUS_CHECK_OK(streamed.IngestStream(&stream, /*finalize=*/false));

  EXPECT_EQ(serial.graph().NumVertices(), streamed.graph().NumVertices());
  EXPECT_EQ(serial.graph().NumEdges(), streamed.graph().NumEdges());
  EXPECT_EQ(DumpEdges(serial.graph()), DumpEdges(streamed.graph()));
  ExpectStatsEqualModuloTiming(serial.stats(), streamed.stats());
}

TEST_F(ParallelPipelineFixture, QueriesRunSafelyDuringIngest) {
  // Readers (Ask, ComputeStats) hold the shared lock while a writer
  // thread streams documents in. The test is a smoke check for the
  // lock discipline: under TSan it also proves the absence of races.
  auto articles = MakeArticles();
  Nous nous(&kb_, FastOptions(4));

  std::atomic<bool> ingest_done{false};
  std::thread writer([&] {
    constexpr size_t kBatch = 8;
    for (size_t start = 0; start < articles.size(); start += kBatch) {
      size_t count = std::min(kBatch, articles.size() - start);
      nous.pipeline().IngestBatch(articles.data() + start, count);
    }
    ingest_done.store(true);
  });

  size_t queries = 0;
  do {  // at least one query even if ingest wins the race
    auto answer = nous.Ask("tell me about " + kb_.entities()[0].name);
    if (answer.ok()) {
      EXPECT_FALSE(answer->facts.empty());
    }
    GraphStats stats = nous.ComputeStats();
    EXPECT_GE(stats.vertices, kb_.entities().size());
    ++queries;
  } while (!ingest_done.load());
  writer.join();
  EXPECT_GT(queries, 0u);

  // After the writer finishes, the KG matches a serial build.
  Nous reference(&kb_, FastOptions(1));
  for (const Article& a : articles) NOUS_CHECK_OK(reference.Ingest(a));
  EXPECT_EQ(reference.graph().NumEdges(), nous.graph().NumEdges());
}

}  // namespace
}  // namespace nous
