#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace nous {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing vertex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing vertex");
  EXPECT_EQ(s.ToString(), "NotFound: missing vertex");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::InvalidArgument("x"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::InvalidArgument("bad");
  EXPECT_EQ(os.str(), "InvalidArgument: bad");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::OutOfRange("boom"); };
  auto outer = [&]() -> Status {
    NOUS_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto get = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("fail");
    return 10;
  };
  auto use = [&](bool fail) -> Result<int> {
    NOUS_ASSIGN_OR_RETURN(int v, get(fail));
    return v + 1;
  };
  EXPECT_EQ(*use(false), 11);
  EXPECT_FALSE(use(true).ok());
}

// ---------- String utilities ----------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a\t b \n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
  EXPECT_EQ(Trim("  hello \t"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, PrefixSuffixDigits) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(IsDigits("2014"));
  EXPECT_FALSE(IsDigits("20a4"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_TRUE(IsCapitalized("Drone"));
  EXPECT_FALSE(IsCapitalized("drone"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

// Regression: the CLI/server flag parsers used to run atoi/atoll,
// which silently accept trailing garbage ("8080abc" -> 8080), read
// "" as 0, and wrap on overflow. The checked parsers reject all of
// those outright.
TEST(StringUtilTest, ParseInt64RejectsGarbageAndOverflow) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt64("+9", &v));
  EXPECT_EQ(v, 9);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));  // atoi would return 12
  EXPECT_TRUE(ParseInt64(" 12 ", &v));  // surrounding whitespace trimmed
  EXPECT_EQ(v, 12);
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999", &v));  // overflow
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
}

TEST(StringUtilTest, ParseUint64AndSizeEnforceBounds) {
  uint64_t u = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &u));
  EXPECT_EQ(u, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &u));  // overflow
  EXPECT_FALSE(ParseUint64("-1", &u));  // no sign accepted
  EXPECT_FALSE(ParseUint64("+1", &u));
  size_t s = 0;
  EXPECT_TRUE(ParseSize("4", &s, 1, 8));
  EXPECT_EQ(s, 4u);
  EXPECT_FALSE(ParseSize("0", &s, 1, 8));  // below min
  EXPECT_FALSE(ParseSize("9", &s, 1, 8));  // above max
  EXPECT_FALSE(ParseSize("four", &s, 1, 8));
}

TEST(StringUtilTest, ParsePortRejectsWraparound) {
  uint16_t port = 0;
  EXPECT_TRUE(ParsePort("8080", &port));
  EXPECT_EQ(port, 8080);
  // atoi + uint16_t cast read 70000 as 4464; the checked parser
  // refuses anything outside [1, 65535].
  EXPECT_FALSE(ParsePort("70000", &port));
  EXPECT_FALSE(ParsePort("0", &port));
  EXPECT_FALSE(ParsePort("-1", &port));
  EXPECT_FALSE(ParsePort("8080/tcp", &port));
  EXPECT_TRUE(ParsePort("65535", &port));
  EXPECT_EQ(port, 65535);
}

TEST(StringUtilTest, ParseDoubleRequiresFiniteFullMatch) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("0.25", &d));
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("0.5x", &d));
  EXPECT_FALSE(ParseDouble("nan", &d));
  EXPECT_FALSE(ParseDouble("inf", &d));
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

class RngBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundTest, UniformIntRespectsBound) {
  Rng rng(GetParam() * 31 + 1);
  uint64_t bound = GetParam();
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.UniformInt(bound);
    EXPECT_LT(v, bound);
    seen.insert(v);
  }
  if (bound <= 8) {
    EXPECT_EQ(seen.size(), bound);  // all values hit
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundTest,
                         ::testing::Values(1, 2, 3, 8, 100, 1000000));

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(17);
  size_t low = 0, total = 4000;
  for (size_t i = 0; i < total; ++i) {
    uint64_t v = rng.Zipf(1000, 1.2);
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  EXPECT_GT(low, total / 4);  // heavy head
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// ---------- Hashing ----------

TEST(HashTest, Fnv1aStableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a("a"), Fnv1a("a"));
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
}

TEST(HashTest, PairHashDistinguishesOrder) {
  PairHash h;
  EXPECT_NE(h(std::make_pair(1, 2)), h(std::make_pair(2, 1)));
}

// ---------- Histogram ----------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 15.0);
}

TEST(HistogramTest, QuantileAfterMoreAdds) {
  Histogram h;
  h.Add(10);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10);
  h.Add(0);
  h.Add(20);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10);
}

TEST(HistogramTest, Bucketize) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Add(i * 0.1);  // 0.0 .. 0.9
  auto buckets = h.Bucketize(0.0, 1.0, 2);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], 5u);
  EXPECT_EQ(buckets[1], 5u);
}

TEST(HistogramTest, BucketizeIgnoresOutOfRange) {
  Histogram h;
  h.Add(-1);
  h.Add(0.5);
  h.Add(2);
  auto buckets = h.Bucketize(0.0, 1.0, 4);
  size_t total = 0;
  for (size_t c : buckets) total += c;
  EXPECT_EQ(total, 1u);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  h.Add(2);
  h.Add(2);
  h.Add(2);
  EXPECT_DOUBLE_EQ(h.Stddev(), 0.0);
}

TEST(HistogramTest, QuantileEmptyReturnsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileSingleSampleIsThatSample) {
  Histogram h;
  h.Add(7.5);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 7.5) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileExtremesClampToMinMax) {
  Histogram h;
  for (double v : {3.0, 1.0, 2.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(-2.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(5.0), 3.0);
}

TEST(HistogramTest, QuantileNonFiniteTreatedAsZero) {
  Histogram h;
  h.Add(1.0);
  h.Add(9.0);
  EXPECT_DOUBLE_EQ(h.Quantile(std::nan("")), 1.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 2.0);
  // b is untouched.
  EXPECT_EQ(b.count(), 2u);
}

TEST(HistogramTest, MergeEmptyIsNoOp) {
  Histogram a, empty;
  a.Add(5.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 5.0);
}

TEST(HistogramTest, MergeAfterQuantileInvalidatesSortCache) {
  Histogram a, b;
  a.Add(10.0);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 10.0);  // forces the sort cache
  b.Add(1.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Quantile(0.0), 1.0);
}

// ---------- FixedHistogram ----------

TEST(FixedHistogramTest, EmptyIsZero) {
  FixedHistogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(FixedHistogramTest, AddUsesLeBucketSemantics) {
  FixedHistogram h({1.0, 10.0});
  h.Add(1.0);    // le 1.0: boundary goes to the lower bucket
  h.Add(5.0);    // le 10.0
  h.Add(100.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(FixedHistogramTest, ExponentialBounds) {
  FixedHistogram h = FixedHistogram::Exponential(0.001, 10, 4);
  const auto& bounds = h.upper_bounds();
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.001);
  EXPECT_DOUBLE_EQ(bounds[1], 0.01);
  EXPECT_DOUBLE_EQ(bounds[2], 0.1);
  EXPECT_DOUBLE_EQ(bounds[3], 1.0);
}

TEST(FixedHistogramTest, QuantileEdgeConventions) {
  FixedHistogram h({1.0, 2.0, 4.0});
  h.Add(0.5);
  h.Add(1.5);
  h.Add(3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(std::nan("")), 0.5);
  double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 3.0);
}

TEST(FixedHistogramTest, QuantileInterpolatesWithinBucket) {
  FixedHistogram h({10.0, 20.0});
  for (int i = 0; i < 100; ++i) h.Add(10.0 + 0.1 * i);  // all in (10, 20]
  double p50 = h.Quantile(0.5);
  EXPECT_GT(p50, 13.0);
  EXPECT_LT(p50, 17.0);
  // Clamped to the observed range even at the tails.
  EXPECT_GE(h.Quantile(0.99), h.min());
  EXPECT_LE(h.Quantile(0.99), h.max());
}

TEST(FixedHistogramTest, SingleSampleQuantiles) {
  FixedHistogram h({1.0, 2.0});
  h.Add(1.5);
  for (double q : {0.0, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 1.5) << "q=" << q;
  }
}

TEST(FixedHistogramTest, MergeAddsBucketsAndExtremes) {
  FixedHistogram a({1.0, 10.0});
  FixedHistogram b({1.0, 10.0});
  a.Add(0.5);
  b.Add(5.0);
  b.Add(50.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 55.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 50.0);
  EXPECT_EQ(a.bucket_counts()[0], 1u);
  EXPECT_EQ(a.bucket_counts()[1], 1u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);
}

TEST(FixedHistogramTest, MergeIntoEmptyCopiesExtremes) {
  FixedHistogram a({1.0});
  FixedHistogram b({1.0});
  b.Add(0.25);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.min(), 0.25);
  EXPECT_DOUBLE_EQ(a.max(), 0.25);
}

TEST(FixedHistogramTest, ClearResets) {
  FixedHistogram h({1.0});
  h.Add(0.5);
  h.Add(2.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_counts()[0], 0u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
}

// ---------- Logging ----------

TEST(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknown) {
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("debugx"), std::nullopt);
}

TEST(LoggingTest, LogMacroCompilesInExpressionContexts) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // discard branch
  NOUS_LOG(Info) << "suppressed " << 42;
  SetLogLevel(saved);
}

// ---------- TablePrinter ----------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| 1 |"), std::string::npos);
}

TEST(TablePrinterTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Int(42), "42");
}

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

// ---------- WaitGroup / multi-caller safety ----------

TEST(WaitGroupTest, WaitReturnsImmediatelyWhenBalanced) {
  WaitGroup wg;
  wg.Wait();  // zero pending
  wg.Add(3);
  wg.Done(2);
  wg.Done();
  wg.Wait();
  SUCCEED();
}

TEST(WaitGroupTest, SubmitWithWaitGroupTracksOnlyOwnBatch) {
  ThreadPool pool(4);
  WaitGroup mine;
  std::atomic<int> my_count{0};
  std::atomic<int> other_count{0};
  // A slow unrelated task submitted *without* my WaitGroup: Wait() on
  // the group must not observe it.
  std::atomic<bool> release_other{false};
  pool.Submit([&] {
    while (!release_other.load()) std::this_thread::yield();
    other_count.fetch_add(1);
  });
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&my_count] { my_count.fetch_add(1); }, &mine);
  }
  mine.Wait();
  EXPECT_EQ(my_count.load(), 32);
  EXPECT_EQ(other_count.load(), 0);  // still parked: batches independent
  release_other.store(true);
  pool.Wait();
  EXPECT_EQ(other_count.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallersCoverTheirOwnRanges) {
  // Two external threads drive ParallelFor on one shared pool at the
  // same time. With a pool-global completion counter either caller
  // could return early (observing the other's completions) or hang;
  // per-batch counting makes each cover exactly its own range.
  ThreadPool pool(4);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> hits_a(kN);
  std::vector<std::atomic<int>> hits_b(kN);
  std::thread caller_a([&] {
    for (int round = 0; round < 3; ++round) {
      pool.ParallelFor(kN, [&hits_a](size_t i) { hits_a[i].fetch_add(1); });
    }
  });
  std::thread caller_b([&] {
    for (int round = 0; round < 3; ++round) {
      pool.ParallelFor(kN, [&hits_b](size_t i) { hits_b[i].fetch_add(1); });
    }
  });
  caller_a.join();
  caller_b.join();
  for (auto& h : hits_a) ASSERT_EQ(h.load(), 3);
  for (auto& h : hits_b) ASSERT_EQ(h.load(), 3);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A ParallelFor issued from inside a pool task must finish even when
  // every worker is occupied by the outer batch — the caller drains
  // its own iteration space. Exercised on a 1-thread pool, the
  // worst case.
  for (size_t pool_size : {1ul, 2ul, 4ul}) {
    ThreadPool pool(pool_size);
    std::atomic<int> inner_hits{0};
    pool.ParallelFor(4, [&pool, &inner_hits](size_t) {
      pool.ParallelFor(8, [&inner_hits](size_t) { inner_hits.fetch_add(1); });
    });
    EXPECT_EQ(inner_hits.load(), 4 * 8);
  }
}

TEST(ThreadPoolTest, ParallelForFromSubmittedTaskCompletes) {
  ThreadPool pool(1);
  WaitGroup wg;
  std::atomic<int> hits{0};
  pool.Submit(
      [&pool, &hits] {
        pool.ParallelFor(16, [&hits](size_t) { hits.fetch_add(1); });
      },
      &wg);
  wg.Wait();
  EXPECT_EQ(hits.load(), 16);
}

}  // namespace
}  // namespace nous
