// Snapshot-isolated query serving (DESIGN.md §5.11): publish-on-commit
// KgSnapshots, the monotonic KG version, the versioned LRU query
// cache, and the locked fallback. The concurrency case at the bottom
// is the TSan target for "queries never hold kg_mutex": readers and a
// writer run together and every answer must be consistent with the
// exact snapshot it was served from.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/nous.h"
#include "core/snapshot.h"
#include "corpus/article_generator.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "qa/query.h"
#include "qa/query_cache.h"
#include "qa/query_engine.h"
#include "common/status.h"

namespace nous {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest()
      : world_(WorldModel::BuildDroneWorld(WorldConfig())),
        kb_(BuildCuratedKb(world_, Ontology::DroneDefault(),
                           Coverage())),
        articles_(ArticleGenerator(&world_, CorpusConfig{})
                      .GenerateArticles()) {}

  static DroneWorldConfig WorldConfig() {
    DroneWorldConfig config;
    config.num_companies = 12;
    config.num_people = 8;
    config.num_products = 8;
    config.num_events = 60;
    config.seed = 11;
    return config;
  }
  static KbCoverage Coverage() {
    KbCoverage coverage;
    coverage.entity_coverage = 0.6;
    return coverage;
  }

  /// A connected entity to ask about, picked from a snapshot so the
  /// question has a non-trivial answer.
  static std::string BusyEntity(const KgSnapshot& snap) {
    VertexId best = 0;
    size_t best_degree = 0;
    for (VertexId v = 0; v < snap.graph().NumVertices(); ++v) {
      size_t degree = snap.graph().OutDegree(v) + snap.graph().InDegree(v);
      if (degree > best_degree) {
        best = v;
        best_degree = degree;
      }
    }
    EXPECT_GT(best_degree, 0u);
    return snap.graph().VertexLabel(best);
  }

  WorldModel world_;
  CuratedKb kb_;
  std::vector<Article> articles_;
};

TEST_F(SnapshotTest, PublishedAtConstruction) {
  Nous nous(&kb_);
  std::shared_ptr<const KgSnapshot> snap = nous.snapshot();
  ASSERT_NE(snap, nullptr);
  // Version 1 = the curated bootstrap commit.
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_GT(snap->graph().NumVertices(), 0u);
}

TEST_F(SnapshotTest, VersionBumpsPerMutatingCall) {
  Nous nous(&kb_);
  EXPECT_EQ(nous.snapshot()->version(), 1u);
  NOUS_CHECK_OK(nous.Ingest(articles_[0]));
  EXPECT_EQ(nous.snapshot()->version(), 2u);
  // One bump per batch call (the WAL commit unit), not per article.
  NOUS_CHECK_OK(nous.IngestBatch({articles_[1], articles_[2], articles_[3]}));
  EXPECT_EQ(nous.snapshot()->version(), 3u);
  nous.Finalize();
  EXPECT_EQ(nous.snapshot()->version(), 4u);
}

TEST_F(SnapshotTest, SnapshotsAreIsolatedFromLaterIngest) {
  Nous nous(&kb_);
  NOUS_CHECK_OK(nous.Ingest(articles_[0]));
  std::shared_ptr<const KgSnapshot> before = nous.snapshot();
  size_t edges_before = before->graph().NumEdges();
  size_t vertices_before = before->graph().NumVertices();
  for (size_t i = 1; i < articles_.size(); ++i) {
    NOUS_CHECK_OK(nous.Ingest(articles_[i]));
  }
  // The held snapshot did not move.
  EXPECT_EQ(before->graph().NumEdges(), edges_before);
  EXPECT_EQ(before->graph().NumVertices(), vertices_before);
  // The latest one did.
  std::shared_ptr<const KgSnapshot> after = nous.snapshot();
  EXPECT_GT(after->version(), before->version());
  EXPECT_GT(after->graph().NumEdges(), edges_before);
}

TEST_F(SnapshotTest, SnapshotAnswersMatchLockedAnswers) {
  // Same corpus through a snapshot-serving instance (cache off, so
  // every ask re-executes) and a locked-fallback instance: the five
  // query classes must render identically.
  Nous::Options snapshot_options;
  snapshot_options.query_cache.enabled = false;
  Nous snapshot_nous(&kb_, snapshot_options);
  Nous::Options locked_options;
  locked_options.pipeline.publish_snapshots = false;
  Nous locked_nous(&kb_, locked_options);
  for (const Article& a : articles_) {
    NOUS_CHECK_OK(snapshot_nous.Ingest(a));
    NOUS_CHECK_OK(locked_nous.Ingest(a));
  }
  std::shared_ptr<const KgSnapshot> snap = snapshot_nous.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(locked_nous.snapshot(), nullptr);
  std::string entity = BusyEntity(*snap);
  std::vector<std::string> questions = {"tell me about " + entity,
                                        "what is trending",
                                        "show patterns"};
  for (const std::string& question : questions) {
    std::shared_ptr<const KgSnapshot> out;
    auto from_snapshot = snapshot_nous.Ask(question, &out);
    auto from_locked = locked_nous.Ask(question, &out);
    ASSERT_EQ(from_snapshot.ok(), from_locked.ok()) << question;
    if (!from_snapshot.ok()) continue;
    EXPECT_EQ(from_snapshot->Render(snap->graph()),
              [&] {
                ReaderMutexLock lock(locked_nous.kg_mutex());
                return from_locked->Render(locked_nous.graph());
              }())
        << question;
  }
}

TEST_F(SnapshotTest, LockedFallbackReportsNullSnapshot) {
  Nous::Options options;
  options.pipeline.publish_snapshots = false;
  Nous nous(&kb_, options);
  for (size_t i = 0; i < 8; ++i) NOUS_CHECK_OK(nous.Ingest(articles_[i]));
  // Non-null sentinel (an empty snapshot) so the nulling is observable.
  std::shared_ptr<const KgSnapshot> out = std::make_shared<const KgSnapshot>(
      0, PropertyGraph{}, nullptr, PipelineStats{});
  auto answer = nous.Ask("what is trending", &out);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(out, nullptr);
}

TEST_F(SnapshotTest, CacheHitsOnRepeatAndCountsStats) {
  Nous nous(&kb_);
  for (const Article& a : articles_) NOUS_CHECK_OK(nous.Ingest(a));
  ASSERT_NE(nous.query_cache(), nullptr);
  std::string question =
      "tell me about " + BusyEntity(*nous.snapshot());
  auto first = nous.Ask(question);
  ASSERT_TRUE(first.ok());
  QueryCache::Stats after_first = nous.query_cache()->stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.misses, 1u);
  auto second = nous.Ask(question);
  ASSERT_TRUE(second.ok());
  QueryCache::Stats after_second = nous.query_cache()->stats();
  EXPECT_EQ(after_second.hits, 1u);
  EXPECT_EQ(after_second.misses, 1u);
  const PropertyGraph& graph = nous.snapshot()->graph();
  EXPECT_EQ(first->Render(graph), second->Render(graph));
}

TEST_F(SnapshotTest, IngestInvalidatesCachedAnswers) {
  // The stale-answer regression: ask, ingest more facts, ask the same
  // question. The second answer must match a cache-free reference
  // built from the identical corpus — never the cached pre-ingest
  // answer.
  Nous cached_nous(&kb_);
  Nous::Options no_cache;
  no_cache.query_cache.enabled = false;
  Nous reference(&kb_, no_cache);
  size_t half = articles_.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    NOUS_CHECK_OK(cached_nous.Ingest(articles_[i]));
    NOUS_CHECK_OK(reference.Ingest(articles_[i]));
  }
  std::string question =
      "tell me about " + BusyEntity(*reference.snapshot());
  auto stale = cached_nous.Ask(question);
  ASSERT_TRUE(stale.ok());
  for (size_t i = half; i < articles_.size(); ++i) {
    NOUS_CHECK_OK(cached_nous.Ingest(articles_[i]));
    NOUS_CHECK_OK(reference.Ingest(articles_[i]));
  }
  auto fresh = cached_nous.Ask(question);
  auto expected = reference.Ask(question);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(fresh->Render(cached_nous.snapshot()->graph()),
            expected->Render(reference.snapshot()->graph()));
  // And the second ask was a re-execution, not a hit.
  QueryCache::Stats stats = cached_nous.query_cache()->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(SnapshotTest, CacheEvictsLeastRecentlyUsed) {
  Nous::Options options;
  options.query_cache.entries = 2;
  Nous nous(&kb_, options);
  for (const Article& a : articles_) NOUS_CHECK_OK(nous.Ingest(a));
  std::shared_ptr<const KgSnapshot> snap = nous.snapshot();
  std::vector<std::string> labels;
  for (VertexId v = 0;
       v < snap->graph().NumVertices() && labels.size() < 3; ++v) {
    if (snap->graph().OutDegree(v) + snap->graph().InDegree(v) > 0) {
      labels.push_back(snap->graph().VertexLabel(v));
    }
  }
  ASSERT_EQ(labels.size(), 3u);
  for (const std::string& label : labels) {
    ASSERT_TRUE(nous.Ask("tell me about " + label).ok());
  }
  const QueryCache* cache = nous.query_cache();
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(cache->capacity(), 2u);
  EXPECT_EQ(cache->stats().evictions, 1u);
  // The evicted (oldest) entry misses; the newest hits.
  ASSERT_TRUE(nous.Ask("tell me about " + labels[2]).ok());
  EXPECT_EQ(nous.query_cache()->stats().hits, 1u);
  ASSERT_TRUE(nous.Ask("tell me about " + labels[0]).ok());
  EXPECT_EQ(nous.query_cache()->stats().misses, 4u);
}

TEST_F(SnapshotTest, CacheCanBeDisabled) {
  Nous::Options options;
  options.query_cache.enabled = false;
  Nous nous(&kb_, options);
  EXPECT_EQ(nous.query_cache(), nullptr);
  for (size_t i = 0; i < 4; ++i) NOUS_CHECK_OK(nous.Ingest(articles_[i]));
  EXPECT_TRUE(nous.Ask("what is trending").ok());
}

TEST_F(SnapshotTest, ZeroEntriesDisablesCache) {
  Nous::Options options;
  options.query_cache.entries = 0;
  Nous nous(&kb_, options);
  EXPECT_EQ(nous.query_cache(), nullptr);
}

TEST_F(SnapshotTest, VersionSurvivesSaveLoadState) {
  Nous nous(&kb_);
  for (size_t i = 0; i < 5; ++i) NOUS_CHECK_OK(nous.Ingest(articles_[i]));
  uint64_t version = nous.snapshot()->version();
  ASSERT_EQ(version, 6u);
  std::string state = nous.pipeline().SaveState();

  Nous restored(&kb_);
  ASSERT_TRUE(restored.pipeline().LoadState(state).ok());
  ASSERT_NE(restored.snapshot(), nullptr);
  EXPECT_EQ(restored.snapshot()->version(), version);
  // And the restored instance keeps counting from there.
  NOUS_CHECK_OK(restored.Ingest(articles_[5]));
  EXPECT_EQ(restored.snapshot()->version(), version + 1);
}

TEST_F(SnapshotTest, PatternSetIsSharedWhileMinerUnchanged) {
  Nous nous(&kb_);
  for (size_t i = 0; i < 6; ++i) NOUS_CHECK_OK(nous.Ingest(articles_[i]));
  std::shared_ptr<const KgSnapshot> before = nous.snapshot();
  ASSERT_NE(before, nullptr);
  // Finalize rescores edges and re-publishes, but feeds no new window
  // events to the miner — the rendered pattern set must be reused
  // (shared_ptr identity), not re-rendered.
  nous.Finalize();
  std::shared_ptr<const KgSnapshot> after = nous.snapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_GT(after->version(), before->version());
  EXPECT_EQ(after->pattern_set(), before->pattern_set())
      << "publish with an unchanged miner generation re-rendered patterns";
  // New stream edges advance the miner; the next publish re-renders.
  NOUS_CHECK_OK(nous.Ingest(articles_[6]));
  std::shared_ptr<const KgSnapshot> advanced = nous.snapshot();
  ASSERT_NE(advanced, nullptr);
  EXPECT_NE(advanced->pattern_set(), before->pattern_set());
  // Whatever the pointer identity, patterns() is always callable.
  (void)advanced->patterns();
}

// COW-specific TSan target: readers hold *old* snapshots and keep
// reading their graphs while the writer publishes many newer ones.
// Every publish unshares chunks the old snapshots still reference —
// any unlocked write into a shared chunk is a data race TSan flags,
// and any structural corruption shows up as changed counts.
TEST_F(SnapshotTest, OldSnapshotsStayStableAcrossManyPublishes) {
  Nous nous(&kb_);
  size_t warm = articles_.size() / 4;
  for (size_t i = 0; i < warm; ++i) NOUS_CHECK_OK(nous.Ingest(articles_[i]));

  std::shared_ptr<const KgSnapshot> old_snap = nous.snapshot();
  ASSERT_NE(old_snap, nullptr);
  size_t old_edges = old_snap->graph().NumEdges();
  size_t old_vertices = old_snap->graph().NumVertices();
  Timestamp old_max_ts = old_snap->graph().MaxEdgeTimestamp();

  std::atomic<size_t> failures{0};
  constexpr size_t kReaders = 3;
  std::vector<std::thread> readers;
  std::atomic<bool> stop{false};
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Walk the old snapshot's adjacency and derived indexes.
        size_t degree_sum = 0;
        for (VertexId v = 0; v < old_snap->graph().NumVertices(); ++v) {
          degree_sum += old_snap->graph().OutDegree(v);
        }
        if (old_snap->graph().NumEdges() != old_edges ||
            old_snap->graph().NumVertices() != old_vertices ||
            old_snap->graph().MaxEdgeTimestamp() != old_max_ts ||
            degree_sum == 0) {
          ++failures;
        }
        // Byte accounting on an immutable snapshot is also lock-free
        // and runs concurrently with publishes (the ResourceSampler
        // path).
        (void)old_snap->graph().Footprint();
      }
    });
  }

  // Writer: one publish per ingest, each unsharing chunks the readers
  // are traversing.
  for (size_t i = warm; i < articles_.size(); ++i) {
    NOUS_CHECK_OK(nous.Ingest(articles_[i]));
  }
  nous.Finalize();
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(nous.snapshot()->version(), old_snap->version());
  // The old snapshot still serializes a consistent graph.
  EXPECT_EQ(old_snap->graph().NumEdges(), old_edges);
}

// The TSan target: queries must run lock-free against published
// snapshots while a writer ingests. Each answer is recomputed against
// the snapshot it reported — any torn read, stale index, or
// cache-version bug shows up as a mismatch (and TSan would flag the
// data race itself).
TEST_F(SnapshotTest, ConcurrentQueriesAreConsistentWithTheirSnapshot) {
  Nous nous(&kb_);
  size_t warm = articles_.size() / 4;
  for (size_t i = 0; i < warm; ++i) NOUS_CHECK_OK(nous.Ingest(articles_[i]));
  std::string entity = BusyEntity(*nous.snapshot());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (size_t i = warm;
         i < articles_.size() && !stop.load(std::memory_order_relaxed);
         ++i) {
      NOUS_CHECK_OK(nous.Ingest(articles_[i]));
    }
  });

  constexpr size_t kReaders = 3;
  constexpr size_t kAsksPerReader = 120;
  std::vector<std::thread> readers;
  std::atomic<size_t> failures{0};
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_version = 0;
      for (size_t i = 0; i < kAsksPerReader; ++i) {
        std::string question = (i + t) % 3 == 0
                                   ? "what is trending"
                                   : "tell me about " + entity;
        std::shared_ptr<const KgSnapshot> snap;
        auto answer = nous.Ask(question, &snap);
        if (!answer.ok() || snap == nullptr) {
          ++failures;
          continue;
        }
        // Versions never go backwards within a thread.
        if (snap->version() < last_version) ++failures;
        last_version = snap->version();
        // The answer must equal a recomputation on the very snapshot
        // it was served from (catches stale cache entries too).
        auto parsed = ParseQuery(question);
        if (!parsed.ok()) {
          ++failures;
          continue;
        }
        QueryEngine engine(&snap->graph(), snap->patterns(),
                           QueryEngineConfig{});
        auto recomputed = engine.Execute(*parsed);
        if (!recomputed.ok() ||
            answer->Render(snap->graph()) !=
                recomputed->Render(snap->graph())) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace nous
