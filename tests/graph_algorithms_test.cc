#include <sstream>

#include <gtest/gtest.h>

#include "graph/dot_export.h"
#include "graph/graph_algorithms.h"
#include "graph/property_graph.h"

namespace nous {
namespace {

// ---------- Connected components ----------

TEST(ComponentsTest, TwoIslandsAndIsolate) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  VertexId c = g.GetOrAddVertex("c");
  VertexId d = g.GetOrAddVertex("d");
  VertexId lone = g.GetOrAddVertex("lone");
  PredicateId p = g.predicates().Intern("p");
  g.AddEdge(a, p, b, {});
  g.AddEdge(d, p, c, {});  // direction must not matter
  size_t count = 0;
  auto component = WeaklyConnectedComponents(g, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(component[a], component[b]);
  EXPECT_EQ(component[c], component[d]);
  EXPECT_NE(component[a], component[c]);
  EXPECT_NE(component[lone], component[a]);
  EXPECT_NE(component[lone], component[c]);
}

TEST(ComponentsTest, EmptyGraph) {
  PropertyGraph g;
  size_t count = 99;
  EXPECT_TRUE(WeaklyConnectedComponents(g, &count).empty());
  EXPECT_EQ(count, 0u);
}

TEST(ComponentsTest, RemovedEdgeSplitsComponent) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  PredicateId p = g.predicates().Intern("p");
  EdgeId e = g.AddEdge(a, p, b, {});
  size_t count = 0;
  WeaklyConnectedComponents(g, &count);
  EXPECT_EQ(count, 1u);
  ASSERT_TRUE(g.RemoveEdge(e).ok());
  WeaklyConnectedComponents(g, &count);
  EXPECT_EQ(count, 2u);
}

// ---------- PageRank ----------

TEST(PageRankTest, SumsToOneAndFavorsSinks) {
  PropertyGraph g;
  // Star into "hub": everyone points at it.
  VertexId hub = g.GetOrAddVertex("hub");
  PredicateId p = g.predicates().Intern("p");
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(g.GetOrAddVertex("s" + std::to_string(i)), p, hub, {});
  }
  auto rank = PageRank(g);
  double sum = 0;
  for (double r : rank) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (v != hub) {
      EXPECT_GT(rank[hub], rank[v]);
    }
  }
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  PropertyGraph g;
  PredicateId p = g.predicates().Intern("p");
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  VertexId c = g.GetOrAddVertex("c");
  g.AddEdge(a, p, b, {});
  g.AddEdge(b, p, c, {});
  g.AddEdge(c, p, a, {});
  auto rank = PageRank(g);
  EXPECT_NEAR(rank[a], rank[b], 1e-9);
  EXPECT_NEAR(rank[b], rank[c], 1e-9);
}

TEST(PageRankTest, EmptyGraphIsEmpty) {
  PropertyGraph g;
  EXPECT_TRUE(PageRank(g).empty());
}

// ---------- Ego network ----------

TEST(EgoNetworkTest, RadiusBoundsExpansion) {
  PropertyGraph g;
  PredicateId p = g.predicates().Intern("p");
  // Chain a -> b -> c -> d.
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  VertexId c = g.GetOrAddVertex("c");
  VertexId d = g.GetOrAddVertex("d");
  g.AddEdge(a, p, b, {});
  g.AddEdge(b, p, c, {});
  g.AddEdge(c, p, d, {});
  auto zero = EgoNetwork(g, a, 0);
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_EQ(zero[0], a);
  auto one = EgoNetwork(g, a, 1);
  EXPECT_EQ(one.size(), 2u);
  auto two = EgoNetwork(g, a, 2);
  EXPECT_EQ(two.size(), 3u);
  // In-edges count too: ego of d at radius 1 includes c.
  auto dr = EgoNetwork(g, d, 1);
  EXPECT_EQ(dr.size(), 2u);
  // Out-of-range center is safe.
  EXPECT_TRUE(EgoNetwork(g, 999, 1).empty());
}

// ---------- DOT export ----------

TEST(DotExportTest, WholeGraphContainsNodesAndColoredEdges) {
  PropertyGraph g;
  VertexId dji = g.GetOrAddVertex("DJI");
  VertexId phantom = g.GetOrAddVertex("Phantom 3");
  g.SetVertexType(dji, g.types().Intern("company"));
  PredicateId p = g.predicates().Intern("manufactures");
  EdgeMeta curated;
  curated.curated = true;
  g.AddEdge(dji, p, phantom, curated);
  EdgeMeta extracted;
  extracted.confidence = 0.75;
  g.AddEdge(phantom, g.predicates().Intern("madeBy"), dji, extracted);

  std::stringstream out;
  ASSERT_TRUE(WriteDot(g, {}, out).ok());
  std::string dot = out.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("DJI\\n(company)"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);   // curated
  EXPECT_NE(dot.find("color=blue"), std::string::npos);  // extracted
  EXPECT_NE(dot.find("(0.75)"), std::string::npos);      // confidence
}

TEST(DotExportTest, VertexFilterDropsOutsideEdges) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  VertexId c = g.GetOrAddVertex("c");
  PredicateId p = g.predicates().Intern("p");
  g.AddEdge(a, p, b, {});
  g.AddEdge(b, p, c, {});
  DotOptions options;
  options.vertices = {a, b};
  std::stringstream out;
  ASSERT_TRUE(WriteDot(g, options, out).ok());
  std::string dot = out.str();
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_EQ(dot.find("v1 -> v2"), std::string::npos);
  EXPECT_EQ(dot.find("\"c\""), std::string::npos);
}

TEST(DotExportTest, EscapesQuotesInLabels) {
  PropertyGraph g;
  VertexId v = g.GetOrAddVertex("The \"Best\" Drone");
  g.AddEdge(v, g.predicates().Intern("p"), g.GetOrAddVertex("x"), {});
  std::stringstream out;
  ASSERT_TRUE(WriteDot(g, {}, out).ok());
  EXPECT_NE(out.str().find("\\\"Best\\\""), std::string::npos);
}

}  // namespace
}  // namespace nous
