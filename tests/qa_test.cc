#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/property_graph.h"
#include "qa/path_baselines.h"
#include "qa/path_search.h"
#include "qa/query.h"
#include "qa/query_engine.h"

namespace nous {
namespace {

/// Builds a diamond KG with a planted *coherent* path and a shorter
/// but topically incoherent path:
///
///   src -> mid_good -> dst        (all in topic 0)
///   src -> mid_bad  -> dst        (mid_bad in topic 1)
///   src -> far1 -> far2 -> dst    (longer, topic 0)
class PathFixture : public ::testing::Test {
 protected:
  PathFixture() {
    src_ = Add("src", {0.9, 0.1});
    dst_ = Add("dst", {0.9, 0.1});
    mid_good_ = Add("mid_good", {0.9, 0.1});
    mid_bad_ = Add("mid_bad", {0.1, 0.9});
    far1_ = Add("far1", {0.7, 0.3});
    far2_ = Add("far2", {0.7, 0.3});
    p_ = graph_.predicates().Intern("rel");
    via_ = graph_.predicates().Intern("via");
    Connect(src_, p_, mid_good_, "wsj");
    Connect(mid_good_, via_, dst_, "web");
    Connect(src_, p_, mid_bad_, "wsj");
    Connect(mid_bad_, p_, dst_, "wsj");
    Connect(src_, p_, far1_, "wsj");
    Connect(far1_, p_, far2_, "web");
    Connect(far2_, p_, dst_, "blog");
  }

  VertexId Add(const std::string& name, std::vector<double> topics) {
    VertexId v = graph_.GetOrAddVertex(name);
    graph_.SetVertexTopics(v, std::move(topics));
    return v;
  }
  void Connect(VertexId s, PredicateId p, VertexId o,
               const std::string& source) {
    EdgeMeta meta;
    meta.source = graph_.sources().Intern(source);
    graph_.AddEdge(s, p, o, meta);
  }

  PropertyGraph graph_;
  VertexId src_, dst_, mid_good_, mid_bad_, far1_, far2_;
  PredicateId p_, via_;
};

TEST_F(PathFixture, FindsPathsRankedByCoherence) {
  PathSearch search(&graph_);
  auto paths = search.FindPaths(src_, dst_);
  ASSERT_GE(paths.size(), 2u);
  // Best path goes through mid_good (low divergence all along).
  ASSERT_EQ(paths[0].vertices.size(), 3u);
  EXPECT_EQ(paths[0].vertices[1], mid_good_);
  // Coherences ascend.
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].coherence, paths[i - 1].coherence);
  }
}

TEST_F(PathFixture, RelationshipConstraintFiltersFinalEdge) {
  PathSearch search(&graph_);
  auto paths = search.FindPaths(src_, dst_, via_);
  ASSERT_FALSE(paths.empty());
  for (const PathResult& path : paths) {
    EXPECT_EQ(graph_.Edge(path.edges.back()).predicate, via_);
  }
}

TEST_F(PathFixture, MultiSourceProvenanceCollected) {
  PathSearch search(&graph_);
  auto paths = search.FindPaths(src_, dst_);
  ASSERT_FALSE(paths.empty());
  // The winning path spans wsj + web.
  EXPECT_EQ(paths[0].sources.size(), 2u);
}

TEST_F(PathFixture, DegenerateQueriesReturnEmpty) {
  PathSearch search(&graph_);
  EXPECT_TRUE(search.FindPaths(src_, src_).empty());
  EXPECT_TRUE(search.FindPaths(9999, dst_).empty());
}

TEST_F(PathFixture, MaxHopsLimitsDepth) {
  PathSearchConfig config;
  config.max_hops = 1;
  PathSearch search(&graph_, config);
  EXPECT_TRUE(search.FindPaths(src_, dst_).empty());  // min path is 2
}

TEST_F(PathFixture, CoherenceComputation) {
  double c = ComputePathCoherence(graph_, {src_, mid_good_, dst_});
  double bad = ComputePathCoherence(graph_, {src_, mid_bad_, dst_});
  EXPECT_LT(c, bad);
  EXPECT_DOUBLE_EQ(ComputePathCoherence(graph_, {src_}), 0.0);
}

TEST_F(PathFixture, TopicGuidanceBeatsBfsOnCoherence) {
  PathSearchConfig config;
  config.top_k = 1;
  PathSearch search(&graph_, config);
  auto guided = search.FindPaths(src_, dst_);
  auto bfs = BfsShortestPaths(graph_, src_, dst_, 1, 4);
  ASSERT_FALSE(guided.empty());
  ASSERT_FALSE(bfs.empty());
  // BFS may return either 2-hop path; guided always returns the
  // coherent one.
  EXPECT_LE(guided[0].coherence, bfs[0].coherence);
  EXPECT_EQ(guided[0].vertices[1], mid_good_);
}

// Regression: equal-coherence paths used to land in std::sort's
// unspecified order, so the top-k cut could differ across platforms
// (and across shard counts once scatter-gather merges views). Ties
// now break lexicographically by (vertices, edges).
TEST(PathTieBreakTest, EqualCoherencePathsSortLexicographically) {
  PropertyGraph graph;
  VertexId src = graph.GetOrAddVertex("src");
  VertexId dst = graph.GetOrAddVertex("dst");
  // All mids share one topic distribution -> every 2-hop path has
  // identical coherence. Edges are inserted in *descending* mid id
  // order so discovery order disagrees with the required ordering.
  std::vector<VertexId> mids;
  for (const char* name : {"m1", "m2", "m3", "m4"}) {
    mids.push_back(graph.GetOrAddVertex(name));
  }
  for (VertexId v : {src, dst, mids[0], mids[1], mids[2], mids[3]}) {
    graph.SetVertexTopics(v, {1.0, 0.0});
  }
  PredicateId rel = graph.predicates().Intern("rel");
  EdgeMeta meta;
  meta.source = graph.sources().Intern("wsj");
  for (size_t i = mids.size(); i-- > 0;) {
    graph.AddEdge(src, rel, mids[i], meta);
    graph.AddEdge(mids[i], rel, dst, meta);
  }
  PathSearchConfig config;
  config.top_k = 3;  // ties decide who survives the cut
  PathSearch search(&graph, config);
  auto first = search.FindPaths(src, dst);
  ASSERT_EQ(first.size(), 3u);
  for (size_t i = 0; i + 1 < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].coherence, first[i + 1].coherence);
    EXPECT_LT(first[i].vertices, first[i + 1].vertices);
  }
  // Lowest mid ids win the cut, in ascending order.
  EXPECT_EQ(first[0].vertices[1], mids[0]);
  EXPECT_EQ(first[1].vertices[1], mids[1]);
  EXPECT_EQ(first[2].vertices[1], mids[2]);
  // And the ordering is reproducible call over call.
  for (int round = 0; round < 3; ++round) {
    auto again = search.FindPaths(src, dst);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(again[i].vertices, first[i].vertices);
      EXPECT_EQ(again[i].edges, first[i].edges);
    }
  }
}

// ---------- Baselines ----------

TEST_F(PathFixture, BfsFindsShortestFirst) {
  auto paths = BfsShortestPaths(graph_, src_, dst_, 5, 4);
  ASSERT_GE(paths.size(), 3u);
  EXPECT_EQ(paths[0].vertices.size(), 3u);  // 2-hop before 3-hop
  EXPECT_LE(paths[0].vertices.size(), paths.back().vertices.size());
}

TEST_F(PathFixture, BfsHonorsRelationshipConstraint) {
  auto paths = BfsShortestPaths(graph_, src_, dst_, 5, 4, via_);
  ASSERT_FALSE(paths.empty());
  for (const PathResult& path : paths) {
    EXPECT_EQ(graph_.Edge(path.edges.back()).predicate, via_);
  }
}

TEST_F(PathFixture, RandomWalkFindsSomePath) {
  auto paths = RandomWalkPaths(graph_, src_, dst_, 3, 4, 500, 42);
  ASSERT_FALSE(paths.empty());
  for (const PathResult& path : paths) {
    EXPECT_EQ(path.vertices.front(), src_);
    EXPECT_EQ(path.vertices.back(), dst_);
  }
}

// ---------- Query parser ----------

TEST(QueryParserTest, TrendingForms) {
  auto q = ParseQuery("what is trending?");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, QueryKind::kTrending);
  EXPECT_EQ(ParseQuery("trending")->kind, QueryKind::kTrending);
}

TEST(QueryParserTest, EntityForms) {
  auto q = ParseQuery("Tell me about DJI.");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, QueryKind::kEntity);
  EXPECT_EQ(q->entity_a, "DJI");
  auto q2 = ParseQuery("who is Tom Marino?");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->entity_a, "Tom Marino");
}

TEST(QueryParserTest, WhyQuestionExtractsConstraint) {
  auto q = ParseQuery("why would Windermere use drones?");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, QueryKind::kRelationship);
  EXPECT_EQ(q->entity_a, "Windermere");
  EXPECT_EQ(q->entity_b, "drones");
  EXPECT_EQ(q->predicate, "use");
}

TEST(QueryParserTest, ExplainWithVia) {
  auto q = ParseQuery("explain DJI and FAA via regulates");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, QueryKind::kRelationship);
  EXPECT_EQ(q->entity_a, "DJI");
  EXPECT_EQ(q->entity_b, "FAA");
  EXPECT_EQ(q->predicate, "regulates");
}

TEST(QueryParserTest, PathsForm) {
  auto q = ParseQuery("paths from DJI to Seattle");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, QueryKind::kSearch);
  EXPECT_EQ(q->entity_a, "DJI");
  EXPECT_EQ(q->entity_b, "Seattle");
}

TEST(QueryParserTest, PatternsForm) {
  EXPECT_EQ(ParseQuery("show patterns")->kind, QueryKind::kPattern);
}

TEST(QueryParserTest, RejectsUnknownText) {
  EXPECT_FALSE(ParseQuery("make me a sandwich").ok());
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("tell me about ").ok());
}

// ---------- Query engine ----------

class EngineFixture : public PathFixture {
 protected:
  EngineFixture() : engine_(&graph_, nullptr) {}
  QueryEngine engine_;
};

TEST_F(EngineFixture, EntityQueryListsFacts) {
  Query q;
  q.kind = QueryKind::kEntity;
  q.entity_a = "src";
  auto answer = engine_.Execute(q);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->facts.size(), 3u);  // src's three outgoing edges
  EXPECT_FALSE(answer->Render(graph_).empty());
}

TEST_F(EngineFixture, EntityQueryCaseInsensitive) {
  Query q;
  q.kind = QueryKind::kEntity;
  q.entity_a = "SRC";
  EXPECT_TRUE(engine_.Execute(q).ok());
}

TEST_F(EngineFixture, UnknownEntityIsNotFound) {
  Query q;
  q.kind = QueryKind::kEntity;
  q.entity_a = "Nonexistent Corp";
  auto answer = engine_.Execute(q);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineFixture, RelationshipQueryReturnsPathsWithSources) {
  auto answer = engine_.ExecuteText("explain src and dst");
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->paths.empty());
  EXPECT_GE(answer->distinct_sources, 2u);
}

TEST_F(EngineFixture, UnknownPredicateConstraintFallsBack) {
  auto answer = engine_.ExecuteText("explain src and dst via bogus_pred");
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->paths.empty());
}

TEST_F(EngineFixture, TrendingRanksActiveEntities) {
  auto answer = engine_.ExecuteText("what is trending");
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->hot_entities.empty());
  // src and dst each touch 3 stream edges; they lead the ranking.
  EXPECT_TRUE(answer->hot_entities[0].first == "src" ||
              answer->hot_entities[0].first == "dst");
  EXPECT_FALSE(answer->facts.empty());
}

TEST_F(EngineFixture, PatternQueryWithoutMinerIsEmpty) {
  auto answer = engine_.ExecuteText("show patterns");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->patterns.empty());
}

// ---------- Path-search extensions ----------

TEST_F(PathFixture, MinEdgeConfidenceFiltersUntrustedEdges) {
  // Lower the confidence of the good path's first edge; with a
  // confidence floor, only the other routes remain.
  auto good_edge = graph_.FindEdge(src_, p_, mid_good_);
  ASSERT_TRUE(good_edge.has_value());
  graph_.SetEdgeConfidence(*good_edge, 0.1);
  PathSearchConfig config;
  config.min_edge_confidence = 0.5;
  PathSearch search(&graph_, config);
  auto paths = search.FindPaths(src_, dst_);
  ASSERT_FALSE(paths.empty());
  for (const PathResult& path : paths) {
    for (EdgeId e : path.edges) {
      EXPECT_GE(graph_.Edge(e).meta.confidence, 0.5);
    }
    EXPECT_NE(path.vertices[1], mid_good_);
  }
}

TEST_F(PathFixture, ConstraintAnywhereMatchesInteriorEdges) {
  // `via_` appears only as mid_good -> dst. With a final-edge
  // constraint on a 3-hop budget it is reachable; extend the fixture
  // so `via_` appears mid-path: src -[via]-> far1 -> far2 -> dst.
  Connect(src_, via_, far1_, "extra");
  PathSearchConfig config;
  config.constraint_anywhere = true;
  config.top_k = 10;
  PathSearch search(&graph_, config);
  auto paths = search.FindPaths(src_, dst_, via_);
  ASSERT_FALSE(paths.empty());
  for (const PathResult& path : paths) {
    bool has_via = false;
    for (EdgeId e : path.edges) {
      if (graph_.Edge(e).predicate == via_) has_via = true;
    }
    EXPECT_TRUE(has_via);
  }
  // At least one returned path satisfies the constraint on a
  // non-final edge.
  bool interior = false;
  for (const PathResult& path : paths) {
    for (size_t i = 0; i + 1 < path.edges.size(); ++i) {
      if (graph_.Edge(path.edges[i]).predicate == via_) interior = true;
    }
  }
  EXPECT_TRUE(interior);
}

// ---------- Rising-trend ranking ----------

TEST(TrendingTest, RisingRankingPrefersEmergingEntities) {
  PropertyGraph g;
  PredicateId p = g.predicates().Intern("mentions");
  // "Steady Corp": active in both windows. "Newcomer Inc": active only
  // recently. Horizon 100: recent = [100, 200], previous = [0, 100).
  VertexId steady = g.GetOrAddVertex("Steady Corp");
  VertexId newcomer = g.GetOrAddVertex("Newcomer Inc");
  auto add = [&](VertexId v, Timestamp ts, int i) {
    EdgeMeta meta;
    meta.timestamp = ts;
    meta.source = g.sources().Intern("feed");
    g.AddEdge(v, p,
              g.GetOrAddVertex("other" + std::to_string(ts) +
                               std::to_string(i)),
              meta);
  };
  for (int i = 0; i < 5; ++i) add(steady, 50, i);    // previous window
  for (int i = 0; i < 5; ++i) add(steady, 150, i);   // recent window
  for (int i = 0; i < 4; ++i) add(newcomer, 160, i); // recent only
  add(steady, 200, 99);  // sets `newest`

  QueryEngineConfig rising;
  rising.trending_horizon = 100;
  rising.trending_rising = true;
  QueryEngine rising_engine(&g, nullptr, rising);
  auto answer = rising_engine.ExecuteText("what is trending");
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->hot_entities.empty());
  // Newcomer rises by +4, steady by +1 (6 recent - 5 previous).
  EXPECT_EQ(answer->hot_entities[0].first, "Newcomer Inc");

  QueryEngineConfig raw;
  raw.trending_horizon = 100;
  raw.trending_rising = false;
  QueryEngine raw_engine(&g, nullptr, raw);
  auto raw_answer = raw_engine.ExecuteText("what is trending");
  ASSERT_TRUE(raw_answer.ok());
  // Raw recent counts put the steady entity first (6 vs 4).
  EXPECT_EQ(raw_answer->hot_entities[0].first, "Steady Corp");
}

// Pins the single-pass `newest` computation: trending must anchor its
// recency window on the maximum live-edge timestamp, maintained
// incrementally by AddEdge and re-derived by RemoveEdge when the
// current maximum dies.
TEST(TrendingTest, WindowTracksMaxLiveTimestampThroughRemoval) {
  PropertyGraph g;
  PredicateId p = g.predicates().Intern("mentions");
  VertexId old_corp = g.GetOrAddVertex("Old Corp");
  VertexId new_corp = g.GetOrAddVertex("New Corp");
  auto add = [&](VertexId v, Timestamp ts, int i) {
    EdgeMeta meta;
    meta.timestamp = ts;
    meta.source = g.sources().Intern("feed");
    g.AddEdge(v, p,
              g.GetOrAddVertex("partner" + std::to_string(ts) +
                               std::to_string(i)),
              meta);
    return g.NumEdges() - 1;
  };
  add(old_corp, 100, 0);
  add(old_corp, 100, 1);
  EdgeId newest_edge = add(new_corp, 1000, 0);
  ASSERT_EQ(g.MaxEdgeTimestamp(), 1000);

  QueryEngineConfig config;
  config.trending_horizon = 90;
  QueryEngine engine(&g, nullptr, config);
  auto answer = engine.ExecuteText("what is trending");
  ASSERT_TRUE(answer.ok());
  // Window [910, 1000]: only the newest edge is recent.
  ASSERT_EQ(answer->facts.size(), 1u);
  EXPECT_EQ(answer->facts[0].subject, "New Corp");

  // Removing the maximum-timestamp edge re-anchors the window.
  ASSERT_TRUE(g.RemoveEdge(newest_edge).ok());
  EXPECT_EQ(g.MaxEdgeTimestamp(), 100);
  auto after = engine.ExecuteText("what is trending");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->facts.size(), 2u);
  for (const FactLine& f : after->facts) {
    EXPECT_EQ(f.subject, "Old Corp");
  }
}

// ---------- Rendering ----------

TEST(RenderTest, ExtractedFactWithoutSourceRendersCleanly) {
  PropertyGraph g;
  PredicateId p = g.predicates().Intern("acquired");
  VertexId a = g.GetOrAddVertex("Acme");
  VertexId b = g.GetOrAddVertex("Biz");
  EdgeMeta meta;  // no source interned: provenance is unknown
  g.AddEdge(a, p, b, meta);
  QueryEngine engine(&g, nullptr);
  auto answer = engine.ExecuteText("tell me about Acme");
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->facts.size(), 1u);
  EXPECT_TRUE(answer->facts[0].source.empty());
  std::string rendered = answer->Render(g);
  EXPECT_NE(rendered.find("[extracted]"), std::string::npos);
  // The dangling-bracket regression: never "[extracted from ]".
  EXPECT_EQ(rendered.find("[extracted from ]"), std::string::npos);
}

// ---------- Look-ahead vs confidence filter ----------

// The look-ahead regression: guidance must ignore edges the expansion
// step would refuse to traverse. The graph plants a lure vertex whose
// only route to the target is a low-confidence edge, and a detour
// whose route is trustworthy; with beam_width=1 the search lives or
// dies by the look-ahead's ranking.
//
//   src -(1.0)-> lure   -(0.2)-> dst     lure matches dst's topics
//   src -(0.9)-> detour -(0.9)-> dst     detour is topically farther
TEST(LookaheadTest, ConfidenceFilterAppliesToLookahead) {
  PropertyGraph g;
  PredicateId p = g.predicates().Intern("rel");
  auto add_vertex = [&](const std::string& name,
                        std::vector<double> topics) {
    VertexId v = g.GetOrAddVertex(name);
    g.SetVertexTopics(v, std::move(topics));
    return v;
  };
  VertexId src = add_vertex("src", {0.5, 0.5});
  VertexId dst = add_vertex("dst", {0.9, 0.1});
  VertexId lure = add_vertex("lure", {0.9, 0.1});
  VertexId detour = add_vertex("detour", {0.7, 0.3});
  auto connect = [&](VertexId s, VertexId o, double confidence) {
    EdgeMeta meta;
    meta.confidence = confidence;
    meta.source = g.sources().Intern("feed");
    g.AddEdge(s, p, o, meta);
  };
  connect(src, lure, 1.0);
  connect(lure, dst, 0.2);
  connect(src, detour, 0.9);
  connect(detour, dst, 0.9);

  PathSearchConfig config;
  config.beam_width = 1;
  config.max_hops = 2;
  config.min_edge_confidence = 0.5;
  PathSearch search(&g, config);
  auto paths = search.FindPaths(src, dst);
  // A look-ahead that counted the untraversable lure->dst edge would
  // rank the lure first, commit the one-slot beam to it, and find
  // nothing. Filter-aware guidance picks the trustworthy detour.
  ASSERT_EQ(paths.size(), 1u);
  ASSERT_EQ(paths[0].vertices.size(), 3u);
  EXPECT_EQ(paths[0].vertices[1], detour);
  for (EdgeId e : paths[0].edges) {
    EXPECT_GE(g.Edge(e).meta.confidence, 0.5);
  }
}

// constraint_anywhere composes with the confidence floor: an interior
// constraint edge below the floor must not count.
TEST_F(PathFixture, ConstraintAnywhereHonorsConfidenceFloor) {
  // Two routes carry `via_`: mid_good -> dst (will be untrusted) and
  // a fresh src -[via]-> far1 leg (trusted).
  Connect(src_, via_, far1_, "extra");
  auto via_edge = graph_.FindEdge(mid_good_, via_, dst_);
  ASSERT_TRUE(via_edge.has_value());
  graph_.SetEdgeConfidence(*via_edge, 0.1);
  PathSearchConfig config;
  config.constraint_anywhere = true;
  config.min_edge_confidence = 0.5;
  config.top_k = 10;
  PathSearch search(&graph_, config);
  auto paths = search.FindPaths(src_, dst_, via_);
  ASSERT_FALSE(paths.empty());
  for (const PathResult& path : paths) {
    bool has_trusted_via = false;
    for (EdgeId e : path.edges) {
      EXPECT_GE(graph_.Edge(e).meta.confidence, 0.5);
      if (graph_.Edge(e).predicate == via_) has_trusted_via = true;
    }
    EXPECT_TRUE(has_trusted_via);
  }
}

// The final-edge constraint uses the per-predicate adjacency
// partitions; a predicate that never closes into the target yields
// nothing, and the engine-level fallback (see
// UnknownPredicateConstraintFallsBack) re-runs unconstrained.
TEST_F(PathFixture, FinalEdgeConstraintUsesPredicatePartitions) {
  PathSearchConfig config;
  config.top_k = 10;
  PathSearch search(&graph_, config);
  // `via_` closes into dst only through mid_good.
  auto via_paths = search.FindPaths(src_, dst_, via_);
  ASSERT_FALSE(via_paths.empty());
  for (const PathResult& path : via_paths) {
    EXPECT_EQ(graph_.Edge(path.edges.back()).predicate, via_);
  }
  // A predicate with no edge into dst cannot close any path.
  PredicateId unused = graph_.predicates().Intern("unused_pred");
  EXPECT_TRUE(search.FindPaths(src_, dst_, unused).empty());
}

}  // namespace
}  // namespace nous
