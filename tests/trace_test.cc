// Request-scoped tracing: context propagation across ThreadPool
// boundaries, the striped span ring buffer, the slow-trace log
// trigger, and the resource sampler lifecycle.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "common/trace_context.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"

namespace nous {
namespace {

SpanRecord MakeRecord(uint64_t trace_id, uint64_t span_id,
                      uint64_t start_us) {
  SpanRecord record;
  record.trace_id = trace_id;
  record.span_id = span_id;
  record.name = "test";
  record.start_us = start_us;
  record.duration_us = 1;
  return record;
}

// ---------- TraceContext ----------

TEST(TraceContextTest, DefaultIsInvalidAndScopeRestores) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  TraceContext context;
  context.trace_id = 7;
  context.span_id = 9;
  {
    TraceContextScope scope(context);
    EXPECT_TRUE(CurrentTraceContext().valid());
    EXPECT_EQ(CurrentTraceContext().trace_id, 7u);
    EXPECT_EQ(CurrentTraceContext().span_id, 9u);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(TraceContextTest, NextTraceIdIsUniqueAndNonZero) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

// ---------- TraceSpan context management ----------

TEST(TraceSpanTest, RootSpanMintsTraceIdAndRestoresOnExit) {
  ASSERT_FALSE(CurrentTraceContext().valid());
  {
    TraceSpan span("root", nullptr);
    EXPECT_NE(span.trace_id(), 0u);
    EXPECT_NE(span.span_id(), 0u);
    EXPECT_EQ(span.parent_span_id(), 0u);
    EXPECT_EQ(CurrentTraceContext().trace_id, span.trace_id());
    EXPECT_EQ(CurrentTraceContext().span_id, span.span_id());
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(TraceSpanTest, NestedSpanParentsUnderEnclosingSpan) {
  TraceSpan root("root", nullptr);
  {
    TraceSpan child("child", nullptr);
    EXPECT_EQ(child.trace_id(), root.trace_id());
    EXPECT_EQ(child.parent_span_id(), root.span_id());
    EXPECT_NE(child.span_id(), root.span_id());
    EXPECT_EQ(CurrentTraceContext().span_id, child.span_id());
  }
  EXPECT_EQ(CurrentTraceContext().span_id, root.span_id());
}

TEST(TraceSpanTest, AttrsAreExportedWithKindsAndCapped) {
  TraceBuffer::Global().Clear();
  uint64_t span_id = 0;
  {
    NOUS_SPAN_VAR(span, "trace_test_attrs");
    span.Attr("docs", 42);
    span.Attr("ratio", 0.5);
    span.Attr("source", "wsj");
    for (int i = 0; i < 20; ++i) span.Attr("overflow", i);
    span_id = span.span_id();
  }
  std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  const SpanRecord* found = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.span_id == span_id) found = &s;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_STREQ(found->name, "trace_test_attrs");
  ASSERT_EQ(found->attrs.size(), TraceSpan::kMaxAttrs);
  EXPECT_STREQ(found->attrs[0].key, "docs");
  EXPECT_EQ(found->attrs[0].kind, SpanAttr::Kind::kInt);
  EXPECT_EQ(found->attrs[0].int_value, 42);
  EXPECT_EQ(found->attrs[1].kind, SpanAttr::Kind::kDouble);
  EXPECT_DOUBLE_EQ(found->attrs[1].double_value, 0.5);
  EXPECT_EQ(found->attrs[2].kind, SpanAttr::Kind::kString);
  EXPECT_EQ(found->attrs[2].string_value, "wsj");
}

// ---------- Propagation across ThreadPool ----------

TEST(TracePropagationTest, PoolTasksParentUnderSubmittingSpan) {
  TraceBuffer::Global().Clear();
  constexpr size_t kThreads = 8;
  constexpr size_t kTasks = 64;
  uint64_t root_trace_id = 0;
  uint64_t root_span_id = 0;
  {
    TraceSpan root("trace_test_root", nullptr);
    root_trace_id = root.trace_id();
    root_span_id = root.span_id();
    ThreadPool pool(kThreads);
    pool.ParallelFor(kTasks, [&](size_t) {
      TraceSpan child("trace_test_child", nullptr);
      EXPECT_EQ(child.trace_id(), root_trace_id);
      EXPECT_EQ(child.parent_span_id(), root_span_id);
      // Long enough that a single worker cannot drain every task
      // before the others wake, so the fan-out genuinely spreads.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    });
  }
  // The exported trace forms a single tree: one root, every child
  // linked to it, even though children ran on pool threads.
  std::vector<SpanRecord> trace =
      TraceBuffer::Global().CollectTrace(root_trace_id);
  ASSERT_EQ(trace.size(), kTasks + 1);
  size_t roots = 0, children = 0;
  std::set<uint32_t> thread_indexes;
  for (const SpanRecord& s : trace) {
    if (s.parent_span_id == 0) {
      ++roots;
      EXPECT_EQ(s.span_id, root_span_id);
    } else {
      ++children;
      EXPECT_EQ(s.parent_span_id, root_span_id);
      thread_indexes.insert(s.thread_index);
    }
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(children, kTasks);
  // Work genuinely fanned out across pool threads.
  EXPECT_GT(thread_indexes.size(), 1u);
}

TEST(TracePropagationTest, UntracedSubmitStaysUntraced) {
  ASSERT_FALSE(CurrentTraceContext().valid());
  ThreadPool pool(2);
  std::atomic<int> valid_count{0};
  pool.ParallelFor(16, [&](size_t) {
    if (CurrentTraceContext().valid()) valid_count.fetch_add(1);
  });
  EXPECT_EQ(valid_count.load(), 0);
}

TEST(TracePropagationTest, PoolThreadContextDoesNotLeakAcrossTasks) {
  ThreadPool pool(1);  // one worker: tasks run back to back
  {
    TraceSpan root("trace_test_leak_root", nullptr);
    pool.Submit([] { TraceSpan child("trace_test_leak_child", nullptr); });
    pool.Wait();
  }
  std::atomic<bool> leaked{false};
  pool.Submit([&] { leaked.store(CurrentTraceContext().valid()); });
  pool.Wait();
  EXPECT_FALSE(leaked.load());
}

// ---------- TraceBuffer ----------

TEST(TraceBufferTest, WraparoundKeepsNewestAndCountsAllAppends) {
  TraceBuffer buffer(16);
  EXPECT_EQ(buffer.capacity(), 16u);
  constexpr uint64_t kAppends = 100;
  for (uint64_t i = 1; i <= kAppends; ++i) {
    buffer.Append(MakeRecord(/*trace_id=*/1, /*span_id=*/i,
                             /*start_us=*/i));
  }
  EXPECT_EQ(buffer.total_appended(), kAppends);
  std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_LE(spans.size(), buffer.capacity());
  // Survivors are the newest appends (single-thread appends land on
  // one stripe, which keeps its most recent records).
  for (const SpanRecord& s : spans) {
    EXPECT_GT(s.span_id, kAppends - buffer.capacity());
  }
  // Ordered by start time.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_us, spans[i].start_us);
  }
}

TEST(TraceBufferTest, SnapshotLimitReturnsMostRecentlyStarted) {
  TraceBuffer buffer(64);
  for (uint64_t i = 1; i <= 10; ++i) {
    buffer.Append(MakeRecord(1, i, /*start_us=*/i * 100));
  }
  std::vector<SpanRecord> spans = buffer.Snapshot(/*limit=*/3);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].start_us, 800u);
  EXPECT_EQ(spans[2].start_us, 1000u);
}

TEST(TraceBufferTest, CollectTraceFiltersById) {
  TraceBuffer buffer(64);
  buffer.Append(MakeRecord(5, 1, 10));
  buffer.Append(MakeRecord(6, 2, 20));
  buffer.Append(MakeRecord(5, 3, 30));
  std::vector<SpanRecord> trace = buffer.CollectTrace(5);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].span_id, 1u);
  EXPECT_EQ(trace[1].span_id, 3u);
  EXPECT_TRUE(buffer.CollectTrace(999).empty());
}

TEST(TraceBufferTest, ConcurrentAppendLosesNothingToRaces) {
  // A small buffer hammered from many threads: every append must be
  // counted, the snapshot stays within capacity, and nothing crashes
  // (run under TSan to check the striped locking).
  TraceBuffer buffer(32);
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 2000;
  {
    ThreadPool pool(kThreads);
    pool.ParallelFor(kThreads, [&buffer](size_t t) {
      for (size_t i = 0; i < kPerThread; ++i) {
        buffer.Append(MakeRecord(t + 1, i + 1, i));
      }
    });
  }
  EXPECT_EQ(buffer.total_appended(), kThreads * kPerThread);
  std::vector<SpanRecord> spans = buffer.Snapshot();
  EXPECT_LE(spans.size(), buffer.capacity());
  EXPECT_FALSE(spans.empty());
}

TEST(TraceBufferTest, ClearEmptiesBufferButKeepsCapacity) {
  TraceBuffer buffer(16);
  for (uint64_t i = 1; i <= 8; ++i) buffer.Append(MakeRecord(1, i, i));
  buffer.Clear();
  EXPECT_TRUE(buffer.Snapshot().empty());
  EXPECT_EQ(buffer.capacity(), 16u);
  buffer.Append(MakeRecord(1, 99, 1));
  EXPECT_EQ(buffer.Snapshot().size(), 1u);
}

// ---------- Slow-trace log ----------

TEST(SlowTraceTest, RootSpanOverThresholdIncrementsCounter) {
  Counter* slow =
      MetricsRegistry::Global().GetCounter("nous_slow_trace_total");
  double saved = SlowTraceThresholdMs();

  // Generous threshold: a fast span does not trip it.
  SetSlowTraceThresholdMs(60000.0);
  uint64_t before = slow->Value();
  { TraceSpan fast("trace_test_fast", nullptr); }
  EXPECT_EQ(slow->Value(), before);

  // Tiny threshold: a root span that sleeps past it trips it once.
  SetSlowTraceThresholdMs(0.01);
  before = slow->Value();
  {
    TraceSpan slow_span("trace_test_slow", nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(slow->Value(), before + 1);

  // Child spans never trigger the log, only the root does.
  before = slow->Value();
  {
    SetSlowTraceThresholdMs(60000.0);
    TraceSpan root("trace_test_slow_root", nullptr);
    SetSlowTraceThresholdMs(0.01);
    {
      TraceSpan child("trace_test_slow_child", nullptr);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(slow->Value(), before);
    SetSlowTraceThresholdMs(60000.0);
  }
  EXPECT_EQ(slow->Value(), before);

  SetSlowTraceThresholdMs(saved);
}

TEST(SlowTraceTest, NonPositiveThresholdDisables) {
  Counter* slow =
      MetricsRegistry::Global().GetCounter("nous_slow_trace_total");
  double saved = SlowTraceThresholdMs();
  SetSlowTraceThresholdMs(0.0);
  uint64_t before = slow->Value();
  {
    TraceSpan span("trace_test_disabled", nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(slow->Value(), before);
  SetSlowTraceThresholdMs(saved);
}

// ---------- ResourceSampler ----------

TEST(ResourceSamplerTest, ReadsProcessMemory) {
  ProcMemoryStats stats;
  ASSERT_TRUE(ReadProcMemoryStats(&stats));
  EXPECT_GT(stats.rss_bytes, 0u);
  EXPECT_GT(stats.peak_rss_bytes, 0u);
  EXPECT_GE(stats.peak_rss_bytes, stats.rss_bytes);
  EXPECT_GT(PeakRssBytes(), 0u);
}

TEST(ResourceSamplerTest, SampleOncePublishesGaugesAndRunsProbes) {
  std::atomic<int> probe_runs{0};
  ResourceSampler sampler(std::chrono::milliseconds(60000));
  sampler.AddProbe([&probe_runs] { probe_runs.fetch_add(1); });
  sampler.SampleOnce();
  EXPECT_EQ(probe_runs.load(), 1);
  Gauge* rss =
      MetricsRegistry::Global().GetGauge("nous_process_rss_bytes");
  Gauge* peak =
      MetricsRegistry::Global().GetGauge("nous_process_peak_rss_bytes");
  EXPECT_GT(rss->Value(), 0.0);
  EXPECT_GE(peak->Value(), rss->Value());
}

TEST(ResourceSamplerTest, StartStopIsIdempotentAndLeakFree) {
  // Run under ASan/TSan: repeated start/stop cycles must join the
  // thread cleanly every time and never leak or race.
  std::atomic<int> probe_runs{0};
  ResourceSampler sampler(std::chrono::milliseconds(1));
  sampler.AddProbe([&probe_runs] { probe_runs.fetch_add(1); });
  sampler.Start();
  sampler.Start();  // no-op: already running
  while (probe_runs.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  sampler.Stop();  // no-op: already stopped
  int after_stop = probe_runs.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(probe_runs.load(), after_stop);
  // Restartable after Stop.
  sampler.Start();
  while (probe_runs.load() <= after_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
}

TEST(ResourceSamplerTest, DestructorStopsRunningSampler) {
  std::atomic<int> probe_runs{0};
  {
    ResourceSampler sampler(std::chrono::milliseconds(1));
    sampler.AddProbe([&probe_runs] { probe_runs.fetch_add(1); });
    sampler.Start();
    while (probe_runs.load() < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // destructor joins the thread; ASan flags any leak
  SUCCEED();
}

}  // namespace
}  // namespace nous
