// Parameterized pipeline invariants: across corpus-noise levels and
// curated-coverage fractions, the construction pipeline must uphold
// its contracts — bounded confidences, full provenance, consistent
// counters, monotone-ish quality.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "common/status.h"

namespace nous {
namespace {

struct PipelineCase {
  double noise;     // pronoun/alias/passive knob
  double coverage;  // curated entity coverage
};

class PipelineParamTest
    : public ::testing::TestWithParam<PipelineCase> {
 protected:
  static DroneWorldConfig WorldConfig() {
    DroneWorldConfig config;
    config.num_companies = 12;
    config.num_people = 8;
    config.num_products = 8;
    config.num_events = 70;
    config.seed = 3;
    return config;
  }
};

TEST_P(PipelineParamTest, InvariantsHoldUnderSweep) {
  const PipelineCase& param = GetParam();
  WorldModel world = WorldModel::BuildDroneWorld(WorldConfig());
  KbCoverage coverage;
  coverage.entity_coverage = param.coverage;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(),
                                coverage);
  CorpusConfig corpus;
  corpus.pronoun_rate = param.noise;
  corpus.alias_rate = param.noise * 0.6;
  corpus.passive_rate = param.noise * 0.6;
  corpus.distractor_rate = param.noise;
  auto articles = ArticleGenerator(&world, corpus).GenerateArticles();

  Nous::Options options;
  options.pipeline.lda.iterations = 5;
  options.pipeline.bpr.epochs = 2;
  Nous nous(&kb, options);
  for (const Article& a : articles) NOUS_CHECK_OK(nous.Ingest(a));
  nous.Finalize();

  const PropertyGraph& g = nous.graph();
  const PipelineStats& stats = nous.stats();

  // 1. Every edge carries bounded confidence and a source.
  size_t curated = 0, extracted = 0;
  g.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
    EXPECT_GE(rec.meta.confidence, 0.0);
    EXPECT_LE(rec.meta.confidence, 1.0);
    EXPECT_NE(rec.meta.source, kInvalidSource);
    (rec.meta.curated ? curated : extracted) += 1;
  });
  // 2. Curated facts are never lost or duplicated.
  EXPECT_EQ(curated, kb.facts().size());
  // 3. Accepted triples equal the live extracted edges.
  EXPECT_EQ(extracted, stats.accepted_triples);
  // 4. Counter conservation: every extraction is accounted for.
  EXPECT_GE(stats.extractions,
            stats.accepted_triples + stats.deduped_triples +
                stats.dropped_low_confidence + stats.dropped_unmapped +
                stats.retractions);
  // 5. Mapped + raw-kept == accepted + deduped (each kept frame was
  //    one or the other).
  EXPECT_EQ(stats.mapped_triples + stats.unmapped_kept,
            stats.accepted_triples + stats.deduped_triples);
  // 6. Documents all processed.
  EXPECT_EQ(stats.documents, articles.size());
  // 7. Topics assigned to curated entities after Finalize (any
  // curated entity: at low coverage DJI itself may not be curated).
  ASSERT_FALSE(kb.entities().empty());
  auto anchor = g.FindVertex(kb.entities()[0].name);
  ASSERT_TRUE(anchor.has_value());
  EXPECT_FALSE(g.VertexTopics(*anchor).empty());
}

TEST_P(PipelineParamTest, RecallDegradesGracefullyWithNoise) {
  const PipelineCase& param = GetParam();
  WorldModel world = WorldModel::BuildDroneWorld(WorldConfig());
  KbCoverage coverage;
  coverage.entity_coverage = param.coverage;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(),
                                coverage);
  CorpusConfig corpus;
  corpus.pronoun_rate = param.noise;
  corpus.alias_rate = param.noise * 0.6;
  auto articles = ArticleGenerator(&world, corpus).GenerateArticles();
  Nous::Options options;
  options.pipeline.lda.iterations = 3;
  options.pipeline.bpr.epochs = 1;
  Nous nous(&kb, options);
  for (const Article& a : articles) NOUS_CHECK_OK(nous.Ingest(a));

  size_t gold_total = 0, recovered = 0;
  const PropertyGraph& g = nous.graph();
  for (const Article& a : articles) {
    for (const TimedTriple& gold : a.gold) {
      ++gold_total;
      auto s = g.FindVertex(gold.triple.subject);
      auto o = g.FindVertex(gold.triple.object);
      auto p = g.predicates().Lookup(gold.triple.predicate);
      if (s && o && p && g.HasEdge(*s, *p, *o)) ++recovered;
    }
  }
  double recall =
      static_cast<double>(recovered) / static_cast<double>(gold_total);
  // Floors chosen with headroom: clean corpora recover most facts;
  // heavy noise still recovers a solid majority.
  double floor = param.noise <= 0.2 ? 0.7 : 0.45;
  EXPECT_GT(recall, floor) << "noise=" << param.noise
                           << " coverage=" << param.coverage
                           << " recall=" << recall;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineParamTest,
    ::testing::Values(PipelineCase{0.0, 0.3}, PipelineCase{0.0, 0.8},
                      PipelineCase{0.2, 0.5}, PipelineCase{0.5, 0.3},
                      PipelineCase{0.5, 0.8}, PipelineCase{0.8, 0.5}));

}  // namespace
}  // namespace nous
