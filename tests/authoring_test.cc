// Custom-domain authoring (demo features 1 & 3): lexicon, gazetteer,
// and predicate-seed loading from text streams, plus end-to-end
// pipeline determinism.

#include <sstream>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/nous.h"
#include "graph/graph_generator.h"
#include "graph/temporal_window.h"
#include "mining/arabesque_sim.h"
#include "mining/streaming_miner.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "mapping/predicate_mapper.h"
#include "text/lexicon.h"
#include "text/ner.h"
#include "text/openie.h"
#include "common/status.h"

namespace nous {
namespace {

// ---------- Lexicon loading ----------

TEST(LexiconLoadTest, VerbsAdjectivesStopwords) {
  Lexicon lexicon = Lexicon::Default();
  std::stringstream in(
      "# custom medical domain\n"
      "V\tprescribe\tprescribes,prescribed,prescribing\n"
      "A\tchronic\n"
      "S\tpatient\n");
  ASSERT_TRUE(lexicon.LoadFromStream(in).ok());
  EXPECT_EQ(lexicon.VerbBase("prescribed"), "prescribe");
  EXPECT_EQ(lexicon.VerbBase("prescribe"), "prescribe");
  EXPECT_TRUE(lexicon.IsAdjective("chronic"));
  EXPECT_TRUE(lexicon.IsStopword("patient"));
}

TEST(LexiconLoadTest, RejectsMalformedLines) {
  Lexicon lexicon;
  std::stringstream bad1("V\tonly-base\n");
  EXPECT_FALSE(lexicon.LoadFromStream(bad1).ok());
  std::stringstream bad2("X\twhat\n");
  EXPECT_FALSE(lexicon.LoadFromStream(bad2).ok());
}

TEST(LexiconLoadTest, LoadedVerbDrivesExtraction) {
  Lexicon lexicon = Lexicon::Default();
  std::stringstream in("V\tprescribe\tprescribes,prescribed\n");
  ASSERT_TRUE(lexicon.LoadFromStream(in).ok());
  Ner ner(&lexicon);
  ner.AddGazetteerEntry("Dr Chen", EntityType::kPerson);
  ner.AddGazetteerEntry("Ritalin", EntityType::kProduct);
  OpenIeExtractor extractor(&lexicon, &ner, {});
  auto exs = extractor.ExtractFromText("Dr Chen prescribed Ritalin.");
  ASSERT_EQ(exs.size(), 1u);
  EXPECT_EQ(exs[0].relation, "prescribe");
}

// ---------- Gazetteer loading ----------

TEST(GazetteerLoadTest, TypesAndFirstNames) {
  Lexicon lexicon = Lexicon::Default();
  Ner ner(&lexicon);
  std::stringstream in(
      "ORG\tMayo Clinic\n"
      "PERSON\tJohn Chen\n"
      "LOC\tRochester\n"
      "PRODUCT\tRitalin\n"
      "FIRSTNAME\tJohn\n"
      "# comment\n");
  ASSERT_TRUE(ner.LoadGazetteerFromStream(in).ok());
  EXPECT_EQ(ner.GazetteerType("mayo clinic"), EntityType::kOrganization);
  EXPECT_EQ(ner.GazetteerType("Rochester"), EntityType::kLocation);
  EXPECT_EQ(ner.gazetteer_size(), 4u);
}

TEST(GazetteerLoadTest, RejectsUnknownTypeAndMissingName) {
  Lexicon lexicon = Lexicon::Default();
  Ner ner(&lexicon);
  std::stringstream bad1("ALIEN\tZorg\n");
  EXPECT_FALSE(ner.LoadGazetteerFromStream(bad1).ok());
  std::stringstream bad2("ORG\n");
  EXPECT_FALSE(ner.LoadGazetteerFromStream(bad2).ok());
}

// ---------- Seed loading ----------

TEST(SeedLoadTest, SeedsMapPhrases) {
  Ontology ontology = Ontology::DroneDefault();
  PredicateMapper mapper(&ontology);
  std::stringstream in(
      "acquired\tsnap_up\t2.0\n"
      "uses\toperate\n");
  ASSERT_TRUE(mapper.LoadSeedsFromStream(in).ok());
  EXPECT_TRUE(mapper.Map("snap_up", "company", "company").mapped);
  EXPECT_DOUBLE_EQ(mapper.EvidenceWeight("acquired", "snap_up"), 2.0);
  EXPECT_TRUE(mapper.Map("operate", "company", "product").mapped);
}

TEST(SeedLoadTest, RejectsUnknownPredicateAndBadWeight) {
  Ontology ontology = Ontology::DroneDefault();
  PredicateMapper mapper(&ontology);
  std::stringstream bad1("notAPredicate\tphrase\n");
  EXPECT_FALSE(mapper.LoadSeedsFromStream(bad1).ok());
  std::stringstream bad2("acquired\tphrase\t-1\n");
  EXPECT_FALSE(mapper.LoadSeedsFromStream(bad2).ok());
}

// ---------- Pipeline determinism ----------

TEST(DeterminismTest, IdenticalRunsProduceIdenticalGraphs) {
  DroneWorldConfig wc;
  wc.num_companies = 10;
  wc.num_events = 60;
  WorldModel world = WorldModel::BuildDroneWorld(wc);
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), {});
  auto articles = ArticleGenerator(&world, CorpusConfig{}).GenerateArticles();

  auto run = [&]() {
    Nous::Options options;
    options.pipeline.lda.iterations = 10;
    options.pipeline.bpr.epochs = 3;
    Nous nous(&kb, options);
    for (const Article& a : articles) NOUS_CHECK_OK(nous.Ingest(a));
    nous.Finalize();
    std::multiset<std::string> edges;
    const PropertyGraph& g = nous.graph();
    g.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
      edges.insert(StrFormat(
          "%s|%s|%s|%.12f", g.VertexLabel(rec.subject).c_str(),
          g.predicates().GetString(rec.predicate).c_str(),
          g.VertexLabel(rec.object).c_str(), rec.meta.confidence));
    });
    return edges;
  };
  EXPECT_EQ(run(), run());
}

// ---------- Performance guard ----------

TEST(PerformanceGuardTest, StreamingMinerNotSlowerThanReEnumeration) {
  // Regression guard for the §3.5 claim: over a window's worth of
  // slides, incremental maintenance must beat full re-enumeration by
  // a comfortable margin (generous bound to stay robust on loaded
  // machines).
  PlantedStreamConfig config;
  config.num_events = 4000;
  config.noise_entities = 500;
  config.patterns = {{"a", {"p", "q"}, 0.05}};
  auto stream = GeneratePlantedStream(config);
  MinerConfig mc;
  mc.max_edges = 2;
  mc.min_support = 8;
  PropertyGraph graph;
  TemporalWindow window(&graph, 2000);
  StreamingMiner miner(mc);
  window.AddListener(&miner);
  double stream_seconds = 0, baseline_seconds = 0;
  size_t slides = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    WallTimer t;
    window.Add(stream[i]);
    stream_seconds += t.ElapsedSeconds();
    if (i >= 2000 && i % 200 == 0) {
      ++slides;
      WallTimer t2;
      MineArabesqueSim(graph, mc);
      baseline_seconds += t2.ElapsedSeconds();
    }
  }
  double stream_per_slide =
      stream_seconds / (static_cast<double>(stream.size()) / 200.0);
  double baseline_per_slide =
      baseline_seconds / static_cast<double>(slides);
  EXPECT_LT(stream_per_slide, baseline_per_slide)
      << "incremental " << stream_per_slide << "s vs re-enumeration "
      << baseline_per_slide << "s per slide";
}

}  // namespace
}  // namespace nous
