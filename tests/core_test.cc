#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/nous.h"
#include "core/pipeline.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "graph/graph_io.h"
#include "kb/kb_generator.h"
#include "common/status.h"

namespace nous {
namespace {

/// Small end-to-end world shared by the integration tests.
class NousFixture : public ::testing::Test {
 protected:
  NousFixture()
      : world_(WorldModel::BuildDroneWorld(WorldConfig())),
        kb_(BuildCuratedKb(world_, Ontology::DroneDefault(), Coverage())) {}

  static DroneWorldConfig WorldConfig() {
    DroneWorldConfig config;
    config.num_companies = 12;
    config.num_people = 8;
    config.num_products = 8;
    config.num_events = 80;
    config.seed = 7;
    return config;
  }
  static KbCoverage Coverage() {
    KbCoverage coverage;
    coverage.entity_coverage = 0.6;
    coverage.fact_coverage = 0.9;
    return coverage;
  }
  static Nous::Options FastOptions() {
    Nous::Options options;
    options.pipeline.lda.iterations = 40;
    options.pipeline.bpr.epochs = 5;
    options.pipeline.miner.min_support = 3;
    return options;
  }
  std::vector<Article> MakeArticles(double noise = 0.2) {
    CorpusConfig config;
    config.pronoun_rate = noise;
    config.alias_rate = noise;
    config.passive_rate = noise;
    return ArticleGenerator(&world_, config).GenerateArticles();
  }

  WorldModel world_;
  CuratedKb kb_;
};

TEST_F(NousFixture, CuratedKbLoadedAtConstruction) {
  Nous nous(&kb_, FastOptions());
  GraphStats stats = nous.ComputeStats();
  EXPECT_EQ(stats.curated_edges, kb_.facts().size());
  EXPECT_EQ(stats.extracted_edges, 0u);
  EXPECT_GE(stats.vertices, kb_.entities().size());
}

TEST_F(NousFixture, StreamIngestionGrowsFusedKg) {
  Nous nous(&kb_, FastOptions());
  DocumentStream stream(MakeArticles());
  NOUS_CHECK_OK(nous.IngestStream(&stream));

  GraphStats stats = nous.ComputeStats();
  EXPECT_GT(stats.extracted_edges, 20u);
  EXPECT_EQ(stats.curated_edges, kb_.facts().size());
  // Confidence always in [0, 1]; provenance always present.
  nous.graph().ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
    EXPECT_GE(rec.meta.confidence, 0.0);
    EXPECT_LE(rec.meta.confidence, 1.0);
    EXPECT_NE(rec.meta.source, kInvalidSource);
  });
  const PipelineStats& ps = nous.stats();
  EXPECT_EQ(ps.documents, stream.TotalCount());
  EXPECT_GT(ps.extractions, 0u);
  EXPECT_GT(ps.mapped_triples, 0u);
  EXPECT_FALSE(ps.ToString().empty());
}

TEST_F(NousFixture, GoldFactRecoveryOnCleanCorpus) {
  Nous nous(&kb_, FastOptions());
  auto articles = MakeArticles(/*noise=*/0.0);
  size_t gold_total = 0;
  for (const Article& a : articles) gold_total += a.gold.size();
  DocumentStream stream(articles);
  NOUS_CHECK_OK(nous.IngestStream(&stream));

  // A gold fact counts as recovered if the fused KG has an edge
  // (subject, predicate, object) under the canonical names.
  const PropertyGraph& g = nous.graph();
  size_t recovered = 0;
  for (const Article& a : articles) {
    for (const TimedTriple& gold : a.gold) {
      auto s = g.FindVertex(gold.triple.subject);
      auto o = g.FindVertex(gold.triple.object);
      auto p = g.predicates().Lookup(gold.triple.predicate);
      if (s && o && p && g.HasEdge(*s, *p, *o)) ++recovered;
    }
  }
  double recall = static_cast<double>(recovered) /
                  static_cast<double>(gold_total);
  EXPECT_GT(recall, 0.6) << "end-to-end recall " << recall << " ("
                         << recovered << "/" << gold_total << ")";
}

TEST_F(NousFixture, EntityQueryAfterIngestion) {
  Nous nous(&kb_, FastOptions());
  DocumentStream stream(MakeArticles());
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  auto answer = nous.Ask("tell me about DJI");
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->facts.empty());
  // Curated facts sort before extracted ones.
  bool seen_extracted = false;
  for (const FactLine& f : answer->facts) {
    if (!f.curated) seen_extracted = true;
    if (f.curated) {
      EXPECT_FALSE(seen_extracted);
    }
  }
}

TEST_F(NousFixture, TrendingAndPatternQueriesWork) {
  Nous nous(&kb_, FastOptions());
  DocumentStream stream(MakeArticles());
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  auto trending = nous.Ask("what is trending");
  ASSERT_TRUE(trending.ok());
  EXPECT_FALSE(trending->hot_entities.empty());
  auto patterns = nous.Ask("show patterns");
  ASSERT_TRUE(patterns.ok());  // may be empty but must not fail
}

TEST_F(NousFixture, RelationshipAnswerSpansMultipleSources) {
  Nous nous(&kb_, FastOptions());
  DocumentStream stream(MakeArticles());
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  // Find any pair connected by a 2-hop path; ask for an explanation.
  const PropertyGraph& g = nous.graph();
  VertexId origin = kInvalidVertex;
  VertexId two_hops = kInvalidVertex;
  for (VertexId v = 0; v < g.NumVertices() && two_hops == kInvalidVertex;
       ++v) {
    for (const AdjEntry& a : g.OutEdges(v)) {
      for (const AdjEntry& b : g.OutEdges(a.neighbor)) {
        if (b.neighbor != v) {
          origin = v;
          two_hops = b.neighbor;
          break;
        }
      }
      if (two_hops != kInvalidVertex) break;
    }
  }
  ASSERT_NE(two_hops, kInvalidVertex);
  auto answer = nous.Ask("explain " + g.VertexLabel(origin) + " and " +
                         g.VertexLabel(two_hops));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->paths.empty());
  EXPECT_GE(answer->distinct_sources, 1u);
}

TEST_F(NousFixture, FinalizeAssignsTopics) {
  Nous nous(&kb_, FastOptions());
  DocumentStream stream(MakeArticles());
  NOUS_CHECK_OK(nous.IngestStream(&stream));  // finalizes
  auto dji = nous.graph().FindVertex("DJI");
  ASSERT_TRUE(dji.has_value());
  EXPECT_EQ(nous.graph().VertexTopics(*dji).size(),
            FastOptions().pipeline.lda.num_topics);
}

TEST_F(NousFixture, MinerDiscoversWindowPatterns) {
  Nous::Options options = FastOptions();
  options.pipeline.miner.min_support = 2;
  options.pipeline.miner.use_vertex_types = true;
  Nous nous(&kb_, options);
  DocumentStream stream(MakeArticles());
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  ASSERT_NE(nous.miner(), nullptr);
  EXPECT_GT(nous.miner()->num_tracked_patterns(), 0u);
  EXPECT_FALSE(nous.miner()->FrequentPatterns().empty());
}

TEST_F(NousFixture, MiningCanBeDisabled) {
  Nous::Options options = FastOptions();
  options.pipeline.enable_mining = false;
  Nous nous(&kb_, options);
  DocumentStream stream(MakeArticles());
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  EXPECT_EQ(nous.miner(), nullptr);
  auto patterns = nous.Ask("show patterns");
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->patterns.empty());
}

TEST_F(NousFixture, DedupStrengthensRepeatedFacts) {
  Nous nous(&kb_, FastOptions());
  Date d{2014, 3, 5};
  NOUS_CHECK_OK(nous.IngestText("DJI acquired SkyWard Labs.", d, "wsj"));
  const PipelineStats& s1 = nous.stats();
  size_t accepted_before = s1.accepted_triples;
  NOUS_CHECK_OK(nous.IngestText("DJI acquired SkyWard Labs.", d, "technews"));
  EXPECT_EQ(nous.stats().accepted_triples, accepted_before);
  EXPECT_GE(nous.stats().deduped_triples, 1u);
}

TEST_F(NousFixture, LowConfidenceExtractionRejected) {
  Nous::Options options = FastOptions();
  options.pipeline.min_accept_confidence = 0.99;  // nothing passes
  Nous nous(&kb_, options);
  NOUS_CHECK_OK(nous.IngestText("DJI acquired SkyWard Labs.", Date{2014, 3, 5}, "wsj"));
  EXPECT_EQ(nous.stats().accepted_triples, 0u);
  EXPECT_GT(nous.stats().dropped_low_confidence, 0u);
}

TEST_F(NousFixture, UnmappedRelationsKeptAsRawPredicates) {
  Nous nous(&kb_, FastOptions());
  // "tested" maps to no ontology predicate (seeded phrases only).
  NOUS_CHECK_OK(nous.IngestText("DJI tested Phantom 3.", Date{2014, 3, 5}, "wsj"));
  EXPECT_GE(nous.stats().unmapped_kept, 1u);
  EXPECT_TRUE(
      nous.graph().predicates().Lookup("raw:test").has_value());
}

TEST_F(NousFixture, DistantSupervisionAlignsAgainstCuratedFacts) {
  Nous nous(&kb_, FastOptions());
  // Find a curated headquarteredIn fact and report it with an
  // unseeded phrase; alignment should add evidence for the phrase.
  ASSERT_FALSE(kb_.facts().empty());
  const KbFact* hq = nullptr;
  for (const KbFact& f : kb_.facts()) {
    if (f.predicate == "headquarteredIn") {
      hq = &f;
      break;
    }
  }
  ASSERT_NE(hq, nullptr);
  const std::string& company = kb_.entities()[hq->subject].name;
  const std::string& city = kb_.entities()[hq->object].name;
  double before =
      nous.pipeline().mapper().EvidenceWeight("headquarteredIn",
                                              "operate_in");
  NOUS_CHECK_OK(nous.IngestText(company + " operates in " + city + ".",
                  Date{2014, 1, 1}, "wsj"));
  double after =
      nous.pipeline().mapper().EvidenceWeight("headquarteredIn",
                                              "operate_in");
  EXPECT_GT(after, before);
  EXPECT_GT(nous.stats().ds_alignments, 0u);
}

TEST_F(NousFixture, NegationRetractsExistingFact) {
  Nous nous(&kb_, FastOptions());
  Date d{2014, 3, 5};
  NOUS_CHECK_OK(nous.IngestText("DJI acquired Talon Works.", d, "wsj"));
  double before = -1;
  nous.graph().ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
    if (!rec.meta.curated) before = rec.meta.confidence;
  });
  ASSERT_GT(before, 0);
  NOUS_CHECK_OK(nous.IngestText("DJI never acquired Talon Works.", d, "technews"));
  double after = -1;
  nous.graph().ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
    if (!rec.meta.curated) after = rec.meta.confidence;
  });
  EXPECT_NEAR(after, before * 0.5, 1e-9);
  EXPECT_EQ(nous.stats().retractions, 1u);
  // The negation added no new edge.
  EXPECT_EQ(nous.stats().accepted_triples, 1u);
}

TEST_F(NousFixture, NegationOfUnknownFactAddsNothing) {
  Nous nous(&kb_, FastOptions());
  NOUS_CHECK_OK(nous.IngestText("DJI never acquired Talon Works.", Date{2014, 1, 1},
                  "wsj"));
  EXPECT_EQ(nous.stats().accepted_triples, 0u);
  EXPECT_EQ(nous.stats().retractions, 0u);
}

TEST_F(NousFixture, SinceFilterRestrictsEntityAnswer) {
  Nous nous(&kb_, FastOptions());
  NOUS_CHECK_OK(nous.IngestText("DJI acquired Talon Works.", Date{2012, 3, 5}, "wsj"));
  NOUS_CHECK_OK(nous.IngestText("DJI bought Windermere.", Date{2015, 6, 1}, "wsj"));
  auto all = nous.Ask("tell me about DJI");
  ASSERT_TRUE(all.ok());
  auto recent = nous.Ask("tell me about DJI since 2014");
  ASSERT_TRUE(recent.ok());
  EXPECT_LT(recent->facts.size(), all->facts.size());
  for (const FactLine& f : recent->facts) {
    EXPECT_GE(f.timestamp, (Date{2014, 1, 1}).ToDayNumber());
  }
}

TEST_F(NousFixture, SaveLoadQueryEquivalence) {
  Nous nous(&kb_, FastOptions());
  DocumentStream stream(MakeArticles());
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  std::string path = testing::TempDir() + "/nous_core_roundtrip.txt";
  ASSERT_TRUE(SaveGraphToFile(nous.graph(), path).ok());
  auto loaded = LoadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // A query engine over the restored graph answers identically.
  QueryEngine original(&nous.graph(), nullptr);
  QueryEngine restored(loaded->get(), nullptr);
  auto a1 = original.ExecuteText("tell me about DJI");
  auto a2 = restored.ExecuteText("tell me about DJI");
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  ASSERT_EQ(a1->facts.size(), a2->facts.size());
  auto key = [](const FactLine& f) {
    return f.subject + "|" + f.predicate + "|" + f.object + "|" +
           f.source;
  };
  std::multiset<std::string> k1, k2;
  for (const FactLine& f : a1->facts) k1.insert(key(f));
  for (const FactLine& f : a2->facts) k2.insert(key(f));
  EXPECT_EQ(k1, k2);
}

TEST_F(NousFixture, OtherDomainWorldsIngest) {
  // Citation analytics domain (§3.1) through the same pipeline.
  WorldModel citations = WorldModel::BuildCitationWorld(8, 15, 3);
  KbCoverage coverage;
  coverage.entity_coverage = 0.5;
  CuratedKb kb = BuildCuratedKb(citations, Ontology::DroneDefault(),
                                coverage);
  Nous nous(&kb, FastOptions());
  CorpusConfig cc;
  cc.pronoun_rate = 0;
  auto articles = ArticleGenerator(&citations, cc).GenerateArticles();
  DocumentStream stream(articles);
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  EXPECT_GT(nous.stats().accepted_triples, 0u);
}

}  // namespace
}  // namespace nous
