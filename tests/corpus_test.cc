#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "text/openie.h"

namespace nous {
namespace {

DroneWorldConfig SmallWorldConfig() {
  DroneWorldConfig config;
  config.num_companies = 10;
  config.num_people = 8;
  config.num_products = 6;
  config.num_events = 60;
  config.seed = 99;
  return config;
}

// ---------- WorldModel ----------

TEST(WorldModelTest, DroneWorldHasAnchorsAndEvents) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  EXPECT_TRUE(world.FindEntity("DJI").has_value());
  EXPECT_TRUE(world.FindEntity("FAA").has_value());
  EXPECT_TRUE(world.FindEntity("Windermere").has_value());
  EXPECT_TRUE(world.FindEntity("Phantom 3").has_value());
  size_t events = 0;
  for (const WorldFact& f : world.facts()) {
    if (f.is_event) ++events;
  }
  EXPECT_EQ(events, 60u);
  EXPECT_GT(world.facts().size(), events);  // static facts too
}

TEST(WorldModelTest, FactsReferenceValidEntities) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  for (const WorldFact& f : world.facts()) {
    ASSERT_LT(f.subject, world.entities().size());
    ASSERT_LT(f.object, world.entities().size());
    EXPECT_NE(f.subject, f.object);
    EXPECT_FALSE(f.predicate.empty());
  }
}

TEST(WorldModelTest, EventDatesWithinRange) {
  DroneWorldConfig config = SmallWorldConfig();
  WorldModel world = WorldModel::BuildDroneWorld(config);
  for (const WorldFact& f : world.facts()) {
    if (!f.is_event) continue;
    EXPECT_GE(f.date.ToDayNumber(), config.start.ToDayNumber());
    EXPECT_LE(f.date.ToDayNumber(), config.end.ToDayNumber());
  }
}

TEST(WorldModelTest, DeterministicPerSeed) {
  WorldModel a = WorldModel::BuildDroneWorld(SmallWorldConfig());
  WorldModel b = WorldModel::BuildDroneWorld(SmallWorldConfig());
  ASSERT_EQ(a.entities().size(), b.entities().size());
  for (size_t i = 0; i < a.entities().size(); ++i) {
    EXPECT_EQ(a.entity(i).name, b.entity(i).name);
  }
  ASSERT_EQ(a.facts().size(), b.facts().size());
}

TEST(WorldModelTest, NoDuplicateEvents) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  std::set<std::string> seen;
  for (const WorldFact& f : world.facts()) {
    if (!f.is_event) continue;
    std::string key = std::to_string(f.subject) + "|" + f.predicate + "|" +
                      std::to_string(f.object);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate event " << key;
  }
}

TEST(WorldModelTest, EntitiesHaveDescriptionsAndSectors) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  for (const WorldEntity& e : world.entities()) {
    EXPECT_FALSE(e.description.empty()) << e.name;
    EXPECT_FALSE(e.type_name.empty()) << e.name;
  }
}

TEST(WorldModelTest, CitationWorldShape) {
  WorldModel world = WorldModel::BuildCitationWorld(10, 20, 3);
  size_t authored = 0, cites = 0, published = 0;
  for (const WorldFact& f : world.facts()) {
    if (f.predicate == "authored") ++authored;
    if (f.predicate == "cites") ++cites;
    if (f.predicate == "publishedIn") ++published;
  }
  EXPECT_EQ(authored, 20u);
  EXPECT_EQ(published, 20u);
  EXPECT_GT(cites, 0u);
}

TEST(WorldModelTest, EnterpriseWorldShape) {
  WorldModel world = WorldModel::BuildEnterpriseWorld(5, 6, 4);
  size_t events = 0;
  for (const WorldFact& f : world.facts()) {
    if (f.is_event) ++events;
  }
  EXPECT_EQ(events, 5u * 12u);
}

// ---------- ArticleGenerator ----------

TEST(ArticleGeneratorTest, EveryEventReportedExactlyOnce) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  CorpusConfig config;
  ArticleGenerator generator(&world, config);
  auto articles = generator.GenerateArticles();
  size_t gold_total = 0;
  for (const Article& a : articles) gold_total += a.gold.size();
  size_t events = 0;
  for (const WorldFact& f : world.facts()) {
    if (f.is_event) ++events;
  }
  EXPECT_EQ(gold_total, events);
}

TEST(ArticleGeneratorTest, ArticlesAreDateOrderedAndNonEmpty) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  ArticleGenerator generator(&world, CorpusConfig{});
  auto articles = generator.GenerateArticles();
  ASSERT_FALSE(articles.empty());
  Timestamp prev = 0;
  for (const Article& a : articles) {
    EXPECT_FALSE(a.text.empty());
    EXPECT_FALSE(a.id.empty());
    EXPECT_FALSE(a.source.empty());
    EXPECT_GE(a.date.ToDayNumber(), prev);
    prev = a.date.ToDayNumber();
    for (const TimedTriple& g : a.gold) {
      EXPECT_TRUE(world.FindEntity(g.triple.subject).has_value());
      EXPECT_TRUE(world.FindEntity(g.triple.object).has_value());
    }
  }
}

TEST(ArticleGeneratorTest, DeterministicPerSeed) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  ArticleGenerator g1(&world, CorpusConfig{});
  ArticleGenerator g2(&world, CorpusConfig{});
  auto a = g1.GenerateArticles();
  auto b = g2.GenerateArticles();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
}

TEST(ArticleGeneratorTest, NoiseKnobsChangeSurface) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  CorpusConfig clean;
  clean.pronoun_rate = 0;
  clean.alias_rate = 0;
  clean.passive_rate = 0;
  clean.distractor_rate = 0;
  CorpusConfig noisy;
  noisy.pronoun_rate = 1.0;
  noisy.alias_rate = 1.0;
  noisy.passive_rate = 1.0;
  noisy.distractor_rate = 1.0;
  auto a = ArticleGenerator(&world, clean).GenerateArticles();
  auto b = ArticleGenerator(&world, noisy).GenerateArticles();
  std::string clean_text, noisy_text;
  for (const Article& art : a) clean_text += art.text;
  for (const Article& art : b) noisy_text += art.text;
  EXPECT_NE(clean_text, noisy_text);
  // Clean corpus never pronominalizes.
  EXPECT_EQ(clean_text.find(" It "), std::string::npos);
}

// Integration: the extraction substrate must recover most clean-corpus
// facts at the surface level (canonical names, pre-linking).
TEST(ArticleGeneratorTest, ExtractionRecallOnCleanCorpus) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  CorpusConfig clean;
  clean.pronoun_rate = 0;
  clean.alias_rate = 0;
  clean.passive_rate = 0.3;  // passives are fair game
  clean.distractor_rate = 0.3;
  auto articles = ArticleGenerator(&world, clean).GenerateArticles();

  Lexicon lexicon = Lexicon::Default();
  Ner ner(&lexicon);
  for (const WorldEntity& e : world.entities()) {
    ner.AddGazetteerEntry(e.name, e.ner_type);
    for (const std::string& alias : e.aliases) {
      ner.AddGazetteerEntry(alias, e.ner_type);
    }
  }
  OpenIeExtractor extractor(&lexicon, &ner, OpenIeConfig{});

  size_t gold_total = 0, recovered = 0;
  for (const Article& article : articles) {
    auto extractions = extractor.ExtractFromText(article.text);
    for (const TimedTriple& gold : article.gold) {
      ++gold_total;
      for (const RawExtraction& ex : extractions) {
        if (ex.triple.subject == gold.triple.subject &&
            ex.triple.object == gold.triple.object) {
          ++recovered;
          break;
        }
      }
    }
  }
  ASSERT_GT(gold_total, 0u);
  double recall =
      static_cast<double>(recovered) / static_cast<double>(gold_total);
  EXPECT_GT(recall, 0.7) << "surface recall " << recall << " ("
                         << recovered << "/" << gold_total << ")";
}

TEST(ArticleGeneratorTest, GoldMentionsMatchTextAndWorld) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  CorpusConfig config;
  config.alias_rate = 0.5;
  config.pronoun_rate = 0.3;
  auto articles = ArticleGenerator(&world, config).GenerateArticles();
  size_t total_mentions = 0;
  for (const Article& a : articles) {
    for (const GoldMention& m : a.gold_mentions) {
      ++total_mentions;
      // The surface form literally appears in the text.
      EXPECT_NE(a.text.find(m.surface), std::string::npos)
          << m.surface << " not in: " << a.text;
      // The canonical name is a real world entity whose surfaces
      // include the used form.
      auto id = world.FindEntity(m.canonical);
      ASSERT_TRUE(id.has_value()) << m.canonical;
      const WorldEntity& e = world.entity(*id);
      bool known_surface = m.surface == e.name;
      for (const std::string& alias : e.aliases) {
        if (m.surface == alias) known_surface = true;
      }
      EXPECT_TRUE(known_surface) << m.surface << " for " << m.canonical;
    }
    // Two mentions per non-pronominal fact; at least the objects.
    EXPECT_GE(a.gold_mentions.size(), a.gold.size());
  }
  EXPECT_GT(total_mentions, 0u);
}

TEST(ArticleGeneratorTest, PronominalSubjectsExcludedFromMentions) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  CorpusConfig always_pronoun;
  always_pronoun.pronoun_rate = 1.0;
  always_pronoun.alias_rate = 0.0;
  auto articles =
      ArticleGenerator(&world, always_pronoun).GenerateArticles();
  for (const Article& a : articles) {
    for (const GoldMention& m : a.gold_mentions) {
      EXPECT_NE(m.surface, "It");
      EXPECT_NE(m.surface, "He");
      EXPECT_NE(m.surface, "The company");
    }
  }
}

// ---------- DocumentStream ----------

TEST(DocumentStreamTest, IteratesInDateOrder) {
  WorldModel world = WorldModel::BuildDroneWorld(SmallWorldConfig());
  auto articles = ArticleGenerator(&world, CorpusConfig{}).GenerateArticles();
  DocumentStream stream(articles);
  EXPECT_EQ(stream.TotalCount(), articles.size());
  Timestamp prev = 0;
  size_t count = 0;
  while (!stream.Done()) {
    const Article& a = stream.Next();
    EXPECT_GE(a.date.ToDayNumber(), prev);
    prev = a.date.ToDayNumber();
    ++count;
  }
  EXPECT_EQ(count, articles.size());
  EXPECT_EQ(stream.Remaining(), 0u);
  stream.Reset();
  EXPECT_EQ(stream.Remaining(), articles.size());
}

}  // namespace
}  // namespace nous
