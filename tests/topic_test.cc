#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/property_graph.h"
#include "topic/divergence.h"
#include "topic/doc_term.h"
#include "topic/lda.h"

namespace nous {
namespace {

// ---------- Divergences ----------

TEST(DivergenceTest, IdenticalDistributionsAreZero) {
  std::vector<double> p = {0.5, 0.3, 0.2};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-9);
  EXPECT_NEAR(JsDivergence(p, p), 0.0, 1e-9);
}

TEST(DivergenceTest, JsIsSymmetricAndBounded) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  double js = JsDivergence(p, q);
  EXPECT_NEAR(js, JsDivergence(q, p), 1e-12);
  EXPECT_NEAR(js, std::log(2.0), 1e-9);  // maximally divergent
}

TEST(DivergenceTest, KlIsAsymmetric) {
  std::vector<double> p = {0.9, 0.1};
  std::vector<double> q = {0.5, 0.5};
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
  EXPECT_GT(KlDivergence(p, q), 0.0);
}

TEST(DivergenceTest, MismatchedOrEmptyInputsScoreMaximal) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {1.0};
  EXPECT_NEAR(JsDivergence(p, q), std::log(2.0), 1e-9);
  EXPECT_NEAR(JsDivergence({}, {}), std::log(2.0), 1e-9);
}

// ---------- LDA ----------

/// Two disjoint vocabularies: terms 0-9 (topic A), 10-19 (topic B).
/// Docs draw exclusively from one side — trivially separable.
std::vector<std::vector<uint32_t>> TwoClusterDocs(size_t docs_per_side,
                                                  size_t doc_len,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> docs;
  for (size_t side = 0; side < 2; ++side) {
    for (size_t d = 0; d < docs_per_side; ++d) {
      std::vector<uint32_t> doc;
      for (size_t i = 0; i < doc_len; ++i) {
        doc.push_back(static_cast<uint32_t>(side * 10 +
                                            rng.UniformInt(10)));
      }
      docs.push_back(std::move(doc));
    }
  }
  return docs;
}

TEST(LdaTest, DocumentTopicsAreDistributions) {
  LdaConfig config;
  config.num_topics = 4;
  config.iterations = 50;
  LdaModel model(config);
  auto docs = TwoClusterDocs(10, 30, 1);
  model.Fit(docs, 20);
  for (size_t d = 0; d < docs.size(); ++d) {
    auto theta = model.DocumentTopics(d);
    ASSERT_EQ(theta.size(), 4u);
    double sum = 0;
    for (double v : theta) {
      EXPECT_GT(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  for (size_t k = 0; k < 4; ++k) {
    auto phi = model.TopicTerms(k);
    double sum = 0;
    for (double v : phi) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LdaTest, RecoversTwoClusterStructure) {
  LdaConfig config;
  config.num_topics = 2;
  config.iterations = 150;
  LdaModel model(config);
  auto docs = TwoClusterDocs(15, 40, 2);
  model.Fit(docs, 20);
  // Same-side documents must be far closer in topic space than
  // opposite-side documents.
  double within = JsDivergence(model.DocumentTopics(0),
                               model.DocumentTopics(1));
  double across = JsDivergence(model.DocumentTopics(0),
                               model.DocumentTopics(15));
  EXPECT_LT(within * 3, across)
      << "within=" << within << " across=" << across;
}

TEST(LdaTest, InferMatchesTrainingSideForUnseenDoc) {
  LdaConfig config;
  config.num_topics = 2;
  config.iterations = 150;
  LdaModel model(config);
  auto docs = TwoClusterDocs(15, 40, 3);
  model.Fit(docs, 20);
  std::vector<uint32_t> unseen_a = {0, 3, 5, 7, 2, 9, 1, 4};
  auto theta = model.Infer(unseen_a, 30);
  double to_a = JsDivergence(theta, model.DocumentTopics(0));
  double to_b = JsDivergence(theta, model.DocumentTopics(15));
  EXPECT_LT(to_a, to_b);
}

TEST(LdaTest, EmptyDocInferReturnsUniform) {
  LdaModel model;
  auto theta = model.Infer({}, 5);
  for (double v : theta) {
    EXPECT_NEAR(v, 1.0 / model.num_topics(), 1e-9);
  }
}

TEST(LdaTest, DeterministicPerSeed) {
  auto docs = TwoClusterDocs(5, 20, 4);
  LdaConfig config;
  config.iterations = 30;
  LdaModel a(config), b(config);
  a.Fit(docs, 20);
  b.Fit(docs, 20);
  for (size_t d = 0; d < docs.size(); ++d) {
    EXPECT_EQ(a.DocumentTopics(d), b.DocumentTopics(d));
  }
}

// ---------- Vertex corpus ----------

TEST(DocTermTest, BuildsCorpusFromVertexBags) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("A");
  VertexId b = g.GetOrAddVertex("B");
  g.GetOrAddVertex("NoBag");
  g.AddVertexTerm(a, g.terms().Intern("drone"), 2.0);
  g.AddVertexTerm(a, g.terms().Intern("camera"), 1.0);
  g.AddVertexTerm(b, g.terms().Intern("property"), 3.0);
  VertexCorpus corpus = BuildVertexCorpus(g);
  ASSERT_EQ(corpus.docs.size(), 2u);  // NoBag excluded
  EXPECT_EQ(corpus.vertices[0], a);
  EXPECT_EQ(corpus.docs[0].size(), 3u);  // 2x drone + 1x camera
  EXPECT_EQ(corpus.vocab_size, g.terms().size());
}

TEST(DocTermTest, RepeatCapped) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("A");
  g.AddVertexTerm(a, g.terms().Intern("x"), 1000.0);
  VertexCorpus corpus = BuildVertexCorpus(g, /*max_repeat=*/4);
  ASSERT_EQ(corpus.docs.size(), 1u);
  EXPECT_EQ(corpus.docs[0].size(), 4u);
}

/// Applies FitVertexTopics output to the graph the way the pipeline
/// does (src/topic itself never mutates a graph; nous-layering).
void ApplyTopics(PropertyGraph* g, VertexTopicAssignments fitted) {
  for (size_t i = 0; i < fitted.vertices.size(); ++i) {
    g->SetVertexTopics(fitted.vertices[i], std::move(fitted.topics[i]));
  }
}

TEST(DocTermTest, FitVertexTopicsAssignsDistributions) {
  PropertyGraph g;
  // Two sector clusters of vertices.
  for (int i = 0; i < 6; ++i) {
    VertexId v = g.GetOrAddVertex("consumer" + std::to_string(i));
    for (const char* t : {"camera", "quadcopter", "retail"}) {
      g.AddVertexTerm(v, g.terms().Intern(t), 3.0);
    }
  }
  for (int i = 0; i < 6; ++i) {
    VertexId v = g.GetOrAddVertex("realty" + std::to_string(i));
    for (const char* t : {"property", "listing", "broker"}) {
      g.AddVertexTerm(v, g.terms().Intern(t), 3.0);
    }
  }
  LdaConfig config;
  config.num_topics = 2;
  config.iterations = 100;
  ApplyTopics(&g, FitVertexTopics(g, config));
  auto va = g.FindVertex("consumer0");
  auto vb = g.FindVertex("consumer1");
  auto vc = g.FindVertex("realty0");
  ASSERT_TRUE(va && vb && vc);
  double within = JsDivergence(g.VertexTopics(*va), g.VertexTopics(*vb));
  double across = JsDivergence(g.VertexTopics(*va), g.VertexTopics(*vc));
  EXPECT_LT(within, across);
}

TEST(DocTermTest, EmptyGraphIsSafe) {
  PropertyGraph g;
  LdaConfig config;
  config.iterations = 5;
  ApplyTopics(&g, FitVertexTopics(g, config));  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace nous
