#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "graph/dictionary.h"
#include "graph/graph_generator.h"
#include "graph/graph_stats.h"
#include "graph/property_graph.h"
#include "graph/temporal_window.h"

namespace nous {
namespace {

// ---------- Dictionary ----------

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  uint32_t a = d.Intern("alpha");
  uint32_t b = d.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("alpha"), a);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, LookupMissingReturnsNullopt) {
  Dictionary d;
  EXPECT_FALSE(d.Lookup("nope").has_value());
  EXPECT_FALSE(d.Contains("nope"));
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary d;
  uint32_t id = d.Intern("gamma");
  EXPECT_EQ(d.GetString(id), "gamma");
  ASSERT_TRUE(d.Lookup("gamma").has_value());
  EXPECT_EQ(*d.Lookup("gamma"), id);
}

class DictionaryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DictionaryPropertyTest, RandomStringsRoundTrip) {
  Rng rng(GetParam());
  Dictionary d;
  std::vector<std::string> inserted;
  for (int i = 0; i < 500; ++i) {
    std::string s = StrFormat("str_%llu_%d",
                              static_cast<unsigned long long>(
                                  rng.UniformInt(200)),
                              i % 7);
    d.Intern(s);
    inserted.push_back(std::move(s));
  }
  for (const std::string& s : inserted) {
    auto id = d.Lookup(s);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(d.GetString(*id), s);
  }
  // Ids are dense in [0, size).
  for (uint32_t id = 0; id < d.size(); ++id) {
    EXPECT_EQ(*d.Lookup(d.GetString(id)), id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictionaryPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- PropertyGraph ----------

TEST(PropertyGraphTest, VerticesInternedOnce) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("DJI");
  VertexId b = g.GetOrAddVertex("Parrot");
  EXPECT_NE(a, b);
  EXPECT_EQ(g.GetOrAddVertex("DJI"), a);
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.VertexLabel(a), "DJI");
  ASSERT_TRUE(g.FindVertex("Parrot").has_value());
  EXPECT_FALSE(g.FindVertex("FAA").has_value());
}

TEST(PropertyGraphTest, AddEdgeUpdatesAdjacency) {
  PropertyGraph g;
  VertexId s = g.GetOrAddVertex("a");
  VertexId o = g.GetOrAddVertex("b");
  PredicateId p = g.predicates().Intern("likes");
  EdgeId e = g.AddEdge(s, p, o, EdgeMeta{0.8, 5, kInvalidSource, false});
  EXPECT_EQ(g.NumEdges(), 1u);
  ASSERT_EQ(g.OutDegree(s), 1u);
  ASSERT_EQ(g.InDegree(o), 1u);
  EXPECT_EQ(g.OutEdges(s)[0].neighbor, o);
  EXPECT_EQ(g.OutEdges(s)[0].predicate, p);
  EXPECT_EQ(g.InEdges(o)[0].neighbor, s);
  const EdgeRecord& rec = g.Edge(e);
  EXPECT_EQ(rec.subject, s);
  EXPECT_EQ(rec.object, o);
  EXPECT_DOUBLE_EQ(rec.meta.confidence, 0.8);
  EXPECT_EQ(rec.meta.timestamp, 5);
  EXPECT_TRUE(rec.alive);
}

TEST(PropertyGraphTest, ParallelEdgesAllowed) {
  PropertyGraph g;
  VertexId s = g.GetOrAddVertex("a");
  VertexId o = g.GetOrAddVertex("b");
  PredicateId p = g.predicates().Intern("p");
  g.AddEdge(s, p, o, {});
  g.AddEdge(s, p, o, {});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.OutDegree(s), 2u);
}

TEST(PropertyGraphTest, RemoveEdge) {
  PropertyGraph g;
  VertexId s = g.GetOrAddVertex("a");
  VertexId o = g.GetOrAddVertex("b");
  PredicateId p = g.predicates().Intern("p");
  EdgeId e = g.AddEdge(s, p, o, {});
  ASSERT_TRUE(g.RemoveEdge(e).ok());
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.OutDegree(s), 0u);
  EXPECT_EQ(g.InDegree(o), 0u);
  EXPECT_FALSE(g.Edge(e).alive);
  // Double-remove fails cleanly.
  EXPECT_EQ(g.RemoveEdge(e).code(), StatusCode::kNotFound);
  EXPECT_EQ(g.RemoveEdge(9999).code(), StatusCode::kNotFound);
}

TEST(PropertyGraphTest, FindEdgeMatchesTripleExactly) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  PredicateId p = g.predicates().Intern("p");
  PredicateId q = g.predicates().Intern("q");
  g.AddEdge(a, p, b, {});
  EXPECT_TRUE(g.HasEdge(a, p, b));
  EXPECT_FALSE(g.HasEdge(a, q, b));
  EXPECT_FALSE(g.HasEdge(b, p, a));
}

TEST(PropertyGraphTest, AddTripleInternsEverything) {
  PropertyGraph g;
  TimedTriple t;
  t.triple = {"DJI", "acquired", "SkyWard"};
  t.timestamp = 42;
  t.source = "wsj";
  t.confidence = 0.7;
  EdgeId e = g.AddTriple(t);
  const EdgeRecord& rec = g.Edge(e);
  EXPECT_EQ(g.VertexLabel(rec.subject), "DJI");
  EXPECT_EQ(g.VertexLabel(rec.object), "SkyWard");
  EXPECT_EQ(g.predicates().GetString(rec.predicate), "acquired");
  EXPECT_EQ(g.sources().GetString(rec.meta.source), "wsj");
  EXPECT_FALSE(rec.meta.curated);
}

TEST(PropertyGraphTest, VertexProperties) {
  PropertyGraph g;
  VertexId v = g.GetOrAddVertex("x");
  EXPECT_EQ(g.VertexType(v), kInvalidType);
  TypeId ty = g.types().Intern("company");
  g.SetVertexType(v, ty);
  EXPECT_EQ(g.VertexType(v), ty);
  TermId t1 = g.terms().Intern("drone");
  g.AddVertexTerm(v, t1, 2.0);
  g.AddVertexTerm(v, t1, 1.0);
  EXPECT_DOUBLE_EQ(g.VertexBag(v).at(t1), 3.0);
  g.SetVertexTopics(v, {0.25, 0.75});
  EXPECT_EQ(g.VertexTopics(v).size(), 2u);
  EXPECT_TRUE(g.VertexTopics(999).empty());
}

TEST(PropertyGraphTest, SetEdgeConfidence) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  EdgeId e = g.AddEdge(a, g.predicates().Intern("p"), b, {});
  g.SetEdgeConfidence(e, 0.12);
  EXPECT_DOUBLE_EQ(g.Edge(e).meta.confidence, 0.12);
}

TEST(PropertyGraphTest, ForEachEdgeSkipsDead) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  PredicateId p = g.predicates().Intern("p");
  EdgeId e1 = g.AddEdge(a, p, b, {});
  g.AddEdge(b, p, a, {});
  ASSERT_TRUE(g.RemoveEdge(e1).ok());
  size_t count = 0;
  g.ForEachEdge([&](EdgeId, const EdgeRecord&) { ++count; });
  EXPECT_EQ(count, 1u);
}

class GraphChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphChurnTest, AdjacencyConsistentUnderRandomChurn) {
  Rng rng(GetParam());
  PropertyGraph g;
  for (int i = 0; i < 20; ++i) g.GetOrAddVertex(StrFormat("v%d", i));
  PredicateId p = g.predicates().Intern("p");
  std::vector<EdgeId> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      VertexId s = static_cast<VertexId>(rng.UniformInt(20));
      VertexId o = static_cast<VertexId>(rng.UniformInt(20));
      live.push_back(g.AddEdge(s, p, o, {}));
    } else {
      size_t idx = rng.UniformInt(live.size());
      ASSERT_TRUE(g.RemoveEdge(live[idx]).ok());
      live[idx] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(g.NumEdges(), live.size());
  // Out-adjacency must exactly mirror live edge records.
  size_t adjacency_total = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const AdjEntry& a : g.OutEdges(v)) {
      const EdgeRecord& rec = g.Edge(a.edge);
      EXPECT_TRUE(rec.alive);
      EXPECT_EQ(rec.subject, v);
      EXPECT_EQ(rec.object, a.neighbor);
      ++adjacency_total;
    }
  }
  EXPECT_EQ(adjacency_total, live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphChurnTest,
                         ::testing::Values(1, 7, 21, 99));

// ---------- TemporalWindow ----------

TimedTriple MakeTriple(const std::string& s, const std::string& o,
                       Timestamp ts) {
  TimedTriple t;
  t.triple = {s, "p", o};
  t.timestamp = ts;
  return t;
}

TEST(TemporalWindowTest, CountBasedExpiry) {
  PropertyGraph g;
  TemporalWindow w(&g, 3);
  for (int i = 0; i < 5; ++i) {
    w.Add(MakeTriple(StrFormat("s%d", i), "o", i));
  }
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(w.OldestTimestamp(), 2);
  EXPECT_EQ(w.NewestTimestamp(), 4);
}

TEST(TemporalWindowTest, TimestampExpiry) {
  PropertyGraph g;
  TemporalWindow w(&g, 0);  // unbounded count
  for (int i = 0; i < 10; ++i) w.Add(MakeTriple("a", "b", i));
  EXPECT_EQ(w.ExpireOlderThan(7), 7u);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(w.OldestTimestamp(), 7);
}

TEST(TemporalWindowTest, WindowSizeOne) {
  PropertyGraph g;
  TemporalWindow w(&g, 1);
  w.Add(MakeTriple("a", "b", 1));
  w.Add(MakeTriple("c", "d", 2));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(g.NumEdges(), 1u);
}

class RecordingListener : public WindowListener {
 public:
  void OnEdgeAdded(const PropertyGraph&, EdgeId e) override {
    added.push_back(e);
  }
  void OnEdgeExpiring(const PropertyGraph& g, EdgeId e) override {
    // The edge must still be intact when the listener fires.
    EXPECT_TRUE(g.Edge(e).alive);
    expired.push_back(e);
  }
  std::vector<EdgeId> added;
  std::vector<EdgeId> expired;
};

TEST(TemporalWindowTest, ListenersObserveFifoExpiry) {
  PropertyGraph g;
  TemporalWindow w(&g, 2);
  RecordingListener listener;
  w.AddListener(&listener);
  for (int i = 0; i < 4; ++i) w.Add(MakeTriple("a", "b", i));
  EXPECT_EQ(listener.added.size(), 4u);
  ASSERT_EQ(listener.expired.size(), 2u);
  // FIFO: first added edges expire first.
  EXPECT_EQ(listener.expired[0], listener.added[0]);
  EXPECT_EQ(listener.expired[1], listener.added[1]);
  w.RemoveListener(&listener);
  w.Add(MakeTriple("a", "b", 10));
  EXPECT_EQ(listener.added.size(), 4u);  // no longer notified
}

class WindowInvariantTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WindowInvariantTest, LiveEdgesAlwaysMatchWindowContents) {
  PropertyGraph g;
  TemporalWindow w(&g, GetParam());
  Rng rng(GetParam() + 5);
  for (int i = 0; i < 500; ++i) {
    w.Add(MakeTriple(StrFormat("s%llu", static_cast<unsigned long long>(
                                            rng.UniformInt(30))),
                     StrFormat("o%llu", static_cast<unsigned long long>(
                                            rng.UniformInt(30))),
                     i));
    ASSERT_EQ(g.NumEdges(), w.size());
    ASSERT_LE(w.size(), GetParam());
    // Window ids are strictly increasing in timestamp order.
    Timestamp prev = -1;
    for (EdgeId e : w.edges()) {
      Timestamp ts = g.Edge(e).meta.timestamp;
      ASSERT_GE(ts, prev);
      prev = ts;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WindowInvariantTest,
                         ::testing::Values(1, 2, 16, 128));

// ---------- GraphStats ----------

TEST(GraphStatsTest, CountsCuratedAndExtracted) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  PredicateId p = g.predicates().Intern("p");
  EdgeMeta curated;
  curated.curated = true;
  g.AddEdge(a, p, b, curated);
  EdgeMeta extracted;
  extracted.curated = false;
  extracted.confidence = 0.5;
  g.AddEdge(b, p, a, extracted);
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.vertices, 2u);
  EXPECT_EQ(stats.live_edges, 2u);
  EXPECT_EQ(stats.curated_edges, 1u);
  EXPECT_EQ(stats.extracted_edges, 1u);
  EXPECT_EQ(stats.distinct_predicates, 1u);
  EXPECT_EQ(stats.extracted_confidence.count(), 1u);
  EXPECT_EQ(stats.per_predicate.at("p"), 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

// ---------- Generators ----------

TEST(GraphGeneratorTest, StreamHasRequestedSizeAndMonotoneTime) {
  StreamConfig config;
  config.num_edges = 500;
  config.num_entities = 50;
  auto stream = GenerateStream(config);
  ASSERT_EQ(stream.size(), 500u);
  Timestamp prev = -1;
  for (const TimedTriple& t : stream) {
    EXPECT_GT(t.timestamp, prev);
    prev = t.timestamp;
    EXPECT_NE(t.triple.subject, t.triple.object);
  }
}

TEST(GraphGeneratorTest, StreamDeterministicPerSeed) {
  StreamConfig config;
  config.num_edges = 100;
  auto a = GenerateStream(config);
  auto b = GenerateStream(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].triple, b[i].triple);
  }
  config.seed += 1;
  auto c = GenerateStream(config);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].triple == c[i].triple)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GraphGeneratorTest, PlantedPatternsAppearAtRate) {
  PlantedStreamConfig config;
  config.num_events = 2000;
  config.patterns = {{"star", {"pa", "pb"}, 0.1}};
  auto stream = GeneratePlantedStream(config);
  size_t planted_edges = 0;
  for (const TimedTriple& t : stream) {
    if (t.source == "planted") ++planted_edges;
  }
  // Each instance emits 2 edges; expect ~0.1 * 2000 instances.
  double instances = static_cast<double>(planted_edges) / 2.0;
  EXPECT_NEAR(instances, 200.0, 60.0);
  // Leaf objects exist and are distinct per instance.
  bool leaf_seen = false;
  for (const TimedTriple& t : stream) {
    if (t.triple.object == "leaf_star_0_0") leaf_seen = true;
  }
  EXPECT_TRUE(leaf_seen);
}

TEST(GraphGeneratorTest, DriftStreamSwitchesPatterns) {
  PlantedStreamConfig phase1;
  phase1.num_events = 300;
  phase1.patterns = {{"one", {"pa", "pb"}, 0.2}};
  PlantedStreamConfig phase2 = phase1;
  phase2.patterns = {{"two", {"pc", "pd"}, 0.2}};
  auto stream = GenerateDriftStream(phase1, phase2);
  bool one_in_first_half = false, two_in_second_half = false;
  bool two_in_first_half = false;
  for (size_t i = 0; i < stream.size(); ++i) {
    bool first_half = stream[i].timestamp < 300;
    if (stream[i].triple.object.find("leaf_one") == 0 && first_half) {
      one_in_first_half = true;
    }
    if (stream[i].triple.object.find("leaf_two") == 0) {
      (first_half ? two_in_first_half : two_in_second_half) = true;
    }
  }
  EXPECT_TRUE(one_in_first_half);
  EXPECT_TRUE(two_in_second_half);
  EXPECT_FALSE(two_in_first_half);
}

}  // namespace
}  // namespace nous
