// Fault-tolerant WAL-shipping replication (DESIGN.md §5.15): a leader
// streams committed WAL batches and checkpoint images to followers,
// which replay them through the durability path into bit-identical
// KGs. Robustness is proven the same way as the WAL's (§5.10): every
// framing property is swept byte-by-byte, and deterministic NOUS_FAULTS
// chaos — dropped frames, corrupted frames, failing sockets, killed
// processes — must always end in convergence, never divergence.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "common/string_util.h"
#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/world_model.h"
#include "durability/fs_util.h"
#include "durability/wal.h"
#include "kb/kb_generator.h"
#include "replication/follower.h"
#include "replication/leader.h"
#include "replication/protocol.h"

namespace nous {
namespace {

class FaultGuard {
 public:
  FaultGuard() { FaultInjector::Global().Reset(); }
  ~FaultGuard() { FaultInjector::Global().Reset(); }
};

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "nous_replication_" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  for (const char* file :
       {"/wal.log", "/checkpoint.nous", "/checkpoint.nous.tmp"}) {
    EXPECT_TRUE(RemoveFile(dir + file).ok());
  }
  return dir;
}

// ---------------------------------------------------------------------------
// Frame protocol

std::vector<ReplFrame> SampleFrames() {
  std::vector<ReplFrame> frames;
  ReplFrame hello;
  hello.type = ReplFrameType::kHello;
  hello.seq = 7;
  hello.aux = kHelloForceImage;
  hello.payload = EncodeHelloPayload(42);
  frames.push_back(hello);
  ReplFrame batch;
  batch.type = ReplFrameType::kWalBatch;
  batch.seq = 8;
  batch.aux = 12;
  batch.payload = std::string("bin\0ary\xff payload", 16);
  frames.push_back(batch);
  ReplFrame checkpoint;
  checkpoint.type = ReplFrameType::kCheckpoint;
  checkpoint.seq = 9;
  checkpoint.aux = 13;
  checkpoint.payload = std::string(3000, 'q');
  frames.push_back(checkpoint);
  ReplFrame heartbeat;
  heartbeat.type = ReplFrameType::kHeartbeat;
  heartbeat.seq = 9;
  heartbeat.aux = 13;
  frames.push_back(heartbeat);
  return frames;
}

std::string EncodeAll(const std::vector<ReplFrame>& frames) {
  std::string wire;
  for (const ReplFrame& frame : frames) wire += EncodeReplFrame(frame);
  return wire;
}

TEST(ReplProtocolTest, RoundTripsAllFrameTypesThroughArbitraryChunking) {
  const std::vector<ReplFrame> frames = SampleFrames();
  const std::string wire = EncodeAll(frames);
  // Feed the stream one byte at a time: the parser must never need
  // frame-aligned input.
  ReplFrameParser parser;
  std::vector<ReplFrame> decoded;
  for (size_t i = 0; i < wire.size(); ++i) {
    parser.Append(wire.data() + i, 1);
    for (;;) {
      ReplFrame frame;
      auto have = parser.Next(&frame);
      ASSERT_TRUE(have.ok()) << have.status();
      if (!*have) break;
      decoded.push_back(std::move(frame));
    }
  }
  ASSERT_EQ(decoded.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(decoded[i].type, frames[i].type);
    EXPECT_EQ(decoded[i].seq, frames[i].seq);
    EXPECT_EQ(decoded[i].aux, frames[i].aux);
    EXPECT_EQ(decoded[i].payload, frames[i].payload);
  }
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(ReplProtocolTest, TruncationAtEveryByteNeverYieldsAPartialFrame) {
  const std::vector<ReplFrame> frames = SampleFrames();
  const std::string wire = EncodeAll(frames);
  // Frame boundaries, so we know how many complete frames each prefix
  // holds.
  std::vector<size_t> ends;
  {
    size_t off = 0;
    for (const ReplFrame& frame : frames) {
      off += kReplFrameHeaderBytes + frame.payload.size();
      ends.push_back(off);
    }
  }
  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    ReplFrameParser parser;
    parser.Append(wire.data(), cut);
    size_t decoded = 0;
    for (;;) {
      ReplFrame frame;
      auto have = parser.Next(&frame);
      // A clean truncation is always "need more bytes" — never
      // corruption, never an invented frame.
      ASSERT_TRUE(have.ok()) << "cut=" << cut << ": " << have.status();
      if (!*have) break;
      ++decoded;
    }
    const size_t complete = static_cast<size_t>(
        std::count_if(ends.begin(), ends.end(),
                      [cut](size_t end) { return end <= cut; }));
    EXPECT_EQ(decoded, complete) << "cut=" << cut;
  }
}

TEST(ReplProtocolTest, EverydSingleBitFlipIsDetectedNeverSilentlyAccepted) {
  ReplFrame frame;
  frame.type = ReplFrameType::kWalBatch;
  frame.seq = 1234;
  frame.aux = 99;
  frame.payload = "the payload under test";
  const std::string wire = EncodeReplFrame(frame);
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = wire;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      ReplFrameParser parser;
      parser.Append(corrupted.data(), corrupted.size());
      ReplFrame out;
      auto have = parser.Next(&out);
      // Acceptable outcomes: corruption detected (error), or the flip
      // landed in the length field and the parser is still waiting for
      // bytes that will never come. NEVER a successfully decoded frame
      // — that would be silent corruption of a replica.
      if (have.ok()) {
        EXPECT_FALSE(*have)
            << "byte " << byte << " bit " << bit
            << ": single-bit flip decoded as a valid frame";
      }
    }
  }
}

TEST(ReplProtocolTest, OversizedDeclaredLengthIsCorruptionNotAWait) {
  ReplFrame frame;
  frame.type = ReplFrameType::kHeartbeat;
  frame.seq = 1;
  std::string wire = EncodeReplFrame(frame);
  // Patch the length field (offset 21) to just past the cap.
  const uint32_t huge = kMaxReplPayloadBytes + 1;
  std::memcpy(&wire[21], &huge, sizeof(huge));
  ReplFrameParser parser;
  parser.Append(wire.data(), wire.size());
  ReplFrame out;
  auto have = parser.Next(&out);
  ASSERT_FALSE(have.ok());
  EXPECT_EQ(have.status().code(), StatusCode::kDataLoss);
}

TEST(ReplProtocolTest, HelloPayloadRoundTripsKgVersion) {
  EXPECT_EQ(DecodeHelloKgVersion(EncodeHelloPayload(0)), 0u);
  EXPECT_EQ(DecodeHelloKgVersion(EncodeHelloPayload(77)), 77u);
  EXPECT_EQ(DecodeHelloKgVersion(EncodeHelloPayload(~0ull)), ~0ull);
  // Absent or short payloads (older peers) read as "unknown".
  EXPECT_EQ(DecodeHelloKgVersion(""), 0u);
  EXPECT_EQ(DecodeHelloKgVersion("abc"), 0u);
}

// ---------------------------------------------------------------------------
// WAL tail reader

TEST(WalTailReaderTest, FollowsAppendsPastCleanEndOfLog) {
  std::string dir = FreshDir("tail_appends");
  std::string path = dir + "/wal.log";
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
  ASSERT_TRUE(writer.Append(1, "one").ok());
  ASSERT_TRUE(writer.Append(2, "two").ok());

  WalTailReader tail;
  tail.Open(path);
  auto event = tail.Next();
  ASSERT_TRUE(event.ok());
  ASSERT_EQ(event->kind, WalTailReader::EventKind::kRecord);
  EXPECT_EQ(event->record.seq, 1u);
  EXPECT_EQ(event->record.payload, "one");
  event = tail.Next();
  ASSERT_TRUE(event.ok());
  ASSERT_EQ(event->kind, WalTailReader::EventKind::kRecord);
  EXPECT_EQ(event->record.seq, 2u);

  // Clean end of log: not an error, just "nothing yet".
  event = tail.Next();
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->kind, WalTailReader::EventKind::kEndOfLog);

  // A record appended after EOF must be picked up by re-polling.
  ASSERT_TRUE(writer.Append(3, "three").ok());
  event = tail.Next();
  ASSERT_TRUE(event.ok());
  ASSERT_EQ(event->kind, WalTailReader::EventKind::kRecord);
  EXPECT_EQ(event->record.seq, 3u);
  EXPECT_EQ(event->record.payload, "three");
  ASSERT_TRUE(writer.Close().ok());
}

TEST(WalTailReaderTest, MissingFileIsEndOfLogUntilItAppears) {
  std::string dir = FreshDir("tail_missing");
  std::string path = dir + "/wal.log";
  WalTailReader tail;
  tail.Open(path);
  auto event = tail.Next();
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->kind, WalTailReader::EventKind::kEndOfLog);

  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
  ASSERT_TRUE(writer.Append(1, "late").ok());
  event = tail.Next();
  ASSERT_TRUE(event.ok());
  ASSERT_EQ(event->kind, WalTailReader::EventKind::kRecord);
  EXPECT_EQ(event->record.payload, "late");
  ASSERT_TRUE(writer.Close().ok());
}

TEST(WalTailReaderTest, FileSwapReportsResetThenReadsTheNewLog) {
  std::string dir = FreshDir("tail_swap");
  std::string path = dir + "/wal.log";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
    ASSERT_TRUE(writer.Append(1, "old").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  WalTailReader tail;
  tail.Open(path);
  ASSERT_EQ(tail.Next()->kind, WalTailReader::EventKind::kRecord);
  ASSERT_EQ(tail.Next()->kind, WalTailReader::EventKind::kEndOfLog);

  // A checkpoint resets the WAL: new file, new inode, seqs restart.
  ASSERT_TRUE(RemoveFile(path).ok());
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
    ASSERT_TRUE(writer.Append(5, "new").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto event = tail.Next();
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->kind, WalTailReader::EventKind::kReset);
  event = tail.Next();
  ASSERT_TRUE(event.ok());
  ASSERT_EQ(event->kind, WalTailReader::EventKind::kRecord);
  EXPECT_EQ(event->record.seq, 5u);
  EXPECT_EQ(event->record.payload, "new");
}

TEST(WalTailReaderTest, TornTrailingFrameIsEndOfLogNotAnError) {
  std::string dir = FreshDir("tail_torn");
  std::string path = dir + "/wal.log";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, WalOptions{}).ok());
    ASSERT_TRUE(writer.Append(1, "whole").ok());
    ASSERT_TRUE(writer.Append(2, "will be torn").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // Chop mid-way through the second frame: an in-flight append the
  // writer has not finished yet, from the tail reader's perspective.
  std::string torn = contents->substr(0, contents->size() - 5);
  ASSERT_TRUE(RemoveFile(path).ok());
  ASSERT_TRUE(AtomicWriteFile(path, torn).ok());

  WalTailReader tail;
  tail.Open(path);
  auto event = tail.Next();
  ASSERT_TRUE(event.ok());
  ASSERT_EQ(event->kind, WalTailReader::EventKind::kRecord);
  EXPECT_EQ(event->record.seq, 1u);
  event = tail.Next();
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->kind, WalTailReader::EventKind::kEndOfLog);
}

// ---------------------------------------------------------------------------
// Leader/follower end-to-end

class ReplicationFixture : public ::testing::Test {
 protected:
  ReplicationFixture()
      : world_(WorldModel::BuildDroneWorld(WorldConfig())),
        kb_(BuildCuratedKb(world_, Ontology::DroneDefault(), Coverage())) {}

  static DroneWorldConfig WorldConfig() {
    DroneWorldConfig config;
    config.num_companies = 10;
    config.num_people = 6;
    config.num_products = 6;
    config.num_events = 36;
    config.seed = 17;
    return config;
  }
  static KbCoverage Coverage() {
    KbCoverage coverage;
    coverage.entity_coverage = 0.6;
    coverage.fact_coverage = 0.9;
    return coverage;
  }
  Nous::Options DurableOptions(const std::string& dir) {
    Nous::Options options;
    options.pipeline.lda.iterations = 10;
    options.pipeline.bpr.epochs = 2;
    options.pipeline.miner.min_support = 3;
    options.pipeline.num_threads = 2;
    options.durability.dir = dir;
    options.durability.fsync_policy = FsyncPolicy::kNever;  // speed
    options.durability.checkpoint_interval_batches = 0;
    return options;
  }

  std::unique_ptr<Nous> MakeDurableNous(const std::string& dir) {
    auto nous = std::make_unique<Nous>(&kb_, DurableOptions(dir));
    auto recovered = nous->Recover();
    EXPECT_TRUE(recovered.ok()) << recovered.status();
    return nous;
  }

  std::vector<std::vector<Article>> MakeBatches(size_t count,
                                                size_t batch_size = 3) {
    CorpusConfig config;
    config.pronoun_rate = 0.2;
    std::vector<Article> articles =
        ArticleGenerator(&world_, config).GenerateArticles();
    EXPECT_GE(articles.size(), count * batch_size);
    std::vector<std::vector<Article>> batches;
    for (size_t start = 0;
         start + batch_size <= articles.size() && batches.size() < count;
         start += batch_size) {
      batches.emplace_back(articles.begin() + start,
                           articles.begin() + start + batch_size);
    }
    return batches;
  }

  static std::string GraphBytes(Nous& nous) {
    ReaderMutexLock lock(nous.kg_mutex());
    BinaryWriter w;
    nous.graph().SaveBinary(&w);
    return w.Take();
  }

  /// Polls until the follower's durable (seq, kg_version) equals the
  /// leader's. Convergence on both is the bounded-staleness invariant:
  /// equal seq alone would miss version-only divergence (Finalize).
  static bool WaitConverged(Nous& leader, Nous& follower,
                            int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (leader.last_durable_seq() > 0 &&
          follower.last_durable_seq() == leader.last_durable_seq() &&
          follower.durable_kg_version() == leader.durable_kg_version()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  template <typename Pred>
  static bool WaitFor(Pred pred, int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  ReplicationFollower::Options FollowOptions(uint16_t port) {
    ReplicationFollower::Options options;
    options.port = port;
    options.reconnect_initial_ms = 20;
    options.reconnect_max_ms = 200;
    return options;
  }

  WorldModel world_;
  CuratedKb kb_;
};

TEST_F(ReplicationFixture, LiveStreamingConvergesBitIdentically) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("live_leader"));
  auto follower_nous = MakeDurableNous(FreshDir("live_follower"));
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());

  for (const auto& batch : MakeBatches(4)) {
    ASSERT_TRUE(leader_nous->IngestBatch(batch).ok());
  }
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
  EXPECT_GE(follower.View().frames_applied, 1u);
}

TEST_F(ReplicationFixture, LateJoinerCatchesUpFromTheWal) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("late_leader"));
  // All four batches are committed before the follower exists; with
  // no checkpoint in between they are all still in the WAL.
  for (const auto& batch : MakeBatches(4)) {
    ASSERT_TRUE(leader_nous->IngestBatch(batch).ok());
  }
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());

  auto follower_nous = MakeDurableNous(FreshDir("late_follower"));
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
  // The WAL bridged the whole gap: batches, not an image.
  EXPECT_GE(follower.View().frames_applied, 4u);
}

TEST_F(ReplicationFixture, CheckpointedAwayHistoryForcesAnImageResync) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("image_leader"));
  for (const auto& batch : MakeBatches(3)) {
    ASSERT_TRUE(leader_nous->IngestBatch(batch).ok());
  }
  // Finalize checkpoints and resets the WAL: the batches are no longer
  // replayable from the log, so a fresh follower needs the image.
  leader_nous->Finalize();
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());

  auto follower_nous = MakeDurableNous(FreshDir("image_follower"));
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
  EXPECT_GE(follower.View().checkpoints_applied, 1u);
}

TEST_F(ReplicationFixture, FinalizePropagatesToFollowers) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("fin_leader"));
  auto follower_nous = MakeDurableNous(FreshDir("fin_follower"));
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());

  auto batches = MakeBatches(4);
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_TRUE(leader_nous->IngestBatch(batches[i]).ok());
    if (i == 1) leader_nous->Finalize();
  }
  // Finalize mutates state without a WAL record (training, pattern
  // render) and bumps kg_version; followers get it as a checkpoint
  // image. Converged versions prove the image arrived.
  leader_nous->Finalize();
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
  EXPECT_GE(follower.View().checkpoints_applied, 2u);
}

TEST_F(ReplicationFixture, DroppedFramesAreDetectedAndResynced) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("drop_leader"));
  auto follower_nous = MakeDurableNous(FreshDir("drop_follower"));
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());
  // The 2nd data frame the leader sends vanishes on the wire while
  // the leader's cursor still advances — a real gap the follower must
  // notice via the seq discontinuity.
  FaultInjector::Global().Arm("repl_frame_drop", FaultKind::kFail, 2);
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());

  for (const auto& batch : MakeBatches(4)) {
    ASSERT_TRUE(leader_nous->IngestBatch(batch).ok());
  }
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
  const ReplicationView view = follower.View();
  EXPECT_GE(view.gaps + view.reconnects, 1u)
      << "the drop should have forced at least one resync";
}

TEST_F(ReplicationFixture, CorruptedFramesAreRejectedAndResynced) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("corrupt_leader"));
  auto follower_nous = MakeDurableNous(FreshDir("corrupt_follower"));
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());
  FaultInjector::Global().Arm("repl_frame_corrupt", FaultKind::kFail, 2);
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());

  for (const auto& batch : MakeBatches(4)) {
    ASSERT_TRUE(leader_nous->IngestBatch(batch).ok());
  }
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
  EXPECT_GE(follower.View().corrupt_frames, 1u);
}

TEST_F(ReplicationFixture, SocketFaultsReconnectAndConverge) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("sock_leader"));
  auto follower_nous = MakeDurableNous(FreshDir("sock_follower"));
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());
  // Socket-level failures on both directions of the link.
  FaultInjector::Global().Arm("repl_send", FaultKind::kFail, 3);
  FaultInjector::Global().Arm("repl_recv", FaultKind::kFail, 5);
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());

  for (const auto& batch : MakeBatches(4)) {
    ASSERT_TRUE(leader_nous->IngestBatch(batch).ok());
  }
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
}

TEST_F(ReplicationFixture, DroppedAcceptIsRetriedByTheFollower) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("accept_leader"));
  ASSERT_TRUE(leader_nous->IngestBatch(MakeBatches(1)[0]).ok());
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());
  // The first accepted connection is dropped on the floor; the
  // follower's backoff loop must try again.
  FaultInjector::Global().Arm("repl_accept", FaultKind::kFail, 1);
  auto follower_nous = MakeDurableNous(FreshDir("accept_follower"));
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
}

TEST_F(ReplicationFixture, FollowerRestartResumesFromItsDurableState) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("frestart_leader"));
  const std::string follower_dir = FreshDir("frestart_follower");
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());

  auto batches = MakeBatches(6, 2);
  {
    auto follower_nous = MakeDurableNous(follower_dir);
    ReplicationFollower follower(follower_nous.get(),
                                 FollowOptions(leader.port()));
    ASSERT_TRUE(follower.Start().ok());
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(leader_nous->IngestBatch(batches[i]).ok());
    }
    ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
    // Make the follower's progress durable before "crashing" it, as a
    // real follower's checkpoint-on-drain would.
    ASSERT_TRUE(follower_nous->Checkpoint().ok());
  }  // follower process "dies"

  // The leader keeps committing while the follower is down.
  for (size_t i = 3; i < 6; ++i) {
    ASSERT_TRUE(leader_nous->IngestBatch(batches[i]).ok());
  }

  // Restart: a new process recovers the follower's durable state and
  // resumes from its last applied position.
  auto follower_nous = MakeDurableNous(follower_dir);
  EXPECT_EQ(follower_nous->last_durable_seq(), 3u);
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
}

TEST_F(ReplicationFixture, LeaderCrashRecoveryReconvergesFollowers) {
  FaultGuard faults;
  const std::string leader_dir = FreshDir("lrestart_leader");
  auto follower_nous = MakeDurableNous(FreshDir("lrestart_follower"));
  std::unique_ptr<ReplicationFollower> follower;
  auto batches = MakeBatches(6, 2);

  {
    auto leader_nous = MakeDurableNous(leader_dir);
    ReplicationLeader leader(leader_nous.get(), {});
    ASSERT_TRUE(leader.Start().ok());
    follower = std::make_unique<ReplicationFollower>(
        follower_nous.get(), FollowOptions(leader.port()));
    ASSERT_TRUE(follower->Start().ok());
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(leader_nous->IngestBatch(batches[i]).ok());
    }
    ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
    follower->Stop();
  }  // leader "dies" without Finalize — its WAL is all it leaves

  // Restart path mirrors nous_server: recover, Finalize (which
  // re-trains state and bumps kg_version with no WAL record), serve.
  auto leader_nous = MakeDurableNous(leader_dir);
  EXPECT_EQ(leader_nous->last_durable_seq(), 3u);
  leader_nous->Finalize();
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());

  // New follower session against the reborn leader, same follower KG.
  follower = std::make_unique<ReplicationFollower>(
      follower_nous.get(), FollowOptions(leader.port()));
  ASSERT_TRUE(follower->Start().ok());
  // The follower sits at the same seq but an older kg_version; the
  // Hello version check must force an image, not leave it stale.
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
  EXPECT_GE(follower->View().checkpoints_applied, 1u);

  // And the recovered leader keeps streaming live commits.
  for (size_t i = 3; i < 6; ++i) {
    ASSERT_TRUE(leader_nous->IngestBatch(batches[i]).ok());
  }
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
}

TEST_F(ReplicationFixture, SlowFollowerIsShedNotAllowedToStallIngest) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("slow_leader"));
  auto follower_nous = MakeDurableNous(FreshDir("slow_follower"));
  ReplicationLeader::Options leader_options;
  leader_options.queue_capacity = 2;
  ReplicationLeader leader(leader_nous.get(), leader_options);
  ASSERT_TRUE(leader.Start().ok());
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());

  auto batches = MakeBatches(6, 2);
  ASSERT_TRUE(leader_nous->IngestBatch(batches[0]).ok());
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));

  // Every send now stalls: the session thread wedges mid-frame while
  // commits keep landing in its (capacity-2) queue.
  FaultInjector::Global().Arm("repl_send", FaultKind::kDelay, 1,
                              /*sticky=*/true, /*arg=*/1500);
  const auto ingest_start = std::chrono::steady_clock::now();
  for (size_t i = 1; i < 6; ++i) {
    ASSERT_TRUE(leader_nous->IngestBatch(batches[i]).ok());
  }
  const auto ingest_elapsed =
      std::chrono::steady_clock::now() - ingest_start;

  ASSERT_TRUE(WaitFor([&] {
    return leader.View().overflow_disconnects >= 1;
  })) << "the wedged follower should have been shed";
  // The shed is the point: committing 5 batches must not have waited
  // on the wedged socket (5 sends at 1.5s each would be 7.5s).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(ingest_elapsed)
                .count(),
            6);

  // Link heals; the shed follower reconnects and catches up.
  FaultInjector::Global().Reset();
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));
  EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous));
}

TEST_F(ReplicationFixture, TwoFollowersBothConverge) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("two_leader"));
  auto follower_a = MakeDurableNous(FreshDir("two_follower_a"));
  auto follower_b = MakeDurableNous(FreshDir("two_follower_b"));
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());
  ReplicationFollower repl_a(follower_a.get(), FollowOptions(leader.port()));
  ReplicationFollower repl_b(follower_b.get(), FollowOptions(leader.port()));
  ASSERT_TRUE(repl_a.Start().ok());
  ASSERT_TRUE(repl_b.Start().ok());

  for (const auto& batch : MakeBatches(4)) {
    ASSERT_TRUE(leader_nous->IngestBatch(batch).ok());
  }
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_a));
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_b));
  const std::string golden = GraphBytes(*leader_nous);
  EXPECT_EQ(golden, GraphBytes(*follower_a));
  EXPECT_EQ(golden, GraphBytes(*follower_b));
}

TEST_F(ReplicationFixture, RandomizedChaosAlwaysEndsInBitIdentity) {
  // Different fault ordinals each round land drops/corruption/socket
  // failures on different frames of the stream — handshake, catch-up,
  // live, checkpoint. Whatever they hit, the invariant is the same:
  // the follower ends bit-identical, never silently diverged.
  for (uint64_t round = 1; round <= 3; ++round) {
    FaultGuard faults;
    auto leader_nous =
        MakeDurableNous(FreshDir(StrFormat("chaos_leader_%llu",
                                           (unsigned long long)round)));
    auto follower_nous =
        MakeDurableNous(FreshDir(StrFormat("chaos_follower_%llu",
                                           (unsigned long long)round)));
    ReplicationLeader leader(leader_nous.get(), {});
    ASSERT_TRUE(leader.Start().ok());
    FaultInjector::Global().Arm("repl_frame_drop", FaultKind::kFail,
                                1 + round);
    FaultInjector::Global().Arm("repl_frame_corrupt", FaultKind::kFail,
                                3 + round);
    FaultInjector::Global().Arm("repl_recv", FaultKind::kFail, 2 + round);
    FaultInjector::Global().Arm("repl_send", FaultKind::kFail, 6 + round);
    ReplicationFollower follower(follower_nous.get(),
                                 FollowOptions(leader.port()));
    ASSERT_TRUE(follower.Start().ok());

    auto batches = MakeBatches(5, 2);
    for (size_t i = 0; i < batches.size(); ++i) {
      ASSERT_TRUE(leader_nous->IngestBatch(batches[i]).ok());
      if (i == 2) leader_nous->Finalize();
    }
    ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous))
        << "round " << round;
    EXPECT_EQ(GraphBytes(*leader_nous), GraphBytes(*follower_nous))
        << "round " << round;
  }
}

TEST_F(ReplicationFixture, TelemetryReportsLagAndLeaderPosition) {
  FaultGuard faults;
  auto leader_nous = MakeDurableNous(FreshDir("telemetry_leader"));
  auto follower_nous = MakeDurableNous(FreshDir("telemetry_follower"));
  ReplicationLeader leader(leader_nous.get(), {});
  ASSERT_TRUE(leader.Start().ok());
  ReplicationFollower follower(follower_nous.get(),
                               FollowOptions(leader.port()));
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(leader_nous->IngestBatch(MakeBatches(1)[0]).ok());
  ASSERT_TRUE(WaitConverged(*leader_nous, *follower_nous));

  // Heartbeats carry the leader's position; once converged the lag is
  // exactly zero.
  ASSERT_TRUE(WaitFor([&] {
    const ReplicationView view = follower.View();
    return view.leader_kg_version == leader_nous->durable_kg_version() &&
           view.lag_versions == 0 && view.connected;
  }));
  const ReplicationView leader_view = leader.View();
  EXPECT_EQ(leader_view.role, "leader");
  EXPECT_EQ(leader_view.followers, 1u);
  EXPECT_EQ(leader_view.last_seq, leader_nous->last_durable_seq());
  EXPECT_EQ(follower.View().role, "follower");
}

TEST_F(ReplicationFixture, NonDurableNousRefusesReplication) {
  Nous::Options options;
  options.pipeline.lda.iterations = 3;
  Nous nous(&kb_, options);
  ReplicationLeader leader(&nous, {});
  EXPECT_EQ(leader.Start().code(), StatusCode::kFailedPrecondition);
  ReplicationFollower follower(&nous, FollowOptions(1));
  EXPECT_EQ(follower.Start().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace nous
