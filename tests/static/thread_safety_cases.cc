// Thread-safety annotation negative-compile cases, selected with
// -DNOUS_STATIC_CASE=<n> (see CMakeLists.txt in this directory).
//
//   0  positive control: correct locking through the public API —
//      MUST compile (validates the RETURN_CAPABILITY accessor
//      aliasing that every other case depends on)
//   1  calling a REQUIRES_SHARED(*Unlocked) method without the lock
//   2  reading a GUARDED_BY member without holding its mutex
//   3  calling a REQUIRES (exclusive) method under only a reader lock
//   4  re-acquiring a held mutex (self-deadlock with a queued writer)
//
// Cases 1-4 are each expected to FAIL under -Werror=thread-safety.
// Keep each case minimal: one bug per case, everything else locked
// correctly, so the expected diagnostic is the only diagnostic.

#include "common/thread_annotations.h"

#ifndef NOUS_STATIC_CASE
#error "compile with -DNOUS_STATIC_CASE=<case number>"
#endif

namespace nous {

// A miniature KgPipeline: shared mutex, guarded state, REQUIRES'd
// accessors, and the RETURN_CAPABILITY accessor pattern used across
// the real codebase.
class MiniPipeline {
 public:
  AnnotatedSharedMutex& mutex() const RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }

  int edges() const REQUIRES_SHARED(mutex_) { return edges_; }
  void AddEdge() REQUIRES(mutex_) { ++edges_; }

  int EdgesUnlocked() const REQUIRES_SHARED(mutex_) { return edges_; }

  void Ingest() EXCLUDES(mutex_) {
    WriterMutexLock lock(mutex_);
    AddEdge();
  }

 private:
  mutable AnnotatedSharedMutex mutex_;
  int edges_ GUARDED_BY(mutex_) = 0;
};

#if NOUS_STATIC_CASE == 0
// Positive control: correct locking through the accessor must satisfy
// REQUIRES clauses written against the member (lock_returned
// aliasing). If this case fails, the annotation plumbing is broken and
// the negative cases below prove nothing.
int CorrectUse() {
  MiniPipeline p;
  p.Ingest();
  ReaderMutexLock lock(p.mutex());
  return p.edges() + p.EdgesUnlocked();
}

#elif NOUS_STATIC_CASE == 1
// BUG: *Unlocked call with no lock held — the exact mistake the
// naming convention invites and the annotations exist to catch.
int MissingLock() {
  MiniPipeline p;
  return p.EdgesUnlocked();  // expected error: requires holding mutex
}

#elif NOUS_STATIC_CASE == 2
// BUG: guarded member read without the mutex.
class Counter {
 public:
  int Read() const { return value_; }  // expected error: guarded_by

 private:
  mutable AnnotatedMutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};
int UnguardedRead() {
  Counter c;
  return c.Read();
}

#elif NOUS_STATIC_CASE == 3
// BUG: mutation under a shared (reader) lock.
void WriteUnderReaderLock() {
  MiniPipeline p;
  ReaderMutexLock lock(p.mutex());
  p.AddEdge();  // expected error: requires exclusive, holds shared
}

#elif NOUS_STATIC_CASE == 4
// BUG: acquiring a lock the caller already holds. At runtime this
// deadlocks as soon as a writer queues between the two shared
// acquisitions; EXCLUDES turns it into a compile error.
void DoubleAcquire() {
  MiniPipeline p;
  WriterMutexLock lock(p.mutex());
  p.Ingest();  // expected error: Ingest EXCLUDES a held mutex
}

#else
#error "unknown NOUS_STATIC_CASE"
#endif

}  // namespace nous
