#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "graph/graph_generator.h"
#include "graph/graph_io.h"
#include "graph/property_graph.h"

namespace nous {
namespace {

PropertyGraph MakeSampleGraph() {
  PropertyGraph g;
  VertexId dji = g.GetOrAddVertex("DJI");
  VertexId phantom = g.GetOrAddVertex("Phantom 3");
  VertexId seattle = g.GetOrAddVertex("Seattle");
  g.SetVertexType(dji, g.types().Intern("company"));
  g.SetVertexType(phantom, g.types().Intern("drone_model"));
  g.AddVertexTerm(dji, g.terms().Intern("quadcopter"), 2.5);
  g.AddVertexTerm(dji, g.terms().Intern("camera"), 1.0);
  g.SetVertexTopics(dji, {0.25, 0.75});
  EdgeMeta meta;
  meta.confidence = 0.85;
  meta.timestamp = 736000;
  meta.source = g.sources().Intern("wsj");
  meta.curated = false;
  g.AddEdge(dji, g.predicates().Intern("manufactures"), phantom, meta);
  EdgeMeta curated;
  curated.curated = true;
  curated.source = g.sources().Intern("curated_kb");
  g.AddEdge(dji, g.predicates().Intern("headquarteredIn"), seattle,
            curated);
  return g;
}

TEST(GraphIoTest, RoundTripPreservesEverything) {
  PropertyGraph original = MakeSampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(original, buffer).ok());
  auto loaded = LoadGraph(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const PropertyGraph& g = **loaded;

  EXPECT_EQ(g.NumVertices(), original.NumVertices());
  EXPECT_EQ(g.NumEdges(), original.NumEdges());
  auto dji = g.FindVertex("DJI");
  ASSERT_TRUE(dji.has_value());
  EXPECT_EQ(g.types().GetString(g.VertexType(*dji)), "company");
  EXPECT_DOUBLE_EQ(
      g.VertexBag(*dji).at(*g.terms().Lookup("quadcopter")), 2.5);
  EXPECT_EQ(g.VertexTopics(*dji), (std::vector<double>{0.25, 0.75}));

  auto phantom = g.FindVertex("Phantom 3");
  auto pred = g.predicates().Lookup("manufactures");
  ASSERT_TRUE(phantom && pred);
  auto edge = g.FindEdge(*dji, *pred, *phantom);
  ASSERT_TRUE(edge.has_value());
  const EdgeRecord& rec = g.Edge(*edge);
  EXPECT_DOUBLE_EQ(rec.meta.confidence, 0.85);
  EXPECT_EQ(rec.meta.timestamp, 736000);
  EXPECT_EQ(g.sources().GetString(rec.meta.source), "wsj");
  EXPECT_FALSE(rec.meta.curated);

  auto hq = g.predicates().Lookup("headquarteredIn");
  auto seattle = g.FindVertex("Seattle");
  ASSERT_TRUE(hq && seattle);
  auto hq_edge = g.FindEdge(*dji, *hq, *seattle);
  ASSERT_TRUE(hq_edge.has_value());
  EXPECT_TRUE(g.Edge(*hq_edge).meta.curated);
}

TEST(GraphIoTest, DeadEdgesNotPersisted) {
  PropertyGraph g = MakeSampleGraph();
  // Remove the first live edge.
  EdgeId victim = kInvalidEdge;
  g.ForEachEdge([&victim](EdgeId e, const EdgeRecord&) {
    if (victim == kInvalidEdge) victim = e;
  });
  ASSERT_TRUE(g.RemoveEdge(victim).ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(g, buffer).ok());
  auto loaded = LoadGraph(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->NumEdges(), g.NumEdges());
  EXPECT_EQ((*loaded)->NumEdgeSlots(), g.NumEdges());  // compacted
}

TEST(GraphIoTest, RejectsTabInLabel) {
  PropertyGraph g;
  g.GetOrAddVertex("bad\tlabel");
  std::stringstream buffer;
  EXPECT_EQ(SaveGraph(g, buffer).code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, RejectsMissingHeader) {
  std::stringstream buffer("V\tA\t-\n");
  auto loaded = LoadGraph(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, RejectsMalformedRecords) {
  const char* kBadInputs[] = {
      "#nous-graph v1\nV\tonly-two-fields\n",
      "#nous-graph v1\nE\ta\tp\tb\tx\t0\t-\t0\n",       // bad conf
      "#nous-graph v1\nB\tmissing\tterm\t1.0\n",        // unknown vertex
      "#nous-graph v1\nE\ta\tp\tb\t0.5\t0\t-\t2\n",     // bad curated
      "#nous-graph v1\nZ\twhat\n",                       // unknown kind
  };
  for (const char* input : kBadInputs) {
    std::stringstream buffer(input);
    auto loaded = LoadGraph(buffer);
    EXPECT_FALSE(loaded.ok()) << input;
  }
}

TEST(GraphIoTest, EmptyGraphRoundTrips) {
  PropertyGraph g;
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(g, buffer).ok());
  auto loaded = LoadGraph(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->NumVertices(), 0u);
  EXPECT_EQ((*loaded)->NumEdges(), 0u);
}

TEST(GraphIoTest, FileRoundTrip) {
  PropertyGraph g = MakeSampleGraph();
  std::string path = testing::TempDir() + "/nous_graph_io_test.txt";
  ASSERT_TRUE(SaveGraphToFile(g, path).ok());
  auto loaded = LoadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->NumEdges(), g.NumEdges());
  EXPECT_EQ(LoadGraphFromFile("/definitely/not/here").status().code(),
            StatusCode::kNotFound);
}

TEST(GraphIoTest, EveryTruncationEitherFailsCleanlyOrLoadsAPrefix) {
  // Crash-robustness sweep (DESIGN.md §5.10): a dump cut off at any
  // byte — a partial :save, a copy that died midway — must never
  // crash the loader or yield a graph larger than the original.
  PropertyGraph g = MakeSampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(g, buffer).ok());
  const std::string full = buffer.str();
  ASSERT_GT(full.size(), 0u);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    auto loaded = LoadGraph(truncated);
    if (loaded.ok()) {
      EXPECT_LE((*loaded)->NumEdges(), g.NumEdges()) << "cut=" << cut;
      EXPECT_LE((*loaded)->NumVertices(), g.NumVertices())
          << "cut=" << cut;
    }
  }
}

TEST(GraphIoTest, SingleByteCorruptionNeverCrashesTheLoader) {
  PropertyGraph g = MakeSampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(g, buffer).ok());
  const std::string full = buffer.str();
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string image = full;
    image[pos] ^= 0x01;
    std::stringstream corrupted(image);
    // A flipped bit may still parse (e.g. inside a label); the
    // contract is an error Status or a well-formed graph — no crash,
    // hang, or unbounded allocation.
    auto loaded = LoadGraph(corrupted);
    (void)loaded;
  }
}

class GraphIoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphIoPropertyTest, RandomGraphRoundTripsExactly) {
  StreamConfig config;
  config.num_edges = 300;
  config.num_entities = 40;
  config.seed = GetParam();
  PropertyGraph g;
  for (const TimedTriple& t : GenerateStream(config)) g.AddTriple(t);
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(g, buffer).ok());
  auto loaded = LoadGraph(buffer);
  ASSERT_TRUE(loaded.ok());
  const PropertyGraph& h = **loaded;
  ASSERT_EQ(h.NumVertices(), g.NumVertices());
  ASSERT_EQ(h.NumEdges(), g.NumEdges());
  // Edge multisets (parallel edges included) must match exactly.
  auto edge_multiset = [](const PropertyGraph& graph) {
    std::vector<std::string> edges;
    graph.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
      edges.push_back(StrFormat(
          "%s|%s|%s|%lld|%.6f|%d",
          graph.VertexLabel(rec.subject).c_str(),
          graph.predicates().GetString(rec.predicate).c_str(),
          graph.VertexLabel(rec.object).c_str(),
          static_cast<long long>(rec.meta.timestamp),
          rec.meta.confidence, rec.meta.curated ? 1 : 0));
    });
    std::sort(edges.begin(), edges.end());
    return edges;
  };
  EXPECT_EQ(edge_multiset(g), edge_multiset(h));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphIoPropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace nous
