#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/coref.h"
#include "text/date_parser.h"
#include "text/lexicon.h"
#include "text/ner.h"
#include "text/openie.h"
#include "text/pos_tagger.h"
#include "text/sentence_splitter.h"
#include "text/srl.h"
#include "text/tokenizer.h"

namespace nous {
namespace {

std::vector<std::string> Texts(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const Token& t : tokens) out.push_back(t.text);
  return out;
}

// ---------- Tokenizer ----------

TEST(TokenizerTest, SplitsWordsAndPunctuation) {
  auto tokens = Tokenize("DJI acquired SkyWard, a startup.");
  EXPECT_EQ(Texts(tokens),
            (std::vector<std::string>{"DJI", "acquired", "SkyWard", ",",
                                      "a", "startup", "."}));
  EXPECT_TRUE(tokens[0].sentence_initial);
  EXPECT_FALSE(tokens[1].sentence_initial);
}

TEST(TokenizerTest, PossessiveDetached) {
  auto tokens = Tokenize("DJI's drone");
  EXPECT_EQ(Texts(tokens),
            (std::vector<std::string>{"DJI", "'s", "drone"}));
}

TEST(TokenizerTest, KeepsAbbreviationPeriods) {
  auto tokens = Tokenize("The U.S. market");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].text.substr(0, 3), "U.S");
}

TEST(TokenizerTest, HyphenatedStaysWhole) {
  auto tokens = Tokenize("state-of-the-art drone");
  EXPECT_EQ(tokens[0].text, "state-of-the-art");
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   ").empty());
}

TEST(TokenizerTest, LowerFieldFilled) {
  auto tokens = Tokenize("DJI Rocks");
  EXPECT_EQ(tokens[0].lower, "dji");
  EXPECT_EQ(tokens[1].lower, "rocks");
}

// ---------- Sentence splitter ----------

TEST(SentenceSplitterTest, BasicSplit) {
  auto sents = SplitSentences("First sentence. Second one! Third?");
  ASSERT_EQ(sents.size(), 3u);
  EXPECT_EQ(sents[0], "First sentence.");
  EXPECT_EQ(sents[1], "Second one!");
  EXPECT_EQ(sents[2], "Third?");
}

TEST(SentenceSplitterTest, AbbreviationsDoNotSplit) {
  auto sents = SplitSentences("Skyward Inc. partnered with DJI. It grew.");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "Skyward Inc. partnered with DJI.");
}

TEST(SentenceSplitterTest, DecimalsDoNotSplit) {
  auto sents = SplitSentences("Shares rose 3.5 percent. Good day.");
  ASSERT_EQ(sents.size(), 2u);
}

TEST(SentenceSplitterTest, TrailingTextWithoutTerminator) {
  auto sents = SplitSentences("No terminator here");
  ASSERT_EQ(sents.size(), 1u);
  EXPECT_EQ(sents[0], "No terminator here");
}

TEST(SentenceSplitterTest, EmptyText) {
  EXPECT_TRUE(SplitSentences("").empty());
}

// ---------- POS tagger ----------

class TaggerFixture : public ::testing::Test {
 protected:
  TaggerFixture() : lexicon_(Lexicon::Default()), tagger_(&lexicon_) {}
  std::vector<Token> Tag(const std::string& text) {
    auto tokens = Tokenize(text);
    tagger_.Tag(&tokens);
    return tokens;
  }
  Lexicon lexicon_;
  PosTagger tagger_;
};

TEST_F(TaggerFixture, TagsCoreClasses) {
  auto tokens = Tag("The company quickly acquired SkyWard in 2014 .");
  EXPECT_EQ(tokens[0].tag, PosTag::kDeterminer);
  EXPECT_EQ(tokens[1].tag, PosTag::kNoun);
  EXPECT_EQ(tokens[2].tag, PosTag::kAdverb);
  EXPECT_EQ(tokens[3].tag, PosTag::kVerb);
  EXPECT_EQ(tokens[4].tag, PosTag::kProperNoun);
  EXPECT_EQ(tokens[5].tag, PosTag::kPreposition);
  EXPECT_EQ(tokens[6].tag, PosTag::kNumber);
  EXPECT_EQ(tokens[7].tag, PosTag::kPunct);
}

TEST_F(TaggerFixture, PronounAndModal) {
  auto tokens = Tag("It will acquire them");
  EXPECT_EQ(tokens[0].tag, PosTag::kPronoun);
  EXPECT_EQ(tokens[1].tag, PosTag::kModal);
  EXPECT_EQ(tokens[2].tag, PosTag::kVerb);
  EXPECT_EQ(tokens[3].tag, PosTag::kPronoun);
}

TEST_F(TaggerFixture, MidSentenceCapitalIsProper) {
  auto tokens = Tag("the DJI drone");
  EXPECT_EQ(tokens[1].tag, PosTag::kProperNoun);
}

TEST_F(TaggerFixture, MonthTaggedProper) {
  auto tokens = Tag("on March 5");
  EXPECT_EQ(tokens[1].tag, PosTag::kProperNoun);
}

// ---------- Date parser ----------

class DateFixture : public TaggerFixture {};

TEST_F(DateFixture, FullDate) {
  auto tokens = Tag("March 5 , 2014");
  size_t consumed = 0;
  auto date = ParseDateAt(tokens, 0, lexicon_, &consumed);
  ASSERT_TRUE(date.has_value());
  EXPECT_EQ(date->year, 2014);
  EXPECT_EQ(date->month, 3);
  EXPECT_EQ(date->day, 5);
  EXPECT_EQ(consumed, 4u);
}

TEST_F(DateFixture, MonthYear) {
  auto tokens = Tag("June 2015");
  size_t consumed = 0;
  auto date = ParseDateAt(tokens, 0, lexicon_, &consumed);
  ASSERT_TRUE(date.has_value());
  EXPECT_EQ(date->month, 6);
  EXPECT_EQ(date->day, 1);
  EXPECT_EQ(consumed, 2u);
}

TEST_F(DateFixture, BareYear) {
  auto tokens = Tag("in 2012 the market");
  size_t consumed = 0;
  auto date = ParseDateAt(tokens, 1, lexicon_, &consumed);
  ASSERT_TRUE(date.has_value());
  EXPECT_EQ(date->year, 2012);
  EXPECT_EQ(consumed, 1u);
}

TEST_F(DateFixture, RejectsNonDates) {
  auto tokens = Tag("March madness");
  size_t consumed = 0;
  EXPECT_FALSE(ParseDateAt(tokens, 0, lexicon_, &consumed).has_value());
  auto tokens2 = Tag("около 99 things");
  EXPECT_FALSE(ParseDateAt(tokens2, 1, lexicon_, &consumed).has_value());
}

TEST(DateTest, DayNumberMonotoneOverCalendar) {
  Timestamp prev = Date{2009, 12, 31}.ToDayNumber();
  for (int year = 2010; year <= 2016; ++year) {
    for (int month = 1; month <= 12; ++month) {
      for (int day = 1; day <= 28; day += 9) {
        Timestamp now = Date{year, month, day}.ToDayNumber();
        EXPECT_GT(now, prev);
        prev = now;
      }
    }
  }
}

class DateRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DateRoundTripTest, FromDayNumberInvertsToDayNumber) {
  auto [y, m, d] = GetParam();
  Date date{y, m, d};
  Date back = Date::FromDayNumber(date.ToDayNumber());
  EXPECT_EQ(back, date) << back.ToString() << " vs " << date.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Dates, DateRoundTripTest,
    ::testing::Values(std::make_tuple(2010, 1, 1),
                      std::make_tuple(2012, 2, 28),
                      std::make_tuple(2014, 3, 5),
                      std::make_tuple(2015, 12, 31),
                      std::make_tuple(2011, 7, 15),
                      std::make_tuple(2013, 11, 30)));

TEST(DateTest, ToStringFormat) {
  EXPECT_EQ((Date{2014, 3, 5}).ToString(), "March 5, 2014");
}

// ---------- NER ----------

class NerFixture : public TaggerFixture {
 protected:
  NerFixture() : ner_(&lexicon_) {
    ner_.AddGazetteerEntry("DJI", EntityType::kOrganization);
    ner_.AddGazetteerEntry("DJI Technology", EntityType::kOrganization);
    ner_.AddGazetteerEntry("Seattle", EntityType::kLocation);
    ner_.AddGazetteerEntry("Phantom 3", EntityType::kProduct);
    ner_.AddFirstName("Tom");
  }
  std::vector<EntityMention> Mentions(const std::string& text) {
    auto tokens = Tag(text);
    return ner_.FindMentions(tokens);
  }
  Ner ner_;
};

TEST_F(NerFixture, GazetteerLongestMatchWins) {
  auto mentions = Mentions("the DJI Technology office");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].text, "DJI Technology");
  EXPECT_EQ(mentions[0].type, EntityType::kOrganization);
}

TEST_F(NerFixture, ShapeMatchWithOrgSuffix) {
  auto mentions = Mentions("the Aero Dynamics Inc campus");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].text, "Aero Dynamics Inc");
  EXPECT_EQ(mentions[0].type, EntityType::kOrganization);
}

TEST_F(NerFixture, PersonByFirstName) {
  auto mentions = Mentions("analyst Tom Marino spoke");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].text, "Tom Marino");
  EXPECT_EQ(mentions[0].type, EntityType::kPerson);
}

TEST_F(NerFixture, ProductWithModelNumber) {
  auto mentions = Mentions("the Falcon 8 drone");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].text, "Falcon 8");
  EXPECT_EQ(mentions[0].type, EntityType::kProduct);
}

TEST_F(NerFixture, DateEmittedAsDateMention) {
  auto mentions = Mentions("the deal closed on March 5, 2014 in Seattle");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].type, EntityType::kDate);
  EXPECT_EQ(mentions[1].text, "Seattle");
  EXPECT_EQ(mentions[1].type, EntityType::kLocation);
}

TEST_F(NerFixture, SentenceInitialEntity) {
  auto mentions = Mentions("DJI acquired a startup");
  ASSERT_GE(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].text, "DJI");
}

TEST_F(NerFixture, NoMentionsInPlainText) {
  EXPECT_TRUE(Mentions("the market grew quickly").empty());
}

// ---------- Coref ----------

class CorefFixture : public NerFixture {
 protected:
  std::vector<PronounResolution> Resolve(const std::string& text) {
    std::vector<std::vector<Token>> sentences;
    std::vector<std::vector<EntityMention>> mentions;
    for (const std::string& sent : SplitSentences(text)) {
      auto tokens = Tokenize(sent);
      tagger_.Tag(&tokens);
      mentions.push_back(ner_.FindMentions(tokens));
      sentences.push_back(std::move(tokens));
    }
    CorefResolver resolver(&lexicon_);
    return resolver.Resolve(sentences, mentions);
  }
};

TEST_F(CorefFixture, ItResolvesToLastOrg) {
  auto rs = Resolve("DJI announced results. It acquired a startup.");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].antecedent.text, "DJI");
  EXPECT_EQ(rs[0].sentence, 1u);
  EXPECT_TRUE(rs[0].antecedent.from_coref);
}

TEST_F(CorefFixture, HeResolvesToLastPerson) {
  auto rs = Resolve("Tom Marino joined DJI. He leads the team.");
  ASSERT_GE(rs.size(), 1u);
  EXPECT_EQ(rs[0].antecedent.text, "Tom Marino");
  EXPECT_EQ(rs[0].antecedent.type, EntityType::kPerson);
}

TEST_F(CorefFixture, DefiniteNpResolvesToOrg) {
  auto rs = Resolve("DJI grew fast. The company hired Tom Marino.");
  ASSERT_GE(rs.size(), 1u);
  EXPECT_EQ(rs[0].antecedent.text, "DJI");
  EXPECT_EQ(rs[0].token_end - rs[0].token, 2u);  // spans "The company"
}

TEST_F(CorefFixture, UnresolvablePronounSkipped) {
  auto rs = Resolve("It rained today.");
  EXPECT_TRUE(rs.empty());
}

// ---------- OpenIE ----------

class OpenIeFixture : public NerFixture {
 protected:
  std::vector<RawExtraction> Extract(const std::string& text,
                                     OpenIeConfig config = {}) {
    OpenIeExtractor extractor(&lexicon_, &ner_, config);
    return extractor.ExtractFromText(text);
  }
  const RawExtraction* Find(const std::vector<RawExtraction>& list,
                            const std::string& s, const std::string& p,
                            const std::string& o) {
    for (const RawExtraction& ex : list) {
      if (ex.triple.subject == s && ex.triple.predicate == p &&
          ex.triple.object == o) {
        return &ex;
      }
    }
    return nullptr;
  }
};

TEST_F(OpenIeFixture, SimpleSvo) {
  auto exs = Extract("DJI acquired SkyWard Labs.");
  ASSERT_FALSE(exs.empty());
  EXPECT_NE(Find(exs, "DJI", "acquire", "SkyWard Labs"), nullptr);
  EXPECT_GT(exs[0].confidence, 0.8);
}

TEST_F(OpenIeFixture, PassiveWithBySwapsArguments) {
  auto exs = Extract("SkyWard Labs was acquired by DJI.");
  EXPECT_NE(Find(exs, "DJI", "acquire", "SkyWard Labs"), nullptr);
}

TEST_F(OpenIeFixture, PrepositionFoldsIntoRelation) {
  auto exs = Extract("DJI partnered with Parrot Aviation.");
  EXPECT_NE(Find(exs, "DJI", "partner_with", "Parrot Aviation"), nullptr);
}

TEST_F(OpenIeFixture, PassiveParticipleWithNonByPreposition) {
  auto exs = Extract("Aero Dynamics Inc is headquartered in Seattle.");
  EXPECT_NE(Find(exs, "Aero Dynamics Inc", "headquarter_in", "Seattle"),
            nullptr);
}

TEST_F(OpenIeFixture, DateObjectNotUsedAsArgument) {
  auto exs = Extract("DJI acquired SkyWard Labs on March 5, 2014.");
  ASSERT_EQ(exs.size(), 1u);
  EXPECT_EQ(exs[0].triple.object, "SkyWard Labs");
}

TEST_F(OpenIeFixture, PronounSubjectViaCoref) {
  auto exs =
      Extract("DJI announced strong results. It acquired SkyWard Labs.");
  const RawExtraction* ex = Find(exs, "DJI", "acquire", "SkyWard Labs");
  ASSERT_NE(ex, nullptr);
  EXPECT_TRUE(ex->subject_from_coref);
}

TEST_F(OpenIeFixture, CorefDisabledDropsPronounTuples) {
  OpenIeConfig config;
  config.use_coref = false;
  auto exs = Extract(
      "DJI announced strong results. It acquired SkyWard Labs.", config);
  EXPECT_EQ(Find(exs, "DJI", "acquire", "SkyWard Labs"), nullptr);
}

TEST_F(OpenIeFixture, NegationDroppedByDefault) {
  auto exs = Extract("DJI never acquired SkyWard Labs.");
  EXPECT_EQ(Find(exs, "DJI", "acquire", "SkyWard Labs"), nullptr);
}

TEST_F(OpenIeFixture, NegationKeptWithLowConfidenceWhenConfigured) {
  OpenIeConfig config;
  config.drop_negated = false;
  auto exs = Extract("DJI never acquired SkyWard Labs.", config);
  const RawExtraction* ex = Find(exs, "DJI", "acquire", "SkyWard Labs");
  ASSERT_NE(ex, nullptr);
  EXPECT_LT(ex->confidence, 0.3);
}

TEST_F(OpenIeFixture, RequireEntityObjectFiltersNounChunks) {
  OpenIeConfig relaxed;
  relaxed.require_entity_object = false;
  auto exs = Extract("DJI acquired a small startup.", relaxed);
  EXPECT_NE(Find(exs, "DJI", "acquire", "small startup"), nullptr);

  OpenIeConfig strict;
  strict.require_entity_object = true;
  auto strict_exs = Extract("DJI acquired a small startup.", strict);
  EXPECT_EQ(strict_exs.size(), 0u);
}

TEST_F(OpenIeFixture, MinConfidenceFilters) {
  OpenIeConfig config;
  config.min_confidence = 0.99;
  auto exs = Extract(
      "DJI announced strong results. It acquired SkyWard Labs.", config);
  EXPECT_TRUE(exs.empty());
}

TEST_F(OpenIeFixture, NoExtractionWithoutVerb) {
  EXPECT_TRUE(Extract("The large commercial drone market.").empty());
}

TEST_F(OpenIeFixture, NoExtractionFromEntityFreeSentence) {
  auto exs = Extract("Analysts expect strong growth.");
  EXPECT_TRUE(exs.empty());  // subject is a bare noun, not an entity
}

TEST_F(OpenIeFixture, AppositionDoesNotStealSubject) {
  // The NP "a drone maker" sits closest to the verb, but the entity
  // "DJI" is the grammatical subject.
  auto exs = Extract("DJI, a drone maker, acquired SkyWard Labs.");
  EXPECT_NE(Find(exs, "DJI", "acquire", "SkyWard Labs"), nullptr);
}

TEST_F(OpenIeFixture, NegatedFlagSetWhenKept) {
  OpenIeConfig config;
  config.drop_negated = false;
  auto exs = Extract("DJI never acquired SkyWard Labs.", config);
  const RawExtraction* ex = Find(exs, "DJI", "acquire", "SkyWard Labs");
  ASSERT_NE(ex, nullptr);
  EXPECT_TRUE(ex->negated);
  auto positive = Extract("DJI acquired SkyWard Labs.", config);
  ASSERT_FALSE(positive.empty());
  EXPECT_FALSE(positive[0].negated);
}

TEST_F(OpenIeFixture, MultipleSentences) {
  auto exs = Extract(
      "DJI acquired SkyWard Labs. Parrot Aviation partnered with DJI.");
  EXPECT_NE(Find(exs, "DJI", "acquire", "SkyWard Labs"), nullptr);
  EXPECT_NE(Find(exs, "Parrot Aviation", "partner_with", "DJI"), nullptr);
}

// ---------- SRL ----------

class SrlFixture : public NerFixture {};

TEST_F(SrlFixture, SentenceDateAttached) {
  SrlExtractor srl(&lexicon_, &ner_);
  Date doc_date{2015, 6, 1};
  auto frames =
      srl.Extract("DJI acquired SkyWard Labs on March 5, 2014.", doc_date);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].date_from_sentence);
  EXPECT_EQ(frames[0].date, (Date{2014, 3, 5}));
}

TEST_F(SrlFixture, DocumentDateFallback) {
  SrlExtractor srl(&lexicon_, &ner_);
  Date doc_date{2015, 6, 1};
  auto frames = srl.Extract("DJI acquired SkyWard Labs.", doc_date);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(frames[0].date_from_sentence);
  EXPECT_EQ(frames[0].date, doc_date);
}

}  // namespace
}  // namespace nous
