// Property-style sweeps over the text substrate: on randomly rendered
// corpora, every extraction artifact must satisfy its structural
// contracts (no empty fields, valid spans, bounded confidences),
// regardless of noise configuration.

#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "corpus/article_generator.h"
#include "corpus/world_model.h"
#include "text/ner.h"
#include "text/openie.h"
#include "text/pos_tagger.h"
#include "text/sentence_splitter.h"
#include "text/srl.h"
#include "text/tokenizer.h"

namespace nous {
namespace {

class TextPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  TextPropertyTest()
      : lexicon_(Lexicon::Default()), tagger_(&lexicon_),
        ner_(&lexicon_) {}

  WorldModel MakeWorld() {
    DroneWorldConfig config;
    config.num_companies = 10;
    config.num_people = 6;
    config.num_products = 6;
    config.num_events = 50;
    config.seed = GetParam();
    return WorldModel::BuildDroneWorld(config);
  }

  std::vector<Article> MakeArticles(const WorldModel& world) {
    CorpusConfig corpus;
    corpus.seed = GetParam() * 7 + 1;
    // Noise knobs derived from the seed for variety.
    Rng rng(GetParam());
    corpus.pronoun_rate = rng.UniformDouble();
    corpus.alias_rate = rng.UniformDouble() * 0.8;
    corpus.passive_rate = rng.UniformDouble() * 0.6;
    corpus.distractor_rate = rng.UniformDouble();
    return ArticleGenerator(&world, corpus).GenerateArticles();
  }

  Lexicon lexicon_;
  PosTagger tagger_;
  Ner ner_;
};

TEST_P(TextPropertyTest, TokensAndSentencesWellFormed) {
  WorldModel world = MakeWorld();
  for (const Article& article : MakeArticles(world)) {
    auto sentences = SplitSentences(article.text);
    EXPECT_FALSE(sentences.empty());
    size_t total_len = 0;
    for (const std::string& sentence : sentences) {
      total_len += sentence.size();
      auto tokens = Tokenize(sentence);
      ASSERT_FALSE(tokens.empty());
      EXPECT_TRUE(tokens[0].sentence_initial);
      for (size_t i = 0; i < tokens.size(); ++i) {
        EXPECT_FALSE(tokens[i].text.empty());
        EXPECT_EQ(tokens[i].lower, ToLower(tokens[i].text));
        if (i > 0) {
          EXPECT_FALSE(tokens[i].sentence_initial);
        }
      }
    }
    // Splitting loses only whitespace between sentences.
    EXPECT_LE(total_len, article.text.size());
  }
}

TEST_P(TextPropertyTest, NerMentionsHaveValidDisjointSpans) {
  WorldModel world = MakeWorld();
  Ner ner(&lexicon_);
  for (const WorldEntity& e : world.entities()) {
    ner.AddGazetteerEntry(e.name, e.ner_type);
    for (const std::string& alias : e.aliases) {
      ner.AddGazetteerEntry(alias, e.ner_type);
    }
  }
  for (const Article& article : MakeArticles(world)) {
    for (const std::string& sentence : SplitSentences(article.text)) {
      auto tokens = Tokenize(sentence);
      tagger_.Tag(&tokens);
      size_t previous_end = 0;
      for (const EntityMention& m : ner.FindMentions(tokens)) {
        EXPECT_LT(m.begin, m.end);
        EXPECT_LE(m.end, tokens.size());
        EXPECT_GE(m.begin, previous_end);  // non-overlapping, ordered
        previous_end = m.end;
        EXPECT_FALSE(m.text.empty());
      }
    }
  }
}

TEST_P(TextPropertyTest, ExtractionsStructurallySound) {
  WorldModel world = MakeWorld();
  Ner ner(&lexicon_);
  for (const WorldEntity& e : world.entities()) {
    ner.AddGazetteerEntry(e.name, e.ner_type);
    for (const std::string& alias : e.aliases) {
      ner.AddGazetteerEntry(alias, e.ner_type);
    }
  }
  OpenIeConfig config;
  config.drop_negated = false;  // exercise the negated path too
  SrlExtractor srl(&lexicon_, &ner, config);
  for (const Article& article : MakeArticles(world)) {
    for (const SrlFrame& frame : srl.Extract(article.text,
                                             article.date)) {
      const RawExtraction& ex = frame.extraction;
      EXPECT_FALSE(ex.triple.subject.empty());
      EXPECT_FALSE(ex.triple.predicate.empty());
      EXPECT_FALSE(ex.triple.object.empty());
      EXPECT_NE(ex.triple.subject, ex.triple.object);
      EXPECT_GT(ex.confidence, 0.0);
      EXPECT_LE(ex.confidence, 1.0);
      EXPECT_EQ(ex.relation, ex.triple.predicate);
      // SRL date is either the sentence's or the article's.
      if (!frame.date_from_sentence) {
        EXPECT_EQ(frame.date, article.date);
      }
    }
  }
}

TEST_P(TextPropertyTest, TaggerCoversEveryToken) {
  WorldModel world = MakeWorld();
  for (const Article& article : MakeArticles(world)) {
    for (const std::string& sentence : SplitSentences(article.text)) {
      auto tokens = Tokenize(sentence);
      tagger_.Tag(&tokens);
      for (const Token& token : tokens) {
        // Every token gets a definite class (kOther never survives
        // tagging: the fallbacks assign noun).
        EXPECT_NE(token.tag, PosTag::kOther) << token.text;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace nous
