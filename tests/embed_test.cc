#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "embed/baselines.h"
#include "embed/bpr.h"
#include "embed/eval.h"

namespace nous {
namespace {

/// Learnable synthetic world: entities split into two communities;
/// predicate 0 links within community A, predicate 1 within B. A good
/// model scores within-community pairs above cross-community ones.
std::vector<IdTriple> CommunityTriples(size_t num_entities,
                                       size_t triples_per_entity,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<IdTriple> triples;
  size_t half = num_entities / 2;
  for (uint32_t s = 0; s < num_entities; ++s) {
    bool in_a = s < half;
    for (size_t k = 0; k < triples_per_entity; ++k) {
      uint32_t o = in_a ? static_cast<uint32_t>(rng.UniformInt(half))
                        : static_cast<uint32_t>(half +
                                                rng.UniformInt(half));
      if (o == s) o = in_a ? (o + 1) % half
                           : static_cast<uint32_t>(
                                 half + (o + 1 - half) % half);
      triples.push_back(IdTriple{s, in_a ? 0u : 1u, o});
    }
  }
  return triples;
}

TEST(BprTest, ScoreIsCalibratedProbability) {
  BprModel model;
  auto triples = CommunityTriples(40, 4, 1);
  model.Train(triples, 40, 2);
  for (const IdTriple& t : triples) {
    double s = model.Score(t[0], t[1], t[2]);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(BprTest, UnseenIdsScoreNeutral) {
  BprModel model;
  EXPECT_DOUBLE_EQ(model.Score(5, 0, 7), 0.5);
  auto triples = CommunityTriples(20, 3, 2);
  model.Train(triples, 20, 2);
  EXPECT_DOUBLE_EQ(model.Score(100, 0, 3), 0.5);
  EXPECT_DOUBLE_EQ(model.Score(3, 9, 4), 0.5);
}

TEST(BprTest, LearnsCommunityStructure) {
  BprConfig config;
  config.epochs = 100;
  config.latent_dim = 16;
  BprModel model(config);
  auto triples = CommunityTriples(60, 6, 3);
  std::vector<IdTriple> train, test;
  SplitTriples(triples, 0.8, 11, &train, &test);
  model.Train(train, 60, 2);

  // The task ceiling is ~0.75: within-community unobserved objects are
  // structurally positive, so only cross-community corruptions are
  // reliably separable.
  RankingMetrics metrics = EvaluateRanking(model, test, triples, 60);
  EXPECT_GT(metrics.auc, 0.65) << "BPR AUC " << metrics.auc;
  EXPECT_GT(metrics.mrr, 0.2);

  RandomPredictor random(9);
  RankingMetrics random_metrics =
      EvaluateRanking(random, test, triples, 60);
  EXPECT_GT(metrics.auc, random_metrics.auc + 0.15);
}

TEST(BprTest, TrainingReducesLoss) {
  BprConfig config;
  config.epochs = 0;  // initialize only
  BprModel model(config);
  auto triples = CommunityTriples(40, 5, 4);
  model.Train(triples, 40, 2);
  double loss_before = model.EstimateLoss(triples);
  model.TrainIncremental(triples, 40, 2, 30);
  double loss_after = model.EstimateLoss(triples);
  EXPECT_LT(loss_after, loss_before);
}

TEST(BprTest, IncrementalGrowthHandlesNewEntities) {
  BprModel model;
  auto triples = CommunityTriples(30, 4, 5);
  model.Train(triples, 30, 2);
  EXPECT_EQ(model.num_entities(), 30u);
  // New entities arrive (dynamic KG).
  std::vector<IdTriple> fresh = {{30, 0, 31}, {31, 0, 30}, {32, 1, 30}};
  model.TrainIncremental(fresh, 33, 2, 5);
  EXPECT_EQ(model.num_entities(), 33u);
  double s = model.Score(30, 0, 31);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(BprTest, DeterministicForSameSeed) {
  auto triples = CommunityTriples(30, 4, 6);
  BprModel a, b;
  a.Train(triples, 30, 2);
  b.Train(triples, 30, 2);
  for (const IdTriple& t : triples) {
    EXPECT_DOUBLE_EQ(a.Score(t[0], t[1], t[2]), b.Score(t[0], t[1], t[2]));
  }
}

// ---------- Block-parallel SGD (sharded BPR refresh) ----------

TEST(BprTest, BlockSgdIsIdenticalForAnyPoolSize) {
  // The contract that makes parallel pipeline ingest reproducible:
  // with a fixed sgd_block, the trained model is bit-identical whether
  // gradients were computed serially or across any number of pool
  // threads.
  auto triples = CommunityTriples(40, 5, 7);
  BprConfig config;
  config.epochs = 20;
  config.sgd_block = 64;

  BprModel serial(config);
  serial.Train(triples, 40, 2);

  ThreadPool pool(8);
  BprModel parallel(config);
  parallel.set_pool(&pool);
  parallel.Train(triples, 40, 2);

  for (const IdTriple& t : triples) {
    ASSERT_DOUBLE_EQ(serial.Score(t[0], t[1], t[2]),
                     parallel.Score(t[0], t[1], t[2]));
  }
}

TEST(BprTest, BlockSgdWithBlockOneMatchesSequentialSgd) {
  // sgd_block=1 degenerates to classic SGD: the gradient is computed
  // from current parameters and applied immediately.
  auto triples = CommunityTriples(30, 4, 8);
  BprConfig sequential_config;
  sequential_config.epochs = 10;
  BprConfig block_config = sequential_config;
  block_config.sgd_block = 1;
  BprModel sequential(sequential_config), block(block_config);
  sequential.Train(triples, 30, 2);
  block.Train(triples, 30, 2);
  for (const IdTriple& t : triples) {
    ASSERT_DOUBLE_EQ(sequential.Score(t[0], t[1], t[2]),
                     block.Score(t[0], t[1], t[2]));
  }
}

TEST(BprTest, BlockSgdAucWithinToleranceOfSequentialTrainer) {
  // Block gradients are stale by at most sgd_block-1 updates, so the
  // trained model differs from the sequential trainer's — but ranking
  // quality must hold up. This is the documented tolerance for the
  // pipeline's sharded BPR refresh.
  auto triples = CommunityTriples(60, 6, 3);
  std::vector<IdTriple> train, test;
  SplitTriples(triples, 0.8, 11, &train, &test);

  BprConfig sequential_config;
  sequential_config.epochs = 100;
  BprModel sequential(sequential_config);
  sequential.Train(train, 60, 2);
  RankingMetrics sequential_metrics =
      EvaluateRanking(sequential, test, triples, 60);

  BprConfig block_config = sequential_config;
  block_config.sgd_block = 256;
  ThreadPool pool(4);
  BprModel block(block_config);
  block.set_pool(&pool);
  block.Train(train, 60, 2);
  RankingMetrics block_metrics = EvaluateRanking(block, test, triples, 60);

  EXPECT_GT(block_metrics.auc, 0.65) << "block AUC " << block_metrics.auc;
  EXPECT_NEAR(block_metrics.auc, sequential_metrics.auc, 0.05)
      << "sequential " << sequential_metrics.auc << " vs block "
      << block_metrics.auc;
}

// ---------- Baselines ----------

TEST(NeighborIndexTest, BuildsUndirectedNeighborhoods) {
  std::vector<IdTriple> triples = {{0, 0, 1}, {1, 0, 2}};
  NeighborIndex index(triples, 3);
  EXPECT_EQ(index.Degree(0), 1u);
  EXPECT_EQ(index.Degree(1), 2u);
  EXPECT_TRUE(index.Neighbors(1).count(0) > 0);
  EXPECT_TRUE(index.Neighbors(1).count(2) > 0);
  EXPECT_EQ(index.Degree(99), 0u);  // out of range is safe
}

TEST(BaselinesTest, CommonNeighborsCountsSharedVertices) {
  // 0 and 2 share neighbor 1; 0 and 3 share none.
  std::vector<IdTriple> triples = {{0, 0, 1}, {2, 0, 1}, {3, 0, 4}};
  NeighborIndex index(triples, 5);
  CommonNeighborsPredictor cn(&index);
  EXPECT_DOUBLE_EQ(cn.Score(0, 0, 2), 1.0);
  EXPECT_DOUBLE_EQ(cn.Score(0, 0, 3), 0.0);
}

TEST(BaselinesTest, AdamicAdarDiscountsHighDegreeNeighbors) {
  // Hub vertex 1 connects everyone; vertex 5 connects only 0 and 2.
  std::vector<IdTriple> triples = {{0, 0, 1}, {2, 0, 1}, {3, 0, 1},
                                   {4, 0, 1}, {0, 0, 5}, {2, 0, 5}};
  NeighborIndex index(triples, 6);
  AdamicAdarPredictor aa(&index);
  CommonNeighborsPredictor cn(&index);
  // Both share {1,5} for (0,2): AA weighs the low-degree 5 more.
  double score_02 = aa.Score(0, 0, 2);
  double score_03 = aa.Score(0, 0, 3);  // only the hub is shared
  EXPECT_GT(score_02, score_03);
  EXPECT_DOUBLE_EQ(cn.Score(0, 0, 2), 2.0);
}

TEST(BaselinesTest, PreferentialAttachmentUsesDegrees) {
  std::vector<IdTriple> triples = {{0, 0, 1}, {0, 0, 2}, {3, 0, 1}};
  NeighborIndex index(triples, 4);
  PreferentialAttachmentPredictor pa(&index);
  EXPECT_DOUBLE_EQ(pa.Score(0, 0, 1), 4.0);  // deg 2 * deg 2
  EXPECT_DOUBLE_EQ(pa.Score(3, 0, 2), 1.0);
}

TEST(BaselinesTest, TopologyBaselinesBeatRandomOnCommunities) {
  auto triples = CommunityTriples(60, 6, 7);
  std::vector<IdTriple> train, test;
  SplitTriples(triples, 0.8, 13, &train, &test);
  NeighborIndex index(train, 60);
  CommonNeighborsPredictor cn(&index);
  RandomPredictor random(3);
  RankingMetrics cn_metrics = EvaluateRanking(cn, test, triples, 60);
  RankingMetrics rnd_metrics = EvaluateRanking(random, test, triples, 60);
  EXPECT_GT(cn_metrics.auc, rnd_metrics.auc + 0.1);
}

// ---------- Eval ----------

TEST(EvalTest, PerfectPredictorScoresPerfectly) {
  // Oracle: scores the true object 1, everything else 0.
  class Oracle : public LinkPredictor {
   public:
    explicit Oracle(uint32_t target) : target_(target) {}
    double Score(uint32_t, uint32_t, uint32_t o) const override {
      return o == target_ ? 1.0 : 0.0;
    }
    std::string name() const override { return "oracle"; }

   private:
    uint32_t target_;
  };
  std::vector<IdTriple> test = {{0, 0, 7}};
  Oracle oracle(7);
  RankingMetrics metrics = EvaluateRanking(oracle, test, test, 50);
  EXPECT_DOUBLE_EQ(metrics.auc, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mrr, 1.0);
  EXPECT_DOUBLE_EQ(metrics.hits_at_10, 1.0);
}

TEST(EvalTest, EmptyTestSetYieldsZeroMetrics) {
  RandomPredictor random(1);
  RankingMetrics metrics = EvaluateRanking(random, {}, {}, 10);
  EXPECT_EQ(metrics.evaluated, 0u);
  EXPECT_DOUBLE_EQ(metrics.auc, 0.0);
}

TEST(EvalTest, SplitPartitionsAllTriples) {
  auto triples = CommunityTriples(20, 3, 8);
  std::vector<IdTriple> train, test;
  SplitTriples(triples, 0.75, 3, &train, &test);
  EXPECT_EQ(train.size() + test.size(), triples.size());
  EXPECT_NEAR(static_cast<double>(train.size()) / triples.size(), 0.75,
              0.02);
}

}  // namespace
}  // namespace nous
