// Failure-injection and adversarial-input tests: the pipeline and its
// components must degrade gracefully on garbage, never crash.

#include <string>

#include <gtest/gtest.h>

#include "core/nous.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "qa/path_search.h"
#include "qa/query_engine.h"
#include "text/openie.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"
#include "common/status.h"

namespace nous {
namespace {

class RobustnessFixture : public ::testing::Test {
 protected:
  RobustnessFixture()
      : world_(WorldModel::BuildDroneWorld(SmallConfig())),
        kb_(BuildCuratedKb(world_, Ontology::DroneDefault(), {})) {}
  static DroneWorldConfig SmallConfig() {
    DroneWorldConfig config;
    config.num_companies = 5;
    config.num_people = 3;
    config.num_products = 3;
    config.num_events = 10;
    return config;
  }
  static Nous::Options FastOptions() {
    Nous::Options options;
    options.pipeline.lda.iterations = 3;
    options.pipeline.bpr.epochs = 1;
    return options;
  }
  WorldModel world_;
  CuratedKb kb_;
};

TEST_F(RobustnessFixture, PipelineSurvivesGarbageText) {
  Nous nous(&kb_, FastOptions());
  const char* kGarbage[] = {
      "",
      "    ",
      "....!!!???",
      "a",
      ").(}{[]\\//@@##$$%%^^&&**",
      "no entities here at all just lowercase words",
      "DJI DJI DJI DJI DJI DJI DJI DJI DJI DJI",
      "acquired acquired acquired acquired",
      "The the THE tHe ThE the the the.",
      "\t\t\t\n\n\n",
      "DJI acquired",           // dangling verb
      "acquired SkyWard Labs",  // missing subject
  };
  for (const char* text : kGarbage) {
    NOUS_CHECK_OK(nous.IngestText(text, Date{2014, 1, 1}, "fuzz"));
  }
  nous.Finalize();
  auto answer = nous.Ask("tell me about DJI");
  EXPECT_TRUE(answer.ok());
}

TEST_F(RobustnessFixture, VeryLongSentence) {
  Nous nous(&kb_, FastOptions());
  std::string text = "DJI acquired";
  for (int i = 0; i < 2000; ++i) text += " very";
  text += " SkyWard Labs.";
  NOUS_CHECK_OK(nous.IngestText(text, Date{2014, 1, 1}, "fuzz"));
  SUCCEED();  // no crash, no hang
}

TEST_F(RobustnessFixture, ManyEntitiesOneSentence) {
  Nous nous(&kb_, FastOptions());
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "Alpha" + std::to_string(i) + " Corp acquired Beta" +
            std::to_string(i) + " Inc. ";
  }
  NOUS_CHECK_OK(nous.IngestText(text, Date{2014, 1, 1}, "fuzz"));
  EXPECT_GT(nous.stats().accepted_triples, 50u);
}

TEST_F(RobustnessFixture, QueriesOnEmptyKg) {
  CuratedKb empty(Ontology::DroneDefault());
  Nous nous(&empty, FastOptions());
  EXPECT_FALSE(nous.Ask("tell me about DJI").ok());  // NotFound
  auto trending = nous.Ask("what is trending");
  ASSERT_TRUE(trending.ok());
  EXPECT_TRUE(trending->hot_entities.empty());
  auto patterns = nous.Ask("show patterns");
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->patterns.empty());
}

TEST_F(RobustnessFixture, QueryParserFuzz) {
  const char* kQueries[] = {
      "tell me about",
      "explain and",
      "paths from to",
      "why would use",
      "explain A and",
      "paths from X to",
      "??????",
      "via via via",
  };
  for (const char* q : kQueries) {
    // Must not crash; may return error.
    auto parsed = ParseQuery(q);
    (void)parsed;
  }
  SUCCEED();
}

TEST_F(RobustnessFixture, EntityNamesThatLookLikeCommands) {
  Nous nous(&kb_, FastOptions());
  // Entity whose label collides with query phrasing.
  NOUS_CHECK_OK(nous.IngestText("Show Patterns Inc acquired Trending Corp.",
                  Date{2014, 1, 1}, "fuzz"));
  auto answer = nous.Ask("tell me about Show Patterns Inc");
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->facts.empty());
}

TEST_F(RobustnessFixture, RepeatFinalizeIsStable) {
  Nous nous(&kb_, FastOptions());
  NOUS_CHECK_OK(nous.IngestText("DJI acquired SkyWard Labs.", Date{2014, 1, 1}, "a"));
  nous.Finalize();
  nous.Finalize();
  NOUS_CHECK_OK(nous.IngestText("DJI bought Parrot.", Date{2014, 2, 1}, "a"));
  nous.Finalize();
  auto answer = nous.Ask("tell me about DJI");
  EXPECT_TRUE(answer.ok());
}

TEST(RobustnessText, TokenizerNeverProducesEmptyTokens) {
  const char* kInputs[] = {"", " ", "a  b", "--", "''s", "...a...",
                           "a'b'c", "'s 's 's"};
  for (const char* input : kInputs) {
    for (const Token& t : Tokenize(input)) {
      EXPECT_FALSE(t.text.empty());
    }
  }
}

TEST(RobustnessText, SentenceSplitterHandlesPathologicalInput) {
  EXPECT_TRUE(SplitSentences("...").empty() ||
              !SplitSentences("...").empty());  // no crash contract
  auto many = SplitSentences("a. b. c. d. e. f. g. h.");
  EXPECT_GE(many.size(), 1u);
  std::string long_run(10000, '.');
  SplitSentences(long_run);  // must terminate
  SUCCEED();
}

TEST(RobustnessPath, PathSearchOnDisconnectedGraph) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");  // isolated
  g.GetOrAddVertex("c");
  g.AddEdge(a, g.predicates().Intern("p"), g.GetOrAddVertex("d"), {});
  PathSearch search(&g);
  EXPECT_TRUE(search.FindPaths(a, b).empty());
}

TEST(RobustnessPath, SelfLoopsDoNotTrapSearch) {
  PropertyGraph g;
  VertexId a = g.GetOrAddVertex("a");
  VertexId b = g.GetOrAddVertex("b");
  PredicateId p = g.predicates().Intern("p");
  g.AddEdge(a, p, a, {});  // self loop
  g.AddEdge(a, p, b, {});
  PathSearch search(&g);
  auto paths = search.FindPaths(a, b);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].vertices.size(), 2u);
}

TEST(RobustnessExtraction, ConfigExtremes) {
  Lexicon lexicon = Lexicon::Default();
  Ner ner(&lexicon);
  ner.AddGazetteerEntry("DJI", EntityType::kOrganization);
  ner.AddGazetteerEntry("SkyWard", EntityType::kOrganization);
  OpenIeConfig zero_gap;
  zero_gap.max_arg_gap = 0;
  OpenIeExtractor strict(&lexicon, &ner, zero_gap);
  auto exs = strict.ExtractFromText("DJI acquired SkyWard.");
  EXPECT_EQ(exs.size(), 1u);  // adjacent args still work at gap 0

  OpenIeConfig everything_off;
  everything_off.use_coref = false;
  everything_off.allow_nary = false;
  everything_off.extract_copula = false;
  everything_off.require_entity_subject = true;
  everything_off.require_entity_object = true;
  OpenIeExtractor minimal(&lexicon, &ner, everything_off);
  EXPECT_EQ(minimal.ExtractFromText("DJI acquired SkyWard.").size(), 1u);
}

TEST(RobustnessWindow, ZeroAndHugeWindows) {
  PropertyGraph g;
  TemporalWindow unbounded(&g, 0);
  for (int i = 0; i < 100; ++i) {
    TimedTriple t;
    t.triple = {"a" + std::to_string(i), "p", "b"};
    t.timestamp = i;
    unbounded.Add(t);
  }
  EXPECT_EQ(unbounded.size(), 100u);
  EXPECT_EQ(unbounded.ExpireOlderThan(1000), 100u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

}  // namespace
}  // namespace nous
