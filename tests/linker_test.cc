#include <gtest/gtest.h>

#include "graph/property_graph.h"
#include "linker/context.h"
#include "linker/entity_linker.h"
#include "text/lexicon.h"

namespace nous {
namespace {

// ---------- Context bags ----------

TEST(ContextTest, DocumentBagDropsStopwordsAndNumbers) {
  Lexicon lexicon = Lexicon::Default();
  TermBag bag = BuildDocumentBag(
      "The drone market is growing in 2014 and the drone sales rose",
      lexicon);
  EXPECT_EQ(bag.count("the"), 0u);
  EXPECT_EQ(bag.count("2014"), 0u);
  EXPECT_EQ(bag.count("in"), 0u);
  EXPECT_DOUBLE_EQ(bag.at("drone"), 2.0);
  EXPECT_EQ(bag.count("market"), 1u);
}

TEST(ContextTest, EntityBagMergesStoredTermsAndNeighborhood) {
  PropertyGraph g;
  VertexId dji = g.GetOrAddVertex("DJI");
  VertexId phantom = g.GetOrAddVertex("Phantom 3");
  g.AddVertexTerm(dji, g.terms().Intern("quadcopter"), 2.0);
  g.AddEdge(dji, g.predicates().Intern("manufactures"), phantom, {});
  TermBag bag = BuildEntityBag(g, dji);
  EXPECT_GT(bag.at("quadcopter"), 0);
  // Neighbor label tokens appear ("phantom" from "Phantom 3").
  EXPECT_GT(bag.count("phantom"), 0u);
}

TEST(ContextTest, CosineSimilarityBasics) {
  TermBag a = {{"x", 1.0}, {"y", 1.0}};
  TermBag b = {{"x", 1.0}, {"y", 1.0}};
  TermBag c = {{"z", 1.0}};
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, c), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, {}), 0.0);
}

// ---------- EntityLinker ----------

class LinkerFixture : public ::testing::Test {
 protected:
  LinkerFixture() : linker_(&graph_) {
    // Two entities sharing the surface "Phoenix": a city and a drone
    // company — the ambiguity case from the corpus generator.
    city_ = graph_.GetOrAddVertex("Phoenix");
    graph_.SetVertexType(city_, graph_.types().Intern("city"));
    graph_.AddVertexTerm(city_, graph_.terms().Intern("city"), 3.0);
    graph_.AddVertexTerm(city_, graph_.terms().Intern("arizona"), 2.0);
    graph_.AddVertexTerm(city_, graph_.terms().Intern("metro"), 2.0);

    company_ = graph_.GetOrAddVertex("Phoenix Labs");
    graph_.SetVertexType(company_, graph_.types().Intern("company"));
    graph_.AddVertexTerm(company_, graph_.terms().Intern("drone"), 3.0);
    graph_.AddVertexTerm(company_, graph_.terms().Intern("quadcopter"),
                         2.0);
    graph_.AddVertexTerm(company_, graph_.terms().Intern("startup"), 2.0);

    linker_.RegisterEntity(city_, {"Phoenix"}, 5.0);
    linker_.RegisterEntity(company_, {"Phoenix Labs", "Phoenix"}, 2.0);
  }
  PropertyGraph graph_;
  EntityLinker linker_;
  VertexId city_;
  VertexId company_;
};

TEST_F(LinkerFixture, CandidatesIncludeBothHomonyms) {
  EXPECT_EQ(linker_.CandidatesFor("Phoenix").size(), 2u);
  EXPECT_EQ(linker_.CandidatesFor("phoenix").size(), 2u);
  EXPECT_EQ(linker_.CandidatesFor("Phoenix Labs").size(), 1u);
}

TEST_F(LinkerFixture, ContextDisambiguatesHomonym) {
  TermBag drone_doc = {{"drone", 2.0}, {"quadcopter", 1.0},
                       {"startup", 1.0}};
  TermBag city_doc = {{"city", 2.0}, {"arizona", 1.0}, {"metro", 1.0}};
  LinkDecision d1 =
      linker_.LinkOne("Phoenix", EntityType::kOrganization, drone_doc);
  EXPECT_EQ(d1.vertex, company_);
  EXPECT_FALSE(d1.created_new);
  LinkDecision d2 =
      linker_.LinkOne("Phoenix", EntityType::kLocation, city_doc);
  EXPECT_EQ(d2.vertex, city_);
}

TEST_F(LinkerFixture, UnknownSurfaceCreatesNewVertex) {
  size_t before = graph_.NumVertices();
  LinkDecision d = linker_.LinkOne("Aero Dynamics Inc",
                                   EntityType::kOrganization, {});
  EXPECT_TRUE(d.created_new);
  EXPECT_EQ(graph_.NumVertices(), before + 1);
  EXPECT_EQ(graph_.VertexLabel(d.vertex), "Aero Dynamics Inc");
  EXPECT_EQ(graph_.types().GetString(graph_.VertexType(d.vertex)),
            "organization");
  EXPECT_EQ(linker_.num_created(), 1u);
  // Second occurrence links to the created vertex.
  LinkDecision d2 = linker_.LinkOne("Aero Dynamics Inc",
                                    EntityType::kOrganization, {});
  EXPECT_EQ(d2.vertex, d.vertex);
  EXPECT_FALSE(d2.created_new);
}

TEST_F(LinkerFixture, RepeatedSurfaceWithinDocumentResolvesOnce) {
  auto decisions = linker_.LinkMentions(
      {"New Widget Co", "New Widget Co"},
      {EntityType::kOrganization, EntityType::kOrganization}, {});
  EXPECT_EQ(decisions[0].vertex, decisions[1].vertex);
  EXPECT_EQ(linker_.num_created(), 1u);
}

TEST_F(LinkerFixture, CoherenceBoostsConnectedCandidates) {
  // "Phantom 3" is linked in the KG to Phoenix Labs; mentioning both in
  // one document should pull "Phoenix" toward the company even with a
  // neutral context bag. Uses an explicit coherence weight: the test
  // exercises the mechanism, not the (deliberately modest) default.
  VertexId phantom = graph_.GetOrAddVertex("Phantom 3");
  graph_.AddEdge(company_, graph_.predicates().Intern("manufactures"),
                 phantom, {});
  // Shared neighbor for coherence: a supplier connected to both.
  VertexId supplier = graph_.GetOrAddVertex("PartsCo");
  graph_.AddEdge(supplier, graph_.predicates().Intern("supplies"),
                 company_, {});
  graph_.AddEdge(supplier, graph_.predicates().Intern("supplies"),
                 phantom, {});
  LinkerConfig config;
  config.coherence_weight = 0.6;
  EntityLinker linker(&graph_, config);
  linker.RegisterEntity(city_, {"Phoenix"}, 5.0);
  linker.RegisterEntity(company_, {"Phoenix Labs", "Phoenix"}, 2.0);
  linker.RegisterEntity(phantom, {"Phantom 3"}, 3.0);

  auto decisions = linker.LinkMentions(
      {"Phoenix", "Phantom 3"},
      {EntityType::kOrganization, EntityType::kProduct}, {});
  EXPECT_EQ(decisions[1].vertex, phantom);
  EXPECT_EQ(decisions[0].vertex, company_);
}

TEST_F(LinkerFixture, NeighborhoodContextGrowsWithDynamicKg) {
  // Initially a neutral "drone startup" doc cannot beat the city's
  // higher prior without context; after the company gains drone-themed
  // neighbors, the same linking flips to the company.
  TermBag doc = {{"skyward", 1.0}, {"deal", 1.0}};
  LinkDecision before =
      linker_.LinkOne("Phoenix", EntityType::kOrganization, doc);
  EXPECT_EQ(before.vertex, city_);  // prior wins without context

  VertexId skyward = graph_.GetOrAddVertex("SkyWard Deal Partners");
  graph_.AddEdge(company_, graph_.predicates().Intern("acquired"),
                 skyward, {});
  LinkDecision after =
      linker_.LinkOne("Phoenix", EntityType::kOrganization, doc);
  EXPECT_EQ(after.vertex, company_);  // neighborhood terms now match
}

}  // namespace
}  // namespace nous
