// Hash-sharded commit tier (DESIGN.md §5.16): the N-shard KG must be
// bit-identical to the 1-shard KG for every shard count — the planner
// stays authoritative and shards replay its captured op stream — and
// a kill -9 must recover every shard WAL to the same composite
// version. These tests compare the composite scatter-gather view
// against the fused planner graph edge-for-edge, compare rendered
// answers across shard counts for every query class, and crash-test
// the per-shard WAL / checkpoint / manifest protocol, including a
// torn shard tail that forces a cross-shard seq gap cut.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/kg_ops.h"
#include "core/nous.h"
#include "core/shard_set.h"
#include "corpus/article_generator.h"
#include "corpus/world_model.h"
#include "durability/fs_util.h"
#include "durability/manager.h"
#include "graph/property_graph.h"
#include "kb/kb_generator.h"
#include "qa/sharded_view.h"

namespace nous {
namespace {

/// A per-test scratch directory with no stale sharded-durability
/// files (planner checkpoint, manifest, per-shard WALs/checkpoints).
std::string FreshShardDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "nous_shard_" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  for (const char* file : {"/checkpoint.nous", "/checkpoint.nous.tmp",
                           "/wal.log", "/wal/manifest.nous",
                           "/wal/manifest.nous.tmp"}) {
    EXPECT_TRUE(RemoveFile(dir + file).ok());
  }
  for (size_t k = 0; k < kMaxShards; ++k) {
    std::string shard = dir + "/wal/shard-" + std::to_string(k);
    for (const char* file :
         {"/wal.log", "/checkpoint.nous", "/checkpoint.nous.tmp"}) {
      EXPECT_TRUE(RemoveFile(shard + file).ok());
    }
  }
  return dir;
}

std::string ReadFile(const std::string& path) {
  auto contents = ReadFileToString(path);
  EXPECT_TRUE(contents.ok()) << contents.status();
  return contents.ok() ? *contents : std::string();
}

/// Byte offset just past each intact frame of a WAL image (mirrors
/// durability_test.cc: 8-byte file magic, 20-byte frame header with
/// the payload length at header offset 12).
std::vector<size_t> FrameEnds(const std::string& wal) {
  std::vector<size_t> ends;
  size_t off = 8;
  while (off + 20 <= wal.size()) {
    uint32_t len = 0;
    std::memcpy(&len, wal.data() + off + 12, sizeof(len));
    if (off + 20 + len > wal.size()) break;
    off += 20 + len;
    ends.push_back(off);
  }
  return ends;
}

class ShardFixture : public ::testing::Test {
 protected:
  ShardFixture()
      : world_(WorldModel::BuildDroneWorld(WorldConfig())),
        kb_(BuildCuratedKb(world_, Ontology::DroneDefault(), Coverage())) {}

  static DroneWorldConfig WorldConfig() {
    DroneWorldConfig config;
    config.num_companies = 10;
    config.num_people = 6;
    config.num_products = 6;
    config.num_events = 36;
    config.seed = 11;
    return config;
  }
  static KbCoverage Coverage() {
    KbCoverage coverage;
    coverage.entity_coverage = 0.6;
    coverage.fact_coverage = 0.9;
    return coverage;
  }
  static Nous::Options FastOptions(size_t shards = 1) {
    Nous::Options options;
    options.pipeline.lda.iterations = 30;
    options.pipeline.bpr.epochs = 4;
    options.pipeline.miner.min_support = 3;
    options.pipeline.bpr_refresh_interval = 5;
    options.pipeline.num_threads = 2;
    options.shards = shards;
    return options;
  }
  static Nous::Options DurableOptions(const std::string& dir, size_t shards,
                                      size_t checkpoint_interval = 0) {
    Nous::Options options = FastOptions(shards);
    options.durability.dir = dir;
    options.durability.fsync_policy = FsyncPolicy::kNever;  // speed
    options.durability.checkpoint_interval_batches = checkpoint_interval;
    return options;
  }

  std::vector<Article> MakeArticles() {
    CorpusConfig config;
    config.pronoun_rate = 0.2;
    config.alias_rate = 0.2;
    return ArticleGenerator(&world_, config).GenerateArticles();
  }
  static std::vector<std::vector<Article>> MakeBatches(
      const std::vector<Article>& articles, size_t count) {
    std::vector<std::vector<Article>> batches;
    for (size_t start = 0; start + kBatchSize <= articles.size() &&
                           batches.size() < count;
         start += kBatchSize) {
      batches.emplace_back(articles.begin() + start,
                           articles.begin() + start + kBatchSize);
    }
    return batches;
  }

  using EdgeRow = std::tuple<EdgeId, VertexId, PredicateId, VertexId, double,
                             Timestamp, SourceId, bool>;
  /// Full-fidelity edge dump in global insertion order; works on the
  /// fused PropertyGraph and on a ShardedGraphView alike.
  template <typename Graph>
  static std::vector<EdgeRow> DumpEdges(const Graph& g) {
    std::vector<EdgeRow> rows;
    g.ForEachEdge([&](EdgeId e, const EdgeRecord& rec) {
      rows.emplace_back(e, rec.subject, rec.predicate, rec.object,
                        rec.meta.confidence, rec.meta.timestamp,
                        rec.meta.source, rec.meta.curated);
    });
    return rows;
  }
  static std::vector<EdgeRow> Dump(Nous& nous) {
    ReaderMutexLock lock(nous.kg_mutex());
    return DumpEdges(nous.graph());
  }

  /// An unsharded non-durable reference that ingested
  /// `batches[0..count)` — the bit-identity baseline.
  std::vector<EdgeRow> ReferenceEdges(
      const std::vector<std::vector<Article>>& batches, size_t count) {
    Nous reference(&kb_, FastOptions());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(reference.IngestBatch(batches[i]).ok());
    }
    return Dump(reference);
  }

  /// The label of the highest-degree vertex whose label avoids the
  /// query grammar's separators (" and ", " to ").
  static std::vector<std::string> BusyEntities(const PropertyGraph& g,
                                               size_t count) {
    std::vector<std::pair<size_t, VertexId>> ranked;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      std::string label = g.VertexLabel(v);
      if (label.find(" and ") != std::string::npos ||
          label.find(" to ") != std::string::npos) {
        continue;
      }
      size_t degree = g.OutDegree(v) + g.InDegree(v);
      if (degree > 0) ranked.emplace_back(degree, v);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<std::string> labels;
    for (size_t i = 0; i < ranked.size() && labels.size() < count; ++i) {
      labels.push_back(g.VertexLabel(ranked[i].second));
    }
    EXPECT_GE(labels.size(), count);
    return labels;
  }

  static constexpr size_t kBatchSize = 3;
  WorldModel world_;
  CuratedKb kb_;
};

// ---------------------------------------------------------------------------
// Mode plumbing

TEST_F(ShardFixture, SingleShardNeverConstructsAShardSet) {
  Nous nous(&kb_, FastOptions(1));
  EXPECT_FALSE(nous.sharded());
  EXPECT_EQ(nous.shard_set(), nullptr);
  EXPECT_TRUE(nous.CompositeVersion().empty());
}

TEST_F(ShardFixture, ShardCountIsClampedToMax) {
  Nous nous(&kb_, FastOptions(kMaxShards * 10));
  ASSERT_TRUE(nous.sharded());
  EXPECT_EQ(nous.shard_set()->num_shards(), kMaxShards);
}

TEST_F(ShardFixture, ShardedModeForcesSnapshotsAndRejectsReplication) {
  Nous::Options options = FastOptions(2);
  options.pipeline.publish_snapshots = false;  // overridden: shards
                                               // serve via snapshots
  Nous nous(&kb_, options);
  auto batches = MakeBatches(MakeArticles(), 1);
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_TRUE(nous.IngestBatch(batches[0]).ok());
  EXPECT_NE(nous.snapshot(), nullptr);
  EXPECT_EQ(nous.CaptureReplicationImage().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(nous.ApplyReplicatedBatch(1, "x", 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(nous.ApplyReplicatedCheckpoint(1, "x").code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Bit-identity: N shards vs the unsharded planner graph

TEST_F(ShardFixture, CompositeViewMatchesPlannerForEveryShardCount) {
  auto articles = MakeArticles();
  auto batches = MakeBatches(articles, 4);
  ASSERT_EQ(batches.size(), 4u);
  const std::vector<EdgeRow> reference = ReferenceEdges(batches, 4);
  ASSERT_FALSE(reference.empty());

  for (size_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    Nous nous(&kb_, FastOptions(shards));
    for (const auto& batch : batches) {
      ASSERT_TRUE(nous.IngestBatch(batch).ok());
    }
    // The planner graph itself is untouched by sharding.
    EXPECT_EQ(Dump(nous), reference);

    nous.DrainShards();
    std::shared_ptr<const KgSnapshot> snap = nous.snapshot();
    ASSERT_NE(snap, nullptr);
    // One composite version vector, every entry at the snapshot.
    std::vector<uint64_t> composite = nous.CompositeVersion();
    ASSERT_EQ(composite.size(), shards);
    for (uint64_t v : composite) EXPECT_EQ(v, snap->version());

    ShardedGraphView view(&snap->graph(),
                          nous.shard_set()->CurrentViews());
    const PropertyGraph& fused = snap->graph();
    EXPECT_EQ(view.NumEdges(), fused.NumEdges());
    EXPECT_EQ(view.NumEdgeSlots(), fused.NumEdgeSlots());
    EXPECT_EQ(view.MaxEdgeTimestamp(), fused.MaxEdgeTimestamp());
    // Scatter-gather enumeration equals the fused graph edge-for-edge
    // (same global ids, same global insertion order).
    EXPECT_EQ(DumpEdges(view), DumpEdges(fused));

    // Adjacency parity for every vertex, both directions, including
    // the per-predicate indexes the path search uses.
    using Adj = std::tuple<PredicateId, VertexId, EdgeId>;
    auto flatten = [](const std::vector<AdjEntry>& adj) {
      std::vector<Adj> rows;
      rows.reserve(adj.size());
      for (const AdjEntry& a : adj) {
        rows.emplace_back(a.predicate, a.neighbor, a.edge);
      }
      return rows;
    };
    for (VertexId v = 0; v < fused.NumVertices(); ++v) {
      EXPECT_EQ(flatten(view.OutEdges(v)), flatten(fused.OutEdges(v)))
          << "out " << v;
      EXPECT_EQ(flatten(view.InEdges(v)), flatten(fused.InEdges(v)))
          << "in " << v;
      for (PredicateId p = 0; p < fused.predicates().size(); ++p) {
        EXPECT_EQ(flatten(view.OutEdgesWithPredicate(v, p)),
                  flatten(fused.OutEdgesWithPredicate(v, p)))
            << "out " << v << " pred " << p;
        EXPECT_EQ(flatten(view.InEdgesWithPredicate(v, p)),
                  flatten(fused.InEdgesWithPredicate(v, p)))
            << "in " << v << " pred " << p;
      }
    }
    // Point lookups resolve through whichever shard owns the edge.
    for (const EdgeRow& row : reference) {
      EXPECT_EQ(view.FindEdge(std::get<1>(row), std::get<2>(row),
                              std::get<3>(row)),
                fused.FindEdge(std::get<1>(row), std::get<2>(row),
                               std::get<3>(row)));
    }
  }
}

TEST_F(ShardFixture, IngestThreadCountDoesNotChangeTheShardedKg) {
  auto batches = MakeBatches(MakeArticles(), 4);
  ASSERT_EQ(batches.size(), 4u);
  std::vector<EdgeRow> first;
  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Nous::Options options = FastOptions(4);
    options.pipeline.num_threads = threads;
    Nous nous(&kb_, options);
    for (const auto& batch : batches) {
      ASSERT_TRUE(nous.IngestBatch(batch).ok());
    }
    nous.DrainShards();
    std::shared_ptr<const KgSnapshot> snap = nous.snapshot();
    ASSERT_NE(snap, nullptr);
    ShardedGraphView view(&snap->graph(), nous.shard_set()->CurrentViews());
    std::vector<EdgeRow> rows = DumpEdges(view);
    EXPECT_EQ(rows, DumpEdges(snap->graph()));
    if (first.empty()) {
      first = std::move(rows);
    } else {
      EXPECT_EQ(rows, first);
    }
  }
}

TEST_F(ShardFixture, AnswersRenderIdenticallyForEveryQueryClass) {
  auto batches = MakeBatches(MakeArticles(), 4);
  ASSERT_EQ(batches.size(), 4u);
  Nous unsharded(&kb_, FastOptions(1));
  Nous sharded(&kb_, FastOptions(3));  // odd count: uneven partitions
  for (const auto& batch : batches) {
    ASSERT_TRUE(unsharded.IngestBatch(batch).ok());
    ASSERT_TRUE(sharded.IngestBatch(batch).ok());
  }
  sharded.DrainShards();
  std::shared_ptr<const KgSnapshot> snap = unsharded.snapshot();
  ASSERT_NE(snap, nullptr);
  std::vector<std::string> busy = BusyEntities(snap->graph(), 2);
  ASSERT_EQ(busy.size(), 2u);
  const std::vector<std::string> questions = {
      "tell me about " + busy[0],
      "what is trending",
      "show patterns",
      "explain " + busy[0] + " and " + busy[1],
      "paths from " + busy[0] + " to " + busy[1],
  };
  for (const std::string& question : questions) {
    std::shared_ptr<const KgSnapshot> ref_snap;
    std::shared_ptr<const KgSnapshot> shard_snap;
    auto reference = unsharded.Ask(question, &ref_snap);
    auto answer = sharded.Ask(question, &shard_snap);
    ASSERT_EQ(reference.ok(), answer.ok()) << question;
    if (!reference.ok()) continue;
    ASSERT_NE(ref_snap, nullptr);
    ASSERT_NE(shard_snap, nullptr);
    EXPECT_EQ(answer->Render(shard_snap->graph()),
              reference->Render(ref_snap->graph()))
        << question;
  }
}

// ---------------------------------------------------------------------------
// Per-shard WAL durability and crash recovery

TEST_F(ShardFixture, CrashRecoveryReplaysEveryShardWal) {
  std::string dir = FreshShardDir("wal_replay");
  auto articles = MakeArticles();
  auto batches = MakeBatches(articles, 4);
  ASSERT_EQ(batches.size(), 4u);

  {
    Nous durable(&kb_, DurableOptions(dir, 2));
    ASSERT_TRUE(durable.EnableDurability().ok());
    for (const auto& batch : batches) {
      ASSERT_TRUE(durable.IngestBatch(batch).ok());
    }
    // Destructor = crash: nothing checkpointed since enabling.
  }
  // Seqs alternate home shards (seq % 2), so both segments got half.
  EXPECT_GT(FrameEnds(ReadFile(dir + "/wal/shard-0/wal.log")).size(), 0u);
  EXPECT_GT(FrameEnds(ReadFile(dir + "/wal/shard-1/wal.log")).size(), 0u);

  Nous recovered(&kb_, DurableOptions(dir, 2));
  auto stats = recovered.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status();
  // EnableDurability wrote the empty seq-0 checkpoint, so recovery
  // restores it and replays every logged batch on top.
  EXPECT_TRUE(stats->restored_checkpoint);
  EXPECT_EQ(stats->replayed_batches, 4u);
  EXPECT_EQ(stats->replayed_articles, 12u);
  EXPECT_EQ(stats->dropped_wal_records, 0u);
  EXPECT_EQ(stats->last_seq, 4u);
  EXPECT_EQ(Dump(recovered), ReferenceEdges(batches, 4));

  // The composite version converged with the recovered planner.
  recovered.DrainShards();
  std::shared_ptr<const KgSnapshot> snap = recovered.snapshot();
  ASSERT_NE(snap, nullptr);
  for (uint64_t v : recovered.CompositeVersion()) {
    EXPECT_EQ(v, snap->version());
  }
  ShardedGraphView view(&snap->graph(),
                        recovered.shard_set()->CurrentViews());
  EXPECT_EQ(DumpEdges(view), DumpEdges(snap->graph()));

  // The recovered instance keeps evolving like one that never crashed.
  auto more = MakeBatches(articles, 5);
  if (more.size() > 4) {
    ASSERT_TRUE(recovered.IngestBatch(more[4]).ok());
    EXPECT_EQ(Dump(recovered), ReferenceEdges(more, 5));
  }
}

TEST_F(ShardFixture, CheckpointPlusShardWalReplayRecovers) {
  std::string dir = FreshShardDir("ckpt_replay");
  auto batches = MakeBatches(MakeArticles(), 4);
  ASSERT_EQ(batches.size(), 4u);

  {
    Nous durable(&kb_, DurableOptions(dir, 4));
    ASSERT_TRUE(durable.EnableDurability().ok());
    ASSERT_TRUE(durable.IngestBatch(batches[0]).ok());
    ASSERT_TRUE(durable.IngestBatch(batches[1]).ok());
    ASSERT_TRUE(durable.Checkpoint().ok());
    ASSERT_TRUE(durable.IngestBatch(batches[2]).ok());
    ASSERT_TRUE(durable.IngestBatch(batches[3]).ok());
  }

  {
    Nous recovered(&kb_, DurableOptions(dir, 4));
    auto stats = recovered.Recover();
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_TRUE(stats->restored_checkpoint);
    EXPECT_EQ(stats->replayed_batches, 2u);  // the post-checkpoint WAL
    EXPECT_EQ(stats->last_seq, 4u);
    EXPECT_EQ(Dump(recovered), ReferenceEdges(batches, 4));
  }

  // Recovery ends with a fresh composite checkpoint, so a second
  // crash-and-recover replays nothing and still lands on the same KG
  // (the shard fast path restores every shard image directly).
  Nous again(&kb_, DurableOptions(dir, 4));
  auto stats = again.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->restored_checkpoint);
  EXPECT_EQ(stats->replayed_batches, 0u);
  EXPECT_TRUE(again.shard_set()->shards_restored());
  EXPECT_EQ(Dump(again), ReferenceEdges(batches, 4));
}

TEST_F(ShardFixture, TornShardWalTailGapCutsToTheAcknowledgedPrefix) {
  std::string dir = FreshShardDir("gap_cut");
  auto batches = MakeBatches(MakeArticles(), 4);
  ASSERT_EQ(batches.size(), 4u);

  {
    Nous durable(&kb_, DurableOptions(dir, 2));
    ASSERT_TRUE(durable.EnableDurability().ok());
    for (const auto& batch : batches) {
      ASSERT_TRUE(durable.IngestBatch(batch).ok());
    }
  }
  // Shard 1 logged seqs {1, 3}. Chop its second frame (seq 3): the
  // surviving records are {1, 2, 4}, and seq 4 — stranded past the
  // gap on shard 0 — was never acknowledged under the ledger
  // protocol, so recovery must cut back to the contiguous {1, 2}.
  const std::string torn = dir + "/wal/shard-1/wal.log";
  std::vector<size_t> ends = FrameEnds(ReadFile(torn));
  ASSERT_EQ(ends.size(), 2u);
  ASSERT_TRUE(TruncateFile(torn, ends[0]).ok());

  Nous recovered(&kb_, DurableOptions(dir, 2));
  auto stats = recovered.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->replayed_batches, 2u);
  EXPECT_EQ(stats->last_seq, 2u);
  EXPECT_EQ(stats->dropped_wal_records, 1u);  // seq 4, past the gap
  EXPECT_GT(stats->dropped_wal_bytes, 0u);
  EXPECT_EQ(Dump(recovered), ReferenceEdges(batches, 2));

  // Re-ingesting the lost batches evolves the recovered prefix into
  // exactly the KG a crash-free run would have produced.
  ASSERT_TRUE(recovered.IngestBatch(batches[2]).ok());
  ASSERT_TRUE(recovered.IngestBatch(batches[3]).ok());
  EXPECT_EQ(Dump(recovered), ReferenceEdges(batches, 4));
  recovered.DrainShards();
  std::shared_ptr<const KgSnapshot> snap = recovered.snapshot();
  ASSERT_NE(snap, nullptr);
  ShardedGraphView view(&snap->graph(),
                        recovered.shard_set()->CurrentViews());
  EXPECT_EQ(DumpEdges(view), DumpEdges(snap->graph()));
}

}  // namespace
}  // namespace nous
