# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/linker_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/topic_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/qa_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/matcher_test[1]_include.cmake")
include("/root/repo/build/tests/trust_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/kb_io_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/graph_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/authoring_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_param_test[1]_include.cmake")
include("/root/repo/build/tests/text_property_test[1]_include.cmake")
