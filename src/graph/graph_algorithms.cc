#include "graph/graph_algorithms.h"

#include <cmath>
#include <deque>
#include <numeric>

namespace nous {

std::vector<uint32_t> WeaklyConnectedComponents(const PropertyGraph& graph,
                                                size_t* num_components) {
  const size_t n = graph.NumVertices();
  std::vector<uint32_t> component(n, UINT32_MAX);
  uint32_t next = 0;
  std::deque<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (component[start] != UINT32_MAX) continue;
    component[start] = next;
    queue.push_back(start);
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      auto visit = [&](const std::vector<AdjEntry>& adj) {
        for (const AdjEntry& a : adj) {
          if (component[a.neighbor] == UINT32_MAX) {
            component[a.neighbor] = next;
            queue.push_back(a.neighbor);
          }
        }
      };
      visit(graph.OutEdges(v));
      visit(graph.InEdges(v));
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return component;
}

std::vector<double> PageRank(const PropertyGraph& graph,
                             const PageRankConfig& config) {
  const size_t n = graph.NumVertices();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    double dangling = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (graph.OutDegree(v) == 0) dangling += rank[v];
    }
    const double base =
        (1.0 - config.damping) / static_cast<double>(n) +
        config.damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (VertexId v = 0; v < n; ++v) {
      size_t degree = graph.OutDegree(v);
      if (degree == 0) continue;
      double share =
          config.damping * rank[v] / static_cast<double>(degree);
      for (const AdjEntry& a : graph.OutEdges(v)) {
        next[a.neighbor] += share;
      }
    }
    double delta = 0;
    for (size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - rank[i]);
    rank.swap(next);
    if (delta < config.tolerance) break;
  }
  return rank;
}

std::vector<VertexId> EgoNetwork(const PropertyGraph& graph,
                                 VertexId center, size_t radius) {
  std::vector<VertexId> result;
  if (center >= graph.NumVertices()) return result;
  std::vector<bool> seen(graph.NumVertices(), false);
  std::deque<std::pair<VertexId, size_t>> queue;
  seen[center] = true;
  queue.emplace_back(center, 0);
  while (!queue.empty()) {
    auto [v, depth] = queue.front();
    queue.pop_front();
    result.push_back(v);
    if (depth >= radius) continue;
    auto visit = [&](const std::vector<AdjEntry>& adj) {
      for (const AdjEntry& a : adj) {
        if (!seen[a.neighbor]) {
          seen[a.neighbor] = true;
          queue.emplace_back(a.neighbor, depth + 1);
        }
      }
    };
    visit(graph.OutEdges(v));
    visit(graph.InEdges(v));
  }
  return result;
}

}  // namespace nous
