#ifndef NOUS_GRAPH_COW_H_
#define NOUS_GRAPH_COW_H_

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace nous {

/// Byte estimate of a copy-on-write structure, split by ownership:
/// `shared_bytes` live in chunks also reachable from another copy
/// (the live graph, an older snapshot), `private_bytes` only from
/// this one. A snapshot's private bytes are exactly the memory its
/// retention costs on top of the live graph — the amplification the
/// nous_snapshot_graph_*_bytes gauges export (DESIGN.md §5.13).
struct CowFootprint {
  size_t shared_bytes = 0;
  size_t private_bytes = 0;

  size_t total_bytes() const { return shared_bytes + private_bytes; }

  CowFootprint& operator+=(const CowFootprint& other) {
    shared_bytes += other.shared_bytes;
    private_bytes += other.private_bytes;
    return *this;
  }
};

/// Process-wide copy-on-write activity counters (relaxed atomics,
/// bumped only on the rare unshare paths). bench_snapshot_publish
/// resets them per run to report copied chunks/bytes per publish —
/// the direct observable behind "publish cost is O(delta)".
struct CowCounters {
  static std::atomic<uint64_t>& ChunkCopies() {
    static std::atomic<uint64_t> count{0};
    return count;
  }
  /// Flat bytes of copied chunks (sizeof(Chunk); heap payloads of the
  /// copied items are not traced — an estimate, like ApproxMemoryBytes).
  static std::atomic<uint64_t>& ChunkCopyBytes() {
    static std::atomic<uint64_t> bytes{0};
    return bytes;
  }
  static std::atomic<uint64_t>& SpineCopies() {
    static std::atomic<uint64_t> count{0};
    return count;
  }
  static void Reset() {
    ChunkCopies().store(0, std::memory_order_relaxed);
    ChunkCopyBytes().store(0, std::memory_order_relaxed);
    SpineCopies().store(0, std::memory_order_relaxed);
  }
};

/// A vector with two-level copy-on-write structural sharing: items
/// live in fixed-size chunks held by shared_ptr, and the chunk spine
/// (the vector of chunk pointers) is itself behind a shared_ptr.
/// Copying a CowVec is two refcount bumps — O(1) — which is what
/// makes KgSnapshot publication O(delta): a publish shares every
/// chunk with the previous snapshot, and only chunks mutated since
/// then are ever copied (on first write, via Mutable()).
///
/// Mutation unshares lazily: the first write after a copy duplicates
/// the spine (O(chunks) pointer copies, once per publish epoch), and
/// each first write into a shared chunk duplicates that chunk
/// (O(kChunkSize) items, once per chunk per epoch). Reads are wait-
/// free pointer chases and never mutate, so immutable copies
/// (snapshots) are safe to read from any thread while the writer —
/// serialized by the pipeline's kg_mutex_ — keeps mutating its own
/// copy.
///
/// Indices are stable forever (slot semantics identical to
/// std::vector); references returned by Mutable()/operator[] stay
/// valid until the owning chunk is replaced by a later unshare.
template <typename T, size_t ChunkSizeLog2 = 8>
class CowVec {
 public:
  static constexpr size_t kChunkSize = size_t{1} << ChunkSizeLog2;
  static constexpr size_t kIndexMask = kChunkSize - 1;

  CowVec() = default;
  /// Copies share everything; divergence happens on write.
  CowVec(const CowVec&) = default;
  CowVec& operator=(const CowVec&) = default;
  CowVec(CowVec&&) = default;
  CowVec& operator=(CowVec&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const {
    assert(i < size_);
    return (*spine_)[i >> ChunkSizeLog2]->items[i & kIndexMask];
  }

  /// Write access to slot `i`, unsharing the spine and the owning
  /// chunk first. The caller must treat the slot's deep byte count as
  /// changed (the chunk's cached estimate is invalidated here).
  T& Mutable(size_t i) {
    assert(i < size_);
    EnsureSpineUnique();
    std::shared_ptr<Chunk>& chunk = (*spine_)[i >> ChunkSizeLog2];
    UnshareChunk(&chunk);
    chunk->cached_bytes.store(kDirtyBytes, std::memory_order_relaxed);
    return chunk->items[i & kIndexMask];
  }

  void PushBack(T value) {
    EnsureSpineUnique();
    size_t chunk_index = size_ >> ChunkSizeLog2;
    if (chunk_index == spine_->size()) {
      spine_->push_back(std::make_shared<Chunk>());
    }
    std::shared_ptr<Chunk>& chunk = (*spine_)[chunk_index];
    UnshareChunk(&chunk);
    chunk->items[size_ & kIndexMask] = std::move(value);
    chunk->cached_bytes.store(kDirtyBytes, std::memory_order_relaxed);
    ++size_;
  }

  /// Grows to `n` slots (new slots default-constructed). Shrinking is
  /// not supported — slot ids are stable for the structure's lifetime
  /// (use Assign to rebuild from scratch, e.g. on checkpoint load).
  void Resize(size_t n) {
    assert(n >= size_);
    if (n == size_) return;
    EnsureSpineUnique();
    size_t chunks_needed = (n + kChunkSize - 1) >> ChunkSizeLog2;
    while (spine_->size() < chunks_needed) {
      spine_->push_back(std::make_shared<Chunk>());
    }
    // Slots in [size_, n) of the tail chunk are pristine defaults by
    // the no-shrink invariant: nothing at or past size_ was ever
    // written in this chunk or any chunk it was copied from.
    size_ = n;
  }

  /// Drops all sharing and contents, then grows to `n` fresh
  /// (default-constructed, fully private) slots.
  void Assign(size_t n) {
    spine_ = nullptr;
    size_ = 0;
    Resize(n);
  }

  void Clear() {
    spine_ = nullptr;
    size_ = 0;
  }

  /// Copies every chunk still shared with another CowVec, making this
  /// copy fully private — the retired clone-per-publish cost model.
  /// Benches and equivalence tests use it as the deep-copy baseline.
  void Detach() {
    if (spine_ == nullptr) return;
    EnsureSpineUnique();
    for (std::shared_ptr<Chunk>& chunk : *spine_) {
      UnshareChunk(&chunk);
    }
  }

  /// Accumulates this structure's byte estimate into `out`, splitting
  /// shared vs private at chunk granularity. `deep_bytes(item)` returns
  /// the item's heap payload estimate; per-chunk sums are cached and
  /// recomputed only for chunks dirtied since the last call, so a
  /// steady-state footprint pass is O(chunks + dirtied items), not
  /// O(items).
  template <typename DeepBytesFn>
  void AddFootprint(CowFootprint* out, DeepBytesFn&& deep_bytes) const {
    if (spine_ == nullptr) return;
    bool spine_shared = spine_.use_count() > 1;
    size_t spine_bytes =
        sizeof(Spine) + spine_->capacity() * sizeof(std::shared_ptr<Chunk>);
    (spine_shared ? out->shared_bytes : out->private_bytes) += spine_bytes;
    for (const std::shared_ptr<Chunk>& chunk : *spine_) {
      size_t bytes = chunk->cached_bytes.load(std::memory_order_relaxed);
      if (bytes == kDirtyBytes) {
        bytes = sizeof(Chunk);
        for (const T& item : chunk->items) bytes += deep_bytes(item);
        chunk->cached_bytes.store(bytes, std::memory_order_relaxed);
      }
      bool shared = spine_shared || chunk.use_count() > 1;
      (shared ? out->shared_bytes : out->private_bytes) += bytes;
    }
  }

  /// Total byte estimate (shared + private), same caching as
  /// AddFootprint.
  template <typename DeepBytesFn>
  size_t ApproxBytes(DeepBytesFn&& deep_bytes) const {
    CowFootprint fp;
    AddFootprint(&fp, std::forward<DeepBytesFn>(deep_bytes));
    return fp.total_bytes();
  }

 private:
  static constexpr size_t kDirtyBytes = std::numeric_limits<size_t>::max();

  struct Chunk {
    Chunk() = default;
    // The copied chunk holds identical items, so the byte cache
    // carries over (the unshare that triggered the copy dirties it
    // right after anyway).
    Chunk(const Chunk& other)
        : items(other.items),
          cached_bytes(other.cached_bytes.load(std::memory_order_relaxed)) {}
    std::array<T, kChunkSize> items;
    /// Cached flat+deep byte estimate; kDirtyBytes = recompute.
    /// Atomic because footprint passes may run on an immutable copy
    /// (snapshot) from a telemetry thread while the writer accounts
    /// its own copy — both may fill the same shared slot with the
    /// same value.
    mutable std::atomic<size_t> cached_bytes{kDirtyBytes};
  };
  using Spine = std::vector<std::shared_ptr<Chunk>>;

  void EnsureSpineUnique() {
    if (spine_ == nullptr) {
      spine_ = std::make_shared<Spine>();
    } else if (spine_.use_count() > 1) {
      CowCounters::SpineCopies().fetch_add(1, std::memory_order_relaxed);
      spine_ = std::make_shared<Spine>(*spine_);
    }
  }

  static void UnshareChunk(std::shared_ptr<Chunk>* chunk) {
    if (chunk->use_count() > 1) {
      CowCounters::ChunkCopies().fetch_add(1, std::memory_order_relaxed);
      CowCounters::ChunkCopyBytes().fetch_add(sizeof(Chunk),
                                              std::memory_order_relaxed);
      *chunk = std::make_shared<Chunk>(**chunk);
    }
  }

  std::shared_ptr<Spine> spine_;  // null == empty
  size_t size_ = 0;
};

/// Copy-on-write hash index mapping key hashes to dense u32 ids. The
/// index never stores keys: callers resolve ids back to keys (which
/// live once, in an owning CowVec) through the `eq` / `hash_of`
/// callbacks, so buckets are plain id lists and chunk-share like any
/// other COW state. Backs Dictionary's string->id lookup and
/// PropertyGraph's folded-label index — the two derived maps whose
/// copies used to dominate snapshot publish cost.
class CowIdIndex {
 public:
  /// First id in hash order whose key matches, i.e. for which
  /// `eq(id)` is true. Ids within a bucket keep insertion order, so
  /// with ascending-id insertion the lowest matching id wins.
  template <typename Eq>
  std::optional<uint32_t> Find(uint64_t hash, Eq&& eq) const {
    if (bucket_count_ == 0) return std::nullopt;
    const std::vector<uint32_t>& bucket =
        buckets_[hash & (bucket_count_ - 1)];
    for (uint32_t id : bucket) {
      if (eq(id)) return id;
    }
    return std::nullopt;
  }

  /// Inserts `id` under `hash`; the caller deduplicates (Find first)
  /// when at most one id per key is wanted. `hash_of(id)` recomputes
  /// an id's hash when the table grows.
  template <typename HashOf>
  void Insert(uint64_t hash, uint32_t id, HashOf&& hash_of) {
    if (size_ + 1 > bucket_count_) Grow(hash_of);
    buckets_.Mutable(hash & (bucket_count_ - 1)).push_back(id);
    ++size_;
  }

  size_t size() const { return size_; }

  void Clear() {
    buckets_.Clear();
    bucket_count_ = 0;
    size_ = 0;
  }

  void Detach() { buckets_.Detach(); }

  void AddFootprint(CowFootprint* out) const {
    buckets_.AddFootprint(out, [](const std::vector<uint32_t>& bucket) {
      return bucket.capacity() * sizeof(uint32_t);
    });
  }

 private:
  static constexpr size_t kInitialBuckets = 64;

  template <typename HashOf>
  void Grow(HashOf&& hash_of) {
    size_t target = bucket_count_ == 0 ? kInitialBuckets : bucket_count_ * 2;
    while (target < size_ + 1) target *= 2;
    // The rebuilt table is fully private; the shared predecessor stays
    // intact for any copy still holding it.
    CowVec<std::vector<uint32_t>> grown;
    grown.Resize(target);
    for (size_t b = 0; b < bucket_count_; ++b) {
      for (uint32_t id : buckets_[b]) {
        grown.Mutable(hash_of(id) & (target - 1)).push_back(id);
      }
    }
    buckets_ = std::move(grown);
    bucket_count_ = target;
  }

  CowVec<std::vector<uint32_t>> buckets_;
  /// Power of two; tracked separately from buckets_.size() so Grow can
  /// swap tables atomically with respect to readers of this instance.
  size_t bucket_count_ = 0;
  size_t size_ = 0;
};

}  // namespace nous

#endif  // NOUS_GRAPH_COW_H_
