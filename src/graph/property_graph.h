#ifndef NOUS_GRAPH_PROPERTY_GRAPH_H_
#define NOUS_GRAPH_PROPERTY_GRAPH_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "graph/cow.h"
#include "graph/dictionary.h"
#include "graph/types.h"

namespace nous {

/// One directed adjacency slot: predicate-typed edge to `neighbor`.
struct AdjEntry {
  PredicateId predicate;
  VertexId neighbor;
  EdgeId edge;
};

/// Stored edge state; `alive` is cleared on removal so edge ids stay
/// stable for provenance references.
struct EdgeRecord {
  VertexId subject = kInvalidVertex;
  VertexId object = kInvalidVertex;
  PredicateId predicate = kInvalidPredicate;
  EdgeMeta meta;
  bool alive = false;
};

/// Per-vertex properties mirroring the paper's GraphX usage: a type, a
/// bag of words (from the entity's Wikipedia-like page or, for new
/// entities, its KG neighborhood), and an LDA topic distribution.
struct VertexRecord {
  TypeId type = kInvalidType;
  std::unordered_map<TermId, double> bag;
  std::vector<double> topics;
};

/// Dynamic, in-memory property multigraph with predicate-typed directed
/// edges and interned string dictionaries for entities, predicates,
/// terms, types, and sources. The single-node stand-in for the paper's
/// Spark/GraphX distributed property graph (see DESIGN.md §2).
///
/// Edges carry confidence, timestamp, source, and curated/extracted
/// provenance; removal is O(degree) and keeps edge ids stable.
///
/// All storage — primary state and derived read indexes alike — lives
/// in copy-on-write chunked containers (CowVec / CowIdIndex, DESIGN.md
/// §5.13), so Clone() is O(1): it shares every chunk with the source,
/// and subsequent mutation of either copy duplicates only the chunks
/// it touches. This is what makes snapshot publication O(delta) instead
/// of O(V+E). Clones are bit-identical to a deep copy: same ids, same
/// slot layout, same adjacency order, same derived indexes.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;
  PropertyGraph(PropertyGraph&&) = default;
  PropertyGraph& operator=(PropertyGraph&&) = default;

  /// O(1) copy-on-write copy sharing all chunks with this graph (copy
  /// construction stays deleted so clones are always explicit). Either
  /// copy may keep mutating; writes unshare only the touched chunks.
  PropertyGraph Clone() const;

  /// Copies every chunk still shared with another PropertyGraph,
  /// making this instance fully private — the retired deep-copy cost
  /// model. Benches and equivalence tests use it as the baseline.
  void Detach();

  // ---- Vertices ----

  /// Returns the vertex for `label`, creating it if absent.
  VertexId GetOrAddVertex(std::string_view label);

  std::optional<VertexId> FindVertex(std::string_view label) const;

  /// FindVertex, falling back to a case-folded index: "dji" resolves
  /// the vertex labeled "DJI". Among labels that collide after
  /// folding, the lowest id wins (the order a linear scan would find
  /// them). O(1) — replaces ResolveEntity's O(V) lowercase scan.
  std::optional<VertexId> FindVertexFolded(std::string_view label) const;

  const std::string& VertexLabel(VertexId v) const;

  void SetVertexType(VertexId v, TypeId type);
  TypeId VertexType(VertexId v) const;

  /// Adds weight `w` of term `term` to the vertex's bag of words.
  void AddVertexTerm(VertexId v, TermId term, double w = 1.0);
  const std::unordered_map<TermId, double>& VertexBag(VertexId v) const;

  void SetVertexTopics(VertexId v, std::vector<double> topics);
  const std::vector<double>& VertexTopics(VertexId v) const;

  size_t NumVertices() const { return vertices_.size(); }

  // ---- Edges ----

  /// Inserts a directed edge; parallel edges are allowed (multigraph).
  EdgeId AddEdge(VertexId subject, PredicateId predicate, VertexId object,
                 const EdgeMeta& meta);

  /// Interns all strings of `t` and inserts the edge. Convenience entry
  /// point for generators and tests.
  EdgeId AddTriple(const TimedTriple& t);

  /// Removes the edge from both adjacency lists and marks it dead.
  /// Fails with NotFound if the id is invalid or already removed.
  Status RemoveEdge(EdgeId e);

  /// First live edge matching (subject, predicate, object), if any.
  std::optional<EdgeId> FindEdge(VertexId subject, PredicateId predicate,
                                 VertexId object) const;

  bool HasEdge(VertexId subject, PredicateId predicate,
               VertexId object) const {
    return FindEdge(subject, predicate, object).has_value();
  }

  /// Edge record for a live or dead edge id; `e` must be < NumEdgeSlots().
  const EdgeRecord& Edge(EdgeId e) const;

  /// Mutable confidence update (link-prediction rescoring).
  void SetEdgeConfidence(EdgeId e, double confidence);

  const std::vector<AdjEntry>& OutEdges(VertexId v) const;
  const std::vector<AdjEntry>& InEdges(VertexId v) const;

  /// Live out-/in-edges of `v` whose predicate is exactly `p`, in
  /// insertion order. Constrained path search expands only these
  /// instead of filtering the full adjacency list.
  const std::vector<AdjEntry>& OutEdgesWithPredicate(VertexId v,
                                                     PredicateId p) const;
  const std::vector<AdjEntry>& InEdgesWithPredicate(VertexId v,
                                                    PredicateId p) const;

  size_t OutDegree(VertexId v) const { return OutEdges(v).size(); }
  size_t InDegree(VertexId v) const { return InEdges(v).size(); }

  /// Largest timestamp among live edges (0 with no edges; never
  /// negative). Maintained incrementally by AddEdge/RemoveEdge so
  /// trending queries need no full edge scan.
  Timestamp MaxEdgeTimestamp() const { return max_edge_timestamp_; }

  /// Number of live edges.
  size_t NumEdges() const { return num_live_edges_; }
  /// Total edge slots ever allocated (live + removed).
  size_t NumEdgeSlots() const { return edges_.size(); }

  /// Invokes fn(edge_id, record) for every live edge.
  void ForEachEdge(
      const std::function<void(EdgeId, const EdgeRecord&)>& fn) const;

  // ---- Dictionaries ----

  Dictionary& predicates() { return predicates_; }
  const Dictionary& predicates() const { return predicates_; }
  Dictionary& terms() { return terms_; }
  const Dictionary& terms() const { return terms_; }
  Dictionary& types() { return types_; }
  const Dictionary& types() const { return types_; }
  Dictionary& sources() { return sources_; }
  const Dictionary& sources() const { return sources_; }

  /// Rough heap footprint of the whole graph (dictionaries, vertex
  /// records and bags, edge slots, adjacency, derived indexes), split
  /// into bytes shared with other copies vs private to this one. A
  /// snapshot's private bytes are its true retention cost on top of
  /// the live graph. Per-chunk byte estimates are cached, so a
  /// steady-state call is O(chunks), not O(V+E). A telemetry estimate,
  /// not an allocator audit.
  CowFootprint Footprint() const;

  /// Footprint().total_bytes() — shared + private.
  size_t ApproxMemoryBytes() const { return Footprint().total_bytes(); }

  // ---- Checkpoint serialization ----

  /// Writes the complete graph state — all five dictionaries in id
  /// order, every vertex record (bags emitted sorted by TermId), every
  /// edge slot including dead ones, and both adjacency arrays — so a
  /// LoadBinary round trip reproduces the graph exactly: identical
  /// ids, identical slot layout, identical adjacency order. The byte
  /// stream is independent of chunk sharing state: a Clone() and a
  /// deep copy serialize identically.
  void SaveBinary(BinaryWriter* writer) const;

  /// Restores a SaveBinary payload, replacing current contents.
  /// Malformed input reports an error and may leave the graph
  /// partially loaded; callers discard the instance on failure.
  Status LoadBinary(BinaryReader* reader);

 private:
  /// Rebuilds every derived index (folded labels, predicate
  /// partitions, max timestamp) from the primary state; LoadBinary
  /// calls it because checkpoints only store the primary state.
  void RebuildDerivedIndexes();

  static uint64_t FoldedHash(const std::string& folded) {
    return std::hash<std::string>{}(folded);
  }
  /// Hash of vertex `v`'s case-folded label (CowIdIndex rehash hook).
  uint64_t FoldedHashOf(VertexId v) const;

  Dictionary vertex_labels_;
  Dictionary predicates_;
  Dictionary terms_;
  Dictionary types_;
  Dictionary sources_;

  CowVec<VertexRecord> vertices_;
  CowVec<EdgeRecord> edges_;
  CowVec<std::vector<AdjEntry>> out_;
  CowVec<std::vector<AdjEntry>> in_;
  size_t num_live_edges_ = 0;

  // Derived read-side indexes (never serialized; see SaveBinary).
  /// Case-folded label index; every vertex is inserted in id order, so
  /// lookups find the lowest id among folding collisions.
  CowIdIndex folded_labels_;
  /// Per-vertex adjacency partitioned by predicate; mirrors out_/in_.
  CowVec<std::unordered_map<PredicateId, std::vector<AdjEntry>>> out_by_pred_;
  CowVec<std::unordered_map<PredicateId, std::vector<AdjEntry>>> in_by_pred_;
  Timestamp max_edge_timestamp_ = 0;
};

}  // namespace nous

#endif  // NOUS_GRAPH_PROPERTY_GRAPH_H_
