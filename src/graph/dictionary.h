#ifndef NOUS_GRAPH_DICTIONARY_H_
#define NOUS_GRAPH_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"

namespace nous {

/// Interns strings to dense 32-bit ids. Separate instances are used for
/// entity labels, predicates, terms, types, and sources.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `text`, inserting it if new.
  uint32_t Intern(std::string_view text);

  /// Returns the id for `text` if present.
  std::optional<uint32_t> Lookup(std::string_view text) const;

  /// Returns the string for a valid id. `id` must be < size().
  const std::string& GetString(uint32_t id) const;

  bool Contains(std::string_view text) const {
    return Lookup(text).has_value();
  }

  size_t size() const { return strings_.size(); }
  bool empty() const { return strings_.empty(); }

  /// Rough heap footprint: string payloads plus per-entry container
  /// overhead. A telemetry estimate, not an allocator audit.
  size_t ApproxMemoryBytes() const;

  /// Checkpoint serialization: strings in id order, so ids are
  /// preserved exactly across a save/load round trip.
  void SaveBinary(BinaryWriter* writer) const;
  Status LoadBinary(BinaryReader* reader);

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace nous

#endif  // NOUS_GRAPH_DICTIONARY_H_
