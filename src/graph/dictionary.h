#ifndef NOUS_GRAPH_DICTIONARY_H_
#define NOUS_GRAPH_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/binary_io.h"
#include "common/status.h"
#include "graph/cow.h"

namespace nous {

/// Interns strings to dense 32-bit ids. Separate instances are used for
/// entity labels, predicates, terms, types, and sources.
///
/// Storage is copy-on-write (CowVec + CowIdIndex): copying a Dictionary
/// is O(1) and shares all chunks with the source, so snapshot publish
/// does not pay for the interned-string tables. The hash index stores
/// ids only — strings live once, in the id-order CowVec.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `text`, inserting it if new.
  uint32_t Intern(std::string_view text);

  /// Returns the id for `text` if present.
  std::optional<uint32_t> Lookup(std::string_view text) const;

  /// Returns the string for a valid id. `id` must be < size().
  const std::string& GetString(uint32_t id) const;

  bool Contains(std::string_view text) const {
    return Lookup(text).has_value();
  }

  size_t size() const { return strings_.size(); }
  bool empty() const { return strings_.empty(); }

  /// Rough heap footprint: string payloads plus per-entry container
  /// overhead. A telemetry estimate, not an allocator audit.
  size_t ApproxMemoryBytes() const;

  /// Accumulates the footprint split into shared vs private chunks.
  void AddFootprint(CowFootprint* out) const;

  /// Copies every chunk still shared with another Dictionary (the
  /// deep-copy baseline for benches and equivalence tests).
  void Detach();

  /// Checkpoint serialization: strings in id order, so ids are
  /// preserved exactly across a save/load round trip.
  void SaveBinary(BinaryWriter* writer) const;
  Status LoadBinary(BinaryReader* reader);

 private:
  static uint64_t Hash(std::string_view text) {
    return std::hash<std::string_view>{}(text);
  }

  CowVec<std::string> strings_;
  CowIdIndex index_;
};

}  // namespace nous

#endif  // NOUS_GRAPH_DICTIONARY_H_
