#ifndef NOUS_GRAPH_TYPES_H_
#define NOUS_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace nous {

using VertexId = uint32_t;
using EdgeId = uint32_t;
using PredicateId = uint32_t;
using TermId = uint32_t;
using TypeId = uint32_t;
using SourceId = uint32_t;
/// Logical event time of a fact (e.g., article publication date), in
/// arbitrary monotone units (the corpus uses days).
using Timestamp = int64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr PredicateId kInvalidPredicate =
    std::numeric_limits<PredicateId>::max();
inline constexpr TypeId kInvalidType = std::numeric_limits<TypeId>::max();
inline constexpr SourceId kInvalidSource =
    std::numeric_limits<SourceId>::max();

/// A raw string-level fact, the unit flowing through the construction
/// pipeline before entity linking assigns graph ids.
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

/// A triple with stream metadata attached (Figure 3's dated triples).
struct TimedTriple {
  Triple triple;
  Timestamp timestamp = 0;
  std::string source;    // feed name, e.g. "wsj"
  double confidence = 1.0;
};

/// Immutable per-edge metadata supplied at insertion time.
struct EdgeMeta {
  double confidence = 1.0;
  Timestamp timestamp = 0;
  SourceId source = kInvalidSource;
  /// True when the fact came from the curated KB rather than extraction
  /// (the red-vs-blue distinction in the paper's Figure 2).
  bool curated = false;
};

}  // namespace nous

#endif  // NOUS_GRAPH_TYPES_H_
