#include "graph/graph_stats.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace nous {

GraphStats ComputeGraphStats(const PropertyGraph& graph) {
  GraphStats stats;
  stats.vertices = graph.NumVertices();
  std::set<PredicateId> predicates;
  graph.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
    ++stats.live_edges;
    if (rec.meta.curated) {
      ++stats.curated_edges;
    } else {
      ++stats.extracted_edges;
      stats.extracted_confidence.Add(rec.meta.confidence);
    }
    predicates.insert(rec.predicate);
    stats.per_predicate[graph.predicates().GetString(rec.predicate)]++;
  });
  stats.distinct_predicates = predicates.size();
  size_t degree_sum = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    size_t d = graph.OutDegree(v);
    degree_sum += d;
    stats.max_out_degree = std::max(stats.max_out_degree, d);
  }
  stats.mean_out_degree =
      stats.vertices == 0
          ? 0
          : static_cast<double>(degree_sum) /
                static_cast<double>(stats.vertices);
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << StrFormat(
      "vertices=%zu edges=%zu (curated=%zu extracted=%zu) predicates=%zu\n",
      vertices, live_edges, curated_edges, extracted_edges,
      distinct_predicates);
  os << StrFormat("mean_out_degree=%.3f max_out_degree=%zu\n",
                  mean_out_degree, max_out_degree);
  os << "extracted confidence: " << extracted_confidence.Summary() << "\n";
  return os.str();
}

}  // namespace nous
