#include "graph/temporal_window.h"

#include <algorithm>

#include "common/logging.h"

namespace nous {

TemporalWindow::TemporalWindow(PropertyGraph* graph, size_t max_edges)
    : graph_(graph), max_edges_(max_edges) {}

EdgeId TemporalWindow::Add(const TimedTriple& triple) {
  EdgeId e = graph_->AddTriple(triple);
  window_.push_back(e);
  for (WindowListener* l : listeners_) l->OnEdgeAdded(*graph_, e);
  while (max_edges_ != 0 && window_.size() > max_edges_) ExpireOldest();
  return e;
}

size_t TemporalWindow::ExpireOlderThan(Timestamp horizon) {
  size_t expired = 0;
  while (!window_.empty() &&
         graph_->Edge(window_.front()).meta.timestamp < horizon) {
    ExpireOldest();
    ++expired;
  }
  return expired;
}

void TemporalWindow::ExpireOldest() {
  EdgeId e = window_.front();
  window_.pop_front();
  for (WindowListener* l : listeners_) l->OnEdgeExpiring(*graph_, e);
  Status s = graph_->RemoveEdge(e);
  NOUS_CHECK(s.ok()) << "window expiry: " << s.ToString();
}

void TemporalWindow::AddListener(WindowListener* listener) {
  listeners_.push_back(listener);
}

void TemporalWindow::RemoveListener(WindowListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

Timestamp TemporalWindow::OldestTimestamp() const {
  if (window_.empty()) return 0;
  return graph_->Edge(window_.front()).meta.timestamp;
}

Timestamp TemporalWindow::NewestTimestamp() const {
  if (window_.empty()) return 0;
  return graph_->Edge(window_.back()).meta.timestamp;
}

}  // namespace nous
