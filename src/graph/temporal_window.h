#ifndef NOUS_GRAPH_TEMPORAL_WINDOW_H_
#define NOUS_GRAPH_TEMPORAL_WINDOW_H_

#include <deque>
#include <vector>

#include "graph/property_graph.h"
#include "graph/types.h"

namespace nous {

/// Observer of window mutations. The streaming miner (§3.5) subscribes
/// to maintain pattern counts incrementally instead of re-enumerating.
class WindowListener {
 public:
  virtual ~WindowListener() = default;
  /// Called after the edge is live in the graph.
  virtual void OnEdgeAdded(const PropertyGraph& graph, EdgeId edge) = 0;
  /// Called before the edge is removed from the graph; the record and
  /// adjacency are still intact at call time.
  virtual void OnEdgeExpiring(const PropertyGraph& graph, EdgeId edge) = 0;
};

/// Sliding window over the triple stream (§3.5): retains the most
/// recent edges in insertion order, expiring the oldest either by count
/// (`max_edges`) or by timestamp horizon. The wrapped graph holds the
/// union of the curated KB (never expired; inserted directly into the
/// graph) and the windowed extracted stream.
///
/// Concurrency: externally synchronized, like the listeners it
/// notifies. KgPipeline mutates it (and the wrapped window graph)
/// only under the exclusive side of `kg_mutex()` (`window_` is
/// GUARDED_BY in pipeline.h).
class TemporalWindow {
 public:
  /// `max_edges` == 0 disables count-based expiry.
  TemporalWindow(PropertyGraph* graph, size_t max_edges);

  /// Appends a streamed edge, then expires by count if needed.
  EdgeId Add(const TimedTriple& triple);

  /// Expires every windowed edge with timestamp < `horizon`.
  size_t ExpireOlderThan(Timestamp horizon);

  void AddListener(WindowListener* listener);
  void RemoveListener(WindowListener* listener);

  size_t size() const { return window_.size(); }
  size_t max_edges() const { return max_edges_; }

  /// Oldest retained timestamp; 0 when empty.
  Timestamp OldestTimestamp() const;
  Timestamp NewestTimestamp() const;

  PropertyGraph& graph() { return *graph_; }
  const PropertyGraph& graph() const { return *graph_; }

  /// Edge ids currently in the window, oldest first.
  const std::deque<EdgeId>& edges() const { return window_; }

 private:
  void ExpireOldest();

  PropertyGraph* graph_;  // not owned
  size_t max_edges_;
  std::deque<EdgeId> window_;
  std::vector<WindowListener*> listeners_;
};

}  // namespace nous

#endif  // NOUS_GRAPH_TEMPORAL_WINDOW_H_
