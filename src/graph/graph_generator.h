#ifndef NOUS_GRAPH_GRAPH_GENERATOR_H_
#define NOUS_GRAPH_GRAPH_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace nous {

/// Parameters for a synthetic triple stream with Zipf-skewed entity and
/// predicate popularity — the workload for the mining benchmarks (E4).
struct StreamConfig {
  size_t num_entities = 1000;
  size_t num_predicates = 20;
  size_t num_edges = 10000;
  /// Zipf exponents; 0 gives uniform draws.
  double entity_skew = 1.1;
  double predicate_skew = 1.0;
  uint64_t seed = 42;
  Timestamp start_time = 0;
  /// Timestamp increment between consecutive events.
  Timestamp step = 1;
};

/// Random background stream with monotonically increasing timestamps.
std::vector<TimedTriple> GenerateStream(const StreamConfig& config);

/// A star-shaped pattern planted into a stream: each instance creates a
/// fresh center entity with one edge per predicate to a fresh leaf
/// entity, so the pattern's MNI support equals the number of in-window
/// instances.
struct PlantedPatternSpec {
  std::string name;
  std::vector<std::string> predicates;
  /// Fraction of stream events that emit one full instance.
  double rate = 0.05;
};

struct PlantedStreamConfig {
  size_t num_events = 10000;
  size_t noise_entities = 500;
  size_t noise_predicates = 10;
  std::vector<PlantedPatternSpec> patterns;
  uint64_t seed = 7;
  Timestamp start_time = 0;
  Timestamp step = 1;
};

/// Noise stream with pattern instances injected at the configured rates.
/// Used for mining ground truth: planted patterns must be reported as
/// frequent, and support counts are predictable from the rates.
std::vector<TimedTriple> GeneratePlantedStream(
    const PlantedStreamConfig& config);

/// Concatenates two planted phases (concept drift): patterns of phase
/// two replace phase one halfway through — exercises the miner's
/// demotion/reconstruction path (E5).
std::vector<TimedTriple> GenerateDriftStream(
    const PlantedStreamConfig& phase1, const PlantedStreamConfig& phase2);

}  // namespace nous

#endif  // NOUS_GRAPH_GRAPH_GENERATOR_H_
