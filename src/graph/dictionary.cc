#include "graph/dictionary.h"

#include <cassert>

namespace nous {

uint32_t Dictionary::Intern(std::string_view text) {
  uint64_t hash = Hash(text);
  auto eq = [this, text](uint32_t id) { return strings_[id] == text; };
  if (std::optional<uint32_t> found = index_.Find(hash, eq)) return *found;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.PushBack(std::string(text));
  index_.Insert(hash, id,
                [this](uint32_t existing) { return Hash(strings_[existing]); });
  return id;
}

std::optional<uint32_t> Dictionary::Lookup(std::string_view text) const {
  return index_.Find(Hash(text),
                     [this, text](uint32_t id) { return strings_[id] == text; });
}

const std::string& Dictionary::GetString(uint32_t id) const {
  assert(id < strings_.size());
  return strings_[id];
}

size_t Dictionary::ApproxMemoryBytes() const {
  CowFootprint fp;
  AddFootprint(&fp);
  return fp.total_bytes();
}

void Dictionary::AddFootprint(CowFootprint* out) const {
  strings_.AddFootprint(out,
                        [](const std::string& s) { return s.capacity(); });
  index_.AddFootprint(out);
}

void Dictionary::Detach() {
  strings_.Detach();
  index_.Detach();
}

void Dictionary::SaveBinary(BinaryWriter* writer) const {
  writer->U64(strings_.size());
  for (size_t i = 0; i < strings_.size(); ++i) writer->Str(strings_[i]);
}

Status Dictionary::LoadBinary(BinaryReader* reader) {
  uint64_t count = 0;
  NOUS_RETURN_IF_ERROR(reader->Count(&count, 8));
  index_.Clear();
  strings_.Clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::string s;
    NOUS_RETURN_IF_ERROR(reader->Str(&s));
    uint64_t hash = Hash(s);
    strings_.PushBack(std::move(s));
    index_.Insert(hash, static_cast<uint32_t>(i), [this](uint32_t existing) {
      return Hash(strings_[existing]);
    });
  }
  return Status::Ok();
}

}  // namespace nous
