#include "graph/dictionary.h"

#include <cassert>

namespace nous {

uint32_t Dictionary::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), id);
  return id;
}

std::optional<uint32_t> Dictionary::Lookup(std::string_view text) const {
  auto it = index_.find(std::string(text));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::GetString(uint32_t id) const {
  assert(id < strings_.size());
  return strings_[id];
}

size_t Dictionary::ApproxMemoryBytes() const {
  // Each string is stored once in the id-order vector and once as a
  // hash-map key; count the payload twice plus flat per-entry costs.
  size_t bytes = strings_.capacity() * sizeof(std::string);
  for (const std::string& s : strings_) bytes += 2 * s.capacity();
  bytes += index_.size() *
           (sizeof(std::string) + sizeof(uint32_t) + 2 * sizeof(void*));
  return bytes;
}

void Dictionary::SaveBinary(BinaryWriter* writer) const {
  writer->U64(strings_.size());
  for (const std::string& s : strings_) writer->Str(s);
}

Status Dictionary::LoadBinary(BinaryReader* reader) {
  uint64_t count = 0;
  NOUS_RETURN_IF_ERROR(reader->Count(&count, 8));
  index_.clear();
  strings_.clear();
  strings_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string s;
    NOUS_RETURN_IF_ERROR(reader->Str(&s));
    strings_.push_back(std::move(s));
    index_.emplace(strings_.back(), static_cast<uint32_t>(i));
  }
  return Status::Ok();
}

}  // namespace nous
