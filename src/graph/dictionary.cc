#include "graph/dictionary.h"

#include <cassert>

namespace nous {

uint32_t Dictionary::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), id);
  return id;
}

std::optional<uint32_t> Dictionary::Lookup(std::string_view text) const {
  auto it = index_.find(std::string(text));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::GetString(uint32_t id) const {
  assert(id < strings_.size());
  return strings_[id];
}

}  // namespace nous
