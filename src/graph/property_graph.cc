#include "graph/property_graph.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace nous {

namespace {

// Shared empty containers so accessors on out-of-range vertices (never
// expected; guarded by asserts) and default topic lookups stay cheap.
const std::vector<double> kEmptyTopics;
const std::vector<AdjEntry> kEmptyAdjacency;

// Deep-byte estimators for the COW chunk caches; same formulas the old
// monolithic ApproxMemoryBytes used, now attributed per chunk.
size_t VertexDeepBytes(const VertexRecord& v) {
  return v.bag.size() * (sizeof(TermId) + sizeof(double) + 2 * sizeof(void*)) +
         v.topics.capacity() * sizeof(double);
}

size_t AdjDeepBytes(const std::vector<AdjEntry>& adj) {
  return adj.capacity() * sizeof(AdjEntry);
}

size_t ByPredDeepBytes(
    const std::unordered_map<PredicateId, std::vector<AdjEntry>>& per_pred) {
  size_t bytes = 0;
  for (const auto& [pred, entries] : per_pred) {
    bytes += sizeof(pred) + entries.capacity() * sizeof(AdjEntry);
  }
  return bytes;
}

}  // namespace

PropertyGraph PropertyGraph::Clone() const {
  PropertyGraph copy;
  copy.vertex_labels_ = vertex_labels_;
  copy.predicates_ = predicates_;
  copy.terms_ = terms_;
  copy.types_ = types_;
  copy.sources_ = sources_;
  copy.vertices_ = vertices_;
  copy.edges_ = edges_;
  copy.out_ = out_;
  copy.in_ = in_;
  copy.num_live_edges_ = num_live_edges_;
  copy.folded_labels_ = folded_labels_;
  copy.out_by_pred_ = out_by_pred_;
  copy.in_by_pred_ = in_by_pred_;
  copy.max_edge_timestamp_ = max_edge_timestamp_;
  return copy;
}

void PropertyGraph::Detach() {
  vertex_labels_.Detach();
  predicates_.Detach();
  terms_.Detach();
  types_.Detach();
  sources_.Detach();
  vertices_.Detach();
  edges_.Detach();
  out_.Detach();
  in_.Detach();
  folded_labels_.Detach();
  out_by_pred_.Detach();
  in_by_pred_.Detach();
}

uint64_t PropertyGraph::FoldedHashOf(VertexId v) const {
  return FoldedHash(ToLower(vertex_labels_.GetString(v)));
}

VertexId PropertyGraph::GetOrAddVertex(std::string_view label) {
  uint32_t id = vertex_labels_.Intern(label);
  if (id >= vertices_.size()) {
    vertices_.Resize(id + 1);
    out_.Resize(id + 1);
    in_.Resize(id + 1);
    out_by_pred_.Resize(id + 1);
    in_by_pred_.Resize(id + 1);
    // Every vertex is indexed; insertion in ascending id order means
    // lookups among labels that collide after folding find the lowest
    // id — the vertex a forward linear scan would have found.
    std::string folded = ToLower(label);
    folded_labels_.Insert(FoldedHash(folded), id,
                          [this](VertexId w) { return FoldedHashOf(w); });
  }
  return id;
}

std::optional<VertexId> PropertyGraph::FindVertex(
    std::string_view label) const {
  return vertex_labels_.Lookup(label);
}

std::optional<VertexId> PropertyGraph::FindVertexFolded(
    std::string_view label) const {
  if (auto v = vertex_labels_.Lookup(label)) return v;
  std::string folded = ToLower(label);
  return folded_labels_.Find(FoldedHash(folded), [this, &folded](VertexId w) {
    return ToLower(vertex_labels_.GetString(w)) == folded;
  });
}

const std::string& PropertyGraph::VertexLabel(VertexId v) const {
  return vertex_labels_.GetString(v);
}

void PropertyGraph::SetVertexType(VertexId v, TypeId type) {
  assert(v < vertices_.size());
  vertices_.Mutable(v).type = type;
}

TypeId PropertyGraph::VertexType(VertexId v) const {
  assert(v < vertices_.size());
  return vertices_[v].type;
}

void PropertyGraph::AddVertexTerm(VertexId v, TermId term, double w) {
  assert(v < vertices_.size());
  vertices_.Mutable(v).bag[term] += w;
}

const std::unordered_map<TermId, double>& PropertyGraph::VertexBag(
    VertexId v) const {
  assert(v < vertices_.size());
  return vertices_[v].bag;
}

void PropertyGraph::SetVertexTopics(VertexId v, std::vector<double> topics) {
  assert(v < vertices_.size());
  vertices_.Mutable(v).topics = std::move(topics);
}

const std::vector<double>& PropertyGraph::VertexTopics(VertexId v) const {
  if (v >= vertices_.size()) return kEmptyTopics;
  return vertices_[v].topics;
}

EdgeId PropertyGraph::AddEdge(VertexId subject, PredicateId predicate,
                              VertexId object, const EdgeMeta& meta) {
  assert(subject < vertices_.size());
  assert(object < vertices_.size());
  EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.PushBack(EdgeRecord{subject, object, predicate, meta, true});
  out_.Mutable(subject).push_back(AdjEntry{predicate, object, e});
  in_.Mutable(object).push_back(AdjEntry{predicate, subject, e});
  out_by_pred_.Mutable(subject)[predicate].push_back(
      AdjEntry{predicate, object, e});
  in_by_pred_.Mutable(object)[predicate].push_back(
      AdjEntry{predicate, subject, e});
  max_edge_timestamp_ = std::max(max_edge_timestamp_, meta.timestamp);
  ++num_live_edges_;
  return e;
}

EdgeId PropertyGraph::AddTriple(const TimedTriple& t) {
  VertexId s = GetOrAddVertex(t.triple.subject);
  VertexId o = GetOrAddVertex(t.triple.object);
  PredicateId p = predicates_.Intern(t.triple.predicate);
  EdgeMeta meta;
  meta.confidence = t.confidence;
  meta.timestamp = t.timestamp;
  meta.source =
      t.source.empty() ? kInvalidSource : sources_.Intern(t.source);
  meta.curated = false;
  return AddEdge(s, p, o, meta);
}

Status PropertyGraph::RemoveEdge(EdgeId e) {
  if (e >= edges_.size() || !edges_[e].alive) {
    return Status::NotFound(StrFormat("edge %u is not live", e));
  }
  EdgeRecord& rec = edges_.Mutable(e);
  auto erase_from = [e](std::vector<AdjEntry>& adj) {
    for (size_t i = 0; i < adj.size(); ++i) {
      if (adj[i].edge == e) {
        adj[i] = adj.back();
        adj.pop_back();
        return;
      }
    }
    assert(false && "adjacency entry missing for live edge");
  };
  erase_from(out_.Mutable(rec.subject));
  erase_from(in_.Mutable(rec.object));
  erase_from(out_by_pred_.Mutable(rec.subject)[rec.predicate]);
  erase_from(in_by_pred_.Mutable(rec.object)[rec.predicate]);
  rec.alive = false;
  --num_live_edges_;
  if (rec.meta.timestamp == max_edge_timestamp_ &&
      max_edge_timestamp_ != 0) {
    // The max holder may have just died; rescan live edges (rare —
    // removal itself is already O(degree)).
    max_edge_timestamp_ = 0;
    for (size_t i = 0; i < edges_.size(); ++i) {
      const EdgeRecord& other = edges_[i];
      if (other.alive) {
        max_edge_timestamp_ =
            std::max(max_edge_timestamp_, other.meta.timestamp);
      }
    }
  }
  return Status::Ok();
}

std::optional<EdgeId> PropertyGraph::FindEdge(VertexId subject,
                                              PredicateId predicate,
                                              VertexId object) const {
  if (subject >= out_.size()) return std::nullopt;
  for (const AdjEntry& a : out_[subject]) {
    if (a.predicate == predicate && a.neighbor == object) return a.edge;
  }
  return std::nullopt;
}

const EdgeRecord& PropertyGraph::Edge(EdgeId e) const {
  assert(e < edges_.size());
  return edges_[e];
}

void PropertyGraph::SetEdgeConfidence(EdgeId e, double confidence) {
  assert(e < edges_.size());
  edges_.Mutable(e).meta.confidence = confidence;
}

const std::vector<AdjEntry>& PropertyGraph::OutEdges(VertexId v) const {
  assert(v < out_.size());
  return out_[v];
}

const std::vector<AdjEntry>& PropertyGraph::InEdges(VertexId v) const {
  assert(v < in_.size());
  return in_[v];
}

const std::vector<AdjEntry>& PropertyGraph::OutEdgesWithPredicate(
    VertexId v, PredicateId p) const {
  assert(v < out_by_pred_.size());
  const auto& per_pred = out_by_pred_[v];
  auto it = per_pred.find(p);
  return it == per_pred.end() ? kEmptyAdjacency : it->second;
}

const std::vector<AdjEntry>& PropertyGraph::InEdgesWithPredicate(
    VertexId v, PredicateId p) const {
  assert(v < in_by_pred_.size());
  const auto& per_pred = in_by_pred_[v];
  auto it = per_pred.find(p);
  return it == per_pred.end() ? kEmptyAdjacency : it->second;
}

void PropertyGraph::ForEachEdge(
    const std::function<void(EdgeId, const EdgeRecord&)>& fn) const {
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edges_[e].alive) fn(e, edges_[e]);
  }
}

namespace {

void SaveAdjacency(BinaryWriter* writer,
                   const CowVec<std::vector<AdjEntry>>& adj) {
  for (size_t v = 0; v < adj.size(); ++v) {
    const std::vector<AdjEntry>& entries = adj[v];
    writer->U64(entries.size());
    for (const AdjEntry& a : entries) {
      writer->U32(a.predicate);
      writer->U32(a.neighbor);
      writer->U32(a.edge);
    }
  }
}

Status LoadAdjacency(BinaryReader* reader, size_t num_vertices,
                     CowVec<std::vector<AdjEntry>>* adj) {
  adj->Assign(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    uint64_t count = 0;
    NOUS_RETURN_IF_ERROR(reader->Count(&count, 12));
    std::vector<AdjEntry>& entries = adj->Mutable(v);
    entries.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      AdjEntry a;
      NOUS_RETURN_IF_ERROR(reader->U32(&a.predicate));
      NOUS_RETURN_IF_ERROR(reader->U32(&a.neighbor));
      NOUS_RETURN_IF_ERROR(reader->U32(&a.edge));
      entries.push_back(a);
    }
  }
  return Status::Ok();
}

}  // namespace

CowFootprint PropertyGraph::Footprint() const {
  CowFootprint fp;
  vertex_labels_.AddFootprint(&fp);
  predicates_.AddFootprint(&fp);
  terms_.AddFootprint(&fp);
  types_.AddFootprint(&fp);
  sources_.AddFootprint(&fp);
  vertices_.AddFootprint(&fp, VertexDeepBytes);
  edges_.AddFootprint(&fp, [](const EdgeRecord&) { return size_t{0}; });
  out_.AddFootprint(&fp, AdjDeepBytes);
  in_.AddFootprint(&fp, AdjDeepBytes);
  folded_labels_.AddFootprint(&fp);
  out_by_pred_.AddFootprint(&fp, ByPredDeepBytes);
  in_by_pred_.AddFootprint(&fp, ByPredDeepBytes);
  return fp;
}

void PropertyGraph::SaveBinary(BinaryWriter* writer) const {
  vertex_labels_.SaveBinary(writer);
  predicates_.SaveBinary(writer);
  terms_.SaveBinary(writer);
  types_.SaveBinary(writer);
  sources_.SaveBinary(writer);

  writer->U64(vertices_.size());
  for (size_t v = 0; v < vertices_.size(); ++v) {
    const VertexRecord& rec = vertices_[v];
    writer->U32(rec.type);
    // Canonical (sorted) bag emission: the in-memory map is unordered,
    // so sorting is what makes Save deterministic.
    std::vector<std::pair<TermId, double>> bag(rec.bag.begin(),
                                               rec.bag.end());
    std::sort(bag.begin(), bag.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    writer->U64(bag.size());
    for (const auto& [term, weight] : bag) {
      writer->U32(term);
      writer->F64(weight);
    }
    writer->F64Array(rec.topics);
  }

  writer->U64(edges_.size());
  for (size_t e = 0; e < edges_.size(); ++e) {
    const EdgeRecord& rec = edges_[e];
    writer->U32(rec.subject);
    writer->U32(rec.object);
    writer->U32(rec.predicate);
    writer->F64(rec.meta.confidence);
    writer->I64(rec.meta.timestamp);
    writer->U32(rec.meta.source);
    writer->U8(rec.meta.curated ? 1 : 0);
    writer->U8(rec.alive ? 1 : 0);
  }

  // Adjacency is stored explicitly (not rebuilt from edge slots): its
  // order encodes the full add/remove history, which a slot replay
  // cannot reproduce after RemoveEdge's swap-with-back compaction.
  SaveAdjacency(writer, out_);
  SaveAdjacency(writer, in_);
  writer->U64(num_live_edges_);
}

Status PropertyGraph::LoadBinary(BinaryReader* reader) {
  NOUS_RETURN_IF_ERROR(vertex_labels_.LoadBinary(reader));
  NOUS_RETURN_IF_ERROR(predicates_.LoadBinary(reader));
  NOUS_RETURN_IF_ERROR(terms_.LoadBinary(reader));
  NOUS_RETURN_IF_ERROR(types_.LoadBinary(reader));
  NOUS_RETURN_IF_ERROR(sources_.LoadBinary(reader));

  uint64_t num_vertices = 0;
  NOUS_RETURN_IF_ERROR(reader->Count(&num_vertices, 4 + 8 + 8));
  if (num_vertices != vertex_labels_.size()) {
    return Status::DataLoss("graph checkpoint: vertex count mismatch");
  }
  vertices_.Assign(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    VertexRecord& rec = vertices_.Mutable(v);
    NOUS_RETURN_IF_ERROR(reader->U32(&rec.type));
    uint64_t bag_size = 0;
    NOUS_RETURN_IF_ERROR(reader->Count(&bag_size, 12));
    rec.bag.reserve(bag_size);
    for (uint64_t i = 0; i < bag_size; ++i) {
      TermId term = 0;
      double weight = 0;
      NOUS_RETURN_IF_ERROR(reader->U32(&term));
      NOUS_RETURN_IF_ERROR(reader->F64(&weight));
      rec.bag.emplace(term, weight);
    }
    NOUS_RETURN_IF_ERROR(reader->F64Array(&rec.topics));
  }

  uint64_t num_edges = 0;
  NOUS_RETURN_IF_ERROR(reader->Count(&num_edges, 4 * 3 + 8 + 8 + 4 + 2));
  edges_.Assign(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    EdgeRecord& rec = edges_.Mutable(e);
    NOUS_RETURN_IF_ERROR(reader->U32(&rec.subject));
    NOUS_RETURN_IF_ERROR(reader->U32(&rec.object));
    NOUS_RETURN_IF_ERROR(reader->U32(&rec.predicate));
    NOUS_RETURN_IF_ERROR(reader->F64(&rec.meta.confidence));
    NOUS_RETURN_IF_ERROR(reader->I64(&rec.meta.timestamp));
    NOUS_RETURN_IF_ERROR(reader->U32(&rec.meta.source));
    uint8_t curated = 0, alive = 0;
    NOUS_RETURN_IF_ERROR(reader->U8(&curated));
    NOUS_RETURN_IF_ERROR(reader->U8(&alive));
    rec.meta.curated = curated != 0;
    rec.alive = alive != 0;
  }

  NOUS_RETURN_IF_ERROR(LoadAdjacency(reader, num_vertices, &out_));
  NOUS_RETURN_IF_ERROR(LoadAdjacency(reader, num_vertices, &in_));
  uint64_t live = 0;
  NOUS_RETURN_IF_ERROR(reader->U64(&live));
  num_live_edges_ = live;
  RebuildDerivedIndexes();
  return Status::Ok();
}

void PropertyGraph::RebuildDerivedIndexes() {
  folded_labels_.Clear();
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    folded_labels_.Insert(FoldedHashOf(v), v,
                          [this](VertexId w) { return FoldedHashOf(w); });
  }
  out_by_pred_.Assign(vertices_.size());
  in_by_pred_.Assign(vertices_.size());
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!out_[v].empty()) {
      auto& per_pred = out_by_pred_.Mutable(v);
      for (const AdjEntry& a : out_[v]) per_pred[a.predicate].push_back(a);
    }
    if (!in_[v].empty()) {
      auto& per_pred = in_by_pred_.Mutable(v);
      for (const AdjEntry& a : in_[v]) per_pred[a.predicate].push_back(a);
    }
  }
  max_edge_timestamp_ = 0;
  for (size_t e = 0; e < edges_.size(); ++e) {
    const EdgeRecord& rec = edges_[e];
    if (rec.alive) {
      max_edge_timestamp_ =
          std::max(max_edge_timestamp_, rec.meta.timestamp);
    }
  }
}

}  // namespace nous
