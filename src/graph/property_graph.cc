#include "graph/property_graph.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace nous {

namespace {
// Shared empty containers so accessors on out-of-range vertices (never
// expected; guarded by asserts) and default topic lookups stay cheap.
const std::vector<double> kEmptyTopics;
}  // namespace

VertexId PropertyGraph::GetOrAddVertex(std::string_view label) {
  uint32_t id = vertex_labels_.Intern(label);
  if (id >= vertices_.size()) {
    vertices_.resize(id + 1);
    out_.resize(id + 1);
    in_.resize(id + 1);
  }
  return id;
}

std::optional<VertexId> PropertyGraph::FindVertex(
    std::string_view label) const {
  return vertex_labels_.Lookup(label);
}

const std::string& PropertyGraph::VertexLabel(VertexId v) const {
  return vertex_labels_.GetString(v);
}

void PropertyGraph::SetVertexType(VertexId v, TypeId type) {
  assert(v < vertices_.size());
  vertices_[v].type = type;
}

TypeId PropertyGraph::VertexType(VertexId v) const {
  assert(v < vertices_.size());
  return vertices_[v].type;
}

void PropertyGraph::AddVertexTerm(VertexId v, TermId term, double w) {
  assert(v < vertices_.size());
  vertices_[v].bag[term] += w;
}

const std::unordered_map<TermId, double>& PropertyGraph::VertexBag(
    VertexId v) const {
  assert(v < vertices_.size());
  return vertices_[v].bag;
}

void PropertyGraph::SetVertexTopics(VertexId v, std::vector<double> topics) {
  assert(v < vertices_.size());
  vertices_[v].topics = std::move(topics);
}

const std::vector<double>& PropertyGraph::VertexTopics(VertexId v) const {
  if (v >= vertices_.size()) return kEmptyTopics;
  return vertices_[v].topics;
}

EdgeId PropertyGraph::AddEdge(VertexId subject, PredicateId predicate,
                              VertexId object, const EdgeMeta& meta) {
  assert(subject < vertices_.size());
  assert(object < vertices_.size());
  EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(EdgeRecord{subject, object, predicate, meta, true});
  out_[subject].push_back(AdjEntry{predicate, object, e});
  in_[object].push_back(AdjEntry{predicate, subject, e});
  ++num_live_edges_;
  return e;
}

EdgeId PropertyGraph::AddTriple(const TimedTriple& t) {
  VertexId s = GetOrAddVertex(t.triple.subject);
  VertexId o = GetOrAddVertex(t.triple.object);
  PredicateId p = predicates_.Intern(t.triple.predicate);
  EdgeMeta meta;
  meta.confidence = t.confidence;
  meta.timestamp = t.timestamp;
  meta.source =
      t.source.empty() ? kInvalidSource : sources_.Intern(t.source);
  meta.curated = false;
  return AddEdge(s, p, o, meta);
}

Status PropertyGraph::RemoveEdge(EdgeId e) {
  if (e >= edges_.size() || !edges_[e].alive) {
    return Status::NotFound(StrFormat("edge %u is not live", e));
  }
  EdgeRecord& rec = edges_[e];
  auto erase_from = [e](std::vector<AdjEntry>& adj) {
    for (size_t i = 0; i < adj.size(); ++i) {
      if (adj[i].edge == e) {
        adj[i] = adj.back();
        adj.pop_back();
        return;
      }
    }
    assert(false && "adjacency entry missing for live edge");
  };
  erase_from(out_[rec.subject]);
  erase_from(in_[rec.object]);
  rec.alive = false;
  --num_live_edges_;
  return Status::Ok();
}

std::optional<EdgeId> PropertyGraph::FindEdge(VertexId subject,
                                              PredicateId predicate,
                                              VertexId object) const {
  if (subject >= out_.size()) return std::nullopt;
  for (const AdjEntry& a : out_[subject]) {
    if (a.predicate == predicate && a.neighbor == object) return a.edge;
  }
  return std::nullopt;
}

const EdgeRecord& PropertyGraph::Edge(EdgeId e) const {
  assert(e < edges_.size());
  return edges_[e];
}

void PropertyGraph::SetEdgeConfidence(EdgeId e, double confidence) {
  assert(e < edges_.size());
  edges_[e].meta.confidence = confidence;
}

const std::vector<AdjEntry>& PropertyGraph::OutEdges(VertexId v) const {
  assert(v < out_.size());
  return out_[v];
}

const std::vector<AdjEntry>& PropertyGraph::InEdges(VertexId v) const {
  assert(v < in_.size());
  return in_[v];
}

void PropertyGraph::ForEachEdge(
    const std::function<void(EdgeId, const EdgeRecord&)>& fn) const {
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edges_[e].alive) fn(e, edges_[e]);
  }
}

}  // namespace nous
