#ifndef NOUS_GRAPH_GRAPH_ALGORITHMS_H_
#define NOUS_GRAPH_GRAPH_ALGORITHMS_H_

#include <cstddef>
#include <vector>

#include "graph/property_graph.h"

namespace nous {

/// Weakly connected components over live edges. Returns the component
/// id per vertex (dense ids, 0-based); isolated vertices get their own
/// component. `num_components` (optional) receives the count.
std::vector<uint32_t> WeaklyConnectedComponents(
    const PropertyGraph& graph, size_t* num_components = nullptr);

struct PageRankConfig {
  double damping = 0.85;
  size_t max_iterations = 50;
  /// L1 convergence threshold.
  double tolerance = 1e-8;
};

/// PageRank by power iteration over live edges (dangling mass
/// redistributed uniformly). An entity-importance signal for ranking
/// and for the demo's quality dashboards.
std::vector<double> PageRank(const PropertyGraph& graph,
                             const PageRankConfig& config = {});

/// The `radius`-hop ego network around `center` (undirected
/// reachability): returns the contained vertices, center first,
/// breadth-first order.
std::vector<VertexId> EgoNetwork(const PropertyGraph& graph,
                                 VertexId center, size_t radius);

}  // namespace nous

#endif  // NOUS_GRAPH_GRAPH_ALGORITHMS_H_
