#include "graph/dot_export.h"

#include <unordered_set>

#include "common/string_util.h"

namespace nous {

namespace {

/// DOT double-quoted string escaping.
std::string DotEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

Status WriteDot(const PropertyGraph& graph, const DotOptions& options,
                std::ostream& out) {
  std::unordered_set<VertexId> keep(options.vertices.begin(),
                                    options.vertices.end());
  const bool whole_graph = keep.empty();
  auto included = [&](VertexId v) {
    return whole_graph || keep.count(v) > 0;
  };

  out << "digraph \"" << DotEscape(options.graph_name) << "\" {\n";
  out << "  node [shape=box, style=rounded];\n";
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!included(v)) continue;
    // Escape user-controlled text first; the "\n" line break below is
    // DOT markup and must survive unescaped.
    std::string label = DotEscape(graph.VertexLabel(v));
    TypeId type = graph.VertexType(v);
    if (type != kInvalidType) {
      label += "\\n(" + DotEscape(graph.types().GetString(type)) + ")";
    }
    out << "  v" << v << " [label=\"" << label << "\"];\n";
  }
  graph.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
    if (!included(rec.subject) || !included(rec.object)) return;
    std::string label = graph.predicates().GetString(rec.predicate);
    if (options.show_confidence && !rec.meta.curated) {
      label += StrFormat(" (%.2f)", rec.meta.confidence);
    }
    out << "  v" << rec.subject << " -> v" << rec.object
        << " [label=\"" << DotEscape(label) << "\"";
    if (options.color_by_provenance) {
      out << ", color=" << (rec.meta.curated ? "red" : "blue");
    }
    out << "];\n";
  });
  out << "}\n";
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::Ok();
}

}  // namespace nous
