#ifndef NOUS_GRAPH_DOT_EXPORT_H_
#define NOUS_GRAPH_DOT_EXPORT_H_

#include <iostream>
#include <vector>

#include "common/status.h"
#include "graph/property_graph.h"

namespace nous {

struct DotOptions {
  /// Restrict the export to these vertices (empty = whole graph).
  /// Edges are included when both endpoints are in the set.
  std::vector<VertexId> vertices;
  /// Color curated edges red and extracted edges blue — Figure 2's
  /// visual convention.
  bool color_by_provenance = true;
  /// Annotate extracted edges with their confidence.
  bool show_confidence = true;
  const char* graph_name = "nous";
};

/// Writes the (sub)graph in Graphviz DOT format — the "visualize the
/// resultant graph" surface of demo feature 2. Render with
/// `dot -Tsvg out.dot > out.svg`.
Status WriteDot(const PropertyGraph& graph, const DotOptions& options,
                std::ostream& out);

}  // namespace nous

#endif  // NOUS_GRAPH_DOT_EXPORT_H_
