#include "graph/graph_generator.h"

#include "common/random.h"
#include "common/string_util.h"

namespace nous {

std::vector<TimedTriple> GenerateStream(const StreamConfig& config) {
  Rng rng(config.seed);
  ZipfSampler entity_sampler(config.num_entities, config.entity_skew);
  ZipfSampler predicate_sampler(config.num_predicates,
                                config.predicate_skew);
  std::vector<TimedTriple> stream;
  stream.reserve(config.num_edges);
  Timestamp now = config.start_time;
  for (size_t i = 0; i < config.num_edges; ++i) {
    uint64_t s = entity_sampler.Sample(&rng);
    uint64_t o = entity_sampler.Sample(&rng);
    if (o == s) o = (o + 1) % config.num_entities;
    uint64_t p = predicate_sampler.Sample(&rng);
    TimedTriple t;
    t.triple.subject = StrFormat("e%llu", static_cast<unsigned long long>(s));
    t.triple.object = StrFormat("e%llu", static_cast<unsigned long long>(o));
    t.triple.predicate =
        StrFormat("p%llu", static_cast<unsigned long long>(p));
    t.timestamp = now;
    t.source = "synthetic";
    stream.push_back(std::move(t));
    now += config.step;
  }
  return stream;
}

std::vector<TimedTriple> GeneratePlantedStream(
    const PlantedStreamConfig& config) {
  Rng rng(config.seed);
  std::vector<TimedTriple> stream;
  Timestamp now = config.start_time;
  size_t instance_counter = 0;
  for (size_t i = 0; i < config.num_events; ++i) {
    bool planted = false;
    double r = rng.UniformDouble();
    double acc = 0;
    for (const PlantedPatternSpec& spec : config.patterns) {
      acc += spec.rate;
      if (r < acc) {
        // One pattern instance: fresh center and fresh leaf per
        // predicate, so MNI support grows with the instance count.
        size_t instance = instance_counter++;
        std::string center =
            StrFormat("c_%s_%zu", spec.name.c_str(), instance);
        for (size_t k = 0; k < spec.predicates.size(); ++k) {
          TimedTriple t;
          t.triple.subject = center;
          t.triple.predicate = spec.predicates[k];
          t.triple.object = StrFormat("leaf_%s_%zu_%zu",
                                      spec.name.c_str(), instance, k);
          t.timestamp = now;
          t.source = "planted";
          stream.push_back(std::move(t));
        }
        planted = true;
        break;
      }
    }
    if (!planted) {
      uint64_t s = rng.UniformInt(config.noise_entities);
      uint64_t o = rng.UniformInt(config.noise_entities);
      if (o == s) o = (o + 1) % config.noise_entities;
      TimedTriple t;
      t.triple.subject =
          StrFormat("n%llu", static_cast<unsigned long long>(s));
      t.triple.object =
          StrFormat("n%llu", static_cast<unsigned long long>(o));
      t.triple.predicate = StrFormat(
          "q%llu", static_cast<unsigned long long>(
                       rng.UniformInt(config.noise_predicates)));
      t.timestamp = now;
      t.source = "noise";
      stream.push_back(std::move(t));
    }
    now += config.step;
  }
  return stream;
}

std::vector<TimedTriple> GenerateDriftStream(
    const PlantedStreamConfig& phase1, const PlantedStreamConfig& phase2) {
  std::vector<TimedTriple> stream = GeneratePlantedStream(phase1);
  PlantedStreamConfig second = phase2;
  second.start_time = stream.empty()
                          ? phase2.start_time
                          : stream.back().timestamp + phase1.step;
  // Distinct seed stream for the second phase so noise does not repeat.
  second.seed = phase2.seed + 0x5eedULL;
  std::vector<TimedTriple> tail = GeneratePlantedStream(second);
  stream.insert(stream.end(), tail.begin(), tail.end());
  return stream;
}

}  // namespace nous
