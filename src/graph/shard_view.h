// Immutable per-shard snapshot (DESIGN.md §5.16).
//
// A shard lane publishes one of these after every drained commit
// batch: an O(1) COW clone of its shard-local PropertyGraph plus the
// sidecar id translations that relate shard-local ids back to the
// planner's global id space. Lives in the graph layer so both the
// core ShardSet (producer) and the qa ShardedGraphView (consumer) can
// name it without a dependency cycle.

#ifndef NOUS_GRAPH_SHARD_VIEW_H_
#define NOUS_GRAPH_SHARD_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "graph/cow.h"
#include "graph/property_graph.h"
#include "graph/types.h"

namespace nous {

/// One shard's published state. Immutable after construction; safe to
/// read from any thread with no lock.
struct ShardView {
  /// Planner kg_version this view reflects. All shards publish a view
  /// for every committed version (possibly with no local ops), so a
  /// composite read can detect when the shard set is coherent.
  uint64_t version = 0;
  /// Shard-local graph: only the vertices homed or ghosted here and
  /// the edges homed here. Vertex labels are globally unique, so they
  /// double as cross-shard identity.
  PropertyGraph graph;
  /// Shard-local vertex id -> planner (global) vertex id, in local
  /// insertion order. Not sorted: ghost defines arrive out of gid
  /// order.
  CowVec<VertexId> vertex_gids;
  /// Shard-local edge slot -> planner (global) edge slot. Ascending:
  /// a shard receives its edges in global slot order.
  CowVec<EdgeId> edge_gids;
};

/// Atomic publish/read slot for a shard's latest view (the per-shard
/// SnapshotStore). Monotonic: an older version never replaces a newer
/// one.
class ShardViewStore {
 public:
  void Publish(std::shared_ptr<const ShardView> view) {
    std::shared_ptr<const ShardView> current =
        current_.load(std::memory_order_acquire);
    while (current == nullptr || current->version < view->version) {
      if (current_.compare_exchange_weak(current, view,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return;
      }
    }
  }

  std::shared_ptr<const ShardView> Current() const {
    return current_.load(std::memory_order_acquire);
  }

 private:
  /// Internally synchronized; no GUARDED_BY needed.
  std::atomic<std::shared_ptr<const ShardView>> current_;
};

}  // namespace nous

#endif  // NOUS_GRAPH_SHARD_VIEW_H_
