#ifndef NOUS_GRAPH_GRAPH_STATS_H_
#define NOUS_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <map>
#include <string>

#include "common/histogram.h"
#include "graph/property_graph.h"

namespace nous {

/// Quality-related summary of a (fused) knowledge graph — the numbers
/// behind the paper's demo feature 2 ("summarization of quality-related
/// statistics such as confidence distributions").
struct GraphStats {
  size_t vertices = 0;
  size_t live_edges = 0;
  size_t curated_edges = 0;
  size_t extracted_edges = 0;
  size_t distinct_predicates = 0;
  double mean_out_degree = 0;
  size_t max_out_degree = 0;
  /// Confidence samples of extracted (non-curated) edges.
  Histogram extracted_confidence;
  /// Live-edge counts per predicate label.
  std::map<std::string, size_t> per_predicate;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

GraphStats ComputeGraphStats(const PropertyGraph& graph);

}  // namespace nous

#endif  // NOUS_GRAPH_GRAPH_STATS_H_
