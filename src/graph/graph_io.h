#ifndef NOUS_GRAPH_GRAPH_IO_H_
#define NOUS_GRAPH_GRAPH_IO_H_

#include <iostream>
#include <memory>
#include <string>

#include "common/result.h"
#include "graph/property_graph.h"

namespace nous {

/// Serializes the graph to a line-oriented, tab-separated text format
/// (full fidelity: vertices with types/bags/topics, live edges with
/// confidence, timestamp, source, curated flag). Dead edge slots are
/// not persisted; loading compacts edge ids.
///
/// Format (fields are tab-separated; labels must not contain tabs or
/// newlines, which the writer rejects):
///   #nous-graph v1
///   V <label> <type|->
///   B <label> <term> <weight>
///   T <label> <p0> <p1> ...
///   E <subject> <predicate> <object> <conf> <ts> <source|-> <0|1>
Status SaveGraph(const PropertyGraph& graph, std::ostream& out);

/// Parses a graph written by SaveGraph. Malformed input yields
/// InvalidArgument naming the offending line.
Result<std::unique_ptr<PropertyGraph>> LoadGraph(std::istream& in);

/// File-path convenience wrappers.
Status SaveGraphToFile(const PropertyGraph& graph,
                       const std::string& path);
Result<std::unique_ptr<PropertyGraph>> LoadGraphFromFile(
    const std::string& path);

}  // namespace nous

#endif  // NOUS_GRAPH_GRAPH_IO_H_
