#include "graph/graph_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "common/string_util.h"

namespace nous {

namespace {

constexpr char kHeader[] = "#nous-graph v1";

bool LabelSafe(const std::string& label) {
  return label.find('\t') == std::string::npos &&
         label.find('\n') == std::string::npos && !label.empty();
}

}  // namespace

Status SaveGraph(const PropertyGraph& graph, std::ostream& out) {
  out << kHeader << "\n";
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const std::string& label = graph.VertexLabel(v);
    if (!LabelSafe(label)) {
      return Status::InvalidArgument(
          StrFormat("vertex %u label contains tab/newline or is empty",
                    v));
    }
    TypeId type = graph.VertexType(v);
    out << "V\t" << label << "\t"
        << (type == kInvalidType ? "-" : graph.types().GetString(type))
        << "\n";
    // Canonical (TermId-sorted) emission: the bag map is unordered, so
    // dumping it directly would make the file's byte content depend on
    // insertion history. Sorted output lets tests diff two dumps.
    std::vector<std::pair<TermId, double>> bag(graph.VertexBag(v).begin(),
                                               graph.VertexBag(v).end());
    std::sort(bag.begin(), bag.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [term, weight] : bag) {
      const std::string& term_text = graph.terms().GetString(term);
      if (!LabelSafe(term_text)) {
        return Status::InvalidArgument("term contains tab/newline");
      }
      out << "B\t" << label << "\t" << term_text << "\t"
          << StrFormat("%.17g", weight) << "\n";
    }
    const std::vector<double>& topics = graph.VertexTopics(v);
    if (!topics.empty()) {
      out << "T\t" << label;
      for (double t : topics) out << "\t" << StrFormat("%.17g", t);
      out << "\n";
    }
  }
  Status edge_status = Status::Ok();
  graph.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
    if (!edge_status.ok()) return;
    const std::string& pred = graph.predicates().GetString(rec.predicate);
    if (!LabelSafe(pred)) {
      edge_status = Status::InvalidArgument("predicate contains tab");
      return;
    }
    std::string source =
        rec.meta.source == kInvalidSource
            ? "-"
            : graph.sources().GetString(rec.meta.source);
    out << "E\t" << graph.VertexLabel(rec.subject) << "\t" << pred
        << "\t" << graph.VertexLabel(rec.object) << "\t"
        << StrFormat("%.17g", rec.meta.confidence) << "\t"
        << rec.meta.timestamp << "\t" << source << "\t"
        << (rec.meta.curated ? 1 : 0) << "\n";
  });
  NOUS_RETURN_IF_ERROR(edge_status);
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::Ok();
}

Result<std::unique_ptr<PropertyGraph>> LoadGraph(std::istream& in) {
  auto graph = std::make_unique<PropertyGraph>();
  std::string line;
  size_t line_no = 0;
  auto fail = [&line_no](const std::string& why) {
    return Status::InvalidArgument(
        StrFormat("line %zu: %s", line_no, why.c_str()));
  };
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing #nous-graph v1 header");
  }
  ++line_no;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    const std::string& kind = fields[0];
    if (kind == "V") {
      if (fields.size() != 3) return fail("V needs 3 fields");
      VertexId v = graph->GetOrAddVertex(fields[1]);
      if (fields[2] != "-") {
        graph->SetVertexType(v, graph->types().Intern(fields[2]));
      }
    } else if (kind == "B") {
      if (fields.size() != 4) return fail("B needs 4 fields");
      auto v = graph->FindVertex(fields[1]);
      if (!v.has_value()) return fail("B references unknown vertex");
      char* end = nullptr;
      double weight = std::strtod(fields[3].c_str(), &end);
      if (end == fields[3].c_str()) return fail("bad weight");
      graph->AddVertexTerm(*v, graph->terms().Intern(fields[2]), weight);
    } else if (kind == "T") {
      if (fields.size() < 3) return fail("T needs topics");
      auto v = graph->FindVertex(fields[1]);
      if (!v.has_value()) return fail("T references unknown vertex");
      std::vector<double> topics;
      for (size_t i = 2; i < fields.size(); ++i) {
        char* end = nullptr;
        topics.push_back(std::strtod(fields[i].c_str(), &end));
        if (end == fields[i].c_str()) return fail("bad topic value");
      }
      graph->SetVertexTopics(*v, std::move(topics));
    } else if (kind == "E") {
      if (fields.size() != 8) return fail("E needs 8 fields");
      auto s = graph->FindVertex(fields[1]);
      auto o = graph->FindVertex(fields[3]);
      if (!s.has_value() || !o.has_value()) {
        return fail("E references unknown vertex");
      }
      EdgeMeta meta;
      char* end = nullptr;
      meta.confidence = std::strtod(fields[4].c_str(), &end);
      if (end == fields[4].c_str()) return fail("bad confidence");
      meta.timestamp =
          static_cast<Timestamp>(std::strtoll(fields[5].c_str(), &end,
                                              10));
      if (end == fields[5].c_str()) return fail("bad timestamp");
      meta.source = fields[6] == "-"
                        ? kInvalidSource
                        : graph->sources().Intern(fields[6]);
      if (fields[7] != "0" && fields[7] != "1") {
        return fail("curated flag must be 0/1");
      }
      meta.curated = fields[7] == "1";
      graph->AddEdge(*s, graph->predicates().Intern(fields[2]), *o, meta);
    } else {
      return fail("unknown record kind '" + kind + "'");
    }
  }
  return graph;
}

Status SaveGraphToFile(const PropertyGraph& graph,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for write: " + path);
  }
  return SaveGraph(graph, out);
}

Result<std::unique_ptr<PropertyGraph>> LoadGraphFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open for read: " + path);
  }
  return LoadGraph(in);
}

}  // namespace nous
