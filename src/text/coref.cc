#include "text/coref.h"

#include <optional>

namespace nous {

namespace {

bool IsOrgLike(EntityType type) {
  return type == EntityType::kOrganization || type == EntityType::kMisc;
}

bool IsThingLike(EntityType type) {
  return type == EntityType::kOrganization ||
         type == EntityType::kProduct || type == EntityType::kMisc;
}

}  // namespace

std::vector<PronounResolution> CorefResolver::Resolve(
    const std::vector<std::vector<Token>>& sentences,
    const std::vector<std::vector<EntityMention>>& mentions) const {
  std::vector<PronounResolution> resolutions;
  std::optional<EntityMention> last_person;
  std::optional<EntityMention> last_org;
  std::optional<EntityMention> last_thing;  // org or product

  for (size_t s = 0; s < sentences.size(); ++s) {
    const std::vector<Token>& tokens = sentences[s];
    // Walk tokens; update recency as mentions begin, resolve anaphors.
    size_t mention_idx = 0;
    for (size_t t = 0; t < tokens.size(); ++t) {
      while (mention_idx < mentions[s].size() &&
             mentions[s][mention_idx].begin <= t) {
        const EntityMention& m = mentions[s][mention_idx];
        if (m.type == EntityType::kPerson) last_person = m;
        if (IsOrgLike(m.type)) last_org = m;
        if (IsThingLike(m.type)) last_thing = m;
        ++mention_idx;
      }
      const std::string& w = tokens[t].lower;
      std::optional<EntityMention> antecedent;
      size_t span_end = t + 1;
      if (tokens[t].tag == PosTag::kPronoun) {
        if (w == "he" || w == "she" || w == "him" || w == "her") {
          antecedent = last_person;
        } else if (w == "it" || w == "itself") {
          antecedent = last_thing;
        } else if (w == "they" || w == "them") {
          antecedent = last_org;
        }
      } else if (w == "the" && t + 1 < tokens.size()) {
        const std::string& head = tokens[t + 1].lower;
        if (head == "company" || head == "firm" || head == "startup" ||
            head == "manufacturer" || head == "organization") {
          antecedent = last_org;
          span_end = t + 2;
        }
      }
      if (antecedent.has_value()) {
        PronounResolution r;
        r.sentence = s;
        r.token = t;
        r.token_end = span_end;
        r.antecedent = *antecedent;
        r.antecedent.from_coref = true;
        resolutions.push_back(std::move(r));
      }
    }
  }
  return resolutions;
}

}  // namespace nous
