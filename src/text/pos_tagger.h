#ifndef NOUS_TEXT_POS_TAGGER_H_
#define NOUS_TEXT_POS_TAGGER_H_

#include <vector>

#include "text/lexicon.h"
#include "text/token.h"

namespace nous {

/// Deterministic lexicon + shape POS tagger. Priority: closed classes
/// from the lexicon, then verb forms, numbers, capitalization (proper
/// noun when not sentence-initial), suffix heuristics, default noun.
class PosTagger {
 public:
  /// `lexicon` must outlive the tagger.
  explicit PosTagger(const Lexicon* lexicon) : lexicon_(lexicon) {}

  /// Tags every token in place.
  void Tag(std::vector<Token>* tokens) const;

 private:
  const Lexicon* lexicon_;
};

}  // namespace nous

#endif  // NOUS_TEXT_POS_TAGGER_H_
