#include "text/sentence_splitter.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace nous {

namespace {

const std::unordered_set<std::string>& Abbreviations() {
  // lint: new-ok(leaked function-local static; no destruction-order risk)
  static const auto* kSet = new std::unordered_set<std::string>{
      "mr", "ms", "mrs", "dr", "prof", "inc", "corp", "co", "ltd",
      "jr", "sr", "st", "vs", "etc", "fig", "dept", "est", "approx",
  };
  return *kSet;
}

// Word (lower-cased) immediately preceding position `pos` (exclusive).
std::string PrecedingWord(std::string_view text, size_t pos) {
  size_t end = pos;
  size_t begin = end;
  while (begin > 0 &&
         std::isalpha(static_cast<unsigned char>(text[begin - 1]))) {
    --begin;
  }
  return ToLower(text.substr(begin, end - begin));
}

}  // namespace

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> sentences;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c != '.' && c != '!' && c != '?') continue;
    if (c == '.') {
      // Decimal number: "3.5".
      if (i > 0 && i + 1 < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[i - 1])) &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        continue;
      }
      // Abbreviation or single-letter initial ("U.").
      std::string prev = PrecedingWord(text, i);
      if (Abbreviations().count(prev) > 0 || prev.size() == 1) continue;
    }
    // Must be followed by end-of-text or whitespace to terminate.
    if (i + 1 < text.size() &&
        !std::isspace(static_cast<unsigned char>(text[i + 1]))) {
      continue;
    }
    std::string_view piece = Trim(text.substr(start, i + 1 - start));
    if (!piece.empty()) sentences.emplace_back(piece);
    start = i + 1;
  }
  std::string_view tail = Trim(text.substr(start));
  if (!tail.empty()) sentences.emplace_back(tail);
  return sentences;
}

}  // namespace nous
