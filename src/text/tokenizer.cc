#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace nous {

namespace {

bool IsWordChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '-' || c == '_' || c == '&';
}

}  // namespace

std::vector<Token> Tokenize(std::string_view sentence) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sentence.size();
  auto emit = [&tokens](std::string text) {
    Token t;
    t.lower = ToLower(text);
    t.text = std::move(text);
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    char c = sentence[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < n) {
        if (IsWordChar(sentence[i])) {
          ++i;
        } else if (sentence[i] == '.' && i + 1 < n && i > start &&
                   std::isupper(static_cast<unsigned char>(
                       sentence[i - 1])) &&
                   (i + 1 >= n ||
                    std::isupper(static_cast<unsigned char>(
                        sentence[i + 1])))) {
          // Interior period of an all-caps abbreviation ("U.S.").
          ++i;
        } else if (sentence[i] == '\'' && i + 1 < n &&
                   (sentence[i + 1] == 's' || sentence[i + 1] == 'S') &&
                   (i + 2 >= n || !IsWordChar(sentence[i + 2]))) {
          // Possessive: emit word, then "'s" as its own token.
          break;
        } else {
          break;
        }
      }
      emit(std::string(sentence.substr(start, i - start)));
      if (i < n && sentence[i] == '\'' && i + 1 < n &&
          (sentence[i + 1] == 's' || sentence[i + 1] == 'S')) {
        emit("'s");
        i += 2;
      }
    } else {
      // Punctuation: one character per token.
      emit(std::string(1, c));
      ++i;
    }
  }
  if (!tokens.empty()) tokens[0].sentence_initial = true;
  return tokens;
}

}  // namespace nous
