#ifndef NOUS_TEXT_OPENIE_H_
#define NOUS_TEXT_OPENIE_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/types.h"
#include "text/coref.h"
#include "text/lexicon.h"
#include "text/ner.h"
#include "text/pos_tagger.h"

namespace nous {

/// One raw OpenIE tuple extracted from a sentence, pre-linking.
struct RawExtraction {
  Triple triple;
  /// Normalized relation: verb base form, optionally suffixed with the
  /// governing preposition ("partner_with", "found_in").
  std::string relation;
  double confidence = 1.0;
  size_t sentence_index = 0;
  bool subject_from_coref = false;
  bool object_from_coref = false;
  /// True when the governing verb was negated (only emitted when
  /// config.drop_negated is false).
  bool negated = false;
  /// False when the argument was a plain noun-phrase fallback rather
  /// than a recognized entity.
  bool subject_is_entity = true;
  bool object_is_entity = true;
  EntityType subject_type = EntityType::kMisc;
  EntityType object_type = EntityType::kMisc;
};

/// Heuristic knobs — demo feature 1's precision/recall trade-offs.
struct OpenIeConfig {
  /// Resolve pronouns before pairing arguments (recall up, precision
  /// down for wrong antecedents).
  bool use_coref = true;
  /// Require the object to be a recognized entity (precision up).
  bool require_entity_object = false;
  /// Require the subject to be a recognized entity.
  bool require_entity_subject = true;
  /// Maximum token gap between an argument span and the verb group.
  size_t max_arg_gap = 6;
  /// Emit secondary (subject, verb_prep, arg) tuples from trailing
  /// prepositional phrases.
  bool allow_nary = true;
  /// Drop tuples whose verb is negated; when false they are kept with
  /// confidence scaled by 0.2.
  bool drop_negated = true;
  /// Emit copula ("X is a maker of drones") isa-style tuples.
  bool extract_copula = true;
  double base_confidence = 0.95;
  /// Tuples below this confidence are suppressed.
  double min_confidence = 0.0;
};

/// Pattern-based Open Information Extraction over tagged tokens and NER
/// mentions (§3.2). Produces binary tuples with verb-anchored relation
/// phrases and optional n-ary expansions, with heuristic confidences.
class OpenIeExtractor {
 public:
  /// `lexicon` and `ner` must outlive the extractor.
  OpenIeExtractor(const Lexicon* lexicon, const Ner* ner,
                  OpenIeConfig config = {});

  /// Full document path: sentence split, tokenize, tag, NER, coref,
  /// then per-sentence extraction.
  std::vector<RawExtraction> ExtractFromText(const std::string& text) const;

  /// Single prepared sentence (used by tests and by the SRL wrapper).
  /// `extra_mentions` carries coref-resolved pronouns for the sentence.
  std::vector<RawExtraction> ExtractFromSentence(
      const std::vector<Token>& tokens,
      const std::vector<EntityMention>& mentions,
      const std::vector<EntityMention>& extra_mentions,
      size_t sentence_index) const;

  const OpenIeConfig& config() const { return config_; }

 private:
  const Lexicon* lexicon_;
  const Ner* ner_;
  OpenIeConfig config_;
  PosTagger tagger_;
  CorefResolver coref_;
};

}  // namespace nous

#endif  // NOUS_TEXT_OPENIE_H_
