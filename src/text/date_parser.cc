#include "text/date_parser.h"

#include <cstdlib>

#include "common/string_util.h"

namespace nous {

namespace {

const int kCumulativeDays[12] = {0,   31,  59,  90,  120, 151,
                                 181, 212, 243, 273, 304, 334};

bool IsYearToken(const Token& tok, int* year) {
  if (tok.tag != PosTag::kNumber || tok.text.size() != 4) return false;
  if (!IsDigits(tok.text)) return false;
  *year = std::atoi(tok.text.c_str());
  return *year >= 1500 && *year <= 2200;
}

bool IsDayToken(const Token& tok, int* day) {
  if (tok.tag != PosTag::kNumber) return false;
  if (!IsDigits(tok.text) || tok.text.size() > 2) return false;
  *day = std::atoi(tok.text.c_str());
  return *day >= 1 && *day <= 31;
}

}  // namespace

Timestamp Date::ToDayNumber() const {
  // 365-day years plus quadrennial leap correction; exactness is not
  // required, only strict monotonicity over (year, month, day).
  Timestamp days = static_cast<Timestamp>(year) * 365 + year / 4;
  days += kCumulativeDays[month - 1];
  days += day - 1;
  return days;
}

Date Date::FromDayNumber(Timestamp days) {
  Date d;
  d.year = static_cast<int>((days * 4) / (365 * 4 + 1));
  // Adjust for rounding at year boundaries.
  while (Date{d.year + 1, 1, 1}.ToDayNumber() <= days) ++d.year;
  while (Date{d.year, 1, 1}.ToDayNumber() > days) --d.year;
  Timestamp remainder = days - Date{d.year, 1, 1}.ToDayNumber();
  d.month = 12;
  for (int m = 1; m <= 12; ++m) {
    if (kCumulativeDays[m - 1] > remainder) {
      d.month = m - 1;
      break;
    }
  }
  d.day = static_cast<int>(remainder - kCumulativeDays[d.month - 1]) + 1;
  return d;
}

std::string Date::ToString() const {
  static const char* kNames[12] = {"January", "February", "March",
                                   "April",   "May",      "June",
                                   "July",    "August",   "September",
                                   "October", "November", "December"};
  return StrFormat("%s %d, %d", kNames[month - 1], day, year);
}

std::optional<Date> ParseDateAt(const std::vector<Token>& tokens, size_t pos,
                                const Lexicon& lexicon, size_t* consumed) {
  *consumed = 0;
  if (pos >= tokens.size()) return std::nullopt;
  // Form 1/2: "<Month> [day[,]] <year>" or "<Month> <year>".
  if (auto month = lexicon.MonthNumber(tokens[pos].lower)) {
    size_t i = pos + 1;
    int day = 0;
    bool has_day = i < tokens.size() && IsDayToken(tokens[i], &day);
    if (has_day) {
      ++i;
      if (i < tokens.size() && tokens[i].text == ",") ++i;
    }
    int year = 0;
    if (i < tokens.size() && IsYearToken(tokens[i], &year)) {
      *consumed = i - pos + 1;
      return Date{year, *month, has_day ? day : 1};
    }
    return std::nullopt;
  }
  // Form 3: bare year.
  int year = 0;
  if (IsYearToken(tokens[pos], &year)) {
    *consumed = 1;
    return Date{year, 1, 1};
  }
  return std::nullopt;
}

}  // namespace nous
