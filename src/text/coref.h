#ifndef NOUS_TEXT_COREF_H_
#define NOUS_TEXT_COREF_H_

#include <vector>

#include "text/lexicon.h"
#include "text/ner.h"
#include "text/token.h"

namespace nous {

/// A pronoun (or definite-NP) occurrence resolved to an earlier mention.
struct PronounResolution {
  size_t sentence = 0;
  size_t token = 0;      // index of the pronoun / NP head token
  size_t token_end = 0;  // one past the anaphor span
  EntityMention antecedent;
};

/// Rule-based coreference: personal pronouns resolve to the most recent
/// type-compatible mention ("he/she" -> PERSON, "it/they" -> ORG or
/// PRODUCT), and definite NPs like "the company" / "the firm" / "the
/// startup" resolve to the most recent organization. This mirrors the
/// paper's use of co-reference output as a heuristic input to triple
/// extraction (§3.2).
class CorefResolver {
 public:
  explicit CorefResolver(const Lexicon* lexicon) : lexicon_(lexicon) {}

  /// `sentences[i]` are the tagged tokens of sentence i and
  /// `mentions[i]` its NER mentions. Returns resolutions across the
  /// whole document in reading order.
  std::vector<PronounResolution> Resolve(
      const std::vector<std::vector<Token>>& sentences,
      const std::vector<std::vector<EntityMention>>& mentions) const;

 private:
  const Lexicon* lexicon_;
};

}  // namespace nous

#endif  // NOUS_TEXT_COREF_H_
