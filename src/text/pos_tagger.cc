#include "text/pos_tagger.h"

#include <cctype>

#include "common/string_util.h"

namespace nous {

namespace {

bool IsPunct(const std::string& text) {
  return text.size() == 1 &&
         !std::isalnum(static_cast<unsigned char>(text[0]));
}

bool LooksNumeric(const std::string& text) {
  bool digit_seen = false;
  for (char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != ',' && c != '-' && c != '%' && c != '$') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

void PosTagger::Tag(std::vector<Token>* tokens) const {
  for (size_t i = 0; i < tokens->size(); ++i) {
    Token& tok = (*tokens)[i];
    const std::string& w = tok.lower;
    if (IsPunct(tok.text)) {
      tok.tag = PosTag::kPunct;
    } else if (LooksNumeric(tok.text)) {
      tok.tag = PosTag::kNumber;
    } else if (lexicon_->IsDeterminer(w)) {
      tok.tag = PosTag::kDeterminer;
    } else if (lexicon_->IsPronoun(w)) {
      tok.tag = PosTag::kPronoun;
    } else if (lexicon_->IsModal(w)) {
      tok.tag = PosTag::kModal;
    } else if (lexicon_->IsPreposition(w)) {
      tok.tag = PosTag::kPreposition;
    } else if (lexicon_->IsConjunction(w)) {
      tok.tag = PosTag::kConjunction;
    } else if (lexicon_->IsVerbForm(w)) {
      tok.tag = PosTag::kVerb;
    } else if (lexicon_->IsMonth(w) && IsCapitalized(tok.text)) {
      // Month names behave like proper nouns for NER/date purposes.
      tok.tag = PosTag::kProperNoun;
    } else if (IsCapitalized(tok.text) && !tok.sentence_initial) {
      tok.tag = PosTag::kProperNoun;
    } else if (lexicon_->IsAdjective(w)) {
      tok.tag = PosTag::kAdjective;
    } else if (EndsWith(w, "ly") && w.size() > 3) {
      tok.tag = PosTag::kAdverb;
    } else if (IsCapitalized(tok.text) && tok.sentence_initial &&
               !lexicon_->IsStopword(w)) {
      // Sentence-initial capitalized content word: could be a proper
      // noun; NER decides with the gazetteer. Tag optimistically.
      tok.tag = PosTag::kProperNoun;
    } else {
      tok.tag = PosTag::kNoun;
    }
  }
}

}  // namespace nous
