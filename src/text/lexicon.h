#ifndef NOUS_TEXT_LEXICON_H_
#define NOUS_TEXT_LEXICON_H_

#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"

namespace nous {

/// Closed-class word lists plus a verb inventory used by the POS tagger
/// and the OpenIE extractor. The default lexicon covers the business /
/// technology news register the corpus generator emits; domains can
/// extend it (demo feature 1: "develop custom relation extractors").
class Lexicon {
 public:
  Lexicon() = default;

  /// Lexicon pre-loaded with closed classes and common news verbs.
  static Lexicon Default();

  /// Registers a verb with its inflected forms, all mapping to `base`.
  /// E.g. AddVerb("acquire", {"acquires", "acquired", "acquiring"}).
  void AddVerb(std::string_view base,
               std::initializer_list<std::string_view> inflections);
  void AddVerbForm(std::string_view form, std::string_view base);

  /// Base form for a known verb form (lower-cased), if present.
  std::optional<std::string> VerbBase(std::string_view form) const;
  bool IsVerbForm(std::string_view form) const {
    return VerbBase(form).has_value();
  }

  bool IsDeterminer(std::string_view w) const { return determiners_.count(std::string(w)) > 0; }
  bool IsPreposition(std::string_view w) const { return prepositions_.count(std::string(w)) > 0; }
  bool IsPronoun(std::string_view w) const { return pronouns_.count(std::string(w)) > 0; }
  bool IsConjunction(std::string_view w) const { return conjunctions_.count(std::string(w)) > 0; }
  bool IsModal(std::string_view w) const { return modals_.count(std::string(w)) > 0; }
  bool IsAdjective(std::string_view w) const { return adjectives_.count(std::string(w)) > 0; }
  bool IsStopword(std::string_view w) const { return stopwords_.count(std::string(w)) > 0; }
  bool IsNegation(std::string_view w) const { return negations_.count(std::string(w)) > 0; }
  bool IsMonth(std::string_view w) const { return months_.count(std::string(w)) > 0; }

  /// Month number in [1,12] for a lower-cased month name.
  std::optional<int> MonthNumber(std::string_view w) const;

  void AddAdjective(std::string_view w) { adjectives_.insert(std::string(w)); }
  void AddStopword(std::string_view w) { stopwords_.insert(std::string(w)); }

  /// Extends the lexicon from a tab-separated stream — the "develop
  /// custom relation extractors for a new domain" path (demo feature
  /// 1) without recompiling. Record kinds:
  ///   V <base> <form1,form2,...>   verb with inflections
  ///   A <word>                     adjective
  ///   S <word>                     stopword
  /// Lines starting with '#' and blank lines are ignored; anything
  /// else is InvalidArgument naming the line.
  Status LoadFromStream(std::istream& in);

 private:
  std::unordered_map<std::string, std::string> verb_forms_;  // form -> base
  std::unordered_set<std::string> determiners_;
  std::unordered_set<std::string> prepositions_;
  std::unordered_set<std::string> pronouns_;
  std::unordered_set<std::string> conjunctions_;
  std::unordered_set<std::string> modals_;
  std::unordered_set<std::string> adjectives_;
  std::unordered_set<std::string> stopwords_;
  std::unordered_set<std::string> negations_;
  std::unordered_map<std::string, int> months_;
};

}  // namespace nous

#endif  // NOUS_TEXT_LEXICON_H_
