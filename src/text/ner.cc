#include "text/ner.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/date_parser.h"

namespace nous {

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kPerson: return "PERSON";
    case EntityType::kOrganization: return "ORG";
    case EntityType::kLocation: return "LOC";
    case EntityType::kProduct: return "PRODUCT";
    case EntityType::kDate: return "DATE";
    case EntityType::kMisc: return "MISC";
  }
  return "?";
}

Ner::Ner(const Lexicon* lexicon) : lexicon_(lexicon) {}

void Ner::AddGazetteerEntry(std::string_view name, EntityType type) {
  std::vector<std::string> words;
  for (const std::string& w : SplitWhitespace(name)) {
    words.push_back(ToLower(w));
  }
  if (words.empty()) return;
  by_name_[ToLower(name)] = type;
  auto& bucket = by_first_[words[0]];
  bucket.push_back(GazetteerEntry{std::move(words), type});
  std::stable_sort(bucket.begin(), bucket.end(),
                   [](const GazetteerEntry& a, const GazetteerEntry& b) {
                     return a.tokens.size() > b.tokens.size();
                   });
}

void Ner::AddFirstName(std::string_view name) {
  first_names_[ToLower(name)] = true;
}

Status Ner::LoadGazetteerFromStream(std::istream& in) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(std::string(trimmed), '\t');
    if (fields.size() != 2 || fields[1].empty()) {
      return Status::InvalidArgument(
          StrFormat("gazetteer line %zu: expected '<TYPE>\\t<name>'",
                    line_no));
    }
    const std::string& kind = fields[0];
    if (kind == "FIRSTNAME") {
      AddFirstName(fields[1]);
    } else if (kind == "PERSON") {
      AddGazetteerEntry(fields[1], EntityType::kPerson);
    } else if (kind == "ORG") {
      AddGazetteerEntry(fields[1], EntityType::kOrganization);
    } else if (kind == "LOC") {
      AddGazetteerEntry(fields[1], EntityType::kLocation);
    } else if (kind == "PRODUCT") {
      AddGazetteerEntry(fields[1], EntityType::kProduct);
    } else if (kind == "MISC") {
      AddGazetteerEntry(fields[1], EntityType::kMisc);
    } else {
      return Status::InvalidArgument(
          StrFormat("gazetteer line %zu: unknown type '%s'", line_no,
                    kind.c_str()));
    }
  }
  return Status::Ok();
}

std::optional<EntityType> Ner::GazetteerType(std::string_view name) const {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

EntityType Ner::GuessType(const std::vector<Token>& tokens, size_t begin,
                          size_t end) const {
  const std::string& last = tokens[end - 1].lower;
  static const char* kOrgSuffixes[] = {
      "inc",     "corp",    "co",       "ltd",      "llc",
      "technologies", "technology", "labs", "systems",  "aviation",
      "robotics", "capital", "ventures", "holdings", "group",
      "agency",  "university", "institute", "laboratory", "journal",
      "administration", "bureau", "department", "commission"};
  for (const char* suffix : kOrgSuffixes) {
    if (last == suffix) return EntityType::kOrganization;
  }
  // Honorific before the span implies a person.
  if (begin > 0) {
    const std::string& prev = tokens[begin - 1].lower;
    if (prev == "mr" || prev == "ms" || prev == "mrs" || prev == "dr") {
      return EntityType::kPerson;
    }
  }
  if (end - begin == 2 && first_names_.count(tokens[begin].lower) > 0) {
    return EntityType::kPerson;
  }
  // Model-number shape ("Phantom 3") suggests a product.
  if (end - begin >= 2 && tokens[end - 1].tag == PosTag::kNumber) {
    return EntityType::kProduct;
  }
  return EntityType::kMisc;
}

std::vector<EntityMention> Ner::FindMentions(
    const std::vector<Token>& tokens) const {
  std::vector<EntityMention> mentions;
  size_t i = 0;
  while (i < tokens.size()) {
    // 1) Date expressions first so months are not swallowed as PROPN.
    size_t consumed = 0;
    if (auto date = ParseDateAt(tokens, i, *lexicon_, &consumed)) {
      EntityMention m;
      m.begin = i;
      m.end = i + consumed;
      m.type = EntityType::kDate;
      m.text = date->ToString();
      mentions.push_back(std::move(m));
      i += consumed;
      continue;
    }
    // 2) Longest gazetteer match at this position.
    auto bucket = by_first_.find(tokens[i].lower);
    bool matched = false;
    if (bucket != by_first_.end()) {
      for (const GazetteerEntry& entry : bucket->second) {
        if (i + entry.tokens.size() > tokens.size()) continue;
        bool all = true;
        for (size_t k = 0; k < entry.tokens.size(); ++k) {
          if (tokens[i + k].lower != entry.tokens[k]) {
            all = false;
            break;
          }
        }
        if (all) {
          EntityMention m;
          m.begin = i;
          m.end = i + entry.tokens.size();
          m.type = entry.type;
          std::vector<std::string> parts;
          for (size_t k = m.begin; k < m.end; ++k)
            parts.push_back(tokens[k].text);
          m.text = Join(parts, " ");
          mentions.push_back(std::move(m));
          i += entry.tokens.size();
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    // 3) Shape: maximal run of proper nouns (allowing interior "of"/"&"
    // inside an already-started run followed by another proper noun).
    if (tokens[i].tag == PosTag::kProperNoun &&
        !(tokens[i].sentence_initial &&
          lexicon_->IsStopword(tokens[i].lower))) {
      size_t j = i + 1;
      while (j < tokens.size()) {
        if (tokens[j].tag == PosTag::kProperNoun ||
            (tokens[j].tag == PosTag::kNumber && j > i &&
             tokens[j - 1].tag == PosTag::kProperNoun)) {
          ++j;
        } else if ((tokens[j].lower == "of" || tokens[j].text == "&") &&
                   j + 1 < tokens.size() &&
                   tokens[j + 1].tag == PosTag::kProperNoun) {
          j += 2;
        } else {
          break;
        }
      }
      EntityMention m;
      m.begin = i;
      m.end = j;
      std::vector<std::string> parts;
      for (size_t k = i; k < j; ++k) parts.push_back(tokens[k].text);
      m.text = Join(parts, " ");
      if (auto known = GazetteerType(m.text)) {
        m.type = *known;
      } else {
        m.type = GuessType(tokens, i, j);
        // A lone sentence-initial capitalized word with no gazetteer
        // or shape evidence is most likely an ordinary noun
        // ("Analysts expect ..."), not an entity.
        if (tokens[i].sentence_initial && j == i + 1 &&
            m.type == EntityType::kMisc) {
          i = j;
          continue;
        }
      }
      mentions.push_back(std::move(m));
      i = j;
      continue;
    }
    ++i;
  }
  return mentions;
}

}  // namespace nous
