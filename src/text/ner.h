#ifndef NOUS_TEXT_NER_H_
#define NOUS_TEXT_NER_H_

#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "text/lexicon.h"
#include "text/token.h"

namespace nous {

enum class EntityType {
  kPerson,
  kOrganization,
  kLocation,
  kProduct,
  kDate,
  kMisc,
};

const char* EntityTypeName(EntityType type);

/// A contiguous entity mention over token span [begin, end).
struct EntityMention {
  std::string text;
  size_t begin = 0;
  size_t end = 0;
  EntityType type = EntityType::kMisc;
  /// True when the mention is a pronoun resolved by coreference.
  bool from_coref = false;
};

/// Gazetteer + shape named-entity recognizer. Known names (seeded from
/// the curated KB's entity catalog, mirroring how NOUS leans on YAGO)
/// match with their registered type; unknown capitalized runs fall back
/// to suffix/shape heuristics.
class Ner {
 public:
  /// `lexicon` must outlive the recognizer.
  explicit Ner(const Lexicon* lexicon);

  /// Registers a (possibly multi-word) name with its type. Matching is
  /// case-insensitive on whole tokens.
  void AddGazetteerEntry(std::string_view name, EntityType type);

  /// Registers a capitalized token as a known person first name, which
  /// biases unknown two-token mentions toward kPerson.
  void AddFirstName(std::string_view name);

  /// Type registered for an exact (lower-cased) name, if any.
  std::optional<EntityType> GazetteerType(std::string_view name) const;

  /// Extends the gazetteer from a tab-separated stream:
  ///   <TYPE>\t<name>        TYPE in PERSON|ORG|LOC|PRODUCT|MISC
  ///   FIRSTNAME\t<name>     person first-name hint
  /// '#' comments and blank lines ignored.
  Status LoadGazetteerFromStream(std::istream& in);

  /// Finds non-overlapping mentions left-to-right, preferring the
  /// longest gazetteer match, then capitalized-run shape matches. Date
  /// expressions are emitted as kDate mentions.
  std::vector<EntityMention> FindMentions(
      const std::vector<Token>& tokens) const;

  size_t gazetteer_size() const { return by_name_.size(); }

 private:
  struct GazetteerEntry {
    std::vector<std::string> tokens;  // lower-cased
    EntityType type;
  };

  EntityType GuessType(const std::vector<Token>& tokens, size_t begin,
                       size_t end) const;

  const Lexicon* lexicon_;
  std::unordered_map<std::string, EntityType> by_name_;
  /// First lower-cased token -> candidate entries (longest first).
  std::unordered_map<std::string, std::vector<GazetteerEntry>> by_first_;
  std::unordered_map<std::string, bool> first_names_;
};

}  // namespace nous

#endif  // NOUS_TEXT_NER_H_
