#ifndef NOUS_TEXT_TOKEN_H_
#define NOUS_TEXT_TOKEN_H_

#include <string>

namespace nous {

/// Coarse part-of-speech classes — the granularity the extraction
/// heuristics need, not a full Penn tagset.
enum class PosTag {
  kNoun,
  kProperNoun,
  kPronoun,
  kVerb,
  kModal,
  kAdjective,
  kAdverb,
  kDeterminer,
  kPreposition,
  kConjunction,
  kNumber,
  kPunct,
  kOther,
};

/// Returns a short stable name ("NOUN", "PROPN", ...), for debugging.
const char* PosTagName(PosTag tag);

struct Token {
  std::string text;
  /// Lower-cased copy of `text`, filled by the tokenizer.
  std::string lower;
  PosTag tag = PosTag::kOther;
  /// True for the first token of a sentence (capitalization there is
  /// not evidence of a proper noun).
  bool sentence_initial = false;
};

inline const char* PosTagName(PosTag tag) {
  switch (tag) {
    case PosTag::kNoun: return "NOUN";
    case PosTag::kProperNoun: return "PROPN";
    case PosTag::kPronoun: return "PRON";
    case PosTag::kVerb: return "VERB";
    case PosTag::kModal: return "MODAL";
    case PosTag::kAdjective: return "ADJ";
    case PosTag::kAdverb: return "ADV";
    case PosTag::kDeterminer: return "DET";
    case PosTag::kPreposition: return "PREP";
    case PosTag::kConjunction: return "CONJ";
    case PosTag::kNumber: return "NUM";
    case PosTag::kPunct: return "PUNCT";
    case PosTag::kOther: return "X";
  }
  return "?";
}

}  // namespace nous

#endif  // NOUS_TEXT_TOKEN_H_
