#ifndef NOUS_TEXT_TOKENIZER_H_
#define NOUS_TEXT_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "text/token.h"

namespace nous {

/// Rule-based word tokenizer. Splits punctuation into separate tokens,
/// detaches possessive "'s", and keeps internal hyphens and periods of
/// abbreviations ("U.S.") attached. Marks the first token
/// sentence-initial; POS tags are left for the tagger.
std::vector<Token> Tokenize(std::string_view sentence);

}  // namespace nous

#endif  // NOUS_TEXT_TOKENIZER_H_
