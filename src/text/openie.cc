#include "text/openie.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace nous {

namespace {

/// A verb-anchored relation group within a sentence.
struct VerbGroup {
  size_t begin = 0;     // first token of the group (incl. aux/adverbs)
  size_t end = 0;       // one past the main verb
  std::string base;     // lexicon base form of the main verb
  bool passive = false; // "was acquired by" style
  bool negated = false;
  bool copula = false;  // bare "is/are/was" with no participle
};

/// Candidate argument for tuple assembly.
struct ArgSpan {
  size_t begin = 0;
  size_t end = 0;
  std::string text;
  bool is_entity = true;
  bool from_coref = false;
  EntityType type = EntityType::kMisc;
};

bool IsPastParticipleLike(const Lexicon& lexicon, const Token& tok) {
  auto base = lexicon.VerbBase(tok.lower);
  if (!base.has_value()) return false;
  // Treat -ed/-en and known irregulars as participles; adequate for the
  // template register the corpus emits.
  return EndsWith(tok.lower, "ed") || tok.lower == "sold" ||
         tok.lower == "made" || tok.lower == "bought" ||
         tok.lower == "led" || tok.lower == "found" ||
         tok.lower == "been";
}

std::vector<VerbGroup> FindVerbGroups(const Lexicon& lexicon,
                                      const std::vector<Token>& tokens) {
  std::vector<VerbGroup> groups;
  size_t i = 0;
  while (i < tokens.size()) {
    if (tokens[i].tag != PosTag::kVerb && tokens[i].tag != PosTag::kModal) {
      ++i;
      continue;
    }
    VerbGroup g;
    g.begin = i;
    size_t j = i;
    bool saw_aux_be = false;
    bool saw_aux_have = false;
    std::string main_base;
    size_t main_end = i;
    while (j < tokens.size()) {
      const Token& tok = tokens[j];
      if (tok.tag == PosTag::kModal) {
        ++j;
        continue;
      }
      if (tok.tag == PosTag::kAdverb) {
        ++j;
        continue;
      }
      if (lexicon.IsNegation(tok.lower)) {
        g.negated = true;
        ++j;
        continue;
      }
      if (tok.tag == PosTag::kVerb) {
        auto base = lexicon.VerbBase(tok.lower);
        std::string b = base.value_or(tok.lower);
        if (b == "be") {
          saw_aux_be = true;
          main_base = b;
          main_end = j + 1;
          ++j;
          continue;
        }
        if (b == "have") {
          saw_aux_have = true;
          main_base = b;
          main_end = j + 1;
          ++j;
          continue;
        }
        main_base = b;
        main_end = j + 1;
        if (saw_aux_be && IsPastParticipleLike(lexicon, tok)) {
          g.passive = true;
        }
        ++j;
        // Stop after the first content verb.
        break;
      }
      break;
    }
    if (main_base.empty()) {
      i = j + 1;
      continue;
    }
    g.end = main_end;
    g.base = main_base;
    g.copula = (main_base == "be" && !g.passive);
    // Negation may precede the verb group ("never acquired").
    for (size_t back = 1; back <= 2 && back <= g.begin; ++back) {
      if (lexicon.IsNegation(tokens[g.begin - back].lower)) {
        g.negated = true;
      }
    }
    // Auxiliary "have" followed by nothing verbal is possession-like;
    // keep base "have".
    (void)saw_aux_have;
    groups.push_back(g);
    i = std::max(j, g.end);
  }
  return groups;
}

/// Noun-phrase fallback chunks: [DET] ADJ* NOUN+ runs not overlapping
/// any entity mention. Text drops the leading determiner.
std::vector<ArgSpan> FindNounChunks(const std::vector<Token>& tokens,
                                    const std::vector<ArgSpan>& taken) {
  auto overlaps_taken = [&taken](size_t begin, size_t end) {
    for (const ArgSpan& a : taken) {
      if (begin < a.end && a.begin < end) return true;
    }
    return false;
  };
  std::vector<ArgSpan> chunks;
  size_t i = 0;
  while (i < tokens.size()) {
    size_t start = i;
    if (tokens[i].tag == PosTag::kDeterminer) ++i;
    size_t content_start = i;
    while (i < tokens.size() && tokens[i].tag == PosTag::kAdjective) ++i;
    size_t noun_start = i;
    while (i < tokens.size() && (tokens[i].tag == PosTag::kNoun ||
                                 tokens[i].tag == PosTag::kProperNoun)) {
      ++i;
    }
    if (i > noun_start && !overlaps_taken(start, i)) {
      ArgSpan a;
      a.begin = start;
      a.end = i;
      a.is_entity = false;
      std::vector<std::string> parts;
      for (size_t k = content_start; k < i; ++k)
        parts.push_back(tokens[k].lower);
      a.text = Join(parts, " ");
      if (!a.text.empty()) chunks.push_back(std::move(a));
    }
    if (i == start) ++i;
  }
  return chunks;
}

}  // namespace

OpenIeExtractor::OpenIeExtractor(const Lexicon* lexicon, const Ner* ner,
                                 OpenIeConfig config)
    : lexicon_(lexicon), ner_(ner), config_(config), tagger_(lexicon),
      coref_(lexicon) {}

std::vector<RawExtraction> OpenIeExtractor::ExtractFromText(
    const std::string& text) const {
  std::vector<std::vector<Token>> sentences;
  std::vector<std::vector<EntityMention>> mentions;
  for (const std::string& sent : SplitSentences(text)) {
    std::vector<Token> tokens = Tokenize(sent);
    tagger_.Tag(&tokens);
    mentions.push_back(ner_->FindMentions(tokens));
    sentences.push_back(std::move(tokens));
  }
  std::vector<std::vector<EntityMention>> extra(sentences.size());
  if (config_.use_coref) {
    for (const PronounResolution& r : coref_.Resolve(sentences, mentions)) {
      EntityMention m = r.antecedent;
      m.begin = r.token;
      m.end = r.token_end;
      m.from_coref = true;
      extra[r.sentence].push_back(std::move(m));
    }
  }
  std::vector<RawExtraction> all;
  for (size_t s = 0; s < sentences.size(); ++s) {
    std::vector<RawExtraction> found =
        ExtractFromSentence(sentences[s], mentions[s], extra[s], s);
    all.insert(all.end(), found.begin(), found.end());
  }
  return all;
}

std::vector<RawExtraction> OpenIeExtractor::ExtractFromSentence(
    const std::vector<Token>& tokens,
    const std::vector<EntityMention>& mentions,
    const std::vector<EntityMention>& extra_mentions,
    size_t sentence_index) const {
  std::vector<RawExtraction> results;
  // Assemble candidate arguments.
  std::vector<ArgSpan> args;
  for (const EntityMention& m : mentions) {
    ArgSpan a;
    a.begin = m.begin;
    a.end = m.end;
    a.text = m.text;
    a.is_entity = true;
    a.from_coref = false;
    a.type = m.type;
    args.push_back(std::move(a));
  }
  for (const EntityMention& m : extra_mentions) {
    ArgSpan a;
    a.begin = m.begin;
    a.end = m.end;
    a.text = m.text;
    a.is_entity = true;
    a.from_coref = true;
    a.type = m.type;
    args.push_back(std::move(a));
  }
  std::vector<ArgSpan> chunks = FindNounChunks(tokens, args);
  args.insert(args.end(), chunks.begin(), chunks.end());
  std::sort(args.begin(), args.end(),
            [](const ArgSpan& a, const ArgSpan& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end > b.end;
            });

  auto pick_subject = [&](const VerbGroup& g) -> const ArgSpan* {
    // Closest argument ending before the verb group, preferring
    // recognized entities over noun-phrase chunks: in appositions
    // ("DJI, a drone maker, acquired X") the NP sits closer to the
    // verb but the entity is the grammatical subject.
    const ArgSpan* best_entity = nullptr;
    const ArgSpan* best_chunk = nullptr;
    for (const ArgSpan& a : args) {
      if (a.end > g.begin) break;
      if (a.type == EntityType::kDate) continue;
      if (g.begin - a.end > config_.max_arg_gap) continue;
      if (a.is_entity) {
        if (best_entity == nullptr || a.end > best_entity->end) {
          best_entity = &a;
        }
      } else if (best_chunk == nullptr || a.end > best_chunk->end) {
        best_chunk = &a;
      }
    }
    return best_entity != nullptr ? best_entity : best_chunk;
  };
  auto pick_object = [&](size_t from) -> const ArgSpan* {
    for (const ArgSpan& a : args) {
      if (a.begin < from) continue;
      if (a.type == EntityType::kDate) continue;
      if (a.begin - from > config_.max_arg_gap) return nullptr;
      return &a;
    }
    return nullptr;
  };

  for (const VerbGroup& g : FindVerbGroups(*lexicon_, tokens)) {
    if (g.copula && !config_.extract_copula) continue;
    if (g.negated && config_.drop_negated) continue;
    const ArgSpan* subject = pick_subject(g);
    if (subject == nullptr) continue;

    // Preposition immediately after the verb group folds into the
    // relation ("partnered with", "invested in").
    size_t obj_from = g.end;
    std::string prep;
    if (g.end < tokens.size() &&
        tokens[g.end].tag == PosTag::kPreposition) {
      prep = tokens[g.end].lower;
      obj_from = g.end + 1;
    }
    const ArgSpan* object = pick_object(obj_from);
    if (object == nullptr) continue;
    if (object->begin < g.end) continue;

    const ArgSpan* subj = subject;
    const ArgSpan* obj = object;
    std::string relation = g.base;
    if (g.passive && prep == "by") {
      // "X was acquired by Y" => (Y, acquire, X).
      std::swap(subj, obj);
    } else if (!prep.empty()) {
      relation += "_" + prep;
    }

    if (config_.require_entity_subject && !subj->is_entity) continue;
    if (config_.require_entity_object && !obj->is_entity) continue;
    if (!subj->is_entity && !obj->is_entity) continue;
    if (subj->text == obj->text) continue;

    RawExtraction ex;
    ex.triple.subject = subj->text;
    ex.triple.predicate = relation;
    ex.triple.object = obj->text;
    ex.relation = relation;
    ex.sentence_index = sentence_index;
    ex.subject_from_coref = subj->from_coref;
    ex.object_from_coref = obj->from_coref;
    ex.subject_is_entity = subj->is_entity;
    ex.object_is_entity = obj->is_entity;
    ex.subject_type = subj->type;
    ex.object_type = obj->type;
    ex.negated = g.negated;
    double conf = config_.base_confidence;
    size_t subj_gap =
        subject->end <= g.begin ? g.begin - subject->end : 0;
    size_t obj_gap = object->begin >= obj_from
                         ? object->begin - obj_from
                         : 0;
    conf -= 0.04 * static_cast<double>(subj_gap);
    conf -= 0.04 * static_cast<double>(obj_gap);
    if (ex.subject_from_coref || ex.object_from_coref) conf -= 0.15;
    if (!subj->is_entity || !obj->is_entity) conf *= 0.6;
    if (g.negated) conf *= 0.2;
    ex.confidence = std::clamp(conf, 0.01, 1.0);
    if (ex.confidence < config_.min_confidence) continue;
    results.push_back(ex);

    // N-ary expansion: trailing "PREP arg" after the object becomes a
    // secondary tuple (subject, verb_prep, arg).
    if (config_.allow_nary) {
      size_t after = object->end;
      if (after < tokens.size() &&
          tokens[after].tag == PosTag::kPreposition) {
        const std::string& p2 = tokens[after].lower;
        const ArgSpan* arg2 = pick_object(after + 1);
        if (arg2 != nullptr && arg2->type != EntityType::kDate &&
            arg2->text != subj->text) {
          RawExtraction ex2 = results.back();
          ex2.triple.predicate = g.base + "_" + p2;
          ex2.relation = ex2.triple.predicate;
          ex2.triple.object = arg2->text;
          ex2.object_is_entity = arg2->is_entity;
          ex2.object_from_coref = arg2->from_coref;
          ex2.object_type = arg2->type;
          ex2.confidence = std::clamp(ex.confidence - 0.1, 0.01, 1.0);
          if (ex2.confidence >= config_.min_confidence) {
            results.push_back(std::move(ex2));
          }
        }
      }
    }
  }
  return results;
}

}  // namespace nous
