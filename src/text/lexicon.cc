#include "text/lexicon.h"

#include "common/string_util.h"

namespace nous {

void Lexicon::AddVerb(std::string_view base,
                      std::initializer_list<std::string_view> inflections) {
  std::string b = ToLower(base);
  verb_forms_[b] = b;
  for (std::string_view form : inflections) {
    verb_forms_[ToLower(form)] = b;
  }
}

void Lexicon::AddVerbForm(std::string_view form, std::string_view base) {
  verb_forms_[ToLower(form)] = ToLower(base);
}

std::optional<std::string> Lexicon::VerbBase(std::string_view form) const {
  auto it = verb_forms_.find(std::string(form));
  if (it == verb_forms_.end()) return std::nullopt;
  return it->second;
}

std::optional<int> Lexicon::MonthNumber(std::string_view w) const {
  auto it = months_.find(std::string(w));
  if (it == months_.end()) return std::nullopt;
  return it->second;
}

Status Lexicon::LoadFromStream(std::istream& in) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(std::string(trimmed), '\t');
    if (fields[0] == "V" && fields.size() == 3) {
      AddVerbForm(fields[1], fields[1]);
      for (const std::string& form : Split(fields[2], ',')) {
        if (!form.empty()) AddVerbForm(form, fields[1]);
      }
    } else if (fields[0] == "A" && fields.size() == 2) {
      AddAdjective(ToLower(fields[1]));
    } else if (fields[0] == "S" && fields.size() == 2) {
      AddStopword(ToLower(fields[1]));
    } else {
      return Status::InvalidArgument(
          StrFormat("lexicon line %zu: expected 'V base forms', "
                    "'A word' or 'S word'",
                    line_no));
    }
  }
  return Status::Ok();
}

Lexicon Lexicon::Default() {
  Lexicon lex;
  for (const char* w : {"a", "an", "the", "this", "that", "these", "those",
                        "its", "their", "his", "her", "our"}) {
    lex.determiners_.insert(w);
  }
  for (const char* w :
       {"in", "on", "at", "of", "for", "with", "by", "from", "to", "into",
        "over", "under", "about", "after", "before", "during", "near",
        "through", "against", "between", "around"}) {
    lex.prepositions_.insert(w);
  }
  for (const char* w : {"he", "she", "it", "they", "we", "i", "you", "him",
                        "her", "them", "who", "which", "itself"}) {
    lex.pronouns_.insert(w);
  }
  for (const char* w : {"and", "or", "but", "nor", "so", "yet", "while",
                        "because", "although", "however"}) {
    lex.conjunctions_.insert(w);
  }
  for (const char* w : {"will", "would", "can", "could", "may", "might",
                        "shall", "should", "must"}) {
    lex.modals_.insert(w);
  }
  for (const char* w :
       {"new", "novel", "large", "small", "major", "minor", "commercial",
        "civilian", "military", "strong", "weak", "leading", "emerging",
        "unmanned", "aerial", "autonomous", "strategic", "key", "global",
        "regional", "annual", "financial", "early", "late", "rapid"}) {
    lex.adjectives_.insert(w);
  }
  for (const char* w :
       {"a", "an", "the", "of", "and", "or", "to", "in", "on", "is", "are",
        "was", "were", "be", "been", "has", "have", "had", "its", "it",
        "that", "this", "as", "at", "by", "for", "with", "from", "said"}) {
    lex.stopwords_.insert(w);
  }
  for (const char* w : {"not", "never", "no", "n't", "denied", "denies"}) {
    lex.negations_.insert(w);
  }
  const char* kMonths[] = {"january", "february", "march",     "april",
                           "may",     "june",     "july",      "august",
                           "september", "october", "november", "december"};
  for (int m = 0; m < 12; ++m) lex.months_[kMonths[m]] = m + 1;

  // Copulas and auxiliaries (verb forms mapping to "be"/"have").
  lex.AddVerb("be", {"is", "are", "was", "were", "been", "being"});
  lex.AddVerb("have", {"has", "had", "having"});
  // Business / technology news verb inventory.
  lex.AddVerb("acquire", {"acquires", "acquired", "acquiring"});
  lex.AddVerb("buy", {"buys", "bought", "buying"});
  lex.AddVerb("announce", {"announces", "announced", "announcing"});
  lex.AddVerb("launch", {"launches", "launched", "launching"});
  lex.AddVerb("release", {"releases", "released", "releasing"});
  lex.AddVerb("develop", {"develops", "developed", "developing"});
  lex.AddVerb("manufacture", {"manufactures", "manufactured",
                              "manufacturing"});
  lex.AddVerb("make", {"makes", "made", "making"});
  lex.AddVerb("produce", {"produces", "produced", "producing"});
  lex.AddVerb("use", {"uses", "used", "using"});
  lex.AddVerb("employ", {"employs", "employed", "employing"});
  lex.AddVerb("deploy", {"deploys", "deployed", "deploying"});
  lex.AddVerb("hire", {"hires", "hired", "hiring"});
  lex.AddVerb("appoint", {"appoints", "appointed", "appointing"});
  lex.AddVerb("name", {"names", "named", "naming"});
  lex.AddVerb("lead", {"leads", "led", "leading"});
  lex.AddVerb("found", {"founds", "founded", "founding"});
  lex.AddVerb("start", {"starts", "started", "starting"});
  lex.AddVerb("invest", {"invests", "invested", "investing"});
  lex.AddVerb("fund", {"funds", "funded", "funding"});
  lex.AddVerb("partner", {"partners", "partnered", "partnering"});
  lex.AddVerb("collaborate", {"collaborates", "collaborated",
                              "collaborating"});
  lex.AddVerb("compete", {"competes", "competed", "competing"});
  lex.AddVerb("sell", {"sells", "sold", "selling"});
  lex.AddVerb("supply", {"supplies", "supplied", "supplying"});
  lex.AddVerb("operate", {"operates", "operated", "operating"});
  lex.AddVerb("test", {"tests", "tested", "testing"});
  lex.AddVerb("unveil", {"unveils", "unveiled", "unveiling"});
  lex.AddVerb("introduce", {"introduces", "introduced", "introducing"});
  lex.AddVerb("report", {"reports", "reported", "reporting"});
  lex.AddVerb("expect", {"expects", "expected", "expecting"});
  lex.AddVerb("plan", {"plans", "planned", "planning"});
  lex.AddVerb("join", {"joins", "joined", "joining"});
  lex.AddVerb("work", {"works", "worked", "working"});
  lex.AddVerb("base", {"based"});
  lex.AddVerb("headquarter", {"headquartered"});
  lex.AddVerb("locate", {"located"});
  lex.AddVerb("regulate", {"regulates", "regulated", "regulating"});
  lex.AddVerb("approve", {"approves", "approved", "approving"});
  lex.AddVerb("ban", {"bans", "banned", "banning"});
  lex.AddVerb("investigate", {"investigates", "investigated",
                              "investigating"});
  lex.AddVerb("publish", {"publishes", "published", "publishing"});
  lex.AddVerb("cite", {"cites", "cited", "citing"});
  lex.AddVerb("author", {"authors", "authored", "authoring"});
  lex.AddVerb("access", {"accesses", "accessed", "accessing"});
  lex.AddVerb("download", {"downloads", "downloaded", "downloading"});
  lex.AddVerb("email", {"emails", "emailed", "emailing"});
  lex.AddVerb("log", {"logs", "logged", "logging"});
  lex.AddVerb("praise", {"praises", "praised", "praising"});
  lex.AddVerb("back", {"backs", "backed", "backing"});
  return lex;
}

}  // namespace nous
