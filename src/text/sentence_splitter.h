#ifndef NOUS_TEXT_SENTENCE_SPLITTER_H_
#define NOUS_TEXT_SENTENCE_SPLITTER_H_

#include <string>
#include <string_view>
#include <vector>

namespace nous {

/// Splits running text into sentences on '.', '!' and '?' boundaries,
/// skipping common abbreviations (Mr., Inc., U.S., ...) and decimal
/// numbers. Whitespace-trimmed; empty sentences are dropped.
std::vector<std::string> SplitSentences(std::string_view text);

}  // namespace nous

#endif  // NOUS_TEXT_SENTENCE_SPLITTER_H_
