#ifndef NOUS_TEXT_DATE_PARSER_H_
#define NOUS_TEXT_DATE_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/types.h"
#include "text/lexicon.h"
#include "text/token.h"

namespace nous {

/// A calendar date with day-granularity arithmetic. Timestamps across
/// the corpus and the KG are DayNumber values (days since year 0, using
/// a simplified 365.25-day calendar adequate for ordering and windows).
struct Date {
  int year = 0;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  /// Monotone day index used as the KG Timestamp.
  Timestamp ToDayNumber() const;
  static Date FromDayNumber(Timestamp days);

  /// "March 5, 2014"-style rendering.
  std::string ToString() const;

  friend bool operator==(const Date& a, const Date& b) {
    return a.year == b.year && a.month == b.month && a.day == b.day;
  }
  friend bool operator<(const Date& a, const Date& b) {
    return a.ToDayNumber() < b.ToDayNumber();
  }
};

/// Attempts to read a date starting at token `pos`. Recognized forms:
/// "March 5, 2014", "March 2014", "2014". On success, advances
/// `*consumed` to the number of tokens used.
std::optional<Date> ParseDateAt(const std::vector<Token>& tokens, size_t pos,
                                const Lexicon& lexicon, size_t* consumed);

}  // namespace nous

#endif  // NOUS_TEXT_DATE_PARSER_H_
