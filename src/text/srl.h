#ifndef NOUS_TEXT_SRL_H_
#define NOUS_TEXT_SRL_H_

#include <optional>
#include <string>
#include <vector>

#include "text/date_parser.h"
#include "text/openie.h"

namespace nous {

/// An extraction with its temporal argument resolved — the dated
/// triples of the paper's Figure 3 ("Example triples extracted ...
/// using Semantic Role Labeling. The first column shows dates").
struct SrlFrame {
  RawExtraction extraction;
  /// In-sentence date if one was found, else the document date.
  Date date;
  bool date_from_sentence = false;
};

/// SRL-lite: runs OpenIE and attaches an ARG-TMP by scanning the
/// sentence for a date expression; falls back to the article's
/// publication date so every fact is anchored on the stream timeline.
class SrlExtractor {
 public:
  SrlExtractor(const Lexicon* lexicon, const Ner* ner,
               OpenIeConfig config = {});

  /// `num_sentences`, when non-null, receives the sentence count of
  /// `text` (already computed for per-sentence dating; exposed for
  /// pipeline metrics).
  std::vector<SrlFrame> Extract(const std::string& text,
                                const Date& document_date,
                                size_t* num_sentences = nullptr) const;

 private:
  const Lexicon* lexicon_;
  const Ner* ner_;
  OpenIeExtractor openie_;
};

}  // namespace nous

#endif  // NOUS_TEXT_SRL_H_
