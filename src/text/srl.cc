#include "text/srl.h"

#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace nous {

SrlExtractor::SrlExtractor(const Lexicon* lexicon, const Ner* ner,
                           OpenIeConfig config)
    : lexicon_(lexicon), ner_(ner), openie_(lexicon, ner, config) {}

std::vector<SrlFrame> SrlExtractor::Extract(const std::string& text,
                                            const Date& document_date,
                                            size_t* num_sentences) const {
  // Per-sentence dates, found once; extractions then join by index.
  std::vector<std::optional<Date>> sentence_dates;
  PosTagger tagger(lexicon_);
  for (const std::string& sent : SplitSentences(text)) {
    std::vector<Token> tokens = Tokenize(sent);
    tagger.Tag(&tokens);
    std::optional<Date> found;
    for (size_t i = 0; i < tokens.size(); ++i) {
      size_t consumed = 0;
      if (auto date = ParseDateAt(tokens, i, *lexicon_, &consumed)) {
        found = date;
        break;
      }
    }
    sentence_dates.push_back(found);
  }
  if (num_sentences != nullptr) *num_sentences = sentence_dates.size();
  std::vector<SrlFrame> frames;
  for (RawExtraction& ex : openie_.ExtractFromText(text)) {
    SrlFrame frame;
    if (ex.sentence_index < sentence_dates.size() &&
        sentence_dates[ex.sentence_index].has_value()) {
      frame.date = *sentence_dates[ex.sentence_index];
      frame.date_from_sentence = true;
    } else {
      frame.date = document_date;
      frame.date_from_sentence = false;
    }
    frame.extraction = std::move(ex);
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace nous
