#ifndef NOUS_OBS_TRACE_BUFFER_H_
#define NOUS_OBS_TRACE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace nous {

/// One attribute attached to a completed span. Keys are string
/// literals (owned by the call site); string values are copied.
struct SpanAttr {
  enum class Kind { kInt, kDouble, kString };

  const char* key = "";
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
};

/// A completed span as recorded into the TraceBuffer. `name` is the
/// stage literal passed to TraceSpan and must outlive the buffer
/// (string literals do).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  /// 0 for root spans.
  uint64_t parent_span_id = 0;
  const char* name = "";
  /// Dense per-thread index (TraceThreadIndex) of the recording thread.
  uint32_t thread_index = 0;
  /// Microseconds since the process trace epoch (TraceNowMicros).
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  std::vector<SpanAttr> attrs;
};

/// Bounded, lock-striped ring buffer of recently completed spans.
/// Writers append to the stripe picked by their thread index, so the
/// hot path (one append per span end) takes an uncontended mutex in
/// the steady state. Readers (the /api/trace exporter and the
/// slow-query log) merge all stripes; they run rarely and may observe
/// stripes at slightly different instants, which is fine for a
/// diagnostics buffer.
///
/// Capacity is fixed at construction; once full, each stripe
/// overwrites its oldest record.
class TraceBuffer {
 public:
  static constexpr size_t kStripes = 8;

  /// `capacity` is the total record budget, split evenly across
  /// stripes (rounded up, minimum 1 per stripe).
  explicit TraceBuffer(size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Process-wide buffer that TraceSpan records into.
  static TraceBuffer& Global();

  void Append(SpanRecord record);

  /// Returns buffered spans ordered by start time. When `limit` is
  /// non-zero, only the `limit` most recently *started* spans are
  /// returned.
  std::vector<SpanRecord> Snapshot(size_t limit = 0) const;

  /// Returns all buffered spans belonging to `trace_id`, ordered by
  /// start time. Used by the slow-query log to print a per-stage
  /// breakdown of one request.
  std::vector<SpanRecord> CollectTrace(uint64_t trace_id) const;

  /// Total records this buffer can hold (sum of stripe capacities).
  size_t capacity() const { return capacity_; }

  /// Total Append calls over the buffer's lifetime (including
  /// overwritten records); lets tests assert wraparound.
  uint64_t total_appended() const;

  /// Drops all buffered records (test isolation).
  void Clear();

 private:
  static constexpr size_t kDefaultCapacity = 8192;

  struct alignas(64) Stripe {
    mutable AnnotatedMutex mutex;
    /// Ring storage: `size() < stripe capacity` while filling, then a
    /// fixed-size ring with `next` as the overwrite cursor.
    std::vector<SpanRecord> ring GUARDED_BY(mutex);
    size_t next GUARDED_BY(mutex) = 0;
    uint64_t appended GUARDED_BY(mutex) = 0;
  };

  size_t capacity_ = 0;
  size_t stripe_capacity_ = 0;
  Stripe stripes_[kStripes];
};

}  // namespace nous

#endif  // NOUS_OBS_TRACE_BUFFER_H_
