#include "obs/resource_sampler.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace nous {
namespace {

// Parses "VmRSS:    1234 kB" style lines. Returns 0 when absent.
uint64_t ParseStatusKb(const char* line) {
  const char* p = line;
  while (*p != '\0' && (*p < '0' || *p > '9')) ++p;
  uint64_t kb = 0;
  while (*p >= '0' && *p <= '9') {
    kb = kb * 10 + static_cast<uint64_t>(*p - '0');
    ++p;
  }
  return kb;
}

}  // namespace

bool ReadProcMemoryStats(ProcMemoryStats* out) {
  *out = ProcMemoryStats{};
  bool found = false;
  if (std::FILE* f = std::fopen("/proc/self/status", "re")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "VmRSS:", 6) == 0) {
        out->rss_bytes = ParseStatusKb(line) * 1024;
        found = true;
      } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
        out->peak_rss_bytes = ParseStatusKb(line) * 1024;
        found = true;
      }
    }
    std::fclose(f);
  }
  if (found) return true;
  // Portable fallback: rusage only exposes the peak (ru_maxrss is in
  // kilobytes on Linux), so current mirrors it.
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return false;
  out->peak_rss_bytes = static_cast<uint64_t>(usage.ru_maxrss) * 1024;
  out->rss_bytes = out->peak_rss_bytes;
  return true;
}

uint64_t PeakRssBytes() {
  ProcMemoryStats stats;
  if (!ReadProcMemoryStats(&stats)) return 0;
  return stats.peak_rss_bytes;
}

ResourceSampler::ResourceSampler(std::chrono::milliseconds period)
    : period_(period) {}

ResourceSampler::~ResourceSampler() { Stop(); }

void ResourceSampler::AddProbe(std::function<void()> probe) {
  MutexLock lock(mutex_);
  probes_.push_back(std::move(probe));
}

void ResourceSampler::Start() {
  {
    MutexLock lock(mutex_);
    if (thread_.joinable()) return;
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void ResourceSampler::Stop() {
  {
    MutexLock lock(mutex_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  wake_.notify_all();
  thread_.join();
  thread_ = std::thread();
}

void ResourceSampler::SampleOnce() {
  static Gauge* rss = MetricsRegistry::Global().GetGauge(
      "nous_process_rss_bytes", "Resident set size of the process");
  static Gauge* peak_rss = MetricsRegistry::Global().GetGauge(
      "nous_process_peak_rss_bytes", "Peak resident set size of the process");
  ProcMemoryStats stats;
  if (ReadProcMemoryStats(&stats)) {
    rss->Set(static_cast<double>(stats.rss_bytes));
    peak_rss->Set(static_cast<double>(stats.peak_rss_bytes));
  }
  std::vector<std::function<void()>> probes;
  {
    MutexLock lock(mutex_);
    probes = probes_;
  }
  for (const auto& probe : probes) probe();
}

void ResourceSampler::Loop() {
  while (true) {
    SampleOnce();
    UniqueLock lock(mutex_);
    if (stop_) return;
    wake_.wait_for(lock.std_lock(), period_);
    if (stop_) return;
  }
}

}  // namespace nous
