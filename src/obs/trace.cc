#include "obs/trace.h"

#include "common/logging.h"

namespace nous {

TraceSpan::TraceSpan(const char* stage, LatencyHistogram* histogram)
    : stage_(stage), histogram_(histogram) {
  NOUS_LOG(Debug) << "span_begin stage=" << stage_;
}

TraceSpan::~TraceSpan() {
  double seconds = timer_.ElapsedSeconds();
  if (histogram_ != nullptr) histogram_->Observe(seconds);
  NOUS_LOG(Debug) << "span_end stage=" << stage_
                  << " seconds=" << seconds;
}

}  // namespace nous
