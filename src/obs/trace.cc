#include "obs/trace.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace nous {
namespace {

// Threshold is stored in microseconds as an int64 so the hot-path read
// is a single relaxed atomic load. <= 0 disables.
std::atomic<int64_t>& SlowTraceThresholdUs() {
  static std::atomic<int64_t>* threshold = [] {
    auto* value = new std::atomic<int64_t>(0);  // lint: new-ok(intentionally leaked process singleton)
    const char* env = std::getenv("NOUS_SLOW_QUERY_MS");
    if (env != nullptr && *env != '\0') {
      char* end = nullptr;
      double ms = std::strtod(env, &end);
      if (end != env && ms > 0) {
        value->store(static_cast<int64_t>(ms * 1000.0));
      }
    }
    return value;
  }();
  return *threshold;
}

// Logs one Warning line for a slow root span: trace id plus a
// per-stage breakdown aggregated over every buffered span of the
// trace. Bumps nous_slow_trace_total so the behavior is testable
// without scraping stderr.
void LogSlowTrace(const char* stage, uint64_t trace_id, double seconds) {
  static Counter* slow_traces = MetricsRegistry::Global().GetCounter(
      "nous_slow_trace_total",
      "Root spans slower than the slow-query threshold");
  slow_traces->Increment();
  std::vector<SpanRecord> spans = TraceBuffer::Global().CollectTrace(trace_id);
  // Aggregate by stage name: count and total self-reported duration.
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_stage;
  for (const SpanRecord& span : spans) {
    auto& entry = by_stage[span.name];
    entry.first += 1;
    entry.second += span.duration_us;
  }
  std::ostringstream breakdown;
  for (const auto& [name, entry] : by_stage) {
    breakdown << ' ' << name << "=" << (entry.second / 1000.0) << "ms";
    if (entry.first > 1) breakdown << "(x" << entry.first << ")";
  }
  NOUS_LOG(Warning) << "slow_trace trace_id=" << trace_id
                    << " root=" << stage << " total_ms=" << (seconds * 1e3)
                    << " spans=" << spans.size() << " stages:"
                    << breakdown.str();
}

}  // namespace

void SetSlowTraceThresholdMs(double ms) {
  SlowTraceThresholdUs().store(
      ms > 0 ? static_cast<int64_t>(ms * 1000.0) : 0);
}

double SlowTraceThresholdMs() {
  return static_cast<double>(SlowTraceThresholdUs().load()) / 1000.0;
}

TraceSpan::TraceSpan(const char* stage, LatencyHistogram* histogram)
    : stage_(stage),
      histogram_(histogram),
      saved_context_(CurrentTraceContext()) {
  span_id_ = NextTraceId();
  if (saved_context_.valid()) {
    trace_id_ = saved_context_.trace_id;
    parent_span_id_ = saved_context_.span_id;
  } else {
    trace_id_ = NextTraceId();
    parent_span_id_ = 0;
  }
  SetCurrentTraceContext(TraceContext{trace_id_, span_id_});
  start_us_ = TraceNowMicros();
  NOUS_LOG(Debug) << "span_begin stage=" << stage_;
}

TraceSpan::~TraceSpan() {
  double seconds = timer_.ElapsedSeconds();
  if (histogram_ != nullptr) histogram_->Observe(seconds);
  SpanRecord record;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_span_id = parent_span_id_;
  record.name = stage_;
  record.thread_index = TraceThreadIndex();
  record.start_us = start_us_;
  record.duration_us = static_cast<uint64_t>(seconds * 1e6);
  record.attrs = std::move(attrs_);
  TraceBuffer::Global().Append(std::move(record));
  SetCurrentTraceContext(saved_context_);
  NOUS_LOG(Debug) << "span_end stage=" << stage_
                  << " seconds=" << seconds;
  if (parent_span_id_ == 0) {
    int64_t threshold_us = SlowTraceThresholdUs().load();
    if (threshold_us > 0 && seconds * 1e6 >= static_cast<double>(threshold_us)) {
      LogSlowTrace(stage_, trace_id_, seconds);
    }
  }
}

void TraceSpan::Attr(const char* key, int64_t value) {
  if (attrs_.size() >= kMaxAttrs) return;
  SpanAttr attr;
  attr.key = key;
  attr.kind = SpanAttr::Kind::kInt;
  attr.int_value = value;
  attrs_.push_back(std::move(attr));
}

void TraceSpan::Attr(const char* key, double value) {
  if (attrs_.size() >= kMaxAttrs) return;
  SpanAttr attr;
  attr.key = key;
  attr.kind = SpanAttr::Kind::kDouble;
  attr.double_value = value;
  attrs_.push_back(std::move(attr));
}

void TraceSpan::Attr(const char* key, const char* value) {
  Attr(key, std::string(value));
}

void TraceSpan::Attr(const char* key, const std::string& value) {
  if (attrs_.size() >= kMaxAttrs) return;
  SpanAttr attr;
  attr.key = key;
  attr.kind = SpanAttr::Kind::kString;
  attr.string_value = value;
  attrs_.push_back(std::move(attr));
}

}  // namespace nous
