#ifndef NOUS_OBS_RESOURCE_SAMPLER_H_
#define NOUS_OBS_RESOURCE_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace nous {

/// Point-in-time process memory reading.
struct ProcMemoryStats {
  uint64_t rss_bytes = 0;
  uint64_t peak_rss_bytes = 0;
};

/// Reads VmRSS / VmHWM from /proc/self/status; falls back to
/// getrusage(RUSAGE_SELF) peak RSS on systems without procfs (in which
/// case rss_bytes mirrors the peak). Returns false only when both
/// sources fail.
bool ReadProcMemoryStats(ProcMemoryStats* out);

/// Convenience: current peak RSS in bytes (0 when unreadable). Benches
/// report this next to publish-latency quantiles.
uint64_t PeakRssBytes();

/// Background telemetry thread. Every `period` it publishes process
/// RSS / peak RSS gauges and runs any registered probes; probes set
/// further gauges (snapshot version and clone bytes, query-cache hit
/// ratio, thread-pool queue depth, latency quantiles — see
/// Nous::RegisterResourceProbes). Everything lands in the global
/// MetricsRegistry and is exported through /api/metrics.
///
/// Start/Stop are idempotent; the destructor stops the thread. Probes
/// must be registered before Start and must not block.
class ResourceSampler {
 public:
  explicit ResourceSampler(
      std::chrono::milliseconds period = std::chrono::milliseconds(1000));
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  void AddProbe(std::function<void()> probe);

  void Start();
  void Stop();

  /// One synchronous sampling pass (builtin gauges + probes). The
  /// background loop calls this; tests call it directly to avoid
  /// sleeping.
  void SampleOnce();

 private:
  void Loop();

  const std::chrono::milliseconds period_;
  AnnotatedMutex mutex_;
  std::condition_variable wake_;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::vector<std::function<void()>> probes_ GUARDED_BY(mutex_);
  /// Owned by Start/Stop, which serialize through mutex_ for the flag
  /// but join outside it.  // lint: unguarded(joined only after stop_ handshake)
  std::thread thread_;
};

}  // namespace nous

#endif  // NOUS_OBS_RESOURCE_SAMPLER_H_
