#ifndef NOUS_OBS_TRACE_H_
#define NOUS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.h"
#include "common/trace_context.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"

namespace nous {

/// RAII request-scoped span. On construction it mints a span id and
/// installs itself as the thread's current trace context (minting a
/// fresh trace id when none is active, i.e. this is a root span). On
/// destruction it:
///
///   - records elapsed seconds into the registry latency histogram
///     (the PR-1 aggregate path, unchanged),
///   - appends a SpanRecord (ids, timing, attributes) to the global
///     TraceBuffer for /api/trace export,
///   - restores the parent context, and
///   - for slow *root* spans, emits the structured slow-query log.
///
/// At debug log level it also emits structured begin/end lines:
///
///   span_begin stage=extraction
///   span_end stage=extraction seconds=0.000123
///
/// Use via NOUS_SPAN / NOUS_SPAN_VAR below; construct directly only
/// when the stage name is not a compile-time literal.
class TraceSpan {
 public:
  /// `stage` must outlive the global TraceBuffer (string literals do);
  /// `histogram` may be null to trace without the aggregate recording
  /// (e.g. when the stage already observes its histogram manually).
  TraceSpan(const char* stage, LatencyHistogram* histogram);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key/value attribute, exported in the trace event's
  /// `args`. Keys are string literals. At most kMaxAttrs attributes
  /// are kept per span; extras are dropped silently.
  void Attr(const char* key, int64_t value);
  void Attr(const char* key, uint64_t value) {
    Attr(key, static_cast<int64_t>(value));
  }
  void Attr(const char* key, int value) {
    Attr(key, static_cast<int64_t>(value));
  }
  void Attr(const char* key, unsigned value) {
    Attr(key, static_cast<int64_t>(value));
  }
  void Attr(const char* key, double value);
  void Attr(const char* key, const char* value);
  void Attr(const char* key, const std::string& value);

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }
  /// 0 when this is a root span.
  uint64_t parent_span_id() const { return parent_span_id_; }

  static constexpr size_t kMaxAttrs = 8;

 private:
  const char* stage_;
  LatencyHistogram* histogram_;
  TraceContext saved_context_;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t start_us_ = 0;
  WallTimer timer_;
  std::vector<SpanAttr> attrs_;
};

/// Threshold for the structured slow-query log, in milliseconds of
/// *root* span duration; <= 0 disables it. Initialized once from the
/// NOUS_SLOW_QUERY_MS environment variable (unset/invalid = disabled);
/// the setter (wired to nous_server's --slow-query-ms flag) overrides
/// it at runtime. Each slow root span logs one Warning line with its
/// trace id and a per-stage time breakdown, and increments the
/// `nous_slow_trace_total` counter.
void SetSlowTraceThresholdMs(double ms);
double SlowTraceThresholdMs();

namespace internal {
#define NOUS_OBS_CONCAT_INNER(a, b) a##b
#define NOUS_OBS_CONCAT(a, b) NOUS_OBS_CONCAT_INNER(a, b)
}  // namespace internal

/// Times the enclosing scope as pipeline stage `stage` (a string
/// literal), recording into the global registry histogram
/// `nous_<stage>_latency_seconds` and the global TraceBuffer. The
/// histogram pointer is resolved once per call site (thread-safe
/// function-local static), so the steady-state cost is two clock
/// reads, one locked bucket increment, and one striped ring append.
#define NOUS_SPAN(stage) NOUS_SPAN_VAR(NOUS_OBS_CONCAT(nous_span_, __LINE__), stage)

/// Like NOUS_SPAN but binds the span to a named local, so the caller
/// can attach attributes: NOUS_SPAN_VAR(span, "ingest_batch");
/// span.Attr("batch_size", n);
#define NOUS_SPAN_VAR(var, stage)                                          \
  static ::nous::LatencyHistogram* NOUS_OBS_CONCAT(var, _hist) =           \
      ::nous::MetricsRegistry::Global().GetHistogram(                      \
          "nous_" stage "_latency_seconds",                                \
          "Latency of the " stage " stage in seconds");                    \
  ::nous::TraceSpan var(stage, NOUS_OBS_CONCAT(var, _hist))

}  // namespace nous

#endif  // NOUS_OBS_TRACE_H_
