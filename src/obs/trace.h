#ifndef NOUS_OBS_TRACE_H_
#define NOUS_OBS_TRACE_H_

#include "common/timer.h"
#include "obs/metrics.h"

namespace nous {

/// RAII scoped timer: on destruction records the elapsed seconds into
/// a registry latency histogram, and at debug log level emits
/// structured begin/end lines:
///
///   span_begin stage=extraction
///   span_end stage=extraction seconds=0.000123
///
/// Use via NOUS_SPAN below; construct directly only when the stage
/// name is not a compile-time literal.
class TraceSpan {
 public:
  /// `stage` must outlive the span (string literals do); `histogram`
  /// may be null to time without recording.
  TraceSpan(const char* stage, LatencyHistogram* histogram);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  const char* stage_;
  LatencyHistogram* histogram_;
  WallTimer timer_;
};

namespace internal {
#define NOUS_OBS_CONCAT_INNER(a, b) a##b
#define NOUS_OBS_CONCAT(a, b) NOUS_OBS_CONCAT_INNER(a, b)
}  // namespace internal

/// Times the enclosing scope as pipeline stage `stage` (a string
/// literal), recording into the global registry histogram
/// `nous_<stage>_latency_seconds`. The histogram pointer is resolved
/// once per call site (thread-safe function-local static), so the
/// steady-state cost is two clock reads and one locked bucket
/// increment.
#define NOUS_SPAN(stage)                                                   \
  static ::nous::LatencyHistogram* NOUS_OBS_CONCAT(nous_span_hist_,        \
                                                   __LINE__) =             \
      ::nous::MetricsRegistry::Global().GetHistogram(                      \
          "nous_" stage "_latency_seconds",                                \
          "Latency of the " stage " stage in seconds");                    \
  ::nous::TraceSpan NOUS_OBS_CONCAT(nous_span_, __LINE__)(                 \
      stage, NOUS_OBS_CONCAT(nous_span_hist_, __LINE__))

}  // namespace nous

#endif  // NOUS_OBS_TRACE_H_
