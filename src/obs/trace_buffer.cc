#include "obs/trace_buffer.h"

#include <algorithm>

#include "common/trace_context.h"

namespace nous {

TraceBuffer::TraceBuffer(size_t capacity) {
  stripe_capacity_ = std::max<size_t>(1, (capacity + kStripes - 1) / kStripes);
  capacity_ = stripe_capacity_ * kStripes;
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    stripe.ring.reserve(stripe_capacity_);
  }
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();  // lint: new-ok(intentionally leaked process singleton)
  return *buffer;
}

void TraceBuffer::Append(SpanRecord record) {
  Stripe& stripe = stripes_[TraceThreadIndex() % kStripes];
  MutexLock lock(stripe.mutex);
  ++stripe.appended;
  if (stripe.ring.size() < stripe_capacity_) {
    stripe.ring.push_back(std::move(record));
    return;
  }
  stripe.ring[stripe.next] = std::move(record);
  stripe.next = (stripe.next + 1) % stripe_capacity_;
}

std::vector<SpanRecord> TraceBuffer::Snapshot(size_t limit) const {
  std::vector<SpanRecord> out;
  out.reserve(capacity_);
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    out.insert(out.end(), stripe.ring.begin(), stripe.ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  if (limit != 0 && out.size() > limit) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(limit));
  }
  return out;
}

std::vector<SpanRecord> TraceBuffer::CollectTrace(uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    for (const SpanRecord& record : stripe.ring) {
      if (record.trace_id == trace_id) out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

uint64_t TraceBuffer::total_appended() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    total += stripe.appended;
  }
  return total;
}

void TraceBuffer::Clear() {
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    stripe.ring.clear();
    stripe.next = 0;
  }
}

}  // namespace nous
