#ifndef NOUS_OBS_METRICS_H_
#define NOUS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/thread_annotations.h"

namespace nous {

/// Monotonically increasing event count. Thread-safe; increments are
/// relaxed atomics so instrumentation stays off the critical path.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time scalar (window sizes, model dimensions). Thread-safe.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Thread-safe bounded-memory latency histogram, striped for
/// multi-threaded recording: kStripes independent {mutex,
/// FixedHistogram} shards, each cache-line aligned, with every thread
/// pinned round-robin to one stripe. N ingest threads recording spans
/// therefore lock N distinct mutexes instead of serializing on one.
/// Snapshot() merges the stripes (identical bucket layouts by
/// construction); each stripe is internally consistent but the merge
/// is not a single atomic cut across stripes — fine for monitoring.
/// Callers should cache the pointer returned by
/// MetricsRegistry::GetHistogram (registration does a map lookup).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(FixedHistogram layout);

  void Observe(double value);

  /// Merged copy of the current state across all stripes.
  FixedHistogram Snapshot() const;

  void Reset();

  /// Number of independent stripes (exposed for tests).
  static constexpr size_t kStripes = 8;

 private:
  /// One shard. All histogram access goes through the methods so every
  /// guarded touch of `hist` is visibly under `mutex`.
  struct alignas(64) Stripe {
    mutable AnnotatedMutex mutex;
    FixedHistogram hist GUARDED_BY(mutex);

    void Init(const FixedHistogram& layout) EXCLUDES(mutex) {
      MutexLock lock(mutex);
      hist = layout;
    }
    void Add(double value) EXCLUDES(mutex) {
      MutexLock lock(mutex);
      hist.Add(value);
    }
    void MergeInto(FixedHistogram* out) const EXCLUDES(mutex) {
      MutexLock lock(mutex);
      out->Merge(hist);
    }
    void Clear() EXCLUDES(mutex) {
      MutexLock lock(mutex);
      hist.Clear();
    }
  };

  /// This thread's stripe, assigned round-robin on first use.
  static size_t StripeIndex();

  /// Empty clone defining the shared bucket layout.
  FixedHistogram layout_;
  std::unique_ptr<Stripe[]> stripes_;
};

/// Label key/value pairs attached to one instrument, e.g.
/// {{"class", "entity"}}. Keep label values low-cardinality: every
/// distinct combination allocates a new time series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Process-wide metric registry behind every NOUS_SPAN and
/// instrumentation counter. Metric names follow the convention
/// `nous_<stage>_<name>` with Prometheus suffix rules
/// (`*_total` for counters, `*_latency_seconds` for latency
/// histograms).
///
/// Registration (Get*) is idempotent: the same (name, labels) pair
/// always returns the same pointer, and returned pointers stay valid
/// for the registry's lifetime — ResetAll() zeroes values in place,
/// it never invalidates pointers, so call sites may cache them in
/// function-local statics. All methods are thread-safe.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

  /// Tests may build private registries.
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "",
                      const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help = "",
                  const MetricLabels& labels = {});
  /// Empty `upper_bounds` selects DefaultLatencyBounds().
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help = "",
                                 std::vector<double> upper_bounds = {});

  /// Prometheus text exposition format (version 0.0.4): HELP/TYPE
  /// headers, counter/gauge samples, histogram `_bucket{le=...}`,
  /// `_sum` and `_count` series.
  std::string RenderPrometheus() const;

  struct CounterRow {
    std::string name;
    std::string labels;  // rendered "{k=\"v\"}" or empty
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    std::string labels;
    double value = 0;
  };
  struct HistogramRow {
    std::string name;
    uint64_t count = 0;
    double sum = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    double max = 0;
  };
  std::vector<CounterRow> CounterRows() const;
  std::vector<GaugeRow> GaugeRows() const;
  std::vector<HistogramRow> HistogramRows() const;

  /// Zeroes every metric in place. Registered pointers stay valid.
  void ResetAll();

  /// Human-readable shutdown summary (TablePrinter): one table of
  /// counters and gauges, one of latency quantiles.
  void PrintSummary(std::ostream& os) const;

  /// Exponential buckets from 1us to ~2 minutes — the layout every
  /// latency histogram shares so per-thread merges stay possible.
  static std::vector<double> DefaultLatencyBounds();

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Instrument {
    std::string rendered_labels;  // "{k=\"v\",...}" or empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    std::vector<std::unique_ptr<Instrument>> instruments;
  };

  Family* GetFamilyLocked(const std::string& name, const std::string& help,
                          Type type) REQUIRES(mutex_);
  Instrument* GetInstrumentLocked(Family* family, const MetricLabels& labels)
      REQUIRES(mutex_);

  mutable AnnotatedMutex mutex_;
  /// Families in insertion order. The vector and index are guarded;
  /// the Counter/Gauge/LatencyHistogram instruments hanging off them
  /// are internally thread-safe, which is what lets Get* hand out raw
  /// pointers that outlive the lock.
  std::vector<std::unique_ptr<Family>> families_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, size_t> family_index_ GUARDED_BY(mutex_);
};

}  // namespace nous

#endif  // NOUS_OBS_METRICS_H_
