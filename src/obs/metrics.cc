#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace nous {

namespace {

/// Prometheus label-value escaping: backslash, quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) +
           "\"";
  }
  out += "}";
  return out;
}

std::string FormatBound(double bound) { return StrFormat("%g", bound); }

}  // namespace

// ---------- LatencyHistogram ----------

LatencyHistogram::LatencyHistogram(FixedHistogram layout)
    : layout_(std::move(layout)),
      stripes_(std::make_unique<Stripe[]>(kStripes)) {
  layout_.Clear();
  for (size_t i = 0; i < kStripes; ++i) stripes_[i].Init(layout_);
}

size_t LatencyHistogram::StripeIndex() {
  static std::atomic<size_t> next_thread{0};
  thread_local size_t index =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

void LatencyHistogram::Observe(double value) {
  stripes_[StripeIndex()].Add(value);
}

FixedHistogram LatencyHistogram::Snapshot() const {
  FixedHistogram merged = layout_;
  for (size_t i = 0; i < kStripes; ++i) stripes_[i].MergeInto(&merged);
  return merged;
}

void LatencyHistogram::Reset() {
  for (size_t i = 0; i < kStripes; ++i) stripes_[i].Clear();
}

// ---------- MetricsRegistry ----------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instrumented code may record during static
  // destruction.
  // lint: new-ok(leaked singleton: recordable during static destruction)
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

std::vector<double> MetricsRegistry::DefaultLatencyBounds() {
  // 1us .. ~134s in x4 steps: 14 buckets, fine at the fast end where
  // the pipeline stages live, coarse for slow outliers.
  return FixedHistogram::Exponential(1e-6, 4.0, 14).upper_bounds();
}

MetricsRegistry::Family* MetricsRegistry::GetFamilyLocked(
    const std::string& name, const std::string& help, Type type) {
  auto [it, inserted] = family_index_.try_emplace(name, families_.size());
  if (inserted) {
    auto family = std::make_unique<Family>();
    family->name = name;
    family->help = help;
    family->type = type;
    families_.push_back(std::move(family));
  }
  Family* family = families_[it->second].get();
  NOUS_CHECK(family->type == type)
      << "metric " << name << " re-registered with a different type";
  if (family->help.empty() && !help.empty()) family->help = help;
  return family;
}

MetricsRegistry::Instrument* MetricsRegistry::GetInstrumentLocked(
    Family* family, const MetricLabels& labels) {
  std::string rendered = RenderLabels(labels);
  for (const auto& instrument : family->instruments) {
    if (instrument->rendered_labels == rendered) return instrument.get();
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->rendered_labels = std::move(rendered);
  family->instruments.push_back(std::move(instrument));
  return family->instruments.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const MetricLabels& labels) {
  MutexLock lock(mutex_);
  Family* family = GetFamilyLocked(name, help, Type::kCounter);
  Instrument* instrument = GetInstrumentLocked(family, labels);
  if (instrument->counter == nullptr) {
    instrument->counter = std::make_unique<Counter>();
  }
  return instrument->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels) {
  MutexLock lock(mutex_);
  Family* family = GetFamilyLocked(name, help, Type::kGauge);
  Instrument* instrument = GetInstrumentLocked(family, labels);
  if (instrument->gauge == nullptr) {
    instrument->gauge = std::make_unique<Gauge>();
  }
  return instrument->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::string& help,
    std::vector<double> upper_bounds) {
  MutexLock lock(mutex_);
  Family* family = GetFamilyLocked(name, help, Type::kHistogram);
  Instrument* instrument = GetInstrumentLocked(family, {});
  if (instrument->histogram == nullptr) {
    if (upper_bounds.empty()) upper_bounds = DefaultLatencyBounds();
    instrument->histogram = std::make_unique<LatencyHistogram>(
        FixedHistogram(std::move(upper_bounds)));
  }
  return instrument->histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(mutex_);
  std::string out;
  for (const auto& family : families_) {
    if (!family->help.empty()) {
      out += "# HELP " + family->name + " " + family->help + "\n";
    }
    const char* type_name = family->type == Type::kCounter ? "counter"
                            : family->type == Type::kGauge
                                ? "gauge"
                                : "histogram";
    out += "# TYPE " + family->name + " " + type_name + "\n";
    for (const auto& instrument : family->instruments) {
      switch (family->type) {
        case Type::kCounter:
          out += family->name + instrument->rendered_labels + " " +
                 StrFormat("%llu",
                           static_cast<unsigned long long>(
                               instrument->counter->Value())) +
                 "\n";
          break;
        case Type::kGauge:
          out += family->name + instrument->rendered_labels + " " +
                 StrFormat("%g", instrument->gauge->Value()) + "\n";
          break;
        case Type::kHistogram: {
          FixedHistogram snapshot = instrument->histogram->Snapshot();
          const auto& bounds = snapshot.upper_bounds();
          const auto& counts = snapshot.bucket_counts();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < bounds.size(); ++i) {
            cumulative += counts[i];
            out += family->name + "_bucket{le=\"" +
                   FormatBound(bounds[i]) + "\"} " +
                   StrFormat("%llu",
                             static_cast<unsigned long long>(cumulative)) +
                   "\n";
          }
          out += family->name + "_bucket{le=\"+Inf\"} " +
                 StrFormat("%llu",
                           static_cast<unsigned long long>(
                               snapshot.count())) +
                 "\n";
          out += family->name + "_sum " +
                 StrFormat("%g", snapshot.sum()) + "\n";
          out += family->name + "_count " +
                 StrFormat("%llu",
                           static_cast<unsigned long long>(
                               snapshot.count())) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::vector<MetricsRegistry::CounterRow> MetricsRegistry::CounterRows()
    const {
  MutexLock lock(mutex_);
  std::vector<CounterRow> rows;
  for (const auto& family : families_) {
    if (family->type != Type::kCounter) continue;
    for (const auto& instrument : family->instruments) {
      rows.push_back(CounterRow{family->name, instrument->rendered_labels,
                                instrument->counter->Value()});
    }
  }
  return rows;
}

std::vector<MetricsRegistry::GaugeRow> MetricsRegistry::GaugeRows() const {
  MutexLock lock(mutex_);
  std::vector<GaugeRow> rows;
  for (const auto& family : families_) {
    if (family->type != Type::kGauge) continue;
    for (const auto& instrument : family->instruments) {
      rows.push_back(GaugeRow{family->name, instrument->rendered_labels,
                              instrument->gauge->Value()});
    }
  }
  return rows;
}

std::vector<MetricsRegistry::HistogramRow> MetricsRegistry::HistogramRows()
    const {
  MutexLock lock(mutex_);
  std::vector<HistogramRow> rows;
  for (const auto& family : families_) {
    if (family->type != Type::kHistogram) continue;
    for (const auto& instrument : family->instruments) {
      FixedHistogram snapshot = instrument->histogram->Snapshot();
      rows.push_back(HistogramRow{family->name, snapshot.count(),
                                  snapshot.sum(), snapshot.Quantile(0.5),
                                  snapshot.Quantile(0.9),
                                  snapshot.Quantile(0.99),
                                  snapshot.max()});
    }
  }
  return rows;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mutex_);
  for (const auto& family : families_) {
    for (const auto& instrument : family->instruments) {
      if (instrument->counter != nullptr) instrument->counter->Reset();
      if (instrument->gauge != nullptr) instrument->gauge->Reset();
      if (instrument->histogram != nullptr) instrument->histogram->Reset();
    }
  }
}

void MetricsRegistry::PrintSummary(std::ostream& os) const {
  auto counters = CounterRows();
  auto gauges = GaugeRows();
  auto histograms = HistogramRows();
  os << "-- metrics summary --\n";
  if (!counters.empty() || !gauges.empty()) {
    TablePrinter table({"metric", "value"});
    for (const auto& row : counters) {
      table.AddRow({row.name + row.labels,
                    TablePrinter::Int(static_cast<long long>(row.value))});
    }
    for (const auto& row : gauges) {
      table.AddRow({row.name + row.labels, TablePrinter::Num(row.value, 3)});
    }
    table.Print(os);
  }
  if (!histograms.empty()) {
    TablePrinter table({"latency metric", "count", "mean ms", "p50 ms",
                        "p90 ms", "p99 ms", "max ms"});
    for (const auto& row : histograms) {
      double mean = row.count == 0
                        ? 0
                        : row.sum / static_cast<double>(row.count);
      table.AddRow({row.name,
                    TablePrinter::Int(static_cast<long long>(row.count)),
                    TablePrinter::Num(mean * 1e3, 4),
                    TablePrinter::Num(row.p50 * 1e3, 4),
                    TablePrinter::Num(row.p90 * 1e3, 4),
                    TablePrinter::Num(row.p99 * 1e3, 4),
                    TablePrinter::Num(row.max * 1e3, 4)});
    }
    table.Print(os);
  }
}

}  // namespace nous
