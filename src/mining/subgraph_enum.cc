#include "mining/subgraph_enum.h"

#include <algorithm>
#include <set>

namespace nous {

size_t EnumerateConnectedSubsets(
    const PropertyGraph& graph, EdgeId anchor, const MinerConfig& config,
    bool older_only,
    const std::function<void(const std::vector<EdgeId>&)>& fn) {
  size_t visited = 0;
  std::set<std::vector<EdgeId>> seen;
  std::vector<EdgeId> current = {anchor};

  // Collect candidate extensions: live edges adjacent to any endpoint
  // of the current subset.
  auto extensions = [&graph, older_only, anchor](
                        const std::vector<EdgeId>& subset) {
    std::vector<EdgeId> result;
    auto consider = [&](EdgeId e) {
      if (older_only && e >= anchor) return;
      if (e == anchor) return;
      if (std::find(subset.begin(), subset.end(), e) != subset.end())
        return;
      if (std::find(result.begin(), result.end(), e) != result.end())
        return;
      result.push_back(e);
    };
    for (EdgeId in_set : subset) {
      const EdgeRecord& rec = graph.Edge(in_set);
      for (VertexId v : {rec.subject, rec.object}) {
        for (const AdjEntry& a : graph.OutEdges(v)) consider(a.edge);
        for (const AdjEntry& a : graph.InEdges(v)) consider(a.edge);
      }
    }
    return result;
  };

  std::function<bool(std::vector<EdgeId>*)> grow =
      [&](std::vector<EdgeId>* subset) -> bool {
    std::vector<EdgeId> sorted = *subset;
    std::sort(sorted.begin(), sorted.end());
    if (!seen.insert(sorted).second) return true;
    ++visited;
    fn(sorted);
    if (visited >= config.max_subsets_per_edge) return false;
    if (subset->size() >= config.max_edges) return true;
    for (EdgeId ext : extensions(*subset)) {
      subset->push_back(ext);
      bool keep_going = grow(subset);
      subset->pop_back();
      if (!keep_going) return false;
    }
    return true;
  };
  grow(&current);
  return visited;
}

Pattern CanonicalizeEdgeSet(const PropertyGraph& graph,
                            const std::vector<EdgeId>& edges,
                            bool use_vertex_types,
                            std::vector<VertexId>* assignment) {
  std::vector<Pattern::ConcreteEdge> concrete;
  concrete.reserve(edges.size());
  for (EdgeId e : edges) {
    const EdgeRecord& rec = graph.Edge(e);
    concrete.push_back(
        Pattern::ConcreteEdge{rec.subject, rec.predicate, rec.object});
  }
  auto label = [&graph, use_vertex_types](uint64_t v) -> TypeId {
    if (!use_vertex_types) return kInvalidType;
    return graph.VertexType(static_cast<VertexId>(v));
  };
  std::vector<uint64_t> mapping;
  Pattern p = Pattern::Canonicalize(concrete, label,
                                    assignment ? &mapping : nullptr);
  if (assignment != nullptr) {
    assignment->clear();
    for (uint64_t v : mapping) {
      assignment->push_back(static_cast<VertexId>(v));
    }
  }
  return p;
}

SupportCounter::SupportCounter(const PropertyGraph* graph,
                               bool use_vertex_types)
    : graph_(graph), use_vertex_types_(use_vertex_types) {}

void SupportCounter::AddEmbedding(const std::vector<EdgeId>& edges) {
  std::vector<VertexId> assignment;
  Pattern p =
      CanonicalizeEdgeSet(*graph_, edges, use_vertex_types_, &assignment);
  auto [it, inserted] = index_.try_emplace(p, entries_.size());
  if (inserted) {
    Entry entry;
    entry.pattern = p;
    entry.position_counts.resize(p.num_vertices());
    entries_.push_back(std::move(entry));
  }
  Entry& entry = entries_[it->second];
  for (size_t pos = 0; pos < assignment.size(); ++pos) {
    entry.position_counts[pos][assignment[pos]]++;
  }
  ++entry.embeddings;
  ++total_embeddings_;
}

void SupportCounter::Merge(const SupportCounter& other) {
  for (const Entry& entry : other.entries_) {
    auto [it, inserted] =
        index_.try_emplace(entry.pattern, entries_.size());
    if (inserted) {
      Entry fresh;
      fresh.pattern = entry.pattern;
      fresh.position_counts.resize(entry.pattern.num_vertices());
      entries_.push_back(std::move(fresh));
    }
    Entry& target = entries_[it->second];
    for (size_t pos = 0; pos < entry.position_counts.size(); ++pos) {
      for (const auto& [vertex, count] : entry.position_counts[pos]) {
        target.position_counts[pos][vertex] += count;
      }
    }
    target.embeddings += entry.embeddings;
  }
  total_embeddings_ += other.total_embeddings_;
}

std::vector<PatternStats> SupportCounter::Results(
    size_t min_support) const {
  std::vector<PatternStats> results;
  for (const Entry& entry : entries_) {
    size_t support = entry.position_counts.empty()
                         ? 0
                         : entry.position_counts[0].size();
    for (const auto& counts : entry.position_counts) {
      support = std::min(support, counts.size());
    }
    if (support < min_support) continue;
    PatternStats stats;
    stats.pattern = entry.pattern;
    stats.embeddings = entry.embeddings;
    stats.support = support;
    results.push_back(std::move(stats));
  }
  std::sort(results.begin(), results.end(),
            [](const PatternStats& a, const PatternStats& b) {
              return a.support > b.support;
            });
  return results;
}

}  // namespace nous
