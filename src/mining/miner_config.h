#ifndef NOUS_MINING_MINER_CONFIG_H_
#define NOUS_MINING_MINER_CONFIG_H_

#include <cstddef>

#include "mining/pattern.h"

namespace nous {

/// Shared knobs for the streaming miner and both baselines, so
/// result-equivalence comparisons are apples-to-apples.
struct MinerConfig {
  /// Maximum pattern size in edges (tiny by design; canonicalization
  /// is factorial in this).
  size_t max_edges = 2;
  /// MNI support threshold for "frequent".
  size_t min_support = 5;
  /// Label pattern vertices with their KG types (typed patterns, as in
  /// the paper's Figure 7) instead of structure-only mining.
  bool use_vertex_types = false;
  /// Safety cap on subsets explored per arriving edge (hub guard).
  size_t max_subsets_per_edge = 100000;
};

/// A reported pattern with its counts.
struct PatternStats {
  Pattern pattern;
  size_t embeddings = 0;
  /// MNI support: min over pattern positions of distinct graph
  /// vertices observed in that position.
  size_t support = 0;
};

}  // namespace nous

#endif  // NOUS_MINING_MINER_CONFIG_H_
