#include "mining/streaming_miner.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nous {

namespace {

struct MinerMetrics {
  Counter* patterns_emitted;
  Counter* patterns_demoted;
  Gauge* tracked_patterns;
  Gauge* live_embeddings;
};

const MinerMetrics& Metrics() {
  static MinerMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    MinerMetrics m;
    m.patterns_emitted = r.GetCounter(
        "nous_mining_patterns_emitted_total",
        "Patterns that crossed min_support upward");
    m.patterns_demoted = r.GetCounter(
        "nous_mining_patterns_demoted_total",
        "Patterns that decayed below min_support");
    m.tracked_patterns = r.GetGauge("nous_mining_tracked_patterns",
                                    "Distinct patterns under maintenance");
    m.live_embeddings = r.GetGauge("nous_mining_live_embeddings",
                                   "Live embeddings across all patterns");
    return m;
  }();
  return metrics;
}

}  // namespace

StreamingMiner::StreamingMiner(MinerConfig config) : config_(config) {}

void StreamingMiner::OnEdgeAdded(const PropertyGraph& graph, EdgeId edge) {
  NOUS_SPAN("mining");
  ++generation_;
  // Every connected subset containing the new edge; all other edges in
  // the window are older (smaller ids), so older_only enumeration
  // discovers each subset exactly once across the stream.
  EnumerateConnectedSubsets(
      graph, edge, config_, /*older_only=*/true,
      [this, &graph](const std::vector<EdgeId>& subset) {
        AddEmbedding(graph, subset);
      });
  Metrics().tracked_patterns->Set(static_cast<double>(patterns_.size()));
  Metrics().live_embeddings->Set(static_cast<double>(live_embeddings_));
}

void StreamingMiner::OnEdgeExpiring(const PropertyGraph& /*graph*/,
                                    EdgeId edge) {
  ++generation_;
  auto it = edge_index_.find(edge);
  if (it == edge_index_.end()) return;
  // RemoveEmbedding mutates other edges' index entries but only reads
  // this one after the move.
  std::vector<uint32_t> ids = std::move(it->second);
  edge_index_.erase(it);
  for (uint32_t id : ids) {
    if (embeddings_[id].alive) RemoveEmbedding(id);
  }
  Metrics().live_embeddings->Set(static_cast<double>(live_embeddings_));
}

void StreamingMiner::AddEmbedding(const PropertyGraph& graph,
                                  const std::vector<EdgeId>& edges) {
  std::vector<VertexId> assignment;
  Pattern p = CanonicalizeEdgeSet(graph, edges, config_.use_vertex_types,
                                  &assignment);
  auto [it, inserted] = pattern_index_.try_emplace(
      p, static_cast<uint32_t>(patterns_.size()));
  if (inserted) {
    PatternEntry entry;
    entry.pattern = p;
    entry.position_counts.resize(p.num_vertices());
    patterns_.push_back(std::move(entry));
  }
  uint32_t pattern_id = it->second;
  PatternEntry& entry = patterns_[pattern_id];
  size_t support_before = SupportOfEntry(entry);
  for (size_t pos = 0; pos < assignment.size(); ++pos) {
    entry.position_counts[pos][assignment[pos]]++;
  }
  ++entry.embeddings;
  if (support_before < config_.min_support &&
      SupportOfEntry(entry) >= config_.min_support) {
    Metrics().patterns_emitted->Increment();
  }

  uint32_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<uint32_t>(embeddings_.size());
    embeddings_.emplace_back();
  }
  Embedding& emb = embeddings_[id];
  emb.pattern_id = pattern_id;
  emb.edges = edges;
  emb.assignment = std::move(assignment);
  emb.alive = true;
  for (EdgeId e : edges) edge_index_[e].push_back(id);
  ++live_embeddings_;
  ++created_total_;
}

void StreamingMiner::RemoveEmbedding(uint32_t embedding_id) {
  Embedding& emb = embeddings_[embedding_id];
  NOUS_CHECK(emb.alive);
  PatternEntry& entry = patterns_[emb.pattern_id];
  size_t support_before = SupportOfEntry(entry);
  for (size_t pos = 0; pos < emb.assignment.size(); ++pos) {
    auto it = entry.position_counts[pos].find(emb.assignment[pos]);
    NOUS_CHECK(it != entry.position_counts[pos].end());
    if (--it->second == 0) entry.position_counts[pos].erase(it);
  }
  --entry.embeddings;
  if (support_before >= config_.min_support &&
      SupportOfEntry(entry) < config_.min_support) {
    Metrics().patterns_demoted->Increment();
  }
  for (EdgeId e : emb.edges) {
    auto it = edge_index_.find(e);
    if (it == edge_index_.end()) continue;  // being drained by expiry
    auto& ids = it->second;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == embedding_id) {
        ids[i] = ids.back();
        ids.pop_back();
        break;
      }
    }
  }
  emb.alive = false;
  emb.edges.clear();
  emb.assignment.clear();
  free_slots_.push_back(embedding_id);
  --live_embeddings_;
  ++removed_total_;
}

size_t StreamingMiner::SupportOfEntry(const PatternEntry& entry) const {
  if (entry.embeddings == 0 || entry.position_counts.empty()) return 0;
  size_t support = entry.position_counts[0].size();
  for (const auto& counts : entry.position_counts) {
    support = std::min(support, counts.size());
  }
  return support;
}

std::vector<PatternStats> StreamingMiner::FrequentPatterns() const {
  std::vector<PatternStats> results;
  for (const PatternEntry& entry : patterns_) {
    size_t support = SupportOfEntry(entry);
    if (support < config_.min_support) continue;
    PatternStats stats;
    stats.pattern = entry.pattern;
    stats.embeddings = entry.embeddings;
    stats.support = support;
    results.push_back(std::move(stats));
  }
  std::sort(results.begin(), results.end(),
            [](const PatternStats& a, const PatternStats& b) {
              return a.support > b.support;
            });
  return results;
}

std::vector<PatternStats> StreamingMiner::ClosedFrequentPatterns() const {
  std::vector<PatternStats> frequent = FrequentPatterns();
  std::vector<PatternStats> closed;
  for (const PatternStats& p : frequent) {
    bool subsumed = false;
    for (const PatternStats& q : frequent) {
      if (q.pattern.num_edges() <= p.pattern.num_edges()) continue;
      if (q.support == p.support && q.pattern.Contains(p.pattern)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) closed.push_back(p);
  }
  return closed;
}

size_t StreamingMiner::SupportOf(const Pattern& pattern) const {
  auto it = pattern_index_.find(pattern);
  if (it == pattern_index_.end()) return 0;
  return SupportOfEntry(patterns_[it->second]);
}

StreamingMiner::Churn StreamingMiner::TakeChurn() {
  std::unordered_set<size_t> now;
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (SupportOfEntry(patterns_[i]) >= config_.min_support) {
      now.insert(i);
    }
  }
  Churn churn;
  for (size_t id : now) {
    if (last_frequent_.count(id) == 0) {
      churn.became_frequent.push_back(patterns_[id].pattern);
    }
  }
  for (size_t id : last_frequent_) {
    if (now.count(id) == 0) {
      churn.became_infrequent.push_back(patterns_[id].pattern);
    }
  }
  last_frequent_ = std::move(now);
  return churn;
}

}  // namespace nous
