#ifndef NOUS_MINING_ARABESQUE_SIM_H_
#define NOUS_MINING_ARABESQUE_SIM_H_

#include <vector>

#include "common/thread_pool.h"
#include "graph/property_graph.h"
#include "mining/miner_config.h"

namespace nous {

/// Arabesque-style baseline (§3.5's comparison system): an
/// embedding-centric miner that enumerates EVERY connected embedding
/// up to max_edges in the current window graph and aggregates pattern
/// counts afterwards — no frequency pruning during enumeration and no
/// state carried between windows. Each window slide pays the full
/// re-enumeration cost; the NOUS streaming miner's speedup claim is
/// measured against this.
///
/// Returns patterns with support >= config.min_support, sorted by
/// support descending. `total_embeddings`, when non-null, receives the
/// number of embeddings enumerated (the work measure).
std::vector<PatternStats> MineArabesqueSim(const PropertyGraph& graph,
                                           const MinerConfig& config,
                                           size_t* total_embeddings = nullptr);

/// Parallel variant: shards the anchor edges across `pool`'s workers
/// (each with a private SupportCounter, merged at the end) — the
/// single-node analogue of Arabesque's distributed embedding
/// exploration. Results are identical to the serial variant.
std::vector<PatternStats> MineArabesqueSimParallel(
    const PropertyGraph& graph, const MinerConfig& config,
    ThreadPool* pool, size_t* total_embeddings = nullptr);

}  // namespace nous

#endif  // NOUS_MINING_ARABESQUE_SIM_H_
