#include "mining/pattern_matcher.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "common/logging.h"

namespace nous {

namespace {

/// Search plan: pattern edge indices reordered so the first edge has
/// the rarest predicate and every subsequent edge touches an already
/// bound variable.
std::vector<size_t> PlanOrder(const PropertyGraph& graph,
                              const Pattern& pattern,
                              int pin_pattern_edge) {
  std::unordered_map<PredicateId, size_t> frequency;
  graph.ForEachEdge([&frequency](EdgeId, const EdgeRecord& rec) {
    ++frequency[rec.predicate];
  });
  auto freq_of = [&frequency](PredicateId p) -> size_t {
    auto it = frequency.find(p);
    return it == frequency.end() ? 0 : it->second;
  };
  const auto& edges = pattern.edges();
  std::vector<size_t> order;
  std::vector<bool> used(edges.size(), false);
  std::vector<bool> bound(pattern.num_vertices(), false);
  // A pinned edge is fully determined; start there.
  if (pin_pattern_edge >= 0) {
    size_t pin = static_cast<size_t>(pin_pattern_edge);
    NOUS_CHECK(pin < edges.size());
    used[pin] = true;
    bound[edges[pin].src] = true;
    bound[edges[pin].dst] = true;
    order.push_back(pin);
  }
  while (order.size() < edges.size()) {
    size_t best = edges.size();
    for (size_t i = 0; i < edges.size(); ++i) {
      if (used[i]) continue;
      bool connected = order.empty() || bound[edges[i].src] ||
                       bound[edges[i].dst];
      if (!connected) continue;
      if (best == edges.size() ||
          freq_of(edges[i].pred) < freq_of(edges[best].pred)) {
        best = i;
      }
    }
    NOUS_CHECK(best < edges.size()) << "pattern is not connected";
    used[best] = true;
    bound[edges[best].src] = true;
    bound[edges[best].dst] = true;
    order.push_back(best);
  }
  return order;
}

class Matcher {
 public:
  Matcher(const PropertyGraph& graph, const Pattern& pattern,
          const MatchOptions& options)
      : graph_(graph),
        pattern_(pattern),
        options_(options),
        order_(PlanOrder(graph, pattern, options.pin_pattern_edge)),
        assignment_(pattern.num_vertices(), kInvalidVertex),
        match_edges_(pattern.num_edges(), kInvalidEdge) {}

  std::vector<PatternMatch> Run() {
    if (pattern_.num_edges() > 0) Extend(0);
    return std::move(matches_);
  }

 private:
  bool Done() const {
    return options_.limit != 0 && matches_.size() >= options_.limit;
  }

  bool VertexOk(int var, VertexId v) const {
    TypeId label = pattern_.vertex_labels()[var];
    if (options_.use_vertex_types && label != kInvalidType &&
        graph_.VertexType(v) != label) {
      return false;
    }
    // Injectivity across variables.
    for (size_t other = 0; other < assignment_.size(); ++other) {
      if (static_cast<int>(other) != var && assignment_[other] == v) {
        return false;
      }
    }
    return true;
  }

  bool EdgeUsed(EdgeId e) const {
    if (!options_.distinct_edges) return false;
    return std::find(match_edges_.begin(), match_edges_.end(), e) !=
           match_edges_.end();
  }

  /// Candidate filter for non-pinned pattern edges.
  bool CandidateOk(EdgeId e) const {
    if (EdgeUsed(e)) return false;
    if (options_.max_edge_id != kInvalidEdge &&
        e >= options_.max_edge_id) {
      return false;
    }
    return true;
  }

  void TryBindAndRecurse(size_t step, EdgeId edge, VertexId subject,
                         VertexId object) {
    const PatternEdge& pe = pattern_.edges()[order_[step]];
    VertexId old_s = assignment_[pe.src];
    VertexId old_d = assignment_[pe.dst];
    if (old_s == kInvalidVertex) {
      if (!VertexOk(pe.src, subject)) return;
      assignment_[pe.src] = subject;
    } else if (old_s != subject) {
      return;
    }
    if (assignment_[pe.dst] == kInvalidVertex) {
      if (!VertexOk(pe.dst, object)) {
        assignment_[pe.src] = old_s;
        return;
      }
      assignment_[pe.dst] = object;
    } else if (assignment_[pe.dst] != object) {
      assignment_[pe.src] = old_s;
      return;
    }
    match_edges_[order_[step]] = edge;
    Extend(step + 1);
    match_edges_[order_[step]] = kInvalidEdge;
    assignment_[pe.src] = old_s;
    assignment_[pe.dst] = old_d;
  }

  void Extend(size_t step) {
    if (Done()) return;
    if (step == order_.size()) {
      PatternMatch match;
      match.vertices = assignment_;
      match.edges = match_edges_;
      matches_.push_back(std::move(match));
      return;
    }
    const PatternEdge& pe = pattern_.edges()[order_[step]];
    // Pinned edge: exactly one candidate.
    if (options_.pin_pattern_edge >= 0 &&
        order_[step] == static_cast<size_t>(options_.pin_pattern_edge)) {
      const EdgeRecord& rec = graph_.Edge(options_.pin_edge);
      if (rec.alive && rec.predicate == pe.pred) {
        TryBindAndRecurse(step, options_.pin_edge, rec.subject,
                          rec.object);
      }
      return;
    }
    VertexId bound_s = assignment_[pe.src];
    VertexId bound_d = assignment_[pe.dst];
    if (bound_s != kInvalidVertex) {
      for (const AdjEntry& a : graph_.OutEdges(bound_s)) {
        if (Done()) return;
        if (a.predicate != pe.pred || !CandidateOk(a.edge)) continue;
        TryBindAndRecurse(step, a.edge, bound_s, a.neighbor);
      }
    } else if (bound_d != kInvalidVertex) {
      for (const AdjEntry& a : graph_.InEdges(bound_d)) {
        if (Done()) return;
        if (a.predicate != pe.pred || !CandidateOk(a.edge)) continue;
        TryBindAndRecurse(step, a.edge, a.neighbor, bound_d);
      }
    } else {
      // Seed edge: scan all live edges with the predicate.
      graph_.ForEachEdge([&](EdgeId e, const EdgeRecord& rec) {
        if (Done()) return;
        if (rec.predicate != pe.pred || !CandidateOk(e)) return;
        TryBindAndRecurse(step, e, rec.subject, rec.object);
      });
    }
  }

  const PropertyGraph& graph_;
  const Pattern& pattern_;
  const MatchOptions& options_;
  std::vector<size_t> order_;
  std::vector<VertexId> assignment_;
  std::vector<EdgeId> match_edges_;
  std::vector<PatternMatch> matches_;
};

}  // namespace

std::vector<PatternMatch> MatchPattern(const PropertyGraph& graph,
                                       const Pattern& pattern,
                                       const MatchOptions& options) {
  if (pattern.num_edges() == 0) return {};
  return Matcher(graph, pattern, options).Run();
}

size_t CountPatternMatches(const PropertyGraph& graph,
                           const Pattern& pattern,
                           const MatchOptions& options) {
  return MatchPattern(graph, pattern, options).size();
}

}  // namespace nous
