#ifndef NOUS_MINING_STREAMING_MINER_H_
#define NOUS_MINING_STREAMING_MINER_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/temporal_window.h"
#include "mining/miner_config.h"
#include "mining/subgraph_enum.h"

namespace nous {

/// NOUS's streaming frequent graph miner (§3.5): subscribes to a
/// TemporalWindow and maintains, fully incrementally, the embeddings
/// and MNI supports of every connected pattern up to max_edges.
///
/// - On arrival, only subsets containing the new edge are enumerated
///   (the new edge always has the maximum id, so each subset is
///   discovered exactly once) — no global re-enumeration.
/// - On expiry, a per-edge inverted index removes exactly the dead
///   embeddings and decrements their pattern counts.
/// - Sub-pattern counts are maintained alongside their super-patterns,
///   so when a pattern decays below the support threshold its smaller
///   frequent structure is immediately reportable — the paper's
///   demotion/reconstruction property.
///
/// Frequent and closed-frequent pattern sets are computed on demand
/// from the maintained counts. Baselines (gspan.h, arabesque_sim.h)
/// recompute from scratch per window for the E4 speedup comparison.
///
/// Concurrency: externally synchronized. The miner keeps no internal
/// locks; KgPipeline owns it behind `kg_mutex()` (`miner_` is
/// GUARDED_BY in pipeline.h) — updates arrive under the exclusive
/// side, reads (FrequentPatterns, query serving) under the shared
/// side. Standalone users need the same discipline or a single
/// thread.
class StreamingMiner : public WindowListener {
 public:
  explicit StreamingMiner(MinerConfig config);

  // WindowListener:
  void OnEdgeAdded(const PropertyGraph& graph, EdgeId edge) override;
  void OnEdgeExpiring(const PropertyGraph& graph, EdgeId edge) override;

  /// Patterns with support >= min_support, sorted by support desc.
  std::vector<PatternStats> FrequentPatterns() const;

  /// Frequent patterns with no frequent strict super-pattern of equal
  /// support.
  std::vector<PatternStats> ClosedFrequentPatterns() const;

  /// Support of one pattern (0 when untracked).
  size_t SupportOf(const Pattern& pattern) const;

  /// Frequency churn since the previous TakeChurn call.
  struct Churn {
    std::vector<Pattern> became_frequent;
    std::vector<Pattern> became_infrequent;
  };
  Churn TakeChurn();

  /// Monotonic counter bumped by every window event the miner
  /// observes. Equal generations guarantee the pattern set (and its
  /// rendering) is unchanged, so snapshot publish can reuse the
  /// previous RenderedPatternSet instead of re-stringifying every
  /// closed frequent pattern.
  uint64_t generation() const { return generation_; }

  size_t num_tracked_patterns() const { return patterns_.size(); }
  size_t num_live_embeddings() const { return live_embeddings_; }
  size_t total_embeddings_created() const { return created_total_; }
  size_t total_embeddings_removed() const { return removed_total_; }
  const MinerConfig& config() const { return config_; }

 private:
  struct PatternEntry {
    Pattern pattern;
    std::vector<std::unordered_map<VertexId, uint32_t>> position_counts;
    size_t embeddings = 0;
  };

  struct Embedding {
    uint32_t pattern_id = 0;
    std::vector<EdgeId> edges;
    std::vector<VertexId> assignment;
    bool alive = false;
  };

  void AddEmbedding(const PropertyGraph& graph,
                    const std::vector<EdgeId>& edges);
  void RemoveEmbedding(uint32_t embedding_id);
  size_t SupportOfEntry(const PatternEntry& entry) const;

  MinerConfig config_;
  std::vector<PatternEntry> patterns_;
  std::unordered_map<Pattern, uint32_t, PatternHash> pattern_index_;
  std::vector<Embedding> embeddings_;
  std::vector<uint32_t> free_slots_;
  std::unordered_map<EdgeId, std::vector<uint32_t>> edge_index_;
  std::unordered_set<size_t> last_frequent_;  // pattern ids
  uint64_t generation_ = 0;
  size_t live_embeddings_ = 0;
  size_t created_total_ = 0;
  size_t removed_total_ = 0;
};

}  // namespace nous

#endif  // NOUS_MINING_STREAMING_MINER_H_
