#include "mining/pattern.h"

#include <algorithm>
#include <map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace nous {

namespace {

/// Comparable canonical code: edge triples then vertex labels.
struct Code {
  std::vector<PatternEdge> edges;
  std::vector<TypeId> labels;
  std::vector<uint64_t> mapping;  // variable -> concrete vertex

  bool LessThan(const Code& other) const {
    for (size_t i = 0; i < edges.size() && i < other.edges.size(); ++i) {
      const PatternEdge& a = edges[i];
      const PatternEdge& b = other.edges[i];
      if (a.src != b.src) return a.src < b.src;
      if (a.pred != b.pred) return a.pred < b.pred;
      if (a.dst != b.dst) return a.dst < b.dst;
    }
    if (edges.size() != other.edges.size()) {
      return edges.size() < other.edges.size();
    }
    return labels < other.labels;
  }
};

Code BuildCode(const std::vector<Pattern::ConcreteEdge>& edges,
               const std::vector<size_t>& order,
               const std::function<TypeId(uint64_t)>& vertex_label) {
  Code code;
  std::map<uint64_t, int> var_of;
  auto var = [&](uint64_t v) {
    auto it = var_of.find(v);
    if (it != var_of.end()) return it->second;
    int id = static_cast<int>(var_of.size());
    var_of.emplace(v, id);
    code.mapping.push_back(v);
    code.labels.push_back(vertex_label(v));
    return id;
  };
  for (size_t idx : order) {
    const Pattern::ConcreteEdge& e = edges[idx];
    int s = var(e.src);
    int d = var(e.dst);
    code.edges.push_back(PatternEdge{s, e.pred, d});
  }
  return code;
}

}  // namespace

Pattern Pattern::Canonicalize(
    const std::vector<ConcreteEdge>& edges,
    const std::function<TypeId(uint64_t)>& vertex_label,
    std::vector<uint64_t>* position_to_vertex) {
  NOUS_CHECK(!edges.empty());
  std::vector<size_t> order(edges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Code best = BuildCode(edges, order, vertex_label);
  while (std::next_permutation(order.begin(), order.end())) {
    Code candidate = BuildCode(edges, order, vertex_label);
    if (candidate.LessThan(best)) best = std::move(candidate);
  }
  Pattern p;
  p.edges_ = std::move(best.edges);
  p.vertex_labels_ = std::move(best.labels);
  if (position_to_vertex != nullptr) {
    *position_to_vertex = std::move(best.mapping);
  }
  return p;
}

bool Pattern::Contains(const Pattern& sub) const {
  if (sub.num_edges() > num_edges()) return false;
  // Try every injective assignment of sub edges onto our edges with a
  // consistent variable mapping. Pattern sizes are tiny.
  std::vector<size_t> chosen;
  std::vector<bool> used(edges_.size(), false);
  std::vector<int> var_map(sub.num_vertices(), -1);

  std::function<bool(size_t)> match = [&](size_t i) -> bool {
    if (i == sub.edges_.size()) return true;
    const PatternEdge& se = sub.edges_[i];
    for (size_t j = 0; j < edges_.size(); ++j) {
      if (used[j]) continue;
      const PatternEdge& pe = edges_[j];
      if (pe.pred != se.pred) continue;
      int old_s = var_map[se.src];
      int old_d = var_map[se.dst];
      if (old_s != -1 && old_s != pe.src) continue;
      if (old_d != -1 && old_d != pe.dst) continue;
      // Label compatibility (invalid label matches anything equal).
      if (sub.vertex_labels_[se.src] != vertex_labels_[pe.src]) continue;
      if (sub.vertex_labels_[se.dst] != vertex_labels_[pe.dst]) continue;
      // Injectivity on variables.
      bool clash = false;
      for (int v = 0; v < static_cast<int>(var_map.size()); ++v) {
        if (v != se.src && var_map[v] == pe.src) clash = true;
        if (v != se.dst && var_map[v] == pe.dst) clash = true;
      }
      if (clash) continue;
      used[j] = true;
      var_map[se.src] = pe.src;
      var_map[se.dst] = pe.dst;
      if (match(i + 1)) return true;
      used[j] = false;
      var_map[se.src] = old_s;
      var_map[se.dst] = old_d;
    }
    return false;
  };
  (void)chosen;
  return match(0);
}

std::vector<Pattern> Pattern::SubPatterns() const {
  std::vector<Pattern> subs;
  if (edges_.size() <= 1) return subs;
  for (size_t drop = 0; drop < edges_.size(); ++drop) {
    std::vector<ConcreteEdge> rest;
    for (size_t i = 0; i < edges_.size(); ++i) {
      if (i == drop) continue;
      rest.push_back(ConcreteEdge{static_cast<uint64_t>(edges_[i].src),
                                  edges_[i].pred,
                                  static_cast<uint64_t>(edges_[i].dst)});
    }
    // Connectivity check over the remaining edges.
    std::vector<uint64_t> stack = {rest[0].src};
    std::vector<uint64_t> seen = {rest[0].src};
    while (!stack.empty()) {
      uint64_t v = stack.back();
      stack.pop_back();
      for (const ConcreteEdge& e : rest) {
        for (uint64_t next : {e.src, e.dst}) {
          if ((e.src == v || e.dst == v) &&
              std::find(seen.begin(), seen.end(), next) == seen.end()) {
            seen.push_back(next);
            stack.push_back(next);
          }
        }
      }
    }
    std::vector<uint64_t> needed;
    for (const ConcreteEdge& e : rest) {
      for (uint64_t v : {e.src, e.dst}) {
        if (std::find(needed.begin(), needed.end(), v) == needed.end()) {
          needed.push_back(v);
        }
      }
    }
    if (seen.size() != needed.size()) continue;  // disconnected
    const std::vector<TypeId>& labels = vertex_labels_;
    Pattern sub = Canonicalize(
        rest,
        [&labels](uint64_t v) { return labels[static_cast<size_t>(v)]; });
    if (std::find(subs.begin(), subs.end(), sub) == subs.end()) {
      subs.push_back(std::move(sub));
    }
  }
  return subs;
}

std::string Pattern::ToString(const Dictionary& predicates,
                              const Dictionary* types) const {
  std::vector<std::string> parts;
  for (const PatternEdge& e : edges_) {
    std::string src_label, dst_label;
    if (types != nullptr && vertex_labels_[e.src] != kInvalidType) {
      src_label = ":" + types->GetString(vertex_labels_[e.src]);
    }
    if (types != nullptr && vertex_labels_[e.dst] != kInvalidType) {
      dst_label = ":" + types->GetString(vertex_labels_[e.dst]);
    }
    parts.push_back(StrFormat(
        "(?%d%s)-[%s]->(?%d%s)", e.src, src_label.c_str(),
        predicates.GetString(e.pred).c_str(), e.dst, dst_label.c_str()));
  }
  return Join(parts, " ");
}

size_t Pattern::Hash() const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const PatternEdge& e : edges_) {
    h = HashCombine(h, static_cast<size_t>(e.src));
    h = HashCombine(h, static_cast<size_t>(e.pred));
    h = HashCombine(h, static_cast<size_t>(e.dst));
  }
  for (TypeId t : vertex_labels_) h = HashCombine(h, t);
  return h;
}

}  // namespace nous
