#ifndef NOUS_MINING_PATTERN_MATCHER_H_
#define NOUS_MINING_PATTERN_MATCHER_H_

#include <cstddef>
#include <vector>

#include "graph/property_graph.h"
#include "mining/pattern.h"

namespace nous {

/// One concrete occurrence of a pattern in a graph.
struct PatternMatch {
  /// Graph vertex per pattern variable position.
  std::vector<VertexId> vertices;
  /// Graph edge per pattern edge (same order as Pattern::edges()).
  std::vector<EdgeId> edges;
};

struct MatchOptions {
  /// Require graph vertex types to equal the pattern's vertex labels
  /// (labels of kInvalidType match any vertex).
  bool use_vertex_types = false;
  /// Stop after this many matches (0 = unlimited).
  size_t limit = 0;
  /// Reject matches that reuse a graph edge for two pattern edges
  /// (vertex reuse across distinct variables is always rejected).
  bool distinct_edges = true;
  /// Incremental-detection hooks: when pin_pattern_edge >= 0, that
  /// pattern edge may only bind to graph edge `pin_edge`, and every
  /// OTHER pattern edge may only bind to graph edges with id strictly
  /// below `max_edge_id` (when != kInvalidEdge). Together these
  /// restrict the search to matches completed by a newly arrived edge.
  int pin_pattern_edge = -1;
  EdgeId pin_edge = kInvalidEdge;
  EdgeId max_edge_id = kInvalidEdge;
};

/// Finds embeddings of `pattern` in `graph` by backtracking search,
/// seeding from the pattern edge whose predicate is rarest in the
/// graph — the selectivity-based ordering of the authors' continuous
/// pattern detection line of work (Choudhury et al., EDBT 2015, cited
/// as [4]). Complete up to `limit`.
std::vector<PatternMatch> MatchPattern(const PropertyGraph& graph,
                                       const Pattern& pattern,
                                       const MatchOptions& options = {});

/// Count-only variant (still bounded by options.limit when non-zero).
size_t CountPatternMatches(const PropertyGraph& graph,
                           const Pattern& pattern,
                           const MatchOptions& options = {});

}  // namespace nous

#endif  // NOUS_MINING_PATTERN_MATCHER_H_
