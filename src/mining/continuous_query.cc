#include "mining/continuous_query.h"

#include <algorithm>
#include <set>

namespace nous {

ContinuousPatternDetector::ContinuousPatternDetector(bool use_vertex_types)
    : use_vertex_types_(use_vertex_types) {}

int ContinuousPatternDetector::RegisterPattern(Pattern pattern,
                                               Callback callback) {
  Registered reg;
  reg.pattern = std::move(pattern);
  reg.callback = std::move(callback);
  queries_.push_back(std::move(reg));
  return static_cast<int>(queries_.size()) - 1;
}

void ContinuousPatternDetector::OnEdgeAdded(const PropertyGraph& graph,
                                            EdgeId edge) {
  const EdgeRecord& rec = graph.Edge(edge);
  for (size_t q = 0; q < queries_.size(); ++q) {
    Registered& reg = queries_[q];
    // Automorphic assignments over the same edge set fire once.
    std::set<std::vector<EdgeId>> seen_edge_sets;
    for (size_t k = 0; k < reg.pattern.edges().size(); ++k) {
      if (reg.pattern.edges()[k].pred != rec.predicate) continue;
      MatchOptions options;
      options.use_vertex_types = use_vertex_types_;
      options.pin_pattern_edge = static_cast<int>(k);
      options.pin_edge = edge;
      options.max_edge_id = edge;  // other edges strictly older
      for (PatternMatch& match :
           MatchPattern(graph, reg.pattern, options)) {
        std::vector<EdgeId> sorted = match.edges;
        std::sort(sorted.begin(), sorted.end());
        if (!seen_edge_sets.insert(sorted).second) continue;
        ++reg.total;
        size_t slot;
        if (!free_slots_.empty()) {
          slot = free_slots_.back();
          free_slots_.pop_back();
        } else {
          slot = active_.size();
          active_.emplace_back();
        }
        Active& active = active_[slot];
        active.query_id = static_cast<int>(q);
        active.match = match;
        active.alive = true;
        for (EdgeId e : match.edges) edge_index_[e].push_back(slot);
        if (reg.callback) {
          ContinuousMatch event;
          event.query_id = static_cast<int>(q);
          event.match = std::move(match);
          event.completed_at = rec.meta.timestamp;
          reg.callback(event);
        }
      }
    }
  }
}

void ContinuousPatternDetector::OnEdgeExpiring(
    const PropertyGraph& /*graph*/, EdgeId edge) {
  auto it = edge_index_.find(edge);
  if (it == edge_index_.end()) return;
  std::vector<size_t> slots = std::move(it->second);
  edge_index_.erase(it);
  for (size_t slot : slots) {
    Active& active = active_[slot];
    if (!active.alive) continue;
    for (EdgeId e : active.match.edges) {
      if (e == edge) continue;
      auto jt = edge_index_.find(e);
      if (jt == edge_index_.end()) continue;
      auto& list = jt->second;
      list.erase(std::remove(list.begin(), list.end(), slot),
                 list.end());
    }
    active.alive = false;
    active.match.edges.clear();
    active.match.vertices.clear();
    free_slots_.push_back(slot);
  }
}

std::vector<PatternMatch> ContinuousPatternDetector::ActiveMatches(
    int query_id) const {
  std::vector<PatternMatch> matches;
  for (const Active& active : active_) {
    if (active.alive && active.query_id == query_id) {
      matches.push_back(active.match);
    }
  }
  return matches;
}

size_t ContinuousPatternDetector::NumActiveMatches(int query_id) const {
  size_t count = 0;
  for (const Active& active : active_) {
    if (active.alive && active.query_id == query_id) ++count;
  }
  return count;
}

size_t ContinuousPatternDetector::TotalMatches(int query_id) const {
  if (query_id < 0 || static_cast<size_t>(query_id) >= queries_.size()) {
    return 0;
  }
  return queries_[static_cast<size_t>(query_id)].total;
}

}  // namespace nous
