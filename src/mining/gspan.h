#ifndef NOUS_MINING_GSPAN_H_
#define NOUS_MINING_GSPAN_H_

#include <vector>

#include "graph/property_graph.h"
#include "mining/miner_config.h"

namespace nous {

/// gSpan-style pattern-growth baseline (§3.5's transactional
/// contrast): mines the window graph level by level, extending only
/// the embeddings of currently frequent patterns (anti-monotone MNI
/// pruning), recomputed from scratch per window. Faster than the
/// Arabesque-style full enumeration when labels are selective, but
/// still pays the full window cost every slide.
///
/// Returns patterns with support >= config.min_support, sorted by
/// support descending. `total_embeddings`, when non-null, receives the
/// number of embeddings materialized across all levels.
std::vector<PatternStats> MineGspan(const PropertyGraph& graph,
                                    const MinerConfig& config,
                                    size_t* total_embeddings = nullptr);

}  // namespace nous

#endif  // NOUS_MINING_GSPAN_H_
