#ifndef NOUS_MINING_SUBGRAPH_ENUM_H_
#define NOUS_MINING_SUBGRAPH_ENUM_H_

#include <functional>
#include <vector>

#include "graph/property_graph.h"
#include "mining/miner_config.h"

namespace nous {

/// Enumerates every connected live-edge subset of size in [1,
/// max_edges] containing `anchor`, optionally restricted to edges with
/// id < anchor. The callback receives each subset once (sorted edge
/// ids). Returns the number of subsets visited (callback count), which
/// is also capped at config.max_subsets_per_edge.
///
/// The `older_only` restriction gives exactly-once global enumeration:
/// every connected subset has a unique maximum edge id, so enumerating
/// per-anchor over all edges (or per arriving edge in the streaming
/// miner, where the new edge is always the maximum) covers each subset
/// exactly once.
size_t EnumerateConnectedSubsets(
    const PropertyGraph& graph, EdgeId anchor, const MinerConfig& config,
    bool older_only,
    const std::function<void(const std::vector<EdgeId>&)>& fn);

/// Accumulates embeddings into per-pattern MNI support counts; shared
/// by the re-enumeration baselines.
class SupportCounter {
 public:
  SupportCounter(const PropertyGraph* graph, bool use_vertex_types);

  void AddEmbedding(const std::vector<EdgeId>& edges);

  /// Folds another counter's per-pattern counts into this one (used to
  /// combine per-worker counters after a parallel enumeration).
  void Merge(const SupportCounter& other);

  /// Patterns meeting `min_support`, sorted by support descending.
  std::vector<PatternStats> Results(size_t min_support) const;

  size_t num_patterns() const { return entries_.size(); }
  size_t total_embeddings() const { return total_embeddings_; }

 private:
  struct Entry {
    Pattern pattern;
    std::vector<std::unordered_map<VertexId, uint32_t>> position_counts;
    size_t embeddings = 0;
  };

  const PropertyGraph* graph_;
  bool use_vertex_types_;
  std::vector<Entry> entries_;
  std::unordered_map<Pattern, size_t, PatternHash> index_;
  size_t total_embeddings_ = 0;
};

/// Canonicalizes a concrete edge set from the graph; assignment (if
/// non-null) receives the graph vertex per canonical position.
Pattern CanonicalizeEdgeSet(const PropertyGraph& graph,
                            const std::vector<EdgeId>& edges,
                            bool use_vertex_types,
                            std::vector<VertexId>* assignment = nullptr);

}  // namespace nous

#endif  // NOUS_MINING_SUBGRAPH_ENUM_H_
