#include "mining/arabesque_sim.h"

#include <memory>

#include "mining/subgraph_enum.h"

namespace nous {

std::vector<PatternStats> MineArabesqueSim(const PropertyGraph& graph,
                                           const MinerConfig& config,
                                           size_t* total_embeddings) {
  SupportCounter counter(&graph, config.use_vertex_types);
  graph.ForEachEdge([&](EdgeId anchor, const EdgeRecord&) {
    EnumerateConnectedSubsets(
        graph, anchor, config, /*older_only=*/true,
        [&counter](const std::vector<EdgeId>& subset) {
          counter.AddEmbedding(subset);
        });
  });
  if (total_embeddings != nullptr) {
    *total_embeddings = counter.total_embeddings();
  }
  return counter.Results(config.min_support);
}

std::vector<PatternStats> MineArabesqueSimParallel(
    const PropertyGraph& graph, const MinerConfig& config,
    ThreadPool* pool, size_t* total_embeddings) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    return MineArabesqueSim(graph, config, total_embeddings);
  }
  std::vector<EdgeId> anchors;
  graph.ForEachEdge(
      [&anchors](EdgeId e, const EdgeRecord&) { anchors.push_back(e); });
  const size_t shards = pool->num_threads();
  std::vector<std::unique_ptr<SupportCounter>> counters;
  counters.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    counters.push_back(std::make_unique<SupportCounter>(
        &graph, config.use_vertex_types));
  }
  for (size_t s = 0; s < shards; ++s) {
    pool->Submit([s, shards, &anchors, &graph, &config, &counters] {
      SupportCounter* counter = counters[s].get();
      for (size_t i = s; i < anchors.size(); i += shards) {
        EnumerateConnectedSubsets(
            graph, anchors[i], config, /*older_only=*/true,
            [counter](const std::vector<EdgeId>& subset) {
              counter->AddEmbedding(subset);
            });
      }
    });
  }
  pool->Wait();
  SupportCounter merged(&graph, config.use_vertex_types);
  for (const auto& counter : counters) merged.Merge(*counter);
  if (total_embeddings != nullptr) {
    *total_embeddings = merged.total_embeddings();
  }
  return merged.Results(config.min_support);
}

}  // namespace nous
