#ifndef NOUS_MINING_PATTERN_H_
#define NOUS_MINING_PATTERN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/dictionary.h"
#include "graph/types.h"

namespace nous {

/// One edge of a pattern: variable ids into the pattern's vertex set.
struct PatternEdge {
  int src = 0;
  PredicateId pred = kInvalidPredicate;
  int dst = 0;

  friend bool operator==(const PatternEdge& a, const PatternEdge& b) {
    return a.src == b.src && a.pred == b.pred && a.dst == b.dst;
  }
};

/// A small connected, directed, edge-labeled (and optionally
/// vertex-typed) subgraph pattern in canonical form. Canonicalization
/// tries every edge ordering (patterns are capped at a handful of
/// edges), renumbers vertices by first appearance, and keeps the
/// lexicographically smallest code — a minimal-DFS-code construction
/// specialized to tiny patterns.
class Pattern {
 public:
  Pattern() = default;

  /// A concrete edge during canonicalization: endpoints are opaque
  /// 64-bit vertex keys (graph VertexIds in practice).
  struct ConcreteEdge {
    uint64_t src;
    PredicateId pred;
    uint64_t dst;
  };

  /// Builds the canonical pattern for `edges`. `vertex_label` supplies
  /// the type label per concrete vertex (return kInvalidType for
  /// untyped mining). If `position_to_vertex` is non-null it receives
  /// the concrete vertex for each canonical variable position — the
  /// assignment MNI support counting needs.
  static Pattern Canonicalize(
      const std::vector<ConcreteEdge>& edges,
      const std::function<TypeId(uint64_t)>& vertex_label,
      std::vector<uint64_t>* position_to_vertex = nullptr);

  const std::vector<PatternEdge>& edges() const { return edges_; }
  const std::vector<TypeId>& vertex_labels() const {
    return vertex_labels_;
  }
  size_t num_edges() const { return edges_.size(); }
  size_t num_vertices() const { return vertex_labels_.size(); }

  /// True when `sub` embeds into this pattern (injective on edges,
  /// consistent on variables, matching labels). Used for closedness.
  bool Contains(const Pattern& sub) const;

  /// Connected (num_edges-1)-edge sub-patterns — what the miner
  /// re-registers when a pattern is demoted (§3.5 reconstruction).
  std::vector<Pattern> SubPatterns() const;

  /// Human-readable form, e.g. "(?0)-[acquired]->(?1) ...".
  std::string ToString(const Dictionary& predicates,
                       const Dictionary* types = nullptr) const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.edges_ == b.edges_ && a.vertex_labels_ == b.vertex_labels_;
  }

  size_t Hash() const;

 private:
  std::vector<PatternEdge> edges_;
  std::vector<TypeId> vertex_labels_;
};

struct PatternHash {
  size_t operator()(const Pattern& p) const { return p.Hash(); }
};

}  // namespace nous

#endif  // NOUS_MINING_PATTERN_H_
