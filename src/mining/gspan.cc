#include "mining/gspan.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "mining/subgraph_enum.h"

namespace nous {

namespace {

struct LevelEntry {
  Pattern pattern;
  std::vector<std::unordered_map<VertexId, uint32_t>> position_counts;
  std::vector<std::vector<EdgeId>> embeddings;

  size_t Support() const {
    if (position_counts.empty() || embeddings.empty()) return 0;
    size_t support = position_counts[0].size();
    for (const auto& counts : position_counts) {
      support = std::min(support, counts.size());
    }
    return support;
  }
};

using Level = std::unordered_map<Pattern, LevelEntry, PatternHash>;

void Accumulate(const PropertyGraph& graph, const MinerConfig& config,
                const std::vector<EdgeId>& subset, Level* level,
                size_t* total) {
  std::vector<VertexId> assignment;
  Pattern p = CanonicalizeEdgeSet(graph, subset, config.use_vertex_types,
                                  &assignment);
  LevelEntry& entry = (*level)[p];
  if (entry.embeddings.empty() && entry.position_counts.empty()) {
    entry.pattern = p;
    entry.position_counts.resize(p.num_vertices());
  }
  for (size_t pos = 0; pos < assignment.size(); ++pos) {
    entry.position_counts[pos][assignment[pos]]++;
  }
  entry.embeddings.push_back(subset);
  ++(*total);
}

}  // namespace

std::vector<PatternStats> MineGspan(const PropertyGraph& graph,
                                    const MinerConfig& config,
                                    size_t* total_embeddings) {
  size_t total = 0;
  // Level 1: every live edge.
  Level level;
  graph.ForEachEdge([&](EdgeId e, const EdgeRecord&) {
    Accumulate(graph, config, {e}, &level, &total);
  });

  std::vector<PatternStats> results;
  auto harvest = [&results, &config](const Level& lv) {
    for (const auto& [pattern, entry] : lv) {
      size_t support = entry.Support();
      if (support < config.min_support) continue;
      PatternStats stats;
      stats.pattern = pattern;
      stats.embeddings = entry.embeddings.size();
      stats.support = support;
      results.push_back(std::move(stats));
    }
  };
  harvest(level);

  for (size_t size = 2; size <= config.max_edges; ++size) {
    Level next;
    std::set<std::vector<EdgeId>> seen;
    for (const auto& [pattern, entry] : level) {
      if (entry.Support() < config.min_support) continue;  // prune
      for (const std::vector<EdgeId>& emb : entry.embeddings) {
        // Extend by any adjacent live edge.
        for (EdgeId in_set : emb) {
          const EdgeRecord& rec = graph.Edge(in_set);
          for (VertexId v : {rec.subject, rec.object}) {
            auto try_extend = [&](EdgeId ext) {
              if (std::find(emb.begin(), emb.end(), ext) != emb.end()) {
                return;
              }
              std::vector<EdgeId> grown = emb;
              grown.push_back(ext);
              std::sort(grown.begin(), grown.end());
              if (!seen.insert(grown).second) return;
              Accumulate(graph, config, grown, &next, &total);
            };
            for (const AdjEntry& a : graph.OutEdges(v)) try_extend(a.edge);
            for (const AdjEntry& a : graph.InEdges(v)) try_extend(a.edge);
          }
        }
      }
    }
    harvest(next);
    level = std::move(next);
  }

  std::sort(results.begin(), results.end(),
            [](const PatternStats& a, const PatternStats& b) {
              return a.support > b.support;
            });
  if (total_embeddings != nullptr) *total_embeddings = total;
  return results;
}

}  // namespace nous
