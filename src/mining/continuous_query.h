#ifndef NOUS_MINING_CONTINUOUS_QUERY_H_
#define NOUS_MINING_CONTINUOUS_QUERY_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/temporal_window.h"
#include "mining/pattern.h"
#include "mining/pattern_matcher.h"

namespace nous {

/// A standing-pattern match event.
struct ContinuousMatch {
  int query_id = 0;
  PatternMatch match;
  /// Timestamp of the edge whose arrival completed the match.
  Timestamp completed_at = 0;
};

/// Continuous (standing) pattern detection over the sliding window —
/// the capability of the authors' EDBT 2015 system the paper cites as
/// [4] and folds into NOUS's querying story. Registered patterns are
/// matched incrementally: when an edge arrives, only matches whose
/// final missing edge is the new edge are searched (every other edge
/// of a completed match must already be in the window), so each match
/// fires exactly once. Expiry retracts active matches.
class ContinuousPatternDetector : public WindowListener {
 public:
  using Callback = std::function<void(const ContinuousMatch&)>;

  explicit ContinuousPatternDetector(bool use_vertex_types = false);

  /// Registers a standing pattern; returns its query id. `callback`
  /// (optional) fires on every new match.
  int RegisterPattern(Pattern pattern, Callback callback = nullptr);

  // WindowListener:
  void OnEdgeAdded(const PropertyGraph& graph, EdgeId edge) override;
  void OnEdgeExpiring(const PropertyGraph& graph, EdgeId edge) override;

  /// Matches currently alive in the window, per query.
  std::vector<PatternMatch> ActiveMatches(int query_id) const;
  size_t NumActiveMatches(int query_id) const;
  /// Total matches ever fired for the query (including expired ones).
  size_t TotalMatches(int query_id) const;

 private:
  struct Registered {
    Pattern pattern;
    Callback callback;
    size_t total = 0;
  };
  struct Active {
    int query_id = 0;
    PatternMatch match;
    bool alive = false;
  };

  bool use_vertex_types_;
  std::vector<Registered> queries_;
  std::vector<Active> active_;
  std::vector<size_t> free_slots_;
  std::unordered_map<EdgeId, std::vector<size_t>> edge_index_;
};

}  // namespace nous

#endif  // NOUS_MINING_CONTINUOUS_QUERY_H_
