#ifndef NOUS_COMMON_STRING_UTIL_H_
#define NOUS_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nous {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True when every character is an ASCII digit (and text is non-empty).
bool IsDigits(std::string_view text);

/// True when the first character is an ASCII uppercase letter.
bool IsCapitalized(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// ---- Checked numeric parsing ----
//
// Strict replacements for std::atoi/std::atoll in flag and request
// parsing: the whole input (after optional surrounding whitespace)
// must be a number, and it must fit the output type. On failure the
// output is untouched and false is returned — callers reject the
// input instead of silently running with atoi's 0 / wrapped value.

/// Parses a decimal integer with optional leading '-'/'+'.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a non-negative decimal integer (no sign accepted).
bool ParseUint64(std::string_view text, uint64_t* out);

/// ParseUint64 bounded to [min, max]; rejects values outside.
bool ParseSize(std::string_view text, size_t* out, size_t min = 0,
               size_t max = SIZE_MAX);

/// Parses a TCP port: an integer in [1, 65535]. Port 70000 is an
/// error here, not 4464 (the uint16_t wraparound atoi produced).
bool ParsePort(std::string_view text, uint16_t* out);

/// Parses a finite floating-point number (strtod grammar, whole
/// input consumed).
bool ParseDouble(std::string_view text, double* out);

}  // namespace nous

#endif  // NOUS_COMMON_STRING_UTIL_H_
