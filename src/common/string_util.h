#ifndef NOUS_COMMON_STRING_UTIL_H_
#define NOUS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace nous {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True when every character is an ASCII digit (and text is non-empty).
bool IsDigits(std::string_view text);

/// True when the first character is an ASCII uppercase letter.
bool IsCapitalized(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace nous

#endif  // NOUS_COMMON_STRING_UTIL_H_
