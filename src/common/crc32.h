#ifndef NOUS_COMMON_CRC32_H_
#define NOUS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nous {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used by the WAL and checkpoint framing. Software
/// table-driven; ~1 GB/s, plenty for the ingest path. `seed` chains
/// incremental computation: Crc32c(b, Crc32c(a)) == Crc32c(a+b).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view text, uint32_t seed = 0) {
  return Crc32c(text.data(), text.size(), seed);
}

}  // namespace nous

#endif  // NOUS_COMMON_CRC32_H_
