#ifndef NOUS_COMMON_BINARY_IO_H_
#define NOUS_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace nous {

/// Append-only little-endian binary encoder for checkpoint and WAL
/// payloads. Doubles are bit-copied, so every serialized value
/// round-trips exactly — the foundation of the recovery-equivalence
/// invariant (DESIGN.md §5.10).
class BinaryWriter {
 public:
  void U8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }

  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendLe(bits);
  }

  /// Length-prefixed byte string.
  void Str(std::string_view text) {
    U64(text.size());
    buffer_.append(text.data(), text.size());
  }

  /// Raw bytes, no length prefix (caller frames them).
  void Raw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  void F64Array(const std::vector<double>& values) {
    U64(values.size());
    for (double v : values) F64(v);
  }

  const std::string& data() const { return buffer_; }
  std::string&& Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void AppendLe(T v) {
    char bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    buffer_.append(bytes, sizeof(T));
  }

  std::string buffer_;
};

/// Bounds-checked decoder over a byte view. Every read reports
/// OutOfRange instead of walking past the end, so a truncated or
/// corrupt checkpoint surfaces as a recoverable Status — never UB.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* out);
  Status U32(uint32_t* out);
  Status U64(uint64_t* out);
  Status I64(int64_t* out);
  Status F64(double* out);
  Status Str(std::string* out);
  Status F64Array(std::vector<double>* out);

  /// Advances past `bytes` without copying them.
  Status Skip(size_t bytes);

  /// Reads a u64 count and validates it against the bytes remaining
  /// (each element needs at least `min_element_bytes`), so a corrupt
  /// length cannot trigger a pathological allocation.
  Status Count(uint64_t* out, size_t min_element_bytes);

  bool AtEnd() const { return offset_ >= data_.size(); }
  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

 private:
  Status Need(size_t bytes) const;

  std::string_view data_;
  size_t offset_ = 0;
};

}  // namespace nous

#endif  // NOUS_COMMON_BINARY_IO_H_
