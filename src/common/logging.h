#ifndef NOUS_COMMON_LOGGING_H_
#define NOUS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace nous {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kInfo. Thread-compatible: set once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is below the
/// configured level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define NOUS_LOG(level)                                               \
  (::nous::LogLevel::k##level < ::nous::GetLogLevel())                \
      ? (void)0                                                       \
      : (void)::nous::internal::LogMessage(::nous::LogLevel::k##level, \
                                           __FILE__, __LINE__)        \
            .stream()

/// Always-on invariant check; aborts with a message when `cond` fails.
#define NOUS_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  ::nous::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace internal {

/// Streams a fatal-check message and aborts the process on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nous

#endif  // NOUS_COMMON_LOGGING_H_
