#ifndef NOUS_COMMON_LOGGING_H_
#define NOUS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace nous {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kInfo, overridable without a rebuild by setting the
/// NOUS_LOG_LEVEL environment variable (debug/info/warning/error)
/// before startup. Thread-compatible: set once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name (case-insensitive: "debug", "info",
/// "warning"/"warn", "error"); nullopt on anything else.
std::optional<LogLevel> ParseLogLevel(std::string_view name);

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is below the
/// configured level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns the fully streamed expression into void so it can sit in the
/// false branch of the level-check ternary ('&' binds looser than
/// '<<' but tighter than '?:').
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define NOUS_LOG(level)                                               \
  (::nous::LogLevel::k##level < ::nous::GetLogLevel())                \
      ? (void)0                                                       \
      : ::nous::internal::LogVoidify() &                              \
            ::nous::internal::LogMessage(::nous::LogLevel::k##level,  \
                                         __FILE__, __LINE__)          \
                .stream()

/// Always-on invariant check; aborts with a message when `cond` fails.
#define NOUS_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  ::nous::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace internal {

/// Streams a fatal-check message and aborts the process on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nous

#endif  // NOUS_COMMON_LOGGING_H_
