#ifndef NOUS_COMMON_FAULT_INJECTION_H_
#define NOUS_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace nous {

/// What an armed fault point does when it fires.
enum class FaultKind {
  kFail,      ///< the instrumented call reports failure
  kTorn,      ///< a write persists only a prefix, then reports failure
  kTruncate,  ///< `arg` bytes are chopped off the tail on close
  kDelay,     ///< the call stalls for `arg` milliseconds first
};

/// A fired fault, as seen by the instrumented call site.
struct Fault {
  FaultKind kind = FaultKind::kFail;
  /// kTruncate: bytes to chop; kDelay: milliseconds; kTorn: bytes of
  /// the write to keep (0 = half).
  int64_t arg = 0;
};

/// Deterministic fault-injection registry. Production code plants named
/// fault *points* (`FaultInjector::Global().Hit("wal_fsync")`); tests —
/// or the NOUS_FAULTS environment variable — *arm* those points with a
/// fault kind and the exact hit ordinal on which to fire. Because
/// firing is keyed to hit counts, never wall time or randomness, a
/// failing run replays identically under a debugger.
///
/// Spec grammar (NOUS_FAULTS or Configure()):
///   spec   := point '=' kind [':' arg] '@' nth ['+'] (';' spec)*
///   kind   := 'fail' | 'torn' | 'truncate' | 'delay'
///   nth    := 1-based hit ordinal; trailing '+' = that hit and every
///             later one (sticky), else exactly that hit once
/// e.g. NOUS_FAULTS="wal_fsync=fail@3;http_recv=delay:200@1+"
///
/// Unarmed points cost one relaxed atomic load; the registry is
/// thread-safe.
class FaultInjector {
 public:
  /// Process-wide instance, configured from NOUS_FAULTS on first use.
  static FaultInjector& Global();

  /// Parses and arms a spec string (see grammar above). Points
  /// accumulate; errors leave previously armed points in place.
  Status Configure(const std::string& spec) EXCLUDES(mutex_);

  /// Arms one point programmatically. `nth` is 1-based; `sticky` fires
  /// on every hit >= nth instead of exactly the nth.
  void Arm(const std::string& point, FaultKind kind, uint64_t nth,
           bool sticky = false, int64_t arg = 0) EXCLUDES(mutex_);

  /// Removes one armed point (hit counters are kept).
  void Disarm(const std::string& point) EXCLUDES(mutex_);

  /// Removes every armed point and zeroes all hit counters.
  void Reset() EXCLUDES(mutex_);

  /// Registers one hit of `point`; returns the fault if this hit
  /// fires. Call sites decide what each kind means for them.
  std::optional<Fault> Hit(std::string_view point) EXCLUDES(mutex_);

  /// Total hits recorded for a point. Hits are only tracked while at
  /// least one point is armed (the unarmed fast path skips counting).
  uint64_t HitCount(std::string_view point) const EXCLUDES(mutex_);

 private:
  struct ArmedFault {
    FaultKind kind = FaultKind::kFail;
    uint64_t nth = 1;
    bool sticky = false;
    int64_t arg = 0;
  };

  FaultInjector() = default;

  /// Fast path: false while nothing was ever armed, so unarmed hits
  /// skip the lock and the counter map entirely.
  std::atomic<bool> any_armed_{false};
  mutable AnnotatedMutex mutex_;
  std::unordered_map<std::string, ArmedFault> armed_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, uint64_t> hits_ GUARDED_BY(mutex_);
};

}  // namespace nous

#endif  // NOUS_COMMON_FAULT_INJECTION_H_
