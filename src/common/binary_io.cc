#include "common/binary_io.h"

namespace nous {

Status BinaryReader::Need(size_t bytes) const {
  if (data_.size() - offset_ < bytes) {
    return Status::OutOfRange("binary decode: need " + std::to_string(bytes) +
                              " bytes at offset " + std::to_string(offset_) +
                              ", have " + std::to_string(remaining()));
  }
  return Status::Ok();
}

Status BinaryReader::U8(uint8_t* out) {
  NOUS_RETURN_IF_ERROR(Need(1));
  *out = static_cast<uint8_t>(data_[offset_++]);
  return Status::Ok();
}

Status BinaryReader::U32(uint32_t* out) {
  NOUS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 4;
  *out = v;
  return Status::Ok();
}

Status BinaryReader::U64(uint64_t* out) {
  NOUS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 8;
  *out = v;
  return Status::Ok();
}

Status BinaryReader::I64(int64_t* out) {
  uint64_t bits;
  NOUS_RETURN_IF_ERROR(U64(&bits));
  *out = static_cast<int64_t>(bits);
  return Status::Ok();
}

Status BinaryReader::F64(double* out) {
  uint64_t bits;
  NOUS_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::Ok();
}

Status BinaryReader::Str(std::string* out) {
  uint64_t size;
  NOUS_RETURN_IF_ERROR(Count(&size, 1));
  out->assign(data_.data() + offset_, size);
  offset_ += size;
  return Status::Ok();
}

Status BinaryReader::F64Array(std::vector<double>* out) {
  uint64_t size;
  NOUS_RETURN_IF_ERROR(Count(&size, sizeof(double)));
  out->clear();
  out->reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    double v;
    NOUS_RETURN_IF_ERROR(F64(&v));
    out->push_back(v);
  }
  return Status::Ok();
}

Status BinaryReader::Skip(size_t bytes) {
  NOUS_RETURN_IF_ERROR(Need(bytes));
  offset_ += bytes;
  return Status::Ok();
}

Status BinaryReader::Count(uint64_t* out, size_t min_element_bytes) {
  NOUS_RETURN_IF_ERROR(U64(out));
  if (min_element_bytes > 0 && *out > remaining() / min_element_bytes) {
    return Status::DataLoss("binary decode: count " + std::to_string(*out) +
                            " at offset " + std::to_string(offset_ - 8) +
                            " exceeds remaining payload");
  }
  return Status::Ok();
}

}  // namespace nous
