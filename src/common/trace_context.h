#ifndef NOUS_COMMON_TRACE_CONTEXT_H_
#define NOUS_COMMON_TRACE_CONTEXT_H_

#include <cstdint>

namespace nous {

/// Identity of the currently-executing span, carried in a thread-local
/// and explicitly propagated across ThreadPool task boundaries so that
/// work fanned out to pool threads (e.g. IngestBatch's parallel
/// extraction) parents correctly under the submitting span.
///
/// This lives in common (not obs) because ThreadPool must capture and
/// restore it, and common cannot depend on obs. The obs layer
/// (TraceSpan) is the only producer of non-trivial contexts.
struct TraceContext {
  /// 0 means "no active trace".
  uint64_t trace_id = 0;
  /// Id of the innermost active span; new spans use this as parent.
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// Returns the calling thread's current trace context (all-zero when
/// no span is active on this thread).
TraceContext CurrentTraceContext();

/// Overwrites the calling thread's current trace context. Prefer
/// TraceContextScope; this exists for RAII types that must interleave
/// save/restore with other work (TraceSpan).
void SetCurrentTraceContext(const TraceContext& context);

/// Process-unique, never-zero id source for trace and span ids.
uint64_t NextTraceId();

/// Small dense index for the calling thread (0, 1, 2, ... in first-call
/// order). Used as the `tid` of trace events so per-thread tracks render
/// compactly in trace viewers; std::thread::id is not an integer.
uint32_t TraceThreadIndex();

/// Microseconds since an arbitrary process-local steady epoch. All span
/// timestamps share this epoch, so exported traces are internally
/// consistent (monotonic, immune to wall-clock steps).
uint64_t TraceNowMicros();

/// RAII: installs `context` as the calling thread's current trace
/// context and restores the previous one on destruction. ThreadPool
/// wraps every submitted task in one of these, capturing the
/// submitter's context.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context)
      : saved_(CurrentTraceContext()) {
    SetCurrentTraceContext(context);
  }
  ~TraceContextScope() { SetCurrentTraceContext(saved_); }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace nous

#endif  // NOUS_COMMON_TRACE_CONTEXT_H_
