#ifndef NOUS_COMMON_HISTOGRAM_H_
#define NOUS_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace nous {

/// Accumulates scalar samples and reports summary statistics and
/// quantiles. Used by the benchmark harnesses to summarize latency and
/// confidence distributions (e.g., Figure 2's per-fact probabilities).
class Histogram {
 public:
  Histogram() = default;

  void Add(double value);
  void Clear();

  size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double Mean() const;
  double Stddev() const;
  double Sum() const;

  /// Quantile in [0,1] by nearest-rank on the sorted samples. Returns 0
  /// on an empty histogram.
  double Quantile(double q) const;

  /// Counts of samples per fixed-width bucket spanning [lo, hi).
  std::vector<size_t> Bucketize(double lo, double hi, size_t buckets) const;

  /// One-line summary: count/mean/p50/p90/p99/max.
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace nous

#endif  // NOUS_COMMON_HISTOGRAM_H_
