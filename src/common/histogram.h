#ifndef NOUS_COMMON_HISTOGRAM_H_
#define NOUS_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nous {

/// Accumulates scalar samples and reports summary statistics and
/// quantiles. Used by the benchmark harnesses to summarize latency and
/// confidence distributions (e.g., Figure 2's per-fact probabilities).
/// Memory grows with the sample count; long-running services should
/// use FixedHistogram instead.
class Histogram {
 public:
  Histogram() = default;

  void Add(double value);
  void Clear();

  /// Appends every sample of `other` (aggregating per-thread
  /// histograms after a parallel run).
  void Merge(const Histogram& other);

  size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double Mean() const;
  double Stddev() const;
  double Sum() const;

  /// Quantile by nearest-rank on the sorted samples. Returns 0 on an
  /// empty histogram, the sole sample on a single-sample histogram;
  /// q <= 0 yields the minimum and q >= 1 the maximum (non-finite q is
  /// treated as 0).
  double Quantile(double q) const;

  /// Counts of samples per fixed-width bucket spanning [lo, hi).
  std::vector<size_t> Bucketize(double lo, double hi, size_t buckets) const;

  /// One-line summary: count/mean/p50/p90/p99/max.
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Bounded-memory histogram over fixed bucket boundaries: O(buckets)
/// storage regardless of how many samples are added, so a
/// continuously running service can record latencies indefinitely.
/// Bucket i counts samples with value <= upper_bounds[i] (first
/// matching bucket); one implicit overflow bucket catches the rest —
/// the Prometheus "le"/"+Inf" convention. Quantiles are estimated by
/// linear interpolation within the containing bucket, clamped to the
/// observed [min, max].
class FixedHistogram {
 public:
  /// Empty bounds means a single overflow bucket (count/sum/min/max
  /// still exact; quantiles degrade to the min..max line).
  explicit FixedHistogram(std::vector<double> upper_bounds = {});

  /// `count` buckets at start, start*factor, start*factor^2, ...
  /// (factor > 1). The standard shape for latency metrics.
  static FixedHistogram Exponential(double start, double factor,
                                    size_t count);

  void Add(double value);
  void Clear();

  /// Accumulates `other` into this histogram. Both must have identical
  /// bucket boundaries (aggregating per-thread metrics).
  void Merge(const FixedHistogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  /// Estimated quantile; same edge conventions as Histogram::Quantile.
  double Quantile(double q) const;

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; size upper_bounds().size() + 1, the final
  /// entry being the overflow (+Inf) bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// One-line summary: count/mean/p50/p90/p99/max.
  std::string Summary() const;

 private:
  std::vector<double> upper_bounds_;  // ascending
  std::vector<uint64_t> counts_;      // upper_bounds_.size() + 1
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace nous

#endif  // NOUS_COMMON_HISTOGRAM_H_
