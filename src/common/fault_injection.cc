#include "common/fault_injection.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace nous {

namespace {

std::optional<FaultKind> ParseKind(std::string_view name) {
  if (name == "fail") return FaultKind::kFail;
  if (name == "torn") return FaultKind::kTorn;
  if (name == "truncate") return FaultKind::kTruncate;
  if (name == "delay") return FaultKind::kDelay;
  return std::nullopt;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();  // lint: new-ok(process-lifetime singleton)
    if (const char* spec = std::getenv("NOUS_FAULTS");
        spec != nullptr && spec[0] != '\0') {
      // Env errors are non-fatal: a bad spec disables itself loudly on
      // stderr rather than crashing the instrumented process.
      Status status = injector->Configure(spec);
      if (!status.ok()) {
        std::fprintf(stderr, "NOUS_FAULTS ignored: %s\n",
                     status.ToString().c_str());
      }
    }
    return injector;
  }();
  return *instance;
}

Status FaultInjector::Configure(const std::string& spec) {
  for (const std::string& entry : Split(spec, ';')) {
    std::string trimmed(Trim(entry));
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    size_t at = trimmed.rfind('@');
    if (eq == std::string::npos || at == std::string::npos || at < eq) {
      return Status::InvalidArgument(
          "fault spec needs point=kind[:arg]@nth[+]: " + trimmed);
    }
    std::string point = trimmed.substr(0, eq);
    std::string kind_text = trimmed.substr(eq + 1, at - eq - 1);
    std::string nth_text = trimmed.substr(at + 1);
    int64_t arg = 0;
    if (size_t colon = kind_text.find(':'); colon != std::string::npos) {
      arg = std::atoll(kind_text.c_str() + colon + 1);
      kind_text = kind_text.substr(0, colon);
    }
    auto kind = ParseKind(kind_text);
    if (!kind.has_value()) {
      return Status::InvalidArgument("unknown fault kind: " + kind_text);
    }
    bool sticky = !nth_text.empty() && nth_text.back() == '+';
    if (sticky) nth_text.pop_back();
    uint64_t nth = static_cast<uint64_t>(std::atoll(nth_text.c_str()));
    if (nth == 0) {
      return Status::InvalidArgument("fault ordinal must be >= 1: " +
                                     trimmed);
    }
    Arm(point, *kind, nth, sticky, arg);
  }
  return Status::Ok();
}

void FaultInjector::Arm(const std::string& point, FaultKind kind,
                        uint64_t nth, bool sticky, int64_t arg) {
  MutexLock lock(mutex_);
  armed_[point] = ArmedFault{kind, nth, sticky, arg};
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(mutex_);
  armed_.erase(point);
}

void FaultInjector::Reset() {
  MutexLock lock(mutex_);
  armed_.clear();
  hits_.clear();
  any_armed_.store(false, std::memory_order_release);
}

std::optional<Fault> FaultInjector::Hit(std::string_view point) {
  if (!any_armed_.load(std::memory_order_acquire)) return std::nullopt;
  MutexLock lock(mutex_);
  uint64_t count = ++hits_[std::string(point)];
  auto it = armed_.find(std::string(point));
  if (it == armed_.end()) return std::nullopt;
  const ArmedFault& armed = it->second;
  bool fires =
      armed.sticky ? count >= armed.nth : count == armed.nth;
  if (!fires) return std::nullopt;
  return Fault{armed.kind, armed.arg};
}

uint64_t FaultInjector::HitCount(std::string_view point) const {
  MutexLock lock(mutex_);
  auto it = hits_.find(std::string(point));
  return it == hits_.end() ? 0 : it->second;
}

}  // namespace nous
