#ifndef NOUS_COMMON_RANDOM_H_
#define NOUS_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace nous {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. All randomized components of NOUS take an explicit Rng so
/// experiments are reproducible run-to-run.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound) {
    // Lemire-style rejection-free mapping with negligible bias for the
    // bounds used in this codebase (bound << 2^64).
    __uint128_t product = static_cast<__uint128_t>(Next()) * bound;
    return static_cast<uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal deviate (Box–Muller, one value per call).
  double Gaussian() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Samples an index from unnormalized non-negative weights. Returns
  /// weights.size()-1 on degenerate input (all-zero weights).
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = UniformDouble() * total;
    for (size_t i = 0; i + 1 < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Zipf-distributed integer in [0, n) with exponent `s` (s >= 0).
  /// O(n) per call; convenient for small n or infrequent draws. Hot
  /// loops should use ZipfSampler below (O(log n) after setup).
  uint64_t Zipf(uint64_t n, double s) {
    if (n <= 1) return 0;
    if (s <= 1e-9) return UniformInt(n);
    double total = 0;
    for (uint64_t i = 0; i < n; ++i) {
      total += std::pow(static_cast<double>(i + 1), -s);
    }
    double r = UniformDouble() * total;
    for (uint64_t i = 0; i < n; ++i) {
      r -= std::pow(static_cast<double>(i + 1), -s);
      if (r <= 0) return i;
    }
    return n - 1;
  }

  /// Copies the 256-bit generator state out (checkpointing): restoring
  /// it with RestoreState resumes the exact same deviate sequence.
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }

  /// Restores a state captured by SaveState.
  void RestoreState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    using std::swap;
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks one element uniformly; items must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[UniformInt(items.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Precomputed bounded-Zipf sampler: O(n) setup, O(log n) per draw.
/// Valid for any exponent s >= 0 (s == 0 degenerates to uniform).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s) : cdf_(n == 0 ? 1 : n) {
    double total = 0;
    for (size_t i = 0; i < cdf_.size(); ++i) {
      total += std::pow(static_cast<double>(i + 1), -s);
      cdf_[i] = total;
    }
  }

  uint64_t Sample(Rng* rng) const {
    double r = rng->UniformDouble() * cdf_.back();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < r) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace nous

#endif  // NOUS_COMMON_RANDOM_H_
