#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"
#include "common/trace_context.h"

namespace nous {

void WaitGroup::Add(size_t n) {
  MutexLock lock(mutex_);
  pending_ += n;
}

void WaitGroup::Done(size_t n) {
  MutexLock lock(mutex_);
  NOUS_CHECK(pending_ >= n) << "WaitGroup::Done without matching Add";
  pending_ -= n;
  if (pending_ == 0) done_.notify_all();
}

void WaitGroup::Wait() {
  // Explicit predicate loop (not a wait lambda): the thread-safety
  // analysis cannot see the capability inside a lambda body, but it
  // can here.
  UniqueLock lock(mutex_);
  while (pending_ != 0) done_.wait(lock.std_lock());
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task, WaitGroup* wait_group) {
  // Capture the submitter's trace context so spans opened inside the
  // task parent under the submitting span (see common/trace_context.h).
  // Skipped when no trace is active to keep untraced submission free
  // of the extra std::function hop.
  const TraceContext trace_context = CurrentTraceContext();
  if (trace_context.valid()) {
    auto inner = std::move(task);
    task = [inner = std::move(inner), trace_context] {
      TraceContextScope scope(trace_context);
      inner();
    };
  }
  if (wait_group != nullptr) {
    wait_group->Add(1);
    auto inner = std::move(task);
    task = [inner = std::move(inner), wait_group] {
      inner();
      wait_group->Done(1);
    };
  }
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

size_t ThreadPool::QueueDepth() {
  MutexLock lock(mutex_);
  return tasks_.size();
}

void ThreadPool::Wait() {
  UniqueLock lock(mutex_);
  while (in_flight_ != 0) all_done_.wait(lock.std_lock());
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunked dynamic scheduling over a shared cursor. Completion is
  // counted in processed *items* (via a batch-local WaitGroup), not in
  // helper tasks: a helper that runs after the range is exhausted is a
  // no-op, and the caller drains chunks itself, so the loop finishes
  // even when every worker is busy with unrelated (or ancestor) work.
  const size_t chunk = std::max<size_t>(1, n / (threads_.size() * 8));
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  auto items_done = std::make_shared<WaitGroup>();
  items_done->Add(n);
  // Helpers may outlive this frame (they can be dequeued after the
  // range is drained and ParallelFor returned), so they capture `fn`
  // by pointer and must check the cursor before dereferencing it.
  const std::function<void(size_t)>* fn_ptr = &fn;
  auto drain = [cursor, items_done, chunk, n, fn_ptr] {
    while (true) {
      size_t start = cursor->fetch_add(chunk);
      if (start >= n) break;
      size_t end = std::min(n, start + chunk);
      for (size_t i = start; i < end; ++i) (*fn_ptr)(i);
      items_done->Done(end - start);
    }
  };
  size_t helpers = std::min(threads_.size(), (n + chunk - 1) / chunk);
  for (size_t w = 0; w < helpers; ++w) Submit(drain);
  drain();
  items_done->Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!shutdown_ && tasks_.empty()) {
        task_available_.wait(lock.std_lock());
      }
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace nous
