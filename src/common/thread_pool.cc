#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace nous {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunked dynamic scheduling: one shared atomic cursor, pool-width tasks.
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  const size_t chunk = std::max<size_t>(1, n / (threads_.size() * 8));
  size_t workers = std::min(threads_.size(), n);
  for (size_t w = 0; w < workers; ++w) {
    Submit([cursor, chunk, n, &fn] {
      while (true) {
        size_t start = cursor->fetch_add(chunk);
        if (start >= n) break;
        size_t end = std::min(n, start + chunk);
        for (size_t i = start; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace nous
