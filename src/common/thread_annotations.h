#ifndef NOUS_COMMON_THREAD_ANNOTATIONS_H_
#define NOUS_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

// Clang thread-safety annotations (-Wthread-safety) plus annotation-
// aware mutex wrappers. Locking contracts that PR 2 wrote down in
// comments become compiler-checked here: a member declared
// GUARDED_BY(mu) cannot be touched without holding `mu`, a method
// declared REQUIRES(mu) cannot be called without it, and the build
// breaks — under Clang — before any sanitizer ever runs. Under GCC
// every macro expands to nothing and the wrappers degrade to plain
// std::mutex / std::shared_mutex forwarding.
//
// Usage rules (DESIGN.md "Static analysis & locking contracts"):
//  - Declare shared state `T member_ GUARDED_BY(mutex_);`.
//  - Methods that expect the caller to hold the lock declare
//    REQUIRES(mutex_) (exclusive) or REQUIRES_SHARED(mutex_), and by
//    repo convention are named *Locked or *Unlocked (enforced by
//    tools/nous_lint.py).
//  - Acquire with the RAII guards below (MutexLock, ReaderMutexLock,
//    WriterMutexLock, UniqueLock) — std::lock_guard/std::unique_lock
//    are invisible to the analysis and will produce false positives.
//  - Expose a mutex through an accessor annotated
//    RETURN_CAPABILITY(mutex_) so lock sites and REQUIRES clauses
//    resolve to the same capability across class boundaries.
//  - The analysis does not propagate capabilities into lambda bodies;
//    hoist guarded reads out of lambdas or annotate the lambda with
//    NO_THREAD_SAFETY_ANALYSIS and a justifying comment.

#if defined(__clang__)
#define NOUS_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define NOUS_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex" names the
/// kind in diagnostics).
#define CAPABILITY(x) NOUS_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY NOUS_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member may only be accessed while holding the given mutex.
#define GUARDED_BY(x) NOUS_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* may only be accessed under the mutex.
#define PT_GUARDED_BY(x) NOUS_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function requires the caller to hold the mutex exclusively.
#define REQUIRES(...) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function requires the caller to hold at least a shared lock.
#define REQUIRES_SHARED(...) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex exclusively and does not release it.
#define ACQUIRE(...) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function acquires the mutex in shared mode.
#define ACQUIRE_SHARED(...) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the mutex (any mode for scoped capabilities).
#define RELEASE(...) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function releases a shared hold of the mutex.
#define RELEASE_SHARED(...) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function attempts the lock; first argument is the success value.
#define TRY_ACQUIRE(...) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...)                       \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(                 \
      try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the mutex (the function acquires it itself);
/// catches self-deadlock at compile time.
#define EXCLUDES(...) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (informs the
/// analysis without acquiring).
#define ASSERT_CAPABILITY(x) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Accessor returns a reference to the given mutex, so locking the
/// accessor's result counts as locking the underlying capability.
#define RETURN_CAPABILITY(x) \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Requires a
/// justifying comment at the use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  NOUS_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace nous {

class UniqueLock;

/// std::mutex with thread-safety annotations. Satisfies the standard
/// Lockable requirements (lowercase methods) so unannotated code —
/// tests, std::condition_variable_any — still interoperates, but
/// annotated translation units must use the RAII guards below: the
/// analysis only credits acquisitions it can see.
class CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;

  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class UniqueLock;  // needs the native handle for CV waits

  std::mutex mu_;  // lint: unguarded(this member IS the capability)
};

/// std::shared_mutex with thread-safety annotations. Writers use
/// WriterMutexLock (or lock()/unlock()); readers use ReaderMutexLock
/// (or lock_shared()/unlock_shared()).
class CAPABILITY("shared_mutex") AnnotatedSharedMutex {
 public:
  AnnotatedSharedMutex() = default;

  AnnotatedSharedMutex(const AnnotatedSharedMutex&) = delete;
  AnnotatedSharedMutex& operator=(const AnnotatedSharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;  // lint: unguarded(this member IS the capability)
};

/// RAII exclusive lock over an AnnotatedMutex (std::lock_guard
/// replacement that the analysis understands).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex& mu_;
};

/// RAII exclusive lock compatible with std::condition_variable: wraps
/// a std::unique_lock over the mutex's native handle and exposes it
/// via std_lock() for cv.wait(...). Guarded-state predicates belong in
/// a `while (...) cv.wait(lock.std_lock());` loop in the enclosing
/// function, where the analysis can see the capability — not in a wait
/// lambda, which it cannot analyze.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(AnnotatedMutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// The underlying lock, for std::condition_variable::wait. The wait
  /// releases and reacquires internally; from the caller's point of
  /// view the capability is held before and after, which matches what
  /// the analysis assumes.
  std::unique_lock<std::mutex>& std_lock() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) lock over an AnnotatedSharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(AnnotatedSharedMutex& mu) ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  AnnotatedSharedMutex& mu_;
};

/// RAII shared (reader) lock over an AnnotatedSharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(AnnotatedSharedMutex& mu) ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  AnnotatedSharedMutex& mu_;
};

}  // namespace nous

#endif  // NOUS_COMMON_THREAD_ANNOTATIONS_H_
