#ifndef NOUS_COMMON_STATUS_H_
#define NOUS_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>

namespace nous {

/// Error categories used across the NOUS library. Library code reports
/// failures through Status / Result<T> rather than exceptions, following
/// the conventions of storage-engine codebases.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kDataLoss,
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. The OK state carries no
/// allocation; error states carry a code and a message.
///
/// Class-level [[nodiscard]]: every function returning a Status by
/// value inherits must-use semantics, so a silently dropped ingest or
/// durability failure is a compile warning (-Werror in CI) — and the
/// nous-status-discard clang-tidy check catches the discards the
/// builtin warning misses (ternaries, casts that re-materialize the
/// Status). Intentional discards must say so with a (void) cast and a
/// comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define NOUS_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::nous::Status _status = (expr);              \
    if (!_status.ok()) return _status;            \
  } while (false)

/// Aborts the process when `expr` evaluates to a non-OK Status. For
/// tests, benches, and example binaries where a failure is a bug in
/// the harness itself, never a condition to handle — the companion of
/// [[nodiscard]] Status for code with no caller to propagate to.
#define NOUS_CHECK_OK(expr)                                          \
  do {                                                               \
    ::nous::Status _nous_check_status = (expr);                      \
    if (!_nous_check_status.ok()) {                                  \
      std::fprintf(stderr, "%s:%d: NOUS_CHECK_OK(%s) failed: %s\n",  \
                   __FILE__, __LINE__, #expr,                        \
                   _nous_check_status.ToString().c_str());           \
      std::abort();                                                  \
    }                                                                \
  } while (false)

}  // namespace nous

#endif  // NOUS_COMMON_STATUS_H_
