#include "common/crc32.h"

#include <array>

namespace nous {

namespace {

/// 8-entry-per-byte slicing table for reflected CRC-32C.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t k = 1; k < t.size(); ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  // Slicing-by-8 over the bulk, byte-at-a-time for head/tail.
  while (size >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][crc & 0xFF] ^ t[6][(crc >> 8) & 0xFF] ^
          t[5][(crc >> 16) & 0xFF] ^ t[4][crc >> 24] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace nous
