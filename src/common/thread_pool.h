#ifndef NOUS_COMMON_THREAD_POOL_H_
#define NOUS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace nous {

/// Per-batch completion token: a caller Add()s the amount of work it
/// is about to hand out, workers Done() it as they finish, and Wait()
/// blocks until the balance returns to zero. Unlike ThreadPool::Wait()
/// (which observes every task in the pool), a WaitGroup tracks only
/// its own batch, so independent callers sharing one pool never see
/// each other's work.
class WaitGroup {
 public:
  WaitGroup() = default;

  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  /// Registers `n` units of pending work. Call before the work can
  /// possibly complete.
  void Add(size_t n = 1);

  /// Marks `n` units complete.
  void Done(size_t n = 1);

  /// Blocks until the pending count reaches zero.
  void Wait();

 private:
  AnnotatedMutex mutex_;
  std::condition_variable done_;
  size_t pending_ GUARDED_BY(mutex_) = 0;
};

/// Fixed-size worker pool. Stands in for the distributed workers of the
/// paper's Spark deployment: ingest extraction, the BPR trainer, the
/// streaming-miner baseline, and the HTTP server all shard work across
/// pool threads.
///
/// Concurrency contract: Submit() and ParallelFor() may be called from
/// any number of threads at once. ParallelFor tracks its own batch with
/// a private completion count (not the pool-wide one), and the calling
/// thread participates in draining the iteration space, so concurrent
/// and nested ParallelFor calls always make progress — even on a pool
/// whose workers are all busy.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw. When `wait_group` is
  /// non-null it is Add(1)-ed before enqueue and Done(1)-ed after the
  /// task runs, so the caller can Wait() for just its own batch.
  ///
  /// The submitter's TraceContext is captured at enqueue time and
  /// installed around the task, so spans opened inside pool tasks
  /// parent under the span that submitted them.
  void Submit(std::function<void()> task, WaitGroup* wait_group = nullptr);

  /// Blocks until every task submitted to the pool (by any caller) has
  /// finished. Prefer a WaitGroup when other callers share the pool.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for
  /// completion. The calling thread drains chunks alongside the
  /// workers; helper tasks that arrive after the range is exhausted
  /// are no-ops, so the call returns as soon as all n items are done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

  /// Number of tasks enqueued but not yet picked up by a worker. A
  /// point-in-time reading for telemetry (the ResourceSampler exports
  /// it as a gauge); it is stale the moment it returns.
  size_t QueueDepth();

 private:
  void WorkerLoop();

  /// Immutable after construction (each worker only reads its own
  /// entry at join time), so reads need no lock.
  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  AnnotatedMutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

}  // namespace nous

#endif  // NOUS_COMMON_THREAD_POOL_H_
