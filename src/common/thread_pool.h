#ifndef NOUS_COMMON_THREAD_POOL_H_
#define NOUS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nous {

/// Fixed-size worker pool. Stands in for the distributed workers of the
/// paper's Spark deployment: the streaming miner and BPR trainer shard
/// work across pool threads.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace nous

#endif  // NOUS_COMMON_THREAD_POOL_H_
