#ifndef NOUS_COMMON_HASH_H_
#define NOUS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>

namespace nous {

/// 64-bit FNV-1a over arbitrary bytes; stable across runs and platforms
/// (unlike std::hash), so usable for deterministic sharding.
inline uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes a 64-bit value (SplitMix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combines an accumulated hash with a new value (boost-style).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash functor for std::pair keys in unordered containers.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(std::hash<A>()(p.first), std::hash<B>()(p.second));
  }
};

}  // namespace nous

#endif  // NOUS_COMMON_HASH_H_
