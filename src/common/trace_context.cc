#include "common/trace_context.h"

#include <atomic>
#include <chrono>

namespace nous {
namespace {

thread_local TraceContext tls_trace_context;

std::atomic<uint64_t> next_trace_id{1};
std::atomic<uint32_t> next_thread_index{0};

}  // namespace

TraceContext CurrentTraceContext() { return tls_trace_context; }

void SetCurrentTraceContext(const TraceContext& context) {
  tls_trace_context = context;
}

uint64_t NextTraceId() {
  return next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint32_t TraceThreadIndex() {
  thread_local uint32_t index =
      next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t TraceNowMicros() {
  using Clock = std::chrono::steady_clock;
  // First call fixes the epoch; function-local static init is
  // thread-safe, so all threads agree on it.
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

}  // namespace nous
