#ifndef NOUS_COMMON_TABLE_PRINTER_H_
#define NOUS_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace nous {

/// Renders fixed-width ASCII tables for the experiment harnesses; each
/// bench binary prints the rows/series matching the paper's artifacts.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the row is padded or truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 3);
  static std::string Int(long long value);

  /// Writes the table with a separator line under the header.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nous

#endif  // NOUS_COMMON_TABLE_PRINTER_H_
