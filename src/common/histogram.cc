#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace nous {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

double Histogram::min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Sum() const {
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum;
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0;
  double mean = Mean();
  double acc = 0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Histogram::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Histogram::Quantile(double q) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  if (rank == 0) rank = 1;
  return sorted_[rank - 1];
}

std::vector<size_t> Histogram::Bucketize(double lo, double hi,
                                         size_t buckets) const {
  std::vector<size_t> counts(buckets, 0);
  if (buckets == 0 || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (double v : samples_) {
    if (v < lo || v >= hi) continue;
    size_t idx = static_cast<size_t>((v - lo) / width);
    if (idx >= buckets) idx = buckets - 1;
    counts[idx]++;
  }
  return counts;
}

std::string Histogram::Summary() const {
  return StrFormat("n=%zu mean=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f",
                   count(), Mean(), Quantile(0.5), Quantile(0.9),
                   Quantile(0.99), max());
}

}  // namespace nous
