#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace nous {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

double Histogram::min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Sum() const {
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum;
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0;
  double mean = Mean();
  double acc = 0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Histogram::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Histogram::Quantile(double q) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  if (!std::isfinite(q)) q = 0;
  if (q <= 0) return sorted_.front();
  if (q >= 1) return sorted_.back();
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted_.size()) rank = sorted_.size();
  return sorted_[rank - 1];
}

std::vector<size_t> Histogram::Bucketize(double lo, double hi,
                                         size_t buckets) const {
  std::vector<size_t> counts(buckets, 0);
  if (buckets == 0 || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (double v : samples_) {
    if (v < lo || v >= hi) continue;
    size_t idx = static_cast<size_t>((v - lo) / width);
    if (idx >= buckets) idx = buckets - 1;
    counts[idx]++;
  }
  return counts;
}

std::string Histogram::Summary() const {
  return StrFormat("n=%zu mean=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f",
                   count(), Mean(), Quantile(0.5), Quantile(0.9),
                   Quantile(0.99), max());
}

// ---------- FixedHistogram ----------

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  NOUS_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()))
      << "bucket upper bounds must be ascending";
}

FixedHistogram FixedHistogram::Exponential(double start, double factor,
                                           size_t count) {
  NOUS_CHECK(start > 0 && factor > 1.0) << "invalid exponential buckets";
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return FixedHistogram(std::move(bounds));
}

void FixedHistogram::Add(double value) {
  // First bucket whose upper bound is >= value ("le" semantics); the
  // overflow bucket otherwise.
  size_t idx = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(),
                                value) -
               upper_bounds_.begin();
  ++counts_[idx];
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

void FixedHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

void FixedHistogram::Merge(const FixedHistogram& other) {
  NOUS_CHECK(upper_bounds_ == other.upper_bounds_)
      << "merging histograms with different bucket layouts";
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
}

double FixedHistogram::Mean() const {
  if (count_ == 0) return 0;
  return sum_ / static_cast<double>(count_);
}

double FixedHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (!std::isfinite(q)) q = 0;
  if (q <= 0) return min_;
  if (q >= 1) return max_;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (cumulative + counts_[i] < rank) {
      cumulative += counts_[i];
      continue;
    }
    // Interpolate within bucket i, using the observed extremes for the
    // open-ended first and overflow buckets.
    double lower = i == 0 ? min_ : upper_bounds_[i - 1];
    double upper = i < upper_bounds_.size() ? upper_bounds_[i] : max_;
    double fraction = static_cast<double>(rank - cumulative) /
                      static_cast<double>(counts_[i]);
    double estimate = lower + (upper - lower) * fraction;
    return std::clamp(estimate, min_, max_);
  }
  return max_;
}

std::string FixedHistogram::Summary() const {
  return StrFormat(
      "n=%llu mean=%.6f p50=%.6f p90=%.6f p99=%.6f max=%.6f",
      static_cast<unsigned long long>(count_), Mean(), Quantile(0.5),
      Quantile(0.9), Quantile(0.99), max());
}

}  // namespace nous
