#include "common/table_printer.h"

#include <algorithm>

#include "common/string_util.h"

namespace nous {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string TablePrinter::Int(long long value) {
  return StrFormat("%lld", value);
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace nous
