#ifndef NOUS_COMMON_RESULT_H_
#define NOUS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace nous {

/// Holds either a value of type T or a non-OK Status describing why the
/// value is absent. Analogous to absl::StatusOr<T>.
///
/// [[nodiscard]] for the same reason as Status: discarding a Result
/// discards the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status` must be non-OK;
  /// an OK status here indicates a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Evaluates `expr` (a Result<T>), propagating errors; on success binds
/// the value to `lhs`. Usable in functions returning Status or Result<U>.
#define NOUS_ASSIGN_OR_RETURN(lhs, expr)             \
  auto NOUS_CONCAT_(_result_, __LINE__) = (expr);    \
  if (!NOUS_CONCAT_(_result_, __LINE__).ok())        \
    return NOUS_CONCAT_(_result_, __LINE__).status(); \
  lhs = std::move(NOUS_CONCAT_(_result_, __LINE__)).value()

#define NOUS_CONCAT_(a, b) NOUS_CONCAT_IMPL_(a, b)
#define NOUS_CONCAT_IMPL_(a, b) a##b

}  // namespace nous

#endif  // NOUS_COMMON_RESULT_H_
