#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace nous {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes whole lines so concurrent threads do not interleave output.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << stream_.str() << "\n";
}

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << "[CHECK failed " << file << ":" << line << "] " << condition
          << " ";
}

CheckFailure::~CheckFailure() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace nous
