#include "common/logging.h"

#include <atomic>

#include "common/thread_annotations.h"

namespace nous {
namespace {

/// NOUS_LOG_LEVEL wins at startup so deployed servers can be tuned
/// without a rebuild; unknown values fall back to kInfo.
int InitialLogLevel() {
  if (const char* env = std::getenv("NOUS_LOG_LEVEL")) {
    if (auto level = ParseLogLevel(env)) return static_cast<int>(*level);
  }
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_log_level{InitialLogLevel()};

// Serializes whole lines so concurrent threads do not interleave
// output. The guarded resource is stderr itself, which no annotation
// can name.
AnnotatedMutex& LogMutex() {
  // lint: new-ok(leaked singleton: loggable during static destruction)
  static AnnotatedMutex* mutex = new AnnotatedMutex;
  return *mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  MutexLock lock(LogMutex());
  std::cerr << stream_.str() << "\n";
}

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << "[CHECK failed " << file << ":" << line << "] " << condition
          << " ";
}

CheckFailure::~CheckFailure() {
  {
    MutexLock lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace nous
