#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace nous {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool IsCapitalized(std::string_view text) {
  return !text.empty() && std::isupper(static_cast<unsigned char>(text[0]));
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = Trim(text);
  if (text.empty()) return false;
  bool negative = false;
  size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) return false;
  // Accumulate negatively: INT64_MIN has no positive counterpart.
  int64_t value = 0;
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
    int digit = text[i] - '0';
    if (value < (INT64_MIN + digit) / 10) return false;  // overflow
    value = value * 10 - digit;
  }
  if (!negative) {
    if (value == INT64_MIN) return false;
    value = -value;
  }
  *out = value;
  return true;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  text = Trim(text);
  if (!IsDigits(text)) return false;
  uint64_t value = 0;
  for (char c : text) {
    unsigned digit = static_cast<unsigned>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseSize(std::string_view text, size_t* out, size_t min, size_t max) {
  uint64_t value = 0;
  if (!ParseUint64(text, &value)) return false;
  if (value < min || value > max) return false;
  *out = static_cast<size_t>(value);
  return true;
}

bool ParsePort(std::string_view text, uint16_t* out) {
  uint64_t value = 0;
  if (!ParseUint64(text, &value)) return false;
  if (value < 1 || value > 65535) return false;
  *out = static_cast<uint16_t>(value);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string owned(Trim(text));
  if (owned.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return false;
  if (errno == ERANGE || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (size > 0) {
    result.resize(static_cast<size_t>(size));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace nous
