#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace nous {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool IsCapitalized(std::string_view text) {
  return !text.empty() && std::isupper(static_cast<unsigned char>(text[0]));
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (size > 0) {
    result.resize(static_cast<size_t>(size));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace nous
