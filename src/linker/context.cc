#include "linker/context.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace nous {

TermBag BuildDocumentBag(const std::string& text, const Lexicon& lexicon) {
  TermBag bag;
  for (const Token& tok : Tokenize(text)) {
    if (tok.text.size() < 2) continue;
    if (lexicon.IsStopword(tok.lower) || lexicon.IsDeterminer(tok.lower) ||
        lexicon.IsPreposition(tok.lower) || lexicon.IsPronoun(tok.lower)) {
      continue;
    }
    if (IsDigits(tok.text)) continue;
    bag[tok.lower] += 1.0;
  }
  return bag;
}

TermBag BuildEntityBag(const PropertyGraph& graph, VertexId v,
                       size_t max_neighbors) {
  TermBag bag;
  if (v >= graph.NumVertices()) return bag;
  // Canonical (TermId-sorted) iteration: the vertex bag is an
  // unordered map whose traversal order depends on insertion history,
  // which a checkpoint restore does not reproduce. Sorting makes the
  // bag's insertion sequence — and therefore every downstream
  // FP accumulation over it — a pure function of graph content
  // (DESIGN.md §5.10).
  std::vector<std::pair<TermId, double>> terms(graph.VertexBag(v).begin(),
                                               graph.VertexBag(v).end());
  std::sort(terms.begin(), terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [term, weight] : terms) {
    bag[ToLower(graph.terms().GetString(term))] += weight;
  }
  size_t taken = 0;
  auto add_neighbor_terms = [&](const std::vector<AdjEntry>& adj) {
    for (const AdjEntry& a : adj) {
      if (taken >= max_neighbors) return;
      ++taken;
      for (const std::string& word :
           SplitWhitespace(graph.VertexLabel(a.neighbor))) {
        if (word.size() < 2) continue;
        bag[ToLower(word)] += 1.0;
      }
    }
  };
  add_neighbor_terms(graph.OutEdges(v));
  add_neighbor_terms(graph.InEdges(v));
  return bag;
}

double CosineSimilarity(const TermBag& a, const TermBag& b) {
  if (a.empty() || b.empty()) return 0.0;
  const TermBag& small = a.size() <= b.size() ? a : b;
  const TermBag& large = a.size() <= b.size() ? b : a;
  double dot = 0;
  for (const auto& [term, weight] : small) {
    auto it = large.find(term);
    if (it != large.end()) dot += weight * it->second;
  }
  if (dot == 0) return 0;
  double norm_a = 0, norm_b = 0;
  for (const auto& [term, weight] : a) norm_a += weight * weight;
  for (const auto& [term, weight] : b) norm_b += weight * weight;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace nous
