#ifndef NOUS_LINKER_CONTEXT_H_
#define NOUS_LINKER_CONTEXT_H_

#include <string>
#include <unordered_map>

#include "graph/property_graph.h"
#include "text/lexicon.h"

namespace nous {

/// Sparse bag of lower-cased content words keyed by surface string.
using TermBag = std::unordered_map<std::string, double>;

/// Tokenizes `text`, drops stopwords/punctuation/numbers, and counts
/// the remaining lower-cased terms — the mention-side context of the
/// AIDA similarity (§3.3).
TermBag BuildDocumentBag(const std::string& text, const Lexicon& lexicon);

/// Entity-side context: the vertex's stored bag (curated description
/// terms) plus the labels of its KG neighbors, tokenized. The
/// neighborhood component implements the paper's adaptation of AIDA to
/// a growing KG ("we use only the entity neighborhood in the knowledge
/// graph to calculate contextual similarity").
TermBag BuildEntityBag(const PropertyGraph& graph, VertexId v,
                       size_t max_neighbors = 64);

/// Cosine similarity between two sparse bags; 0 when either is empty.
double CosineSimilarity(const TermBag& a, const TermBag& b);

}  // namespace nous

#endif  // NOUS_LINKER_CONTEXT_H_
