#ifndef NOUS_LINKER_ENTITY_LINKER_H_
#define NOUS_LINKER_ENTITY_LINKER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "graph/property_graph.h"
#include "linker/context.h"
#include "text/ner.h"

namespace nous {

struct LinkerConfig {
  /// Local score = prior_weight * normalized popularity prior +
  /// context_weight * cosine(mention context, entity context).
  double prior_weight = 0.3;
  double context_weight = 0.7;
  /// Weight of entity-entity coherence during the AIDA graph stage.
  /// Kept modest by default: coherence is decisive when co-mentioned
  /// entities are already related in the KB, and pure noise when they
  /// are not (see bench_ablation's mention-accuracy table).
  double coherence_weight = 0.15;
  /// Candidates scoring below this are rejected; an unlinkable mention
  /// becomes a new KG vertex.
  double min_link_score = 0.05;
  size_t max_candidates = 8;
  /// Neighborhood cap when building entity context bags.
  size_t max_context_neighbors = 64;
};

/// Outcome of linking one mention.
struct LinkDecision {
  std::string surface;
  VertexId vertex = kInvalidVertex;
  bool created_new = false;
  double score = 0.0;
  size_t num_candidates = 0;
};

/// AIDA-style entity linker adapted to a dynamic KG (§3.3): candidate
/// generation from an alias dictionary with popularity priors, local
/// prior+context scoring, and a joint disambiguation stage that
/// iteratively discards globally incoherent candidates. Mentions with
/// no acceptable candidate create new KG vertices, which are then
/// registered so later documents can link to them.
class EntityLinker {
 public:
  /// `graph` must outlive the linker and is mutated when new entities
  /// are created.
  explicit EntityLinker(PropertyGraph* graph, LinkerConfig config = {});

  /// Registers an existing KG vertex under each surface form.
  void RegisterEntity(VertexId vertex,
                      const std::vector<std::string>& surfaces,
                      double prior);

  /// Jointly links all mentions of one document against the current
  /// KG. `doc_bag` is the document's content-word bag. Repeated
  /// surfaces resolve identically. New entities are created (and typed
  /// from `types`, parallel to `surfaces`) when no candidate clears
  /// min_link_score.
  std::vector<LinkDecision> LinkMentions(
      const std::vector<std::string>& surfaces,
      const std::vector<EntityType>& types, const TermBag& doc_bag);

  /// Single-mention convenience wrapper.
  LinkDecision LinkOne(const std::string& surface, EntityType type,
                       const TermBag& doc_bag);

  /// Candidate vertices (with priors) currently registered for a
  /// surface form; exposed for tests and diagnostics.
  std::vector<std::pair<VertexId, double>> CandidatesFor(
      std::string_view surface) const;

  size_t num_created() const { return num_created_; }

  /// Checkpoint serialization of the alias index (surfaces in sorted
  /// order, candidate lists in registration order) plus counters.
  /// The graph pointer and config are reconstructed by the caller.
  void SaveBinary(BinaryWriter* writer) const;
  Status LoadBinary(BinaryReader* reader);

 private:
  struct ScoredCandidate {
    VertexId vertex;
    double local_score;
    double total_score;
  };

  std::vector<ScoredCandidate> ScoreCandidates(const std::string& surface,
                                               const TermBag& doc_bag) const;

  /// Ontology-ish type name for a new vertex created from a mention.
  static const char* TypeNameFor(EntityType type);

  PropertyGraph* graph_;  // not owned
  LinkerConfig config_;
  std::unordered_map<std::string, std::vector<std::pair<VertexId, double>>>
      alias_index_;
  double max_prior_ = 1.0;
  size_t num_created_ = 0;
};

}  // namespace nous

#endif  // NOUS_LINKER_ENTITY_LINKER_H_
