#include "linker/entity_linker.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace nous {

EntityLinker::EntityLinker(PropertyGraph* graph, LinkerConfig config)
    : graph_(graph), config_(config) {}

void EntityLinker::RegisterEntity(VertexId vertex,
                                  const std::vector<std::string>& surfaces,
                                  double prior) {
  for (const std::string& surface : surfaces) {
    auto& bucket = alias_index_[ToLower(surface)];
    bool found = false;
    for (auto& [v, p] : bucket) {
      if (v == vertex) {
        p = std::max(p, prior);
        found = true;
      }
    }
    if (!found) bucket.emplace_back(vertex, prior);
  }
  max_prior_ = std::max(max_prior_, prior);
}

std::vector<std::pair<VertexId, double>> EntityLinker::CandidatesFor(
    std::string_view surface) const {
  auto it = alias_index_.find(ToLower(surface));
  if (it == alias_index_.end()) return {};
  return it->second;
}

std::vector<EntityLinker::ScoredCandidate> EntityLinker::ScoreCandidates(
    const std::string& surface, const TermBag& doc_bag) const {
  // AIDA compares the mention's *surrounding* context with the entity
  // context: the mention's own tokens are excluded, otherwise any
  // candidate whose description contains its own name (typical for
  // locations) gets a spurious vote just for being mentioned.
  TermBag context_bag = doc_bag;
  for (const std::string& word : SplitWhitespace(surface)) {
    context_bag.erase(ToLower(word));
  }
  std::vector<ScoredCandidate> scored;
  for (const auto& [vertex, prior] : CandidatesFor(surface)) {
    double prior_score = std::log1p(prior) / std::log1p(max_prior_);
    double context = CosineSimilarity(
        context_bag,
        BuildEntityBag(*graph_, vertex, config_.max_context_neighbors));
    double local = config_.prior_weight * prior_score +
                   config_.context_weight * context;
    scored.push_back(ScoredCandidate{vertex, local, local});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.local_score > b.local_score;
            });
  if (scored.size() > config_.max_candidates) {
    scored.resize(config_.max_candidates);
  }
  return scored;
}

const char* EntityLinker::TypeNameFor(EntityType type) {
  switch (type) {
    case EntityType::kPerson: return "person";
    case EntityType::kOrganization: return "organization";
    case EntityType::kLocation: return "location";
    case EntityType::kProduct: return "product";
    case EntityType::kDate: return "thing";
    case EntityType::kMisc: return "thing";
  }
  return "thing";
}

std::vector<LinkDecision> EntityLinker::LinkMentions(
    const std::vector<std::string>& surfaces,
    const std::vector<EntityType>& types, const TermBag& doc_bag) {
  const size_t n = surfaces.size();
  std::vector<std::vector<ScoredCandidate>> candidates(n);
  for (size_t i = 0; i < n; ++i) {
    candidates[i] = ScoreCandidates(surfaces[i], doc_bag);
  }

  // ---- AIDA global stage: entity-entity coherence. ----
  // Coherence = Jaccard overlap of KG neighborhoods. Each candidate's
  // total score blends its local score with its mean coherence to the
  // other mentions' candidates; then the weakest candidates of
  // ambiguous mentions are dropped iteratively.
  auto neighbor_set = [this](VertexId v) {
    std::unordered_set<VertexId> set;
    for (const AdjEntry& a : graph_->OutEdges(v)) set.insert(a.neighbor);
    for (const AdjEntry& a : graph_->InEdges(v)) set.insert(a.neighbor);
    return set;
  };
  std::unordered_map<VertexId, std::unordered_set<VertexId>> neighbors;
  for (const auto& list : candidates) {
    for (const ScoredCandidate& c : list) {
      if (neighbors.count(c.vertex) == 0) {
        neighbors[c.vertex] = neighbor_set(c.vertex);
      }
    }
  }
  // Adamic-Adar-weighted overlap: a shared neighbor is evidence in
  // inverse proportion to its degree — two companies headquartered in
  // the same big city are barely related; sharing a rare partner is
  // strong. Normalized by the smaller neighborhood so well-connected
  // candidates don't dominate.
  auto relatedness = [this](const std::unordered_set<VertexId>& a,
                            const std::unordered_set<VertexId>& b) {
    if (a.empty() || b.empty()) return 0.0;
    const auto& small = a.size() <= b.size() ? a : b;
    const auto& large = a.size() <= b.size() ? b : a;
    double score = 0;
    for (VertexId v : small) {
      if (large.count(v) == 0) continue;
      double degree = static_cast<double>(graph_->OutDegree(v) +
                                          graph_->InDegree(v));
      score += 1.0 / std::log(2.0 + degree);
    }
    return score / static_cast<double>(small.size());
  };
  // Two conditioning rounds: candidates score their relatedness to the
  // other mentions' CURRENT best candidate (initially the local-score
  // leader), then the assignment is re-ranked and scored once more —
  // a two-sweep version of AIDA's iterative refinement that avoids the
  // over-optimistic "best over all other candidates" shortcut.
  for (int round = 0; round < 2; ++round) {
    std::vector<VertexId> anchors(n, kInvalidVertex);
    for (size_t j = 0; j < n; ++j) {
      if (!candidates[j].empty()) anchors[j] = candidates[j][0].vertex;
    }
    for (size_t i = 0; i < n; ++i) {
      for (ScoredCandidate& c : candidates[i]) {
        double coherence_sum = 0;
        size_t coherence_count = 0;
        for (size_t j = 0; j < n; ++j) {
          if (j == i || anchors[j] == kInvalidVertex) continue;
          if (anchors[j] == c.vertex) continue;
          coherence_sum += relatedness(neighbors[c.vertex],
                                       neighbors[anchors[j]]);
          ++coherence_count;
        }
        double coherence =
            coherence_count == 0 ? 0 : coherence_sum / coherence_count;
        c.total_score =
            c.local_score + config_.coherence_weight * coherence;
      }
      std::sort(candidates[i].begin(), candidates[i].end(),
                [](const ScoredCandidate& a, const ScoredCandidate& b) {
                  return a.total_score > b.total_score;
                });
    }
  }

  // ---- Decisions: link or create. ----
  std::vector<LinkDecision> decisions(n);
  std::unordered_map<std::string, VertexId> created_this_doc;
  for (size_t i = 0; i < n; ++i) {
    LinkDecision& d = decisions[i];
    d.surface = surfaces[i];
    d.num_candidates = candidates[i].size();
    if (!candidates[i].empty() &&
        candidates[i][0].total_score >= config_.min_link_score) {
      d.vertex = candidates[i][0].vertex;
      d.score = candidates[i][0].total_score;
      continue;
    }
    // New entity: reuse one created earlier in this document for the
    // same surface.
    std::string key = ToLower(surfaces[i]);
    auto it = created_this_doc.find(key);
    if (it != created_this_doc.end()) {
      d.vertex = it->second;
      d.created_new = true;
      continue;
    }
    // Entity creation happens here rather than in the pipeline because
    // linking decides *whether* a vertex exists. LinkMentions only runs
    // from KgPipeline::CommitDocument with kg_mutex held, after the
    // batch is WAL-logged, so these writes stay on the ingest funnel
    // even though this file lives outside the nous-layering allow-list
    // (DESIGN.md §5.14).
    // NOLINTNEXTLINE(nous-layering)
    // lint: graph-mutation-ok(kg_mutex-held commit write, captured as ops)
    VertexId v = graph_->GetOrAddVertex(surfaces[i]);
    EntityType type =
        i < types.size() ? types[i] : EntityType::kMisc;
    if (graph_->VertexType(v) == kInvalidType) {
      // NOLINTNEXTLINE(nous-layering)
      // lint: graph-mutation-ok(same commit section, captured as a KgOp)
      graph_->SetVertexType(v, graph_->types().Intern(TypeNameFor(type)));
    }
    RegisterEntity(v, {surfaces[i]}, 1.0);
    created_this_doc[key] = v;
    d.vertex = v;
    d.created_new = true;
    ++num_created_;
  }
  return decisions;
}

LinkDecision EntityLinker::LinkOne(const std::string& surface,
                                   EntityType type, const TermBag& doc_bag) {
  return LinkMentions({surface}, {type}, doc_bag)[0];
}

void EntityLinker::SaveBinary(BinaryWriter* writer) const {
  std::vector<const std::string*> surfaces;
  surfaces.reserve(alias_index_.size());
  for (const auto& [surface, candidates] : alias_index_) {
    surfaces.push_back(&surface);
  }
  std::sort(surfaces.begin(), surfaces.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  writer->U64(surfaces.size());
  for (const std::string* surface : surfaces) {
    writer->Str(*surface);
    const auto& candidates = alias_index_.at(*surface);
    writer->U64(candidates.size());
    for (const auto& [vertex, prior] : candidates) {
      writer->U32(vertex);
      writer->F64(prior);
    }
  }
  writer->F64(max_prior_);
  writer->U64(num_created_);
}

Status EntityLinker::LoadBinary(BinaryReader* reader) {
  uint64_t num_surfaces = 0;
  NOUS_RETURN_IF_ERROR(reader->Count(&num_surfaces, 8 + 8));
  alias_index_.clear();
  alias_index_.reserve(num_surfaces);
  for (uint64_t i = 0; i < num_surfaces; ++i) {
    std::string surface;
    NOUS_RETURN_IF_ERROR(reader->Str(&surface));
    uint64_t num_candidates = 0;
    NOUS_RETURN_IF_ERROR(reader->Count(&num_candidates, 12));
    std::vector<std::pair<VertexId, double>> candidates;
    candidates.reserve(num_candidates);
    for (uint64_t j = 0; j < num_candidates; ++j) {
      VertexId vertex = 0;
      double prior = 0;
      NOUS_RETURN_IF_ERROR(reader->U32(&vertex));
      NOUS_RETURN_IF_ERROR(reader->F64(&prior));
      candidates.emplace_back(vertex, prior);
    }
    alias_index_.emplace(std::move(surface), std::move(candidates));
  }
  NOUS_RETURN_IF_ERROR(reader->F64(&max_prior_));
  uint64_t created = 0;
  NOUS_RETURN_IF_ERROR(reader->U64(&created));
  num_created_ = created;
  return Status::Ok();
}

}  // namespace nous
