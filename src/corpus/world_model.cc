#include "corpus/world_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace nous {

size_t WorldModel::AddEntity(WorldEntity entity) {
  size_t id = entities_.size();
  by_name_[entity.name] = id;
  entities_.push_back(std::move(entity));
  return id;
}

void WorldModel::AddAlias(size_t entity, std::string alias) {
  NOUS_CHECK(entity < entities_.size());
  entities_[entity].aliases.push_back(std::move(alias));
}

size_t WorldModel::AddFact(size_t subject, std::string_view predicate,
                           size_t object, Date date, bool is_event) {
  NOUS_CHECK(subject < entities_.size());
  NOUS_CHECK(object < entities_.size());
  WorldFact fact;
  fact.subject = subject;
  fact.object = object;
  fact.predicate = std::string(predicate);
  fact.date = date;
  fact.is_event = is_event;
  facts_.push_back(std::move(fact));
  return facts_.size() - 1;
}

size_t WorldModel::AddFactByName(std::string_view subject,
                                 std::string_view predicate,
                                 std::string_view object, Date date,
                                 bool is_event) {
  auto s = FindEntity(subject);
  auto o = FindEntity(object);
  NOUS_CHECK(s.has_value()) << "unknown subject " << subject;
  NOUS_CHECK(o.has_value()) << "unknown object " << object;
  return AddFact(*s, predicate, *o, date, is_event);
}

std::optional<size_t> WorldModel::FindEntity(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> WorldModel::Predicates() const {
  std::vector<std::string> preds;
  for (const WorldFact& f : facts_) {
    if (std::find(preds.begin(), preds.end(), f.predicate) == preds.end()) {
      preds.push_back(f.predicate);
    }
  }
  return preds;
}

namespace {

const char* kFirstNames[] = {"Tom",   "Sarah", "Raj",    "Elena", "Wei",
                             "Omar",  "Lucy",  "Marco",  "Nina",  "Igor",
                             "Akira", "Priya", "Carlos", "Maya",  "Hugo",
                             "Ines",  "Leo",   "Greta",  "Noor",  "Felix"};
const char* kLastNames[] = {"Marino",  "Chen",    "Patel",  "Kowalski",
                            "Hansen",  "Okafor",  "Silva",  "Novak",
                            "Tanaka",  "Fischer", "Dubois", "Eriksen",
                            "Moreau",  "Sato",    "Khan",   "Vargas"};
const char* kCompanyPrefix[] = {"Aero",   "Sky",    "Hover", "Cloudline",
                                "Apex",   "Vertex", "Nimbus", "Orbit",
                                "Strato", "Zephyr", "Quill",  "Talon",
                                "Helio",  "Vector", "Pinnacle", "Summit"};
const char* kCompanyStem[] = {"Dynamics", "Labs",     "Technologies",
                              "Aviation", "Robotics", "Systems",
                              "Works",    "Industries", "Analytics",
                              "Logistics"};
const char* kCorpSuffix[] = {"Inc", "Corp", "Ltd", "", "", ""};
const char* kProductStem[] = {"Falcon", "Raptor", "Swift",   "Condor",
                              "Eagle",  "Hawk",   "Osprey",  "Kestrel",
                              "Heron",  "Swallow", "Griffin", "Sparrow"};
const char* kCities[] = {"Seattle", "Shenzhen", "Paris",   "Austin",
                         "Boston",  "Berlin",   "Tokyo",   "Toronto",
                         "Denver",  "Phoenix",  "Richland", "Oslo"};
const char* kSectors[] = {"consumer", "military", "delivery",
                          "agriculture", "realestate", "finance",
                          "regulation"};

const std::unordered_map<std::string, std::vector<std::string>>&
SectorVocabulary() {
  // lint: new-ok(leaked function-local static; no destruction-order risk)
  static const auto* kVocab =
      new std::unordered_map<std::string, std::vector<std::string>>{
          {"consumer",
           {"camera", "hobbyist", "quadcopter", "retail", "video",
            "photography", "consumer", "gimbal", "selfie", "app"}},
          {"military",
           {"defense", "surveillance", "reconnaissance", "military",
            "tactical", "mission", "payload", "security", "border",
            "radar"}},
          {"delivery",
           {"package", "delivery", "logistics", "warehouse", "shipping",
            "route", "parcel", "fleet", "dispatch", "autonomous"}},
          {"agriculture",
           {"crop", "farm", "irrigation", "spraying", "field", "yield",
            "agriculture", "soil", "harvest", "sensor"}},
          {"realestate",
           {"property", "listing", "aerial", "realestate", "housing",
            "broker", "inspection", "roof", "marketing", "estate"}},
          {"finance",
           {"investment", "venture", "funding", "acquisition", "market",
            "analyst", "portfolio", "valuation", "shares", "capital"}},
          {"regulation",
           {"regulation", "safety", "airspace", "compliance", "license",
            "faa", "policy", "rules", "certification", "enforcement"}},
      };
  return *kVocab;
}

std::vector<std::string> MakeDescription(Rng* rng, const std::string& sector,
                                         const std::string& type_name) {
  std::vector<std::string> bag;
  const auto& vocab = SectorVocabulary();
  auto it = vocab.find(sector);
  const std::vector<std::string>& words =
      it != vocab.end() ? it->second : vocab.at("consumer");
  // 8-14 sector words (with repetition = weight), plus generic terms.
  size_t n = 8 + rng->UniformInt(7);
  for (size_t i = 0; i < n; ++i) bag.push_back(rng->Pick(words));
  bag.push_back(type_name);
  bag.push_back("drone");
  bag.push_back("technology");
  return bag;
}

Date RandomDateBetween(Rng* rng, const Date& start, const Date& end) {
  Timestamp lo = start.ToDayNumber();
  Timestamp hi = end.ToDayNumber();
  if (hi <= lo) return start;
  return Date::FromDayNumber(
      lo + static_cast<Timestamp>(rng->UniformInt(
               static_cast<uint64_t>(hi - lo + 1))));
}

}  // namespace

WorldModel WorldModel::BuildDroneWorld(const DroneWorldConfig& config) {
  Rng rng(config.seed);
  WorldModel world;

  // --- Anchor (curated-KB-style) entities mirroring the paper's
  // Figure 2: DJI, Parrot, FAA, Windermere, cities. ---
  auto add = [&world](std::string name, std::string type_name,
                      EntityType ner, std::string sector,
                      std::vector<std::string> aliases,
                      std::vector<std::string> extra_terms) {
    WorldEntity e;
    e.name = std::move(name);
    e.type_name = std::move(type_name);
    e.ner_type = ner;
    e.sector = std::move(sector);
    e.aliases = std::move(aliases);
    e.description = std::move(extra_terms);
    return world.AddEntity(std::move(e));
  };

  std::vector<size_t> cities;
  for (const char* city : kCities) {
    cities.push_back(add(city, "city", EntityType::kLocation, "regulation",
                         {}, {"city", "region", "metro", city}));
  }

  std::vector<size_t> companies;
  std::vector<size_t> agencies;
  companies.push_back(add(
      "DJI", "company", EntityType::kOrganization, "consumer",
      {"DJI Technology"},
      {"drone", "manufacturer", "quadcopter", "camera", "consumer",
       "phantom", "market", "leader"}));
  companies.push_back(add(
      "Parrot", "company", EntityType::kOrganization, "consumer",
      {},
      {"drone", "consumer", "hobbyist", "camera", "french",
       "manufacturer"}));
  companies.push_back(add(
      "Windermere", "company", EntityType::kOrganization, "realestate",
      {"Windermere Real Estate"},
      {"realestate", "property", "listing", "aerial", "photography",
       "broker"}));
  agencies.push_back(add(
      "FAA", "agency", EntityType::kOrganization, "regulation",
      {"Federal Aviation Administration"},
      {"regulation", "airspace", "safety", "agency", "federal",
       "aviation"}));
  add("Wall Street Journal", "organization", EntityType::kOrganization,
      "finance", {"WSJ"}, {"news", "journal", "finance", "press"});

  // --- Generated companies. ---
  std::vector<std::string> used_names;
  for (size_t i = 0; i < config.num_companies; ++i) {
    std::string base = StrFormat(
        "%s %s", kCompanyPrefix[rng.UniformInt(std::size(kCompanyPrefix))],
        kCompanyStem[rng.UniformInt(std::size(kCompanyStem))]);
    if (std::find(used_names.begin(), used_names.end(), base) !=
        used_names.end()) {
      base += StrFormat(" %zu", i);
    }
    used_names.push_back(base);
    const char* suffix = kCorpSuffix[rng.UniformInt(std::size(kCorpSuffix))];
    std::string full = *suffix ? base + " " + suffix : base;
    std::string sector = kSectors[rng.UniformInt(std::size(kSectors) - 1)];
    std::vector<std::string> aliases;
    if (*suffix) aliases.push_back(base);  // drop corporate suffix
    size_t id = add(full, "company", EntityType::kOrganization, sector,
                    std::move(aliases), MakeDescription(&rng, sector,
                                                        "company"));
    companies.push_back(id);
    // Ambiguous short alias: the bare prefix word ("Aero"), which
    // collides whenever another company drew the same prefix — the
    // type-valid company-vs-company ambiguity only context and
    // coherence can resolve.
    if (rng.Bernoulli(config.shared_alias_rate)) {
      std::string prefix_word = base.substr(0, base.find(' '));
      world.AddAlias(id, prefix_word);
    }
  }

  // --- People. ---
  std::vector<size_t> people;
  for (size_t i = 0; i < config.num_people; ++i) {
    std::string first = kFirstNames[rng.UniformInt(std::size(kFirstNames))];
    std::string last = kLastNames[rng.UniformInt(std::size(kLastNames))];
    std::string name = first + " " + last;
    if (world.FindEntity(name).has_value()) {
      name = first + " " + last + StrFormat(" %zu", i);
    }
    std::string sector = world.entity(companies[rng.UniformInt(
                                          companies.size())]).sector;
    size_t id = add(name, "person", EntityType::kPerson, sector, {last},
                    MakeDescription(&rng, sector, "person"));
    people.push_back(id);
  }

  // --- Products (drone models). ---
  std::vector<size_t> products;
  products.push_back(add("Phantom 3", "drone_model", EntityType::kProduct,
                         "consumer",
                         {}, {"drone", "quadcopter", "camera", "consumer",
                              "phantom", "model"}));
  for (size_t i = 0; i < config.num_products; ++i) {
    std::string name = StrFormat(
        "%s %llu", kProductStem[rng.UniformInt(std::size(kProductStem))],
        static_cast<unsigned long long>(1 + rng.UniformInt(9)));
    if (world.FindEntity(name).has_value()) continue;
    std::string sector = kSectors[rng.UniformInt(std::size(kSectors) - 1)];
    products.push_back(add(name, "drone_model", EntityType::kProduct,
                           sector,
                           {}, MakeDescription(&rng, sector, "drone")));
  }

  // --- Static background facts (curated-KB candidates). ---
  for (size_t c : companies) {
    world.AddFact(c, "headquarteredIn",
                  cities[rng.UniformInt(cities.size())], config.start,
                  /*is_event=*/false);
  }
  for (size_t i = 0; i < people.size(); ++i) {
    size_t company = companies[rng.UniformInt(companies.size())];
    world.AddFact(people[i], i % 3 == 0 ? "ceoOf" : "worksFor", company,
                  config.start, /*is_event=*/false);
  }
  for (size_t p : products) {
    world.AddFact(companies[rng.UniformInt(companies.size())],
                  "manufactures", p, config.start, /*is_event=*/false);
  }
  world.AddFactByName("DJI", "manufactures", "Phantom 3", config.start,
                      false);
  for (size_t c : companies) {
    if (rng.Bernoulli(0.3)) {
      world.AddFact(agencies[0], "regulates", c, config.start, false);
    }
  }

  // --- Dated events (the news timeline). ---
  struct EventKind {
    const char* predicate;
    char subject_kind;  // 'c'ompany, 'p'erson, 'a'gency, 'o'rg-any
    char object_kind;   // 'c', 'd' product, 'p', 'y' city
    double weight;
  };
  const EventKind kKinds[] = {
      {"acquired", 'c', 'c', 2.0},      {"partneredWith", 'c', 'c', 2.0},
      {"investsIn", 'c', 'c', 1.5},     {"launched", 'c', 'd', 2.0},
      {"uses", 'c', 'd', 1.5},          {"competesWith", 'c', 'c', 1.0},
      {"regulates", 'a', 'c', 0.8},     {"ceoOf", 'p', 'c', 0.7},
      {"worksFor", 'p', 'c', 0.7},      {"manufactures", 'c', 'd', 1.0},
  };
  std::vector<double> weights;
  for (const EventKind& k : kKinds) weights.push_back(k.weight);
  auto pick_entity = [&](char kind) -> size_t {
    switch (kind) {
      case 'c':
        return companies[rng.UniformInt(companies.size())];
      case 'd':
        return products[rng.UniformInt(products.size())];
      case 'p':
        return people[rng.UniformInt(people.size())];
      case 'a':
        return agencies[rng.UniformInt(agencies.size())];
      case 'y':
        return cities[rng.UniformInt(cities.size())];
    }
    return companies[0];
  };
  // Events arrive in "stories": a subject stays newsworthy for a few
  // consecutive events at nearby dates (so rendered articles contain
  // same-subject sentence runs — the precondition for pronominal
  // references the coref heuristics must resolve).
  size_t made = 0;
  size_t guard = 0;
  while (made < config.num_events && guard++ < config.num_events * 20) {
    const EventKind& first_kind = kKinds[rng.Categorical(weights)];
    size_t subject = pick_entity(first_kind.subject_kind);
    Date story_date = RandomDateBetween(&rng, config.start, config.end);
    size_t story_len = 1 + rng.UniformInt(3);
    for (size_t ev = 0; ev < story_len && made < config.num_events;
         ++ev) {
      // Later story events keep the subject; the predicate re-rolls
      // among kinds with a compatible subject kind.
      const EventKind* kind = &first_kind;
      if (ev > 0) {
        for (int attempt = 0; attempt < 8; ++attempt) {
          const EventKind& candidate = kKinds[rng.Categorical(weights)];
          if (candidate.subject_kind == first_kind.subject_kind) {
            kind = &candidate;
            break;
          }
        }
      }
      size_t o = pick_entity(kind->object_kind);
      if (subject == o) continue;
      bool dup = false;
      for (const WorldFact& f : world.facts()) {
        if (f.is_event && f.subject == subject && f.object == o &&
            f.predicate == kind->predicate) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      Timestamp day = story_date.ToDayNumber() +
                      static_cast<Timestamp>(ev * 2);
      Timestamp last = config.end.ToDayNumber();
      world.AddFact(subject, kind->predicate, o,
                    Date::FromDayNumber(std::min(day, last)),
                    /*is_event=*/true);
      ++made;
    }
  }
  return world;
}

WorldModel WorldModel::BuildCitationWorld(size_t num_authors,
                                          size_t num_papers,
                                          uint64_t seed) {
  Rng rng(seed);
  WorldModel world;
  const char* kVenueNames[] = {"VLDB", "ICDE", "KDD", "SIGMOD", "EMNLP"};
  const char* kTopicA[] = {"Streaming", "Distributed", "Dynamic",
                           "Probabilistic", "Scalable", "Incremental"};
  const char* kTopicB[] = {"Graph Mining",     "Knowledge Graphs",
                           "Entity Linking",   "Query Processing",
                           "Pattern Detection", "Link Prediction"};
  std::vector<size_t> venues;
  for (const char* v : kVenueNames) {
    WorldEntity e;
    e.name = v;
    e.type_name = "venue";
    e.ner_type = EntityType::kOrganization;
    e.sector = "research";
    e.description = {"conference", "research", "papers", "venue"};
    venues.push_back(world.AddEntity(std::move(e)));
  }
  std::vector<size_t> authors;
  for (size_t i = 0; i < num_authors; ++i) {
    WorldEntity e;
    e.name = StrFormat("%s %s",
                       kFirstNames[rng.UniformInt(std::size(kFirstNames))],
                       kLastNames[rng.UniformInt(std::size(kLastNames))]);
    if (world.FindEntity(e.name).has_value()) {
      e.name += StrFormat(" %zu", i);
    }
    e.type_name = "person";
    e.ner_type = EntityType::kPerson;
    e.sector = "research";
    e.description = {"author", "researcher", "professor"};
    authors.push_back(world.AddEntity(std::move(e)));
  }
  std::vector<size_t> papers;
  Date epoch{2012, 1, 1};
  for (size_t i = 0; i < num_papers; ++i) {
    WorldEntity e;
    e.name = StrFormat("%s %s %llu",
                       kTopicA[rng.UniformInt(std::size(kTopicA))],
                       kTopicB[rng.UniformInt(std::size(kTopicB))],
                       static_cast<unsigned long long>(i));
    e.type_name = "paper";
    e.ner_type = EntityType::kMisc;
    e.sector = "research";
    e.description = {"paper", "publication", "research"};
    size_t id = world.AddEntity(std::move(e));
    papers.push_back(id);
    Date pub{2012 + static_cast<int>(rng.UniformInt(4)),
             1 + static_cast<int>(rng.UniformInt(12)), 1};
    world.AddFact(authors[rng.UniformInt(authors.size())], "authored", id,
                  pub, /*is_event=*/true);
    world.AddFact(id, "publishedIn", venues[rng.UniformInt(venues.size())],
                  pub, /*is_event=*/true);
    // Cite up to 3 earlier papers.
    for (size_t k = 0; k < 3 && i > 0; ++k) {
      if (rng.Bernoulli(0.6)) {
        world.AddFact(id, "cites", papers[rng.UniformInt(i)], pub,
                      /*is_event=*/true);
      }
    }
  }
  (void)epoch;
  return world;
}

WorldModel WorldModel::BuildEnterpriseWorld(size_t num_users,
                                            size_t num_resources,
                                            uint64_t seed) {
  Rng rng(seed);
  WorldModel world;
  std::vector<size_t> users;
  for (size_t i = 0; i < num_users; ++i) {
    WorldEntity e;
    e.name = StrFormat("%s %s",
                       kFirstNames[rng.UniformInt(std::size(kFirstNames))],
                       kLastNames[rng.UniformInt(std::size(kLastNames))]);
    if (world.FindEntity(e.name).has_value()) e.name += StrFormat(" %zu", i);
    e.type_name = "person";
    e.ner_type = EntityType::kPerson;
    e.sector = "enterprise";
    e.description = {"employee", "user", "staff"};
    users.push_back(world.AddEntity(std::move(e)));
  }
  const char* kResStem[] = {"Server", "Repository", "Database", "Share",
                            "Portal"};
  const char* kResName[] = {"Alpha", "Bravo", "Castor", "Delta", "Echo",
                            "Foxtrot", "Gamma", "Helix"};
  std::vector<size_t> resources;
  for (size_t i = 0; i < num_resources; ++i) {
    WorldEntity e;
    e.name = StrFormat("%s %s",
                       kResStem[rng.UniformInt(std::size(kResStem))],
                       kResName[rng.UniformInt(std::size(kResName))]);
    if (world.FindEntity(e.name).has_value()) e.name += StrFormat(" %zu", i);
    e.type_name = "resource";
    e.ner_type = EntityType::kMisc;
    e.sector = "enterprise";
    e.description = {"system", "resource", "internal"};
    resources.push_back(world.AddEntity(std::move(e)));
  }
  const char* kActions[] = {"accessed", "downloaded", "emailed"};
  Date start{2015, 1, 1};
  Date end{2015, 12, 31};
  size_t num_events = num_users * 12;
  for (size_t i = 0; i < num_events; ++i) {
    size_t u = users[rng.UniformInt(users.size())];
    size_t r = resources[rng.UniformInt(resources.size())];
    world.AddFact(u, kActions[rng.UniformInt(std::size(kActions))], r,
                  RandomDateBetween(&rng, start, end), /*is_event=*/true);
  }
  return world;
}

}  // namespace nous
