#ifndef NOUS_CORPUS_ARTICLE_GENERATOR_H_
#define NOUS_CORPUS_ARTICLE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/world_model.h"
#include "graph/types.h"
#include "text/date_parser.h"

namespace nous {

/// Mention-level gold: the surface form the article actually used and
/// the canonical entity it denotes — the label set for evaluating
/// entity disambiguation in isolation.
struct GoldMention {
  std::string surface;
  std::string canonical;
};

/// A synthetic news article (the WSJ-corpus stand-in), carrying its
/// gold triples: the canonical facts a perfect extractor+linker would
/// recover. Gold subjects/objects are canonical entity names even when
/// the text uses aliases or pronouns.
struct Article {
  std::string id;
  Date date;
  std::string source;
  std::string text;
  std::vector<TimedTriple> gold;
  /// Non-pronominal entity mentions (aliases included).
  std::vector<GoldMention> gold_mentions;
};

/// Noise knobs for article rendering — each knob exercises a specific
/// extraction/linking failure mode (DESIGN.md §2).
struct CorpusConfig {
  /// Probability a repeated subject is rendered as a pronoun /
  /// definite NP (requires coref to recover).
  double pronoun_rate = 0.25;
  /// Probability an entity is mentioned by an alias instead of its
  /// canonical name (requires candidate generation + disambiguation).
  double alias_rate = 0.3;
  /// Probability an event sentence uses the passive form.
  double passive_rate = 0.25;
  /// Probability the sentence embeds the fact's date (else the article
  /// date anchors the triple).
  double date_mention_rate = 0.5;
  size_t min_facts_per_article = 2;
  size_t max_facts_per_article = 4;
  /// Probability an article carries an entity-free distractor sentence
  /// (false-positive bait for relaxed extraction configs).
  double distractor_rate = 0.6;
  /// Probability an article carries a sector-vocabulary "flavor"
  /// sentence drawn from its first subject's description terms — the
  /// contextual signal AIDA-style disambiguation keys on.
  double flavor_rate = 0.7;
  uint64_t seed = 23;
  std::vector<std::string> sources = {"wsj", "webcrawl", "technews"};
};

/// Renders the world model's dated events into a date-ordered synthetic
/// news corpus with controllable noise.
class ArticleGenerator {
 public:
  /// `world` must outlive the generator.
  ArticleGenerator(const WorldModel* world, CorpusConfig config);

  /// Renders every dated event into articles, ordered by date.
  std::vector<Article> GenerateArticles() const;

  const CorpusConfig& config() const { return config_; }

 private:
  const WorldModel* world_;
  CorpusConfig config_;
};

}  // namespace nous

#endif  // NOUS_CORPUS_ARTICLE_GENERATOR_H_
