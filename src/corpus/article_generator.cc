#include "corpus/article_generator.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"

namespace nous {

namespace {

/// One surface realization of a predicate. "{S}", "{O}", "{D}" expand
/// to subject, object, and date phrase.
struct SentenceTemplate {
  const char* pattern;
  bool passive;     // subject slot holds the object entity
  bool needs_date;  // pattern contains {D}
};

/// Realizations per ontology predicate. Every verb here is known to the
/// default lexicon so the extraction pipeline has a fair shot.
const std::vector<SentenceTemplate>& TemplatesFor(
    const std::string& predicate) {
  // lint: new-ok(leaked function-local static; no destruction-order risk)
  static const auto* kMap = new std::unordered_map<
      std::string, std::vector<SentenceTemplate>>{
      {"acquired",
       {{"{S} acquired {O} on {D}.", false, true},
        {"{S} bought {O}.", false, false},
        {"{S} acquired {O} for $80 million.", false, false},
        {"{O} was acquired by {S} on {D}.", true, true}}},
      {"partneredWith",
       {{"{S} partnered with {O}.", false, false},
        {"{S} collaborated with {O}.", false, false}}},
      {"investsIn",
       {{"{S} invested in {O}.", false, false},
        {"{S} invested in {O} in {D}.", false, true}}},
      {"launched",
       {{"{S} launched {O} on {D}.", false, true},
        {"{S} unveiled {O}.", false, false},
        {"{S} introduced {O} in {D}.", false, true}}},
      {"uses",
       {{"{S} uses {O}.", false, false},
        {"{S} deployed {O}.", false, false},
        {"{S} employs {O}.", false, false}}},
      {"competesWith", {{"{S} competes with {O}.", false, false}}},
      {"regulates",
       {{"{S} regulates {O}.", false, false},
        {"{S} investigated {O} in {D}.", false, true}}},
      {"ceoOf",
       {{"{S} leads {O}.", false, false},
        {"{S} led {O}.", false, false}}},
      {"worksFor",
       {{"{S} works for {O}.", false, false},
        {"{S} joined {O} in {D}.", false, true}}},
      {"manufactures",
       {{"{S} manufactures {O}.", false, false},
        {"{S} makes {O}.", false, false},
        {"{S} produces {O}.", false, false}}},
      {"headquarteredIn",
       {{"{S} is headquartered in {O}.", false, false},
        {"{S} is based in {O}.", false, false}}},
      {"authored", {{"{S} authored {O}.", false, false}}},
      {"cites", {{"{S} cites {O}.", false, false}}},
      {"publishedIn", {{"{S} was published in {O}.", false, false}}},
      {"accessed", {{"{S} accessed {O} on {D}.", false, true}}},
      {"downloaded", {{"{S} downloaded {O} on {D}.", false, true}}},
      {"emailed", {{"{S} emailed {O} on {D}.", false, true}}},
  };
  auto it = kMap->find(predicate);
  if (it != kMap->end()) return it->second;
  static const std::vector<SentenceTemplate> kFallback = {
      {"{S} uses {O}.", false, false}};
  return kFallback;
}

const char* kDistractors[] = {
    "Analysts expect strong growth in the commercial drone market.",
    "Industry observers remain cautious about the pace of adoption.",
    "The regulatory landscape continues to evolve rapidly.",
    "Demand for aerial imaging services is growing worldwide.",
    "Several startups are entering the crowded market this year.",
    "Investors have poured millions into the sector recently.",
};

/// Distractors that NAME an entity with a common-noun subject: bait
/// for relaxed extraction configs that accept noun-phrase subjects
/// (the sentence states no gold fact).
const char* kEntityBaitDistractors[] = {
    "Analysts praised {E} in a research note.",
    "Investors backed {E} this quarter.",
    "Several analysts praised {E}.",
};

std::string ReplaceAll(std::string text, std::string_view needle,
                       std::string_view replacement) {
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    text.replace(pos, needle.size(), replacement);
    pos += replacement.size();
  }
  return text;
}

}  // namespace

ArticleGenerator::ArticleGenerator(const WorldModel* world,
                                   CorpusConfig config)
    : world_(world), config_(std::move(config)) {}

std::vector<Article> ArticleGenerator::GenerateArticles() const {
  Rng rng(config_.seed);
  // Date-ordered events.
  std::vector<size_t> events;
  for (size_t i = 0; i < world_->facts().size(); ++i) {
    if (world_->facts()[i].is_event) events.push_back(i);
  }
  std::stable_sort(events.begin(), events.end(), [this](size_t a, size_t b) {
    return world_->facts()[a].date < world_->facts()[b].date;
  });

  std::vector<Article> articles;
  size_t cursor = 0;
  size_t article_counter = 0;
  while (cursor < events.size()) {
    size_t span = config_.min_facts_per_article +
                  rng.UniformInt(config_.max_facts_per_article -
                                 config_.min_facts_per_article + 1);
    span = std::min(span, events.size() - cursor);
    std::vector<size_t> batch(events.begin() + cursor,
                              events.begin() + cursor + span);
    cursor += span;
    // Group same-subject facts adjacently so pronoun references are
    // resolvable to the previous sentence.
    std::stable_sort(batch.begin(), batch.end(),
                     [this](size_t a, size_t b) {
                       return world_->facts()[a].subject <
                              world_->facts()[b].subject;
                     });

    Article article;
    article.id = StrFormat("art_%05zu", article_counter++);
    article.source = config_.sources[rng.UniformInt(config_.sources.size())];
    Date max_date = world_->facts()[batch[0]].date;
    std::vector<std::string> sentences;
    size_t prev_subject = static_cast<size_t>(-1);

    for (size_t fact_id : batch) {
      const WorldFact& fact = world_->facts()[fact_id];
      const WorldEntity& subj = world_->entity(fact.subject);
      const WorldEntity& obj = world_->entity(fact.object);
      if (max_date < fact.date) max_date = fact.date;

      // Choose a template; honor the passive-rate knob when a passive
      // variant exists.
      const auto& templates = TemplatesFor(fact.predicate);
      std::vector<const SentenceTemplate*> actives;
      std::vector<const SentenceTemplate*> passives;
      for (const auto& t : templates) {
        (t.passive ? passives : actives).push_back(&t);
      }
      const SentenceTemplate* chosen = nullptr;
      if (!passives.empty() && rng.Bernoulli(config_.passive_rate)) {
        chosen = passives[rng.UniformInt(passives.size())];
      } else if (!actives.empty()) {
        chosen = actives[rng.UniformInt(actives.size())];
      } else {
        chosen = passives[rng.UniformInt(passives.size())];
      }
      // Drop date-bearing templates when the knob says no date.
      if (chosen->needs_date && !rng.Bernoulli(config_.date_mention_rate)) {
        for (const auto& t : templates) {
          if (!t.needs_date && t.passive == chosen->passive) {
            chosen = &t;
            break;
          }
        }
      }

      auto surface = [&](const WorldEntity& e) -> std::string {
        if (!e.aliases.empty() && rng.Bernoulli(config_.alias_rate)) {
          return e.aliases[rng.UniformInt(e.aliases.size())];
        }
        return e.name;
      };
      std::string subj_text = surface(subj);
      // Pronominalize a repeated subject (active voice only: the
      // grammatical subject slot must be the repeated entity).
      bool used_pronoun = false;
      if (!chosen->passive && fact.subject == prev_subject &&
          !sentences.empty() && rng.Bernoulli(config_.pronoun_rate)) {
        if (subj.ner_type == EntityType::kPerson) {
          subj_text = "He";
        } else if (rng.Bernoulli(0.5)) {
          subj_text = "It";
        } else {
          subj_text = "The company";
        }
        used_pronoun = true;
      }
      std::string obj_text = surface(obj);

      if (!used_pronoun) {
        article.gold_mentions.push_back(GoldMention{subj_text,
                                                    subj.name});
      }
      article.gold_mentions.push_back(GoldMention{obj_text, obj.name});

      std::string sentence = chosen->pattern;
      sentence = ReplaceAll(sentence, "{S}", subj_text);
      sentence = ReplaceAll(sentence, "{O}", obj_text);
      if (chosen->needs_date) {
        sentence = ReplaceAll(sentence, "{D}", fact.date.ToString());
      }
      sentences.push_back(std::move(sentence));
      prev_subject = fact.subject;

      TimedTriple gold;
      gold.triple.subject = subj.name;
      gold.triple.predicate = fact.predicate;
      gold.triple.object = obj.name;
      gold.timestamp = fact.date.ToDayNumber();
      gold.source = article.source;
      article.gold.push_back(std::move(gold));
    }

    // Sector flavor: vocabulary from the lead subject's description,
    // giving the document a topical fingerprint.
    if (rng.Bernoulli(config_.flavor_rate)) {
      const WorldEntity& lead =
          world_->entity(world_->facts()[batch[0]].subject);
      if (lead.description.size() >= 2) {
        const std::string& t1 =
            lead.description[rng.UniformInt(lead.description.size())];
        const std::string& t2 =
            lead.description[rng.UniformInt(lead.description.size())];
        std::string flavor = "The move underscores rising demand for " +
                             t1 + " and " + t2 + " offerings.";
        sentences.push_back(std::move(flavor));
      }
    }
    if (rng.Bernoulli(config_.distractor_rate)) {
      if (rng.Bernoulli(0.5)) {
        sentences.push_back(
            kDistractors[rng.UniformInt(std::size(kDistractors))]);
      } else {
        const WorldFact& bait_fact =
            world_->facts()[batch[rng.UniformInt(batch.size())]];
        std::string bait = kEntityBaitDistractors[rng.UniformInt(
            std::size(kEntityBaitDistractors))];
        sentences.push_back(ReplaceAll(
            std::move(bait), "{E}",
            world_->entity(bait_fact.subject).name));
      }
    }
    article.date = max_date;
    article.text = Join(sentences, " ");
    articles.push_back(std::move(article));
  }

  std::stable_sort(articles.begin(), articles.end(),
                   [](const Article& a, const Article& b) {
                     return a.date < b.date;
                   });
  return articles;
}

}  // namespace nous
