#include "corpus/document_stream.h"

#include <algorithm>

namespace nous {

DocumentStream::DocumentStream(std::vector<Article> articles)
    : articles_(std::move(articles)) {
  std::stable_sort(articles_.begin(), articles_.end(),
                   [](const Article& a, const Article& b) {
                     return a.date < b.date;
                   });
}

const Article& DocumentStream::Next() { return articles_[cursor_++]; }

}  // namespace nous
