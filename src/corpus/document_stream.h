#ifndef NOUS_CORPUS_DOCUMENT_STREAM_H_
#define NOUS_CORPUS_DOCUMENT_STREAM_H_

#include <cstddef>
#include <vector>

#include "corpus/article_generator.h"

namespace nous {

/// Replayable, date-ordered article feed — the "data arrives in
/// streaming fashion" interface the pipeline consumes (§1 paradigm 1).
class DocumentStream {
 public:
  /// Takes ownership; articles are re-sorted by date.
  explicit DocumentStream(std::vector<Article> articles);

  bool Done() const { return cursor_ >= articles_.size(); }

  /// Next article in date order. Undefined when Done().
  const Article& Next();

  /// Articles not yet consumed.
  size_t Remaining() const { return articles_.size() - cursor_; }
  size_t TotalCount() const { return articles_.size(); }

  void Reset() { cursor_ = 0; }

  const std::vector<Article>& articles() const { return articles_; }

 private:
  std::vector<Article> articles_;
  size_t cursor_ = 0;
};

}  // namespace nous

#endif  // NOUS_CORPUS_DOCUMENT_STREAM_H_
