#ifndef NOUS_CORPUS_WORLD_MODEL_H_
#define NOUS_CORPUS_WORLD_MODEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/date_parser.h"
#include "text/ner.h"

namespace nous {

/// Ground-truth entity in a synthetic domain. The world model plays the
/// role of reality: the curated KB snapshots part of it, and the news
/// corpus reports (noisily) on its timed facts, so every downstream
/// quality metric has labels.
struct WorldEntity {
  std::string name;                    // canonical label
  std::vector<std::string> aliases;    // surface variants (may collide)
  std::string type_name;               // ontology type ("company", ...)
  EntityType ner_type = EntityType::kMisc;
  /// Thematic sector driving the entity's description vocabulary —
  /// the signal LDA recovers for the coherence experiments (E6).
  std::string sector;
  /// Wikipedia-like description bag of words.
  std::vector<std::string> description;
};

/// Ground-truth fact, optionally dated (events are dated; static facts
/// like headquarters carry the world start date).
struct WorldFact {
  size_t subject = 0;  // index into entities()
  size_t object = 0;
  std::string predicate;  // ontology predicate name
  Date date;
  /// Events are newsworthy: reported by the corpus. Static facts are
  /// background: candidates for the curated KB.
  bool is_event = false;
};

/// Parameters for the procedurally generated drone-industry world
/// (the paper's §1.2 use case).
struct DroneWorldConfig {
  size_t num_companies = 30;
  size_t num_people = 25;
  size_t num_products = 20;
  size_t num_events = 300;
  uint64_t seed = 17;
  Date start{2010, 1, 1};
  Date end{2015, 12, 31};
  /// Probability that a generated company also carries an ambiguous
  /// short alias colliding with a city or another company.
  double shared_alias_rate = 0.15;
};

/// A closed synthetic world: entities plus timed facts.
class WorldModel {
 public:
  WorldModel() = default;

  size_t AddEntity(WorldEntity entity);
  void AddAlias(size_t entity, std::string alias);
  size_t AddFact(size_t subject, std::string_view predicate, size_t object,
                 Date date, bool is_event);
  size_t AddFactByName(std::string_view subject, std::string_view predicate,
                       std::string_view object, Date date, bool is_event);

  const std::vector<WorldEntity>& entities() const { return entities_; }
  const std::vector<WorldFact>& facts() const { return facts_; }
  const WorldEntity& entity(size_t i) const { return entities_[i]; }

  std::optional<size_t> FindEntity(std::string_view name) const;

  /// All ontology predicates used by at least one fact.
  std::vector<std::string> Predicates() const;

  /// Procedural drone-industry world: curated anchor entities (DJI,
  /// Parrot, FAA, Windermere, ...) plus generated companies, people,
  /// products, cities, and a timeline of events.
  static WorldModel BuildDroneWorld(const DroneWorldConfig& config);

  /// Smaller procedural worlds for the paper's other two domains
  /// (§3.1): citation analytics and insider-threat logs.
  static WorldModel BuildCitationWorld(size_t num_authors,
                                       size_t num_papers, uint64_t seed);
  static WorldModel BuildEnterpriseWorld(size_t num_users,
                                         size_t num_resources,
                                         uint64_t seed);

 private:
  std::vector<WorldEntity> entities_;
  std::vector<WorldFact> facts_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace nous

#endif  // NOUS_CORPUS_WORLD_MODEL_H_
