#include "qa/sharded_view.h"

#include <algorithm>

#include "qa/query_engine.h"
#include "qa/path_search.h"

namespace nous {

// Anchor the sharded instantiations of the templated query stack, the
// twin of the PropertyGraph instantiations in query_engine.cc /
// path_search.cc.
template class QueryEngineT<ShardedGraphView>;
template class PathSearchT<ShardedGraphView>;
template double ComputePathCoherence<ShardedGraphView>(
    const ShardedGraphView&, const std::vector<VertexId>&);

ShardedGraphView::ShardedGraphView(
    const PropertyGraph* planner,
    std::vector<std::shared_ptr<const ShardView>> views)
    : planner_(planner) {
  shards_.reserve(views.size());
  for (auto& view : views) {
    PerShard shard;
    shard.view = std::move(view);
    const Dictionary& preds = shard.view->graph.predicates();
    shard.pred_to_global.reserve(preds.size());
    for (uint32_t i = 0; i < preds.size(); ++i) {
      // Every name a shard interned traveled in an op the planner had
      // already interned, so the lookup cannot miss on a coherent set.
      shard.pred_to_global.push_back(
          planner_->predicates().Lookup(preds.GetString(i)).value_or(
              kInvalidPredicate));
    }
    const Dictionary& srcs = shard.view->graph.sources();
    shard.src_to_global.reserve(srcs.size());
    for (uint32_t i = 0; i < srcs.size(); ++i) {
      shard.src_to_global.push_back(
          planner_->sources().Lookup(srcs.GetString(i)).value_or(
              kInvalidSource));
    }
    shards_.push_back(std::move(shard));
  }
}

std::optional<VertexId> ShardedGraphView::LocalVertex(size_t k,
                                                      VertexId gid) const {
  const PerShard& shard = shards_[k];
  if (!shard.gid_map_built) {
    const CowVec<VertexId>& gids = shard.view->vertex_gids;
    shard.gid_to_local.reserve(gids.size());
    for (size_t i = 0; i < gids.size(); ++i) {
      shard.gid_to_local.emplace(gids[i], static_cast<VertexId>(i));
    }
    shard.gid_map_built = true;
  }
  auto it = shard.gid_to_local.find(gid);
  if (it == shard.gid_to_local.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeId> ShardedGraphView::LocalEdge(const PerShard& shard,
                                                  EdgeId e) {
  const CowVec<EdgeId>& gids = shard.view->edge_gids;
  size_t lo = 0;
  size_t hi = gids.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (gids[mid] < e) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < gids.size() && gids[lo] == e) return static_cast<EdgeId>(lo);
  return std::nullopt;
}

AdjEntry ShardedGraphView::Translate(const PerShard& shard,
                                     const AdjEntry& a) const {
  AdjEntry out;
  out.predicate = shard.pred_to_global[a.predicate];
  out.neighbor = shard.view->vertex_gids[a.neighbor];
  out.edge = shard.view->edge_gids[a.edge];
  return out;
}

const EdgeRecord& ShardedGraphView::Edge(EdgeId e) const {
  auto memo = edge_memo_.find(e);
  if (memo != edge_memo_.end()) return memo->second;
  for (const PerShard& shard : shards_) {
    auto local = LocalEdge(shard, e);
    if (!local) continue;
    const EdgeRecord& rec = shard.view->graph.Edge(*local);
    EdgeRecord translated;
    translated.subject = shard.view->vertex_gids[rec.subject];
    translated.object = shard.view->vertex_gids[rec.object];
    translated.predicate = shard.pred_to_global[rec.predicate];
    translated.meta = rec.meta;
    translated.meta.source =
        rec.meta.source == kInvalidSource
            ? kInvalidSource
            : shard.src_to_global[rec.meta.source];
    translated.alive = rec.alive;
    return edge_memo_.emplace(e, translated).first->second;
  }
  // Unknown slot: behave like a dead record rather than crashing —
  // PropertyGraph::Edge has the same "must be < NumEdgeSlots" contract.
  static const EdgeRecord kDead;
  return kDead;
}

std::vector<AdjEntry> ShardedGraphView::Gather(VertexId v, bool out,
                                               PredicateId predicate) const {
  // Collect each shard's (already egid-ascending) translated list,
  // then k-way merge by global edge id — global insertion order.
  std::vector<std::vector<AdjEntry>> lists;
  for (size_t k = 0; k < shards_.size(); ++k) {
    auto local = LocalVertex(k, v);
    if (!local) continue;
    const PerShard& shard = shards_[k];
    const PropertyGraph& g = shard.view->graph;
    const std::vector<AdjEntry>* adj = nullptr;
    if (predicate == kInvalidPredicate) {
      adj = out ? &g.OutEdges(*local) : &g.InEdges(*local);
    } else {
      // Translate the planner predicate into this shard's dictionary;
      // a shard that never interned it has no matching edges.
      auto local_pred =
          g.predicates().Lookup(planner_->predicates().GetString(predicate));
      if (!local_pred) continue;
      adj = out ? &g.OutEdgesWithPredicate(*local, *local_pred)
                : &g.InEdgesWithPredicate(*local, *local_pred);
    }
    if (adj->empty()) continue;
    std::vector<AdjEntry> translated;
    translated.reserve(adj->size());
    for (const AdjEntry& a : *adj) translated.push_back(Translate(shard, a));
    lists.push_back(std::move(translated));
  }
  if (lists.empty()) return {};
  if (lists.size() == 1) return std::move(lists[0]);
  std::vector<size_t> cursor(lists.size(), 0);
  std::vector<AdjEntry> merged;
  for (;;) {
    size_t best = lists.size();
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursor[i] >= lists[i].size()) continue;
      if (best == lists.size() ||
          lists[i][cursor[i]].edge < lists[best][cursor[best]].edge) {
        best = i;
      }
    }
    if (best == lists.size()) break;
    merged.push_back(lists[best][cursor[best]++]);
  }
  return merged;
}

const std::vector<AdjEntry>& ShardedGraphView::OutEdges(VertexId v) const {
  auto it = out_memo_.find(v);
  if (it != out_memo_.end()) return it->second;
  return out_memo_.emplace(v, Gather(v, true, kInvalidPredicate))
      .first->second;
}

const std::vector<AdjEntry>& ShardedGraphView::InEdges(VertexId v) const {
  auto it = in_memo_.find(v);
  if (it != in_memo_.end()) return it->second;
  return in_memo_.emplace(v, Gather(v, false, kInvalidPredicate))
      .first->second;
}

const std::vector<AdjEntry>& ShardedGraphView::OutEdgesWithPredicate(
    VertexId v, PredicateId p) const {
  const uint64_t key = (static_cast<uint64_t>(v) << 32) | p;
  auto it = out_pred_memo_.find(key);
  if (it != out_pred_memo_.end()) return it->second;
  return out_pred_memo_.emplace(key, Gather(v, true, p)).first->second;
}

const std::vector<AdjEntry>& ShardedGraphView::InEdgesWithPredicate(
    VertexId v, PredicateId p) const {
  const uint64_t key = (static_cast<uint64_t>(v) << 32) | p;
  auto it = in_pred_memo_.find(key);
  if (it != in_pred_memo_.end()) return it->second;
  return in_pred_memo_.emplace(key, Gather(v, false, p)).first->second;
}

std::optional<EdgeId> ShardedGraphView::FindEdge(VertexId subject,
                                                 PredicateId predicate,
                                                 VertexId object) const {
  for (const AdjEntry& a : OutEdges(subject)) {
    if (a.predicate == predicate && a.neighbor == object &&
        Edge(a.edge).alive) {
      return a.edge;
    }
  }
  return std::nullopt;
}

Timestamp ShardedGraphView::MaxEdgeTimestamp() const {
  Timestamp newest = 0;
  for (const PerShard& shard : shards_) {
    newest = std::max(newest, shard.view->graph.MaxEdgeTimestamp());
  }
  return newest;
}

size_t ShardedGraphView::NumEdges() const {
  size_t total = 0;
  for (const PerShard& shard : shards_) {
    total += shard.view->graph.NumEdges();
  }
  return total;
}

size_t ShardedGraphView::NumEdgeSlots() const {
  size_t slots = 0;
  for (const PerShard& shard : shards_) {
    const CowVec<EdgeId>& gids = shard.view->edge_gids;
    if (!gids.empty()) {
      slots = std::max<size_t>(slots, gids[gids.size() - 1] + 1);
    }
  }
  return slots;
}

void ShardedGraphView::ForEachEdge(
    const std::function<void(EdgeId, const EdgeRecord&)>& fn) const {
  // K-way merge over the shards' ascending edge_gids sidecars: visits
  // every live edge exactly once, in global insertion order.
  std::vector<size_t> cursor(shards_.size(), 0);
  for (;;) {
    size_t best = shards_.size();
    EdgeId best_gid = kInvalidEdge;
    for (size_t k = 0; k < shards_.size(); ++k) {
      const CowVec<EdgeId>& gids = shards_[k].view->edge_gids;
      if (cursor[k] >= gids.size()) continue;
      if (best == shards_.size() || gids[cursor[k]] < best_gid) {
        best = k;
        best_gid = gids[cursor[k]];
      }
    }
    if (best == shards_.size()) break;
    ++cursor[best];
    const EdgeRecord& rec = Edge(best_gid);
    if (rec.alive) fn(best_gid, rec);
  }
}

}  // namespace nous
