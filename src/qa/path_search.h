#ifndef NOUS_QA_PATH_SEARCH_H_
#define NOUS_QA_PATH_SEARCH_H_

#include <vector>

#include "graph/property_graph.h"

namespace nous {

/// One explanation path between a source and a target entity, with the
/// provenance needed to show answers composed from multiple sources
/// (§1 contribution 3).
struct PathResult {
  std::vector<VertexId> vertices;  // source ... target
  std::vector<EdgeId> edges;       // vertices.size() - 1 entries
  /// Mean JS divergence between consecutive vertices' topic
  /// distributions; lower = more coherent.
  double coherence = 0.0;
  /// Distinct source ids across the path's edges.
  std::vector<SourceId> sources;
};

struct PathSearchConfig {
  size_t top_k = 5;
  size_t beam_width = 8;
  size_t max_hops = 4;
  /// Weight of the one-hop look-ahead term when ranking successors.
  double lookahead_weight = 0.5;
  /// Disable to ablate topic guidance (expansion order becomes
  /// arbitrary/BFS-like while scoring is unchanged).
  bool use_topic_guidance = true;
  /// Cap on successor edges considered per expansion (hub guard).
  size_t max_expansion = 64;
  /// Edges below this confidence are not traversed — explanations from
  /// trustworthy facts only.
  double min_edge_confidence = 0.0;
  /// When true, the relationship constraint is satisfied by ANY edge
  /// on the path rather than the final hop.
  bool constraint_anywhere = false;
};

/// Computes the coherence of a vertex sequence: mean JS divergence of
/// consecutive topic distributions (ln 2 for missing topics).
double ComputePathCoherence(const PropertyGraph& graph,
                            const std::vector<VertexId>& vertices);

/// NOUS's coherent path search (§3.6): beam search from source toward
/// target over the KG (edges traversable in both directions), guided
/// at every hop by the successor's topic divergence to the target
/// plus a one-step look-ahead, honoring an optional relationship
/// constraint on the path's final edge. Returns up to top_k complete
/// paths sorted by ascending coherence.
class PathSearch {
 public:
  /// `graph` must outlive the searcher; vertices should already carry
  /// topic distributions (topic/doc_term.h FitVertexTopics).
  explicit PathSearch(const PropertyGraph* graph,
                      PathSearchConfig config = {});

  std::vector<PathResult> FindPaths(
      VertexId source, VertexId target,
      PredicateId relationship = kInvalidPredicate) const;

 private:
  const PropertyGraph* graph_;
  PathSearchConfig config_;
};

}  // namespace nous

#endif  // NOUS_QA_PATH_SEARCH_H_
