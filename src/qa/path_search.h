#ifndef NOUS_QA_PATH_SEARCH_H_
#define NOUS_QA_PATH_SEARCH_H_

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "graph/property_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topic/divergence.h"

namespace nous {

/// One explanation path between a source and a target entity, with the
/// provenance needed to show answers composed from multiple sources
/// (§1 contribution 3).
struct PathResult {
  std::vector<VertexId> vertices;  // source ... target
  std::vector<EdgeId> edges;       // vertices.size() - 1 entries
  /// Mean JS divergence between consecutive vertices' topic
  /// distributions; lower = more coherent.
  double coherence = 0.0;
  /// Distinct source ids across the path's edges.
  std::vector<SourceId> sources;
};

struct PathSearchConfig {
  size_t top_k = 5;
  size_t beam_width = 8;
  size_t max_hops = 4;
  /// Weight of the one-hop look-ahead term when ranking successors.
  double lookahead_weight = 0.5;
  /// Disable to ablate topic guidance (expansion order becomes
  /// arbitrary/BFS-like while scoring is unchanged).
  bool use_topic_guidance = true;
  /// Cap on successor edges considered per expansion (hub guard).
  size_t max_expansion = 64;
  /// Edges below this confidence are not traversed — explanations from
  /// trustworthy facts only.
  double min_edge_confidence = 0.0;
  /// When true, the relationship constraint is satisfied by ANY edge
  /// on the path rather than the final hop.
  bool constraint_anywhere = false;
};

/// Computes the coherence of a vertex sequence: mean JS divergence of
/// consecutive topic distributions (ln 2 for missing topics).
/// `Graph` is any type modeling the PropertyGraph read API — the
/// single fused graph, or a ShardedGraphView merging per-shard
/// snapshots behind global ids (qa/sharded_view.h).
template <typename Graph>
double ComputePathCoherence(const Graph& graph,
                            const std::vector<VertexId>& vertices) {
  if (vertices.size() < 2) return 0.0;
  double total = 0;
  for (size_t i = 0; i + 1 < vertices.size(); ++i) {
    total += JsDivergence(graph.VertexTopics(vertices[i]),
                          graph.VertexTopics(vertices[i + 1]));
  }
  return total / static_cast<double>(vertices.size() - 1);
}

/// NOUS's coherent path search (§3.6): beam search from source toward
/// target over the KG (edges traversable in both directions), guided
/// at every hop by the successor's topic divergence to the target
/// plus a one-step look-ahead, honoring an optional relationship
/// constraint on the path's final edge. Returns up to top_k complete
/// paths sorted by ascending coherence, ties broken lexicographically
/// by (vertices, edges) so top-k truncation is identical on every
/// platform and for every shard count.
///
/// Templated over the graph view so the same search runs against the
/// fused PropertyGraph and against a scatter-gather ShardedGraphView:
/// the view enumerates adjacency in global insertion order, so the
/// beam — and therefore the result set — is bit-identical.
template <typename Graph>
class PathSearchT {
 public:
  /// `graph` must outlive the searcher; vertices should already carry
  /// topic distributions (topic/doc_term.h FitVertexTopics).
  explicit PathSearchT(const Graph* graph, PathSearchConfig config = {})
      : graph_(graph), config_(config) {}

  std::vector<PathResult> FindPaths(
      VertexId source, VertexId target,
      PredicateId relationship = kInvalidPredicate) const;

 private:
  struct PartialPath {
    std::vector<VertexId> vertices;
    std::vector<EdgeId> edges;
    double guide_score = 0.0;  // lower = expand first
  };

  const Graph* graph_;
  PathSearchConfig config_;
};

using PathSearch = PathSearchT<PropertyGraph>;

template <typename Graph>
std::vector<PathResult> PathSearchT<Graph>::FindPaths(
    VertexId source, VertexId target, PredicateId relationship) const {
  NOUS_SPAN("path_search");
  constexpr double kLn2 = 0.6931471805599453;
  std::vector<PathResult> complete;
  if (source >= graph_->NumVertices() || target >= graph_->NumVertices() ||
      source == target) {
    return complete;
  }
  size_t total_expanded = 0;
  const std::vector<double>& target_topics = graph_->VertexTopics(target);

  auto divergence_to_target = [&](VertexId v) {
    if (!config_.use_topic_guidance) return 0.0;
    return JsDivergence(graph_->VertexTopics(v), target_topics);
  };
  // One-step look-ahead: best divergence among v's neighbors. Only
  // edges the expansion step would actually traverse count: an edge
  // below min_edge_confidence must not steer the beam toward a
  // neighbor the search then refuses to enter, and it does not use up
  // the `seen` budget either.
  auto lookahead = [&](VertexId v) {
    if (!config_.use_topic_guidance) return 0.0;
    double best = kLn2;
    size_t seen = 0;
    auto scan = [&](const std::vector<AdjEntry>& adj) {
      for (const AdjEntry& a : adj) {
        if (seen >= config_.max_expansion) return;
        if (graph_->Edge(a.edge).meta.confidence <
            config_.min_edge_confidence) {
          continue;  // not viable — invisible to guidance
        }
        ++seen;
        if (a.neighbor == target) {
          best = 0.0;
          return;
        }
        best = std::min(best, divergence_to_target(a.neighbor));
      }
    };
    scan(graph_->OutEdges(v));
    if (best > 0) scan(graph_->InEdges(v));
    return best;
  };

  std::vector<PartialPath> beam;
  beam.push_back(PartialPath{{source}, {}, 0.0});
  std::set<std::pair<std::vector<VertexId>, std::vector<EdgeId>>> emitted;

  // With a final-edge constraint (the default constraint mode), only
  // edges carrying the constrained predicate can close a path — so
  // completions are found by scanning just that predicate's adjacency
  // partition, and the general expansion below skips the target.
  const bool final_edge_constraint =
      relationship != kInvalidPredicate && !config_.constraint_anywhere;

  for (size_t hop = 0; hop < config_.max_hops && !beam.empty(); ++hop) {
    std::vector<PartialPath> successors;
    for (const PartialPath& path : beam) {
      VertexId tail = path.vertices.back();

      // Emits path + closing edge `a` (to the target) if new.
      auto emit_complete = [&](const AdjEntry& a) {
        PathResult result;
        result.vertices = path.vertices;
        result.vertices.push_back(target);
        result.edges = path.edges;
        result.edges.push_back(a.edge);
        result.coherence = ComputePathCoherence(*graph_, result.vertices);
        std::set<SourceId> sources;
        for (EdgeId e : result.edges) {
          sources.insert(graph_->Edge(e).meta.source);
        }
        result.sources.assign(sources.begin(), sources.end());
        auto key = std::make_pair(result.vertices, result.edges);
        if (emitted.insert(key).second) {
          complete.push_back(std::move(result));
        }
      };

      if (final_edge_constraint) {
        auto close_with = [&](const std::vector<AdjEntry>& adj) {
          for (const AdjEntry& a : adj) {
            if (a.neighbor != target) continue;
            if (graph_->Edge(a.edge).meta.confidence <
                config_.min_edge_confidence) {
              continue;  // untrusted fact
            }
            emit_complete(a);
          }
        };
        close_with(graph_->OutEdgesWithPredicate(tail, relationship));
        close_with(graph_->InEdgesWithPredicate(tail, relationship));
      }

      size_t expanded = 0;
      auto expand = [&](const std::vector<AdjEntry>& adj) {
        for (const AdjEntry& a : adj) {
          if (expanded >= config_.max_expansion) return;
          VertexId next = a.neighbor;
          if (final_edge_constraint && next == target) {
            continue;  // completions handled via the partition above
          }
          if (std::find(path.vertices.begin(), path.vertices.end(),
                        next) != path.vertices.end()) {
            continue;  // simple paths only
          }
          if (graph_->Edge(a.edge).meta.confidence <
              config_.min_edge_confidence) {
            continue;  // untrusted fact
          }
          ++expanded;
          if (next == target) {
            // Relationship constraint: satisfied by any edge when
            // constraint_anywhere is set (unconstrained otherwise).
            bool constraint_ok = relationship == kInvalidPredicate;
            if (!constraint_ok) {
              std::vector<EdgeId> full_edges = path.edges;
              full_edges.push_back(a.edge);
              for (EdgeId e : full_edges) {
                if (graph_->Edge(e).predicate == relationship) {
                  constraint_ok = true;
                  break;
                }
              }
            }
            if (!constraint_ok) continue;
            emit_complete(a);
            continue;
          }
          PartialPath grown = path;
          grown.vertices.push_back(next);
          grown.edges.push_back(a.edge);
          grown.guide_score = divergence_to_target(next) +
                              config_.lookahead_weight * lookahead(next);
          successors.push_back(std::move(grown));
        }
      };
      expand(graph_->OutEdges(tail));
      expand(graph_->InEdges(tail));
      total_expanded += expanded;
    }
    // Stable: successors with equal guide scores keep their discovery
    // order, which the graph view defines deterministically.
    std::stable_sort(successors.begin(), successors.end(),
                     [](const PartialPath& a, const PartialPath& b) {
                       return a.guide_score < b.guide_score;
                     });
    if (successors.size() > config_.beam_width) {
      successors.resize(config_.beam_width);
    }
    beam = std::move(successors);
  }

  // Coherence, then shortest, then lexicographic (vertices, edges):
  // equal-coherence paths used to land in std::sort's unspecified
  // order, so top-k truncation could differ across platforms and —
  // once scatter-gather merges partial results — across shard counts.
  std::sort(complete.begin(), complete.end(),
            [](const PathResult& a, const PathResult& b) {
              if (a.coherence != b.coherence) {
                return a.coherence < b.coherence;
              }
              if (a.vertices.size() != b.vertices.size()) {
                return a.vertices.size() < b.vertices.size();
              }
              if (a.vertices != b.vertices) return a.vertices < b.vertices;
              return a.edges < b.edges;
            });
  if (complete.size() > config_.top_k) complete.resize(config_.top_k);
  static Counter* expanded_total = MetricsRegistry::Global().GetCounter(
      "nous_path_search_expanded_total",
      "Successor edges expanded during beam search");
  static Counter* paths_total = MetricsRegistry::Global().GetCounter(
      "nous_path_search_paths_total", "Complete paths returned");
  expanded_total->Increment(total_expanded);
  paths_total->Increment(complete.size());
  return complete;
}

}  // namespace nous

#endif  // NOUS_QA_PATH_SEARCH_H_
