#ifndef NOUS_QA_QUERY_H_
#define NOUS_QA_QUERY_H_

#include <string>

#include "common/result.h"
#include "graph/types.h"

namespace nous {

/// The five query classes of the paper's Figure 5.
enum class QueryKind {
  kTrending,      // "what is trending"
  kEntity,        // "tell me about DJI" (Figure 6)
  kRelationship,  // "why would Windermere use drones" / explain s ~ t
  kPattern,       // "show discovered patterns" (Figure 7)
  kSearch,        // "paths from X to Y [via P]"
};

const char* QueryKindName(QueryKind kind);

/// A parsed structured query.
struct Query {
  QueryKind kind = QueryKind::kEntity;
  std::string entity_a;
  std::string entity_b;
  std::string predicate;  // optional relationship constraint
  /// Entity queries: only facts with timestamp >= since (0 = all).
  /// Parsed from a trailing "since <year>".
  Timestamp since = 0;
  size_t top_k = 5;
};

/// Template-based natural-language-like query parser, covering the
/// phrasings the demo exposes:
///   "what is trending" | "trending"            -> kTrending
///   "tell me about <E>" | "who is <E>"         -> kEntity
///   "why would <A> use <B>" /
///   "explain <A> and <B> [via <P>]"            -> kRelationship
///   "show patterns" | "patterns"               -> kPattern
///   "paths from <A> to <B> [via <P>]"          -> kSearch
/// Unrecognized text yields InvalidArgument.
Result<Query> ParseQuery(const std::string& text);

/// Canonical cache key for a parsed query: two phrasings that parse
/// to the same structured query ("Tell me about DJI?" / "who is DJI")
/// map to the same key. Fields are NOT case-folded: entity resolution
/// prefers an exact-case match before the folded index, so "DJI" and
/// "dji" can legitimately resolve to different vertices and must not
/// share a cache entry.
std::string CanonicalCacheKey(const Query& query);

}  // namespace nous

#endif  // NOUS_QA_QUERY_H_
