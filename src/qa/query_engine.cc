#include "qa/query_engine.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nous {

QueryEngine::QueryEngine(const PropertyGraph* graph,
                         const StreamingMiner* miner,
                         QueryEngineConfig config,
                         const PropertyGraph* miner_graph)
    : graph_(graph),
      miner_(miner),
      miner_graph_(miner_graph != nullptr ? miner_graph : graph),
      config_(config) {}

QueryEngine::QueryEngine(const PropertyGraph* graph,
                         const std::vector<RenderedPattern>& patterns,
                         QueryEngineConfig config)
    : graph_(graph),
      miner_(nullptr),
      miner_graph_(graph),
      prerendered_patterns_(&patterns),
      config_(config) {}

std::vector<RenderedPattern> QueryEngine::RenderMinerPatterns() const {
  if (prerendered_patterns_ != nullptr) return *prerendered_patterns_;
  std::vector<RenderedPattern> rendered;
  if (miner_ == nullptr) return rendered;
  for (const PatternStats& stats : miner_->ClosedFrequentPatterns()) {
    RenderedPattern p;
    p.description = stats.pattern.ToString(miner_graph_->predicates(),
                                           &miner_graph_->types());
    p.support = stats.support;
    p.embeddings = stats.embeddings;
    rendered.push_back(std::move(p));
  }
  return rendered;
}

Result<VertexId> QueryEngine::ResolveEntity(const std::string& name) const {
  // Exact match, then the graph's case-folded index (queries are
  // typed by humans) — O(1) where this used to scan every label.
  if (auto v = graph_->FindVertexFolded(name)) return *v;
  return Status::NotFound("unknown entity: " + name);
}

FactLine QueryEngine::MakeFactLine(EdgeId edge) const {
  const EdgeRecord& rec = graph_->Edge(edge);
  FactLine line;
  line.subject = graph_->VertexLabel(rec.subject);
  line.predicate = graph_->predicates().GetString(rec.predicate);
  line.object = graph_->VertexLabel(rec.object);
  line.confidence = rec.meta.confidence;
  line.curated = rec.meta.curated;
  line.source = rec.meta.source == kInvalidSource
                    ? ""
                    : graph_->sources().GetString(rec.meta.source);
  line.timestamp = rec.meta.timestamp;
  return line;
}

Result<Answer> QueryEngine::Execute(const Query& query) const {
  NOUS_SPAN("query");
  // Per-class query counts (Figure 5's five classes) under one family.
  MetricsRegistry::Global()
      .GetCounter("nous_query_total", "Queries executed by class",
                  {{"class", QueryKindName(query.kind)}})
      ->Increment();
  switch (query.kind) {
    case QueryKind::kTrending:
      return ExecuteTrending();
    case QueryKind::kEntity:
      return ExecuteEntity(query);
    case QueryKind::kRelationship:
    case QueryKind::kSearch:
      return ExecuteRelationship(query, query.kind);
    case QueryKind::kPattern:
      return ExecutePattern();
  }
  return Status::Internal("unhandled query kind");
}

Result<Answer> QueryEngine::ExecuteText(const std::string& text) const {
  NOUS_ASSIGN_OR_RETURN(Query query, ParseQuery(text));
  return Execute(query);
}

Answer QueryEngine::ExecuteTrending() const {
  Answer answer;
  answer.kind = QueryKind::kTrending;
  // Hot entities: activity within the trailing horizon. The graph
  // tracks its max live-edge timestamp incrementally, so trending
  // needs one edge pass instead of two.
  Timestamp newest = graph_->MaxEdgeTimestamp();
  Timestamp cutoff = config_.trending_horizon == 0
                         ? 0
                         : newest - config_.trending_horizon;
  Timestamp previous_cutoff =
      config_.trending_horizon == 0
          ? 0
          : cutoff - config_.trending_horizon;
  std::map<VertexId, size_t> activity;
  std::map<VertexId, size_t> previous_activity;
  std::vector<EdgeId> recent_edges;
  graph_->ForEachEdge([&](EdgeId e, const EdgeRecord& rec) {
    if (rec.meta.curated) return;  // trends come from the stream
    if (rec.meta.timestamp >= cutoff) {
      ++activity[rec.subject];
      ++activity[rec.object];
      recent_edges.push_back(e);
    } else if (config_.trending_horizon != 0 &&
               rec.meta.timestamp >= previous_cutoff) {
      ++previous_activity[rec.subject];
      ++previous_activity[rec.object];
    }
  });
  // Rising score = recent minus previous-window activity; raw recent
  // count when rising ranking is disabled.
  auto score_of = [&](VertexId v, size_t recent) -> double {
    if (!config_.trending_rising) return static_cast<double>(recent);
    auto it = previous_activity.find(v);
    size_t previous = it == previous_activity.end() ? 0 : it->second;
    return static_cast<double>(recent) -
           static_cast<double>(previous);
  };
  std::vector<std::pair<VertexId, size_t>> ranked(activity.begin(),
                                                  activity.end());
  std::sort(ranked.begin(), ranked.end(),
            [&](const auto& a, const auto& b) {
              double sa = score_of(a.first, a.second);
              double sb = score_of(b.first, b.second);
              if (sa != sb) return sa > sb;
              return a.second > b.second;
            });
  for (const auto& [v, count] : ranked) {
    if (answer.hot_entities.size() >= config_.trending_limit) break;
    answer.hot_entities.emplace_back(graph_->VertexLabel(v), count);
  }
  for (EdgeId e : recent_edges) {
    if (answer.facts.size() >= config_.trending_limit) break;
    answer.facts.push_back(MakeFactLine(e));
  }
  answer.patterns = RenderMinerPatterns();
  return answer;
}

Result<Answer> QueryEngine::ExecuteEntity(const Query& query) const {
  NOUS_ASSIGN_OR_RETURN(VertexId v, ResolveEntity(query.entity_a));
  Answer answer;
  answer.kind = QueryKind::kEntity;
  std::set<EdgeId> edges;
  for (const AdjEntry& a : graph_->OutEdges(v)) edges.insert(a.edge);
  for (const AdjEntry& a : graph_->InEdges(v)) edges.insert(a.edge);
  for (EdgeId e : edges) {
    if (query.since != 0 &&
        graph_->Edge(e).meta.timestamp < query.since) {
      continue;  // temporal filter ("... since 2014")
    }
    answer.facts.push_back(MakeFactLine(e));
  }
  // Curated facts first, then by recency.
  std::sort(answer.facts.begin(), answer.facts.end(),
            [](const FactLine& a, const FactLine& b) {
              if (a.curated != b.curated) return a.curated > b.curated;
              return a.timestamp > b.timestamp;
            });
  return answer;
}

Result<Answer> QueryEngine::ExecuteRelationship(const Query& query,
                                                QueryKind kind) const {
  NOUS_ASSIGN_OR_RETURN(VertexId s, ResolveEntity(query.entity_a));
  NOUS_ASSIGN_OR_RETURN(VertexId t, ResolveEntity(query.entity_b));
  PredicateId constraint = kInvalidPredicate;
  if (!query.predicate.empty()) {
    if (auto p = graph_->predicates().Lookup(query.predicate)) {
      constraint = *p;
    }
    // An unknown predicate stays unconstrained rather than failing:
    // why-questions phrase relations loosely ("use" vs "uses").
  }
  Answer answer;
  answer.kind = kind;
  PathSearch search(graph_, config_.path_search);
  answer.paths = search.FindPaths(s, t, constraint);
  if (answer.paths.empty() && constraint != kInvalidPredicate) {
    // Fall back to unconstrained explanation.
    answer.paths = search.FindPaths(s, t, kInvalidPredicate);
  }
  std::set<SourceId> sources;
  for (const PathResult& path : answer.paths) {
    for (SourceId src : path.sources) sources.insert(src);
  }
  answer.distinct_sources = sources.size();
  return answer;
}

Answer QueryEngine::ExecutePattern() const {
  Answer answer;
  answer.kind = QueryKind::kPattern;
  answer.patterns = RenderMinerPatterns();
  return answer;
}

std::string Answer::Render(const PropertyGraph& graph) const {
  std::ostringstream os;
  os << "[" << QueryKindName(kind) << " answer]\n";
  if (!hot_entities.empty()) {
    os << "Trending entities:\n";
    for (const auto& [name, count] : hot_entities) {
      os << StrFormat("  %-30s activity=%zu\n", name.c_str(), count);
    }
  }
  if (!facts.empty()) {
    os << "Facts:\n";
    for (const FactLine& f : facts) {
      std::string provenance =
          f.curated ? "[curated]"
          : f.source.empty() ? "[extracted]"
                             : "[extracted from " + f.source + "]";
      os << StrFormat("  (%s, %s, %s) conf=%.2f %s\n", f.subject.c_str(),
                      f.predicate.c_str(), f.object.c_str(), f.confidence,
                      provenance.c_str());
    }
  }
  if (!patterns.empty()) {
    os << "Patterns:\n";
    for (const RenderedPattern& p : patterns) {
      os << StrFormat("  support=%zu  %s\n", p.support,
                      p.description.c_str());
    }
  }
  if (!paths.empty()) {
    os << "Paths:\n";
    for (const PathResult& path : paths) {
      std::vector<std::string> hops;
      for (size_t i = 0; i < path.vertices.size(); ++i) {
        hops.push_back(graph.VertexLabel(path.vertices[i]));
        if (i < path.edges.size()) {
          hops.push_back(
              "-[" +
              graph.predicates().GetString(
                  graph.Edge(path.edges[i]).predicate) +
              "]-");
        }
      }
      os << StrFormat("  coherence=%.3f sources=%zu  %s\n", path.coherence,
                      path.sources.size(), Join(hops, " ").c_str());
    }
  }
  return os.str();
}

}  // namespace nous
