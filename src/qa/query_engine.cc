#include "qa/query_engine.h"

#include <sstream>

#include "common/string_util.h"

namespace nous {

// Anchor the common instantiation (the sharded view instantiates its
// own in qa/sharded_view.cc).
template class QueryEngineT<PropertyGraph>;

std::string Answer::Render(const PropertyGraph& graph) const {
  std::ostringstream os;
  os << "[" << QueryKindName(kind) << " answer]\n";
  if (!hot_entities.empty()) {
    os << "Trending entities:\n";
    for (const auto& [name, count] : hot_entities) {
      os << StrFormat("  %-30s activity=%zu\n", name.c_str(), count);
    }
  }
  if (!facts.empty()) {
    os << "Facts:\n";
    for (const FactLine& f : facts) {
      std::string provenance =
          f.curated ? "[curated]"
          : f.source.empty() ? "[extracted]"
                             : "[extracted from " + f.source + "]";
      os << StrFormat("  (%s, %s, %s) conf=%.2f %s\n", f.subject.c_str(),
                      f.predicate.c_str(), f.object.c_str(), f.confidence,
                      provenance.c_str());
    }
  }
  if (!patterns.empty()) {
    os << "Patterns:\n";
    for (const RenderedPattern& p : patterns) {
      os << StrFormat("  support=%zu  %s\n", p.support,
                      p.description.c_str());
    }
  }
  if (!paths.empty()) {
    os << "Paths:\n";
    for (const PathResult& path : paths) {
      std::vector<std::string> hops;
      for (size_t i = 0; i < path.vertices.size(); ++i) {
        hops.push_back(graph.VertexLabel(path.vertices[i]));
        if (i < path.edges.size()) {
          hops.push_back(
              "-[" +
              graph.predicates().GetString(
                  graph.Edge(path.edges[i]).predicate) +
              "]-");
        }
      }
      os << StrFormat("  coherence=%.3f sources=%zu  %s\n", path.coherence,
                      path.sources.size(), Join(hops, " ").c_str());
    }
  }
  return os.str();
}

}  // namespace nous
