#include "qa/query.h"

#include <cstdlib>

#include "common/string_util.h"
#include "text/date_parser.h"

namespace nous {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kTrending: return "trending";
    case QueryKind::kEntity: return "entity";
    case QueryKind::kRelationship: return "relationship";
    case QueryKind::kPattern: return "pattern";
    case QueryKind::kSearch: return "search";
  }
  return "?";
}

namespace {

/// Strips a trailing '?' / '.' and surrounding whitespace.
std::string Normalize(const std::string& text) {
  std::string_view v = Trim(text);
  while (!v.empty() && (v.back() == '?' || v.back() == '.')) {
    v.remove_suffix(1);
    v = Trim(v);
  }
  return std::string(v);
}

/// If `lower` starts with `prefix`, returns the remainder of the
/// original-cased text after the prefix (trimmed).
bool TakePrefix(const std::string& text, const std::string& lower,
                std::string_view prefix, std::string* rest) {
  if (!StartsWith(lower, prefix)) return false;
  *rest = std::string(Trim(std::string_view(text).substr(prefix.size())));
  return true;
}

/// Splits "A <sep> B" on the first whole-word separator occurrence in
/// the lower-cased text.
bool SplitOn(const std::string& text, const std::string& lower,
             std::string_view sep, std::string* a, std::string* b) {
  std::string needle = " " + std::string(sep) + " ";
  size_t pos = lower.find(needle);
  if (pos == std::string::npos) return false;
  *a = std::string(Trim(std::string_view(text).substr(0, pos)));
  *b = std::string(
      Trim(std::string_view(text).substr(pos + needle.size())));
  return !a->empty() && !b->empty();
}

/// Extracts an optional trailing "since <year>" filter.
void TakeSince(std::string* text, Timestamp* since) {
  std::string lower = ToLower(*text);
  size_t pos = lower.rfind(" since ");
  if (pos == std::string::npos) return;
  std::string tail(Trim(std::string_view(*text).substr(pos + 7)));
  if (!IsDigits(tail) || tail.size() != 4) return;
  int year = std::atoi(tail.c_str());
  if (year < 1500 || year > 2200) return;
  *since = Date{year, 1, 1}.ToDayNumber();
  *text = std::string(Trim(std::string_view(*text).substr(0, pos)));
}

/// Extracts an optional trailing "via <P>" constraint.
void TakeVia(std::string* text, std::string* predicate) {
  std::string lower = ToLower(*text);
  size_t pos = lower.rfind(" via ");
  if (pos == std::string::npos) return;
  *predicate = std::string(Trim(std::string_view(*text).substr(pos + 5)));
  *text = std::string(Trim(std::string_view(*text).substr(0, pos)));
}

}  // namespace

Result<Query> ParseQuery(const std::string& raw) {
  std::string text = Normalize(raw);
  std::string lower = ToLower(text);
  if (text.empty()) {
    return Status::InvalidArgument("empty query");
  }
  Query query;

  if (lower == "trending" || lower == "what is trending" ||
      StartsWith(lower, "what is trending")) {
    query.kind = QueryKind::kTrending;
    return query;
  }
  if (lower == "patterns" || lower == "show patterns" ||
      StartsWith(lower, "show discovered patterns")) {
    query.kind = QueryKind::kPattern;
    return query;
  }

  std::string rest;
  if (TakePrefix(text, lower, "tell me about ", &rest) ||
      TakePrefix(text, lower, "who is ", &rest) ||
      TakePrefix(text, lower, "what is ", &rest)) {
    if (rest.empty()) return Status::InvalidArgument("missing entity");
    query.kind = QueryKind::kEntity;
    TakeSince(&rest, &query.since);
    if (rest.empty()) return Status::InvalidArgument("missing entity");
    query.entity_a = rest;
    return query;
  }

  if (TakePrefix(text, lower, "why would ", &rest) ||
      TakePrefix(text, lower, "why does ", &rest) ||
      TakePrefix(text, lower, "why did ", &rest)) {
    // "why would <A> use <B>" — the verb becomes the constraint.
    std::string rest_lower = ToLower(rest);
    for (std::string_view verb : {"use", "employ", "acquire", "buy",
                                  "partner with", "invest in"}) {
      std::string a, b;
      if (SplitOn(rest, rest_lower, verb, &a, &b)) {
        query.kind = QueryKind::kRelationship;
        query.entity_a = a;
        query.entity_b = b;
        query.predicate = std::string(verb);
        return query;
      }
    }
    return Status::InvalidArgument("unrecognized why-question: " + raw);
  }

  if (TakePrefix(text, lower, "explain ", &rest)) {
    std::string predicate;
    TakeVia(&rest, &predicate);
    std::string a, b;
    if (!SplitOn(rest, ToLower(rest), "and", &a, &b)) {
      return Status::InvalidArgument("explain needs '<A> and <B>'");
    }
    query.kind = QueryKind::kRelationship;
    query.entity_a = a;
    query.entity_b = b;
    query.predicate = predicate;
    return query;
  }

  if (TakePrefix(text, lower, "paths from ", &rest) ||
      TakePrefix(text, lower, "path from ", &rest)) {
    std::string predicate;
    TakeVia(&rest, &predicate);
    std::string a, b;
    if (!SplitOn(rest, ToLower(rest), "to", &a, &b)) {
      return Status::InvalidArgument("search needs '<A> to <B>'");
    }
    query.kind = QueryKind::kSearch;
    query.entity_a = a;
    query.entity_b = b;
    query.predicate = predicate;
    return query;
  }

  return Status::InvalidArgument("unrecognized query: " + raw);
}

std::string CanonicalCacheKey(const Query& query) {
  // '\x1f' (unit separator) cannot appear in parsed fields, so the
  // join is unambiguous.
  return StrFormat("%s\x1f%s\x1f%s\x1f%s\x1f%lld\x1f%zu",
                   QueryKindName(query.kind), query.entity_a.c_str(),
                   query.entity_b.c_str(), query.predicate.c_str(),
                   static_cast<long long>(query.since), query.top_k);
}

}  // namespace nous
