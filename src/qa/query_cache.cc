#include "qa/query_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace nous {

namespace {

/// Process-wide cache counters (all instances aggregate here; tests
/// that need per-instance numbers use QueryCache::stats()).
struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Gauge* entries;
};

const CacheMetrics& Metrics() {
  static CacheMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    CacheMetrics m;
    m.hits = r.GetCounter("nous_query_cache_hits_total",
                          "Query-cache lookups served from cache");
    m.misses = r.GetCounter(
        "nous_query_cache_misses_total",
        "Query-cache lookups that missed (absent or stale version)");
    m.evictions = r.GetCounter("nous_query_cache_evictions_total",
                               "Query-cache entries evicted (LRU)");
    m.entries =
        r.GetGauge("nous_query_cache_entries", "Query-cache entries");
    return m;
  }();
  return metrics;
}

}  // namespace

QueryCache::QueryCache(size_t capacity) : capacity_(capacity) {}

void QueryCache::EraseLocked(LruList::iterator it) {
  index_.erase(it->key);
  lru_.erase(it);
}

bool QueryCache::Lookup(const std::string& key, uint64_t version,
                        Answer* answer) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    Metrics().misses->Increment();
    return false;
  }
  if (it->second->version != version) {
    // Computed against an older KG version: stale, drop it.
    EraseLocked(it->second);
    ++stats_.misses;
    Metrics().misses->Increment();
    Metrics().entries->Set(static_cast<double>(lru_.size()));
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch (MRU)
  *answer = it->second->answer;
  ++stats_.hits;
  Metrics().hits->Increment();
  return true;
}

void QueryCache::Insert(const std::string& key, uint64_t version,
                        const Answer& answer) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  if (auto it = index_.find(key); it != index_.end()) {
    EraseLocked(it->second);
  }
  lru_.push_front(Entry{key, version, answer});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.evictions;
    Metrics().evictions->Increment();
  }
  Metrics().entries->Set(static_cast<double>(lru_.size()));
}

size_t QueryCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

QueryCache::Stats QueryCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace nous
