#include "qa/path_baselines.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "common/random.h"

namespace nous {

namespace {

PathResult MakeResult(const PropertyGraph& graph,
                      const std::vector<VertexId>& vertices,
                      const std::vector<EdgeId>& edges) {
  PathResult result;
  result.vertices = vertices;
  result.edges = edges;
  result.coherence = ComputePathCoherence(graph, vertices);
  std::set<SourceId> sources;
  for (EdgeId e : edges) sources.insert(graph.Edge(e).meta.source);
  result.sources.assign(sources.begin(), sources.end());
  return result;
}

bool FinalEdgeOk(const PropertyGraph& graph, EdgeId e,
                 PredicateId relationship) {
  return relationship == kInvalidPredicate ||
         graph.Edge(e).predicate == relationship;
}

}  // namespace

std::vector<PathResult> BfsShortestPaths(const PropertyGraph& graph,
                                         VertexId source, VertexId target,
                                         size_t top_k, size_t max_hops,
                                         PredicateId relationship) {
  std::vector<PathResult> results;
  if (source >= graph.NumVertices() || target >= graph.NumVertices() ||
      source == target) {
    return results;
  }
  struct State {
    std::vector<VertexId> vertices;
    std::vector<EdgeId> edges;
  };
  std::queue<State> frontier;
  frontier.push(State{{source}, {}});
  // Bounded frontier guard for dense graphs.
  const size_t kMaxStates = 200000;
  size_t states = 0;
  while (!frontier.empty() && results.size() < top_k &&
         states < kMaxStates) {
    State state = std::move(frontier.front());
    frontier.pop();
    ++states;
    if (state.edges.size() >= max_hops) continue;
    VertexId tail = state.vertices.back();
    auto expand = [&](const std::vector<AdjEntry>& adj) {
      for (const AdjEntry& a : adj) {
        if (results.size() >= top_k) return;
        if (std::find(state.vertices.begin(), state.vertices.end(),
                      a.neighbor) != state.vertices.end()) {
          continue;
        }
        State grown = state;
        grown.vertices.push_back(a.neighbor);
        grown.edges.push_back(a.edge);
        if (a.neighbor == target) {
          if (FinalEdgeOk(graph, a.edge, relationship)) {
            results.push_back(
                MakeResult(graph, grown.vertices, grown.edges));
          }
          continue;
        }
        frontier.push(std::move(grown));
      }
    };
    expand(graph.OutEdges(tail));
    expand(graph.InEdges(tail));
  }
  return results;
}

std::vector<PathResult> RandomWalkPaths(const PropertyGraph& graph,
                                        VertexId source, VertexId target,
                                        size_t top_k, size_t max_hops,
                                        size_t num_walks, uint64_t seed,
                                        PredicateId relationship) {
  std::vector<PathResult> results;
  if (source >= graph.NumVertices() || target >= graph.NumVertices() ||
      source == target) {
    return results;
  }
  Rng rng(seed);
  // Path -> (hit count, result), ranked by hits.
  std::map<std::vector<EdgeId>, std::pair<size_t, PathResult>> found;
  for (size_t walk = 0; walk < num_walks; ++walk) {
    std::vector<VertexId> vertices = {source};
    std::vector<EdgeId> edges;
    for (size_t hop = 0; hop < max_hops; ++hop) {
      VertexId tail = vertices.back();
      std::vector<AdjEntry> options;
      for (const AdjEntry& a : graph.OutEdges(tail)) options.push_back(a);
      for (const AdjEntry& a : graph.InEdges(tail)) options.push_back(a);
      // Drop already-visited vertices (simple walks).
      options.erase(
          std::remove_if(options.begin(), options.end(),
                         [&vertices](const AdjEntry& a) {
                           return std::find(vertices.begin(),
                                            vertices.end(),
                                            a.neighbor) != vertices.end();
                         }),
          options.end());
      if (options.empty()) break;
      const AdjEntry& pick = options[rng.UniformInt(options.size())];
      vertices.push_back(pick.neighbor);
      edges.push_back(pick.edge);
      if (pick.neighbor == target) {
        if (FinalEdgeOk(graph, pick.edge, relationship)) {
          auto it = found.find(edges);
          if (it == found.end()) {
            found.emplace(edges, std::make_pair(
                                     1u, MakeResult(graph, vertices,
                                                    edges)));
          } else {
            ++it->second.first;
          }
        }
        break;
      }
    }
  }
  std::vector<std::pair<size_t, PathResult>> ranked;
  for (auto& [edges, hit] : found) ranked.push_back(std::move(hit));
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (auto& [hits, result] : ranked) {
    if (results.size() >= top_k) break;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace nous
