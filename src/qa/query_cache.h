#ifndef NOUS_QA_QUERY_CACHE_H_
#define NOUS_QA_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "qa/query_engine.h"

namespace nous {

/// Serving-layer cache knobs (Nous::Options::query_cache; wired to
/// --query-cache-entries / --no-query-cache in the demo binaries).
struct QueryCacheOptions {
  bool enabled = true;
  /// Memory bound: max cached answers (strict LRU; 0 disables).
  size_t entries = 1024;
};

/// Bounded LRU cache over executed answers, keyed by the canonical
/// query string and validated against the KG version the answer was
/// computed at (DESIGN.md §5.11).
///
/// Invalidation is implicit: callers always look up with the version
/// of the snapshot they are about to query, so any entry computed
/// before the last ingest commit mismatches and is treated (and
/// erased) as a miss. A post-ingest query can therefore never observe
/// a stale cached answer — the ingest call publishes the bumped
/// version before it returns.
///
/// Memory bound: at most `capacity` answers (strict LRU eviction).
/// Thread-safe; hit/miss/eviction counters are exported both as
/// process-wide Prometheus counters (nous_query_cache_*_total,
/// /api/metrics) and as per-instance Stats for tests.
class QueryCache {
 public:
  explicit QueryCache(size_t capacity);

  /// Returns true and fills `*answer` iff `key` is cached at exactly
  /// `version`. A version mismatch erases the entry and counts as a
  /// miss.
  bool Lookup(const std::string& key, uint64_t version, Answer* answer)
      EXCLUDES(mu_);

  /// Caches `answer` for (`key`, `version`), replacing any older
  /// entry for `key` and evicting the least-recently-used entry when
  /// over capacity.
  void Insert(const std::string& key, uint64_t version,
              const Answer& answer) EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const EXCLUDES(mu_);

 private:
  struct Entry {
    std::string key;
    uint64_t version = 0;
    Answer answer;
  };
  using LruList = std::list<Entry>;

  void EraseLocked(LruList::iterator it) REQUIRES(mu_);

  const size_t capacity_;

  mutable AnnotatedMutex mu_;
  /// Front = most recently used.
  LruList lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, LruList::iterator> index_
      GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace nous

#endif  // NOUS_QA_QUERY_CACHE_H_
