// Scatter-gather composite graph view over N shard snapshots
// (DESIGN.md §5.16).
//
// Presents the PropertyGraph read API with *planner* (global) ids by
// merging one immutable ShardView per shard behind the planner's own
// published KgSnapshot:
//
//   - Entity resolution and vertex properties (labels, types, topics,
//     bags) delegate to the planner snapshot — the replicated
//     case-folded label directory. So do the dictionaries, whose ids
//     the composite answers carry.
//   - Adjacency, edge records, and edge scans scatter to the shard
//     graphs and gather k-way-merged by global edge id, which equals
//     global insertion order — the exact enumeration order of the
//     fused graph, making every query answer bit-identical to the
//     unsharded path.
//
// A view is built per query from immutable snapshots and is NOT
// thread-safe: the lazy gid->local maps and adjacency/edge memos are
// per-query caches, mutated without locks.

#ifndef NOUS_QA_SHARDED_VIEW_H_
#define NOUS_QA_SHARDED_VIEW_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/dictionary.h"
#include "graph/property_graph.h"
#include "graph/shard_view.h"
#include "graph/types.h"

namespace nous {

class ShardedGraphView {
 public:
  /// `planner` (the planner snapshot's graph) must outlive the view;
  /// `views` must all be published at the planner snapshot's version
  /// (the caller checks composite coherence before constructing).
  ShardedGraphView(const PropertyGraph* planner,
                   std::vector<std::shared_ptr<const ShardView>> views);

  // ---- Vertex surface: the planner label directory ----

  std::optional<VertexId> FindVertex(std::string_view label) const {
    return planner_->FindVertex(label);
  }
  std::optional<VertexId> FindVertexFolded(std::string_view label) const {
    return planner_->FindVertexFolded(label);
  }
  const std::string& VertexLabel(VertexId v) const {
    return planner_->VertexLabel(v);
  }
  TypeId VertexType(VertexId v) const { return planner_->VertexType(v); }
  const std::unordered_map<TermId, double>& VertexBag(VertexId v) const {
    return planner_->VertexBag(v);
  }
  const std::vector<double>& VertexTopics(VertexId v) const {
    return planner_->VertexTopics(v);
  }
  size_t NumVertices() const { return planner_->NumVertices(); }

  const Dictionary& predicates() const { return planner_->predicates(); }
  const Dictionary& terms() const { return planner_->terms(); }
  const Dictionary& types() const { return planner_->types(); }
  const Dictionary& sources() const { return planner_->sources(); }

  // ---- Edge surface: scatter-gather over the shard graphs ----

  /// Edge record for global edge slot `e`, with every id translated
  /// back to the planner id space.
  const EdgeRecord& Edge(EdgeId e) const;

  /// All edges adjacent to `v`, gathered across shards and merged in
  /// ascending global edge id == global insertion order.
  const std::vector<AdjEntry>& OutEdges(VertexId v) const;
  const std::vector<AdjEntry>& InEdges(VertexId v) const;

  /// Adjacency restricted to planner predicate `p`, same merge order.
  const std::vector<AdjEntry>& OutEdgesWithPredicate(VertexId v,
                                                     PredicateId p) const;
  const std::vector<AdjEntry>& InEdgesWithPredicate(VertexId v,
                                                    PredicateId p) const;

  size_t OutDegree(VertexId v) const { return OutEdges(v).size(); }
  size_t InDegree(VertexId v) const { return InEdges(v).size(); }

  std::optional<EdgeId> FindEdge(VertexId subject, PredicateId predicate,
                                 VertexId object) const;

  /// Max over the shard graphs' incrementally tracked maxima.
  Timestamp MaxEdgeTimestamp() const;

  /// Live edges across all shards.
  size_t NumEdges() const;
  /// Global edge slots (max global edge id + 1 across shards).
  size_t NumEdgeSlots() const;

  /// Invokes fn(global_edge_id, translated record) for every live
  /// edge, in ascending global edge id across all shards.
  void ForEachEdge(
      const std::function<void(EdgeId, const EdgeRecord&)>& fn) const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct PerShard {
    std::shared_ptr<const ShardView> view;
    /// Shard-local dictionary id -> planner id (built eagerly: the
    /// dictionaries are tiny next to the graph).
    std::vector<PredicateId> pred_to_global;
    std::vector<SourceId> src_to_global;
    /// planner gid -> shard-local vertex id; built on first adjacency
    /// touch of this shard.
    mutable std::unordered_map<VertexId, VertexId> gid_to_local;
    mutable bool gid_map_built = false;
  };

  /// Shard-local vertex id for `gid` on shard `k`, if present.
  std::optional<VertexId> LocalVertex(size_t k, VertexId gid) const;
  /// Shard-local edge slot of global slot `e` on shard `k`, if owned.
  static std::optional<EdgeId> LocalEdge(const PerShard& shard, EdgeId e);
  /// Translates one shard-local adjacency entry to planner ids.
  AdjEntry Translate(const PerShard& shard, const AdjEntry& a) const;
  /// Gathers one adjacency direction for `v` across all shards,
  /// k-way merged ascending by global edge id. `predicate` restricts
  /// to one planner predicate (kInvalidPredicate = all).
  std::vector<AdjEntry> Gather(VertexId v, bool out,
                               PredicateId predicate) const;

  const PropertyGraph* planner_;
  std::vector<PerShard> shards_;

  // Per-query memos (const methods return references into these).
  mutable std::unordered_map<VertexId, std::vector<AdjEntry>> out_memo_;
  mutable std::unordered_map<VertexId, std::vector<AdjEntry>> in_memo_;
  mutable std::unordered_map<uint64_t, std::vector<AdjEntry>>
      out_pred_memo_;
  mutable std::unordered_map<uint64_t, std::vector<AdjEntry>> in_pred_memo_;
  mutable std::unordered_map<EdgeId, EdgeRecord> edge_memo_;
};

}  // namespace nous

#endif  // NOUS_QA_SHARDED_VIEW_H_
