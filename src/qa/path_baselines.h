#ifndef NOUS_QA_PATH_BASELINES_H_
#define NOUS_QA_PATH_BASELINES_H_

#include <cstdint>
#include <vector>

#include "qa/path_search.h"

namespace nous {

/// Breadth-first baseline: up to `top_k` shortest simple paths (by hop
/// count, ties broken by discovery order). Coherence is computed for
/// reporting only — the ranking ignores topics, which is exactly what
/// the coherence-guided search improves on (E6).
std::vector<PathResult> BfsShortestPaths(
    const PropertyGraph& graph, VertexId source, VertexId target,
    size_t top_k, size_t max_hops,
    PredicateId relationship = kInvalidPredicate);

/// Random-walk (PRA-flavored) baseline: `num_walks` random simple
/// walks of length <= max_hops; walks that reach the target become
/// candidate paths, deduped and ranked by how often they were hit.
std::vector<PathResult> RandomWalkPaths(
    const PropertyGraph& graph, VertexId source, VertexId target,
    size_t top_k, size_t max_hops, size_t num_walks, uint64_t seed,
    PredicateId relationship = kInvalidPredicate);

}  // namespace nous

#endif  // NOUS_QA_PATH_BASELINES_H_
