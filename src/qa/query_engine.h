#ifndef NOUS_QA_QUERY_ENGINE_H_
#define NOUS_QA_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"
#include "mining/streaming_miner.h"
#include "qa/path_search.h"
#include "qa/query.h"

namespace nous {

/// One rendered fact in an entity summary, with provenance — the rows
/// behind Figure 6's "Tell me about DJI" view.
struct FactLine {
  std::string subject;
  std::string predicate;
  std::string object;
  double confidence = 1.0;
  bool curated = false;
  std::string source;
  Timestamp timestamp = 0;
};

/// A discovered pattern rendered against the miner's dictionaries
/// (pattern ids are only meaningful relative to the graph the miner
/// watched, so answers carry strings).
struct RenderedPattern {
  std::string description;
  size_t support = 0;
  size_t embeddings = 0;
};

/// Structured answer; which fields are filled depends on `kind`.
struct Answer {
  QueryKind kind = QueryKind::kEntity;
  /// kEntity: facts about the entity; kTrending: recent facts of hot
  /// entities.
  std::vector<FactLine> facts;
  /// kTrending / kPattern: discovered frequent patterns.
  std::vector<RenderedPattern> patterns;
  /// kTrending: entities ranked by recent-window activity.
  std::vector<std::pair<std::string, size_t>> hot_entities;
  /// kRelationship / kSearch: explanation paths.
  std::vector<PathResult> paths;
  /// Number of distinct sources backing the paths (multi-source
  /// answers, §1 contribution 3).
  size_t distinct_sources = 0;

  /// Human-readable rendering for the CLI demos.
  std::string Render(const PropertyGraph& graph) const;
};

struct QueryEngineConfig {
  PathSearchConfig path_search;
  /// Number of hot entities / facts listed for trending queries.
  size_t trending_limit = 10;
  /// Only edges with timestamp >= newest - horizon count as "recent"
  /// for trending. 0 = all time.
  Timestamp trending_horizon = 90;
  /// Rank trending entities by *rising* activity (recent window minus
  /// the preceding window) instead of raw recent counts — surfaces
  /// newly emerging entities rather than perennially popular ones.
  bool trending_rising = true;
};

/// Executes the five query classes against the dynamic KG and the
/// streaming miner's pattern state. The miner is optional (pattern and
/// trending-pattern sections are empty without it). `miner_graph` is
/// the graph the miner watched — its dictionaries resolve pattern ids;
/// pass null to reuse `graph` (single-graph setups).
class QueryEngine {
 public:
  QueryEngine(const PropertyGraph* graph, const StreamingMiner* miner,
              QueryEngineConfig config = {},
              const PropertyGraph* miner_graph = nullptr);

  /// Snapshot-serving variant: patterns were already rendered at
  /// snapshot publish time (core/snapshot.h), so no miner or window
  /// graph is needed — everything the engine reads is immutable.
  /// Taken by reference (not pointer) so the overload never competes
  /// with the miner variant at nullptr call sites; `patterns` must
  /// outlive the engine.
  QueryEngine(const PropertyGraph* graph,
              const std::vector<RenderedPattern>& patterns,
              QueryEngineConfig config = {});

  Result<Answer> Execute(const Query& query) const;

  /// Parse + execute.
  Result<Answer> ExecuteText(const std::string& text) const;

 private:
  Answer ExecuteTrending() const;
  Result<Answer> ExecuteEntity(const Query& query) const;
  Result<Answer> ExecuteRelationship(const Query& query,
                                     QueryKind kind) const;
  Answer ExecutePattern() const;

  Result<VertexId> ResolveEntity(const std::string& name) const;
  FactLine MakeFactLine(EdgeId edge) const;
  std::vector<RenderedPattern> RenderMinerPatterns() const;

  const PropertyGraph* graph_;
  const StreamingMiner* miner_;       // may be null
  const PropertyGraph* miner_graph_;  // dictionary source for patterns
  /// Pre-rendered patterns (snapshot mode); exclusive with miner_.
  const std::vector<RenderedPattern>* prerendered_patterns_ = nullptr;
  QueryEngineConfig config_;
};

}  // namespace nous

#endif  // NOUS_QA_QUERY_ENGINE_H_
