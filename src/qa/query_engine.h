#ifndef NOUS_QA_QUERY_ENGINE_H_
#define NOUS_QA_QUERY_ENGINE_H_

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"
#include "mining/streaming_miner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qa/path_search.h"
#include "qa/query.h"

namespace nous {

/// One rendered fact in an entity summary, with provenance — the rows
/// behind Figure 6's "Tell me about DJI" view.
struct FactLine {
  std::string subject;
  std::string predicate;
  std::string object;
  double confidence = 1.0;
  bool curated = false;
  std::string source;
  Timestamp timestamp = 0;
};

/// A discovered pattern rendered against the miner's dictionaries
/// (pattern ids are only meaningful relative to the graph the miner
/// watched, so answers carry strings).
struct RenderedPattern {
  std::string description;
  size_t support = 0;
  size_t embeddings = 0;
};

/// Structured answer; which fields are filled depends on `kind`.
struct Answer {
  QueryKind kind = QueryKind::kEntity;
  /// kEntity: facts about the entity; kTrending: recent facts of hot
  /// entities.
  std::vector<FactLine> facts;
  /// kTrending / kPattern: discovered frequent patterns.
  std::vector<RenderedPattern> patterns;
  /// kTrending: entities ranked by recent-window activity.
  std::vector<std::pair<std::string, size_t>> hot_entities;
  /// kRelationship / kSearch: explanation paths.
  std::vector<PathResult> paths;
  /// Number of distinct sources backing the paths (multi-source
  /// answers, §1 contribution 3).
  size_t distinct_sources = 0;

  /// Human-readable rendering for the CLI demos. Sharded answers carry
  /// global (planner) ids, so they render against the fused graph too.
  std::string Render(const PropertyGraph& graph) const;
};

struct QueryEngineConfig {
  PathSearchConfig path_search;
  /// Number of hot entities / facts listed for trending queries.
  size_t trending_limit = 10;
  /// Only edges with timestamp >= newest - horizon count as "recent"
  /// for trending. 0 = all time.
  Timestamp trending_horizon = 90;
  /// Rank trending entities by *rising* activity (recent window minus
  /// the preceding window) instead of raw recent counts — surfaces
  /// newly emerging entities rather than perennially popular ones.
  bool trending_rising = true;
};

/// Executes the five query classes against the dynamic KG and the
/// streaming miner's pattern state. The miner is optional (pattern and
/// trending-pattern sections are empty without it). `miner_graph` is
/// the graph the miner watched — its dictionaries resolve pattern ids;
/// pass null to reuse `graph` (single-graph setups).
///
/// `Graph` is the PropertyGraph read API or any view modeling it. The
/// sharded deployment passes a ShardedGraphView (qa/sharded_view.h),
/// which scatter-gathers per-shard snapshots and presents global ids —
/// every Execute* below is oblivious to the partitioning.
template <typename Graph>
class QueryEngineT {
 public:
  QueryEngineT(const Graph* graph, const StreamingMiner* miner,
               QueryEngineConfig config = {},
               const PropertyGraph* miner_graph = nullptr);

  /// Snapshot-serving variant: patterns were already rendered at
  /// snapshot publish time (core/snapshot.h), so no miner or window
  /// graph is needed — everything the engine reads is immutable.
  /// Taken by reference (not pointer) so the overload never competes
  /// with the miner variant at nullptr call sites; `patterns` must
  /// outlive the engine.
  QueryEngineT(const Graph* graph,
               const std::vector<RenderedPattern>& patterns,
               QueryEngineConfig config = {});

  Result<Answer> Execute(const Query& query) const;

  /// Parse + execute.
  Result<Answer> ExecuteText(const std::string& text) const;

 private:
  Answer ExecuteTrending() const;
  Result<Answer> ExecuteEntity(const Query& query) const;
  Result<Answer> ExecuteRelationship(const Query& query,
                                     QueryKind kind) const;
  Answer ExecutePattern() const;

  Result<VertexId> ResolveEntity(const std::string& name) const;
  FactLine MakeFactLine(EdgeId edge) const;
  std::vector<RenderedPattern> RenderMinerPatterns() const;

  const Graph* graph_;
  const StreamingMiner* miner_;       // may be null
  const PropertyGraph* miner_graph_;  // dictionary source for patterns
  /// Pre-rendered patterns (snapshot mode); exclusive with miner_.
  const std::vector<RenderedPattern>* prerendered_patterns_ = nullptr;
  QueryEngineConfig config_;
};

using QueryEngine = QueryEngineT<PropertyGraph>;

// ---- implementation ----

template <typename Graph>
QueryEngineT<Graph>::QueryEngineT(const Graph* graph,
                                  const StreamingMiner* miner,
                                  QueryEngineConfig config,
                                  const PropertyGraph* miner_graph)
    : graph_(graph), miner_(miner), miner_graph_(miner_graph),
      config_(config) {
  if (miner_graph_ == nullptr) {
    if constexpr (std::is_same_v<Graph, PropertyGraph>) {
      miner_graph_ = graph;
    }
  }
}

template <typename Graph>
QueryEngineT<Graph>::QueryEngineT(
    const Graph* graph, const std::vector<RenderedPattern>& patterns,
    QueryEngineConfig config)
    : graph_(graph),
      miner_(nullptr),
      miner_graph_(nullptr),
      prerendered_patterns_(&patterns),
      config_(config) {}

template <typename Graph>
std::vector<RenderedPattern> QueryEngineT<Graph>::RenderMinerPatterns()
    const {
  if (prerendered_patterns_ != nullptr) return *prerendered_patterns_;
  std::vector<RenderedPattern> rendered;
  if (miner_ == nullptr || miner_graph_ == nullptr) return rendered;
  for (const PatternStats& stats : miner_->ClosedFrequentPatterns()) {
    RenderedPattern p;
    p.description = stats.pattern.ToString(miner_graph_->predicates(),
                                           &miner_graph_->types());
    p.support = stats.support;
    p.embeddings = stats.embeddings;
    rendered.push_back(std::move(p));
  }
  return rendered;
}

template <typename Graph>
Result<VertexId> QueryEngineT<Graph>::ResolveEntity(
    const std::string& name) const {
  // Exact match, then the graph's case-folded index (queries are
  // typed by humans) — O(1) where this used to scan every label.
  if (auto v = graph_->FindVertexFolded(name)) return *v;
  return Status::NotFound("unknown entity: " + name);
}

template <typename Graph>
FactLine QueryEngineT<Graph>::MakeFactLine(EdgeId edge) const {
  const EdgeRecord& rec = graph_->Edge(edge);
  FactLine line;
  line.subject = graph_->VertexLabel(rec.subject);
  line.predicate = graph_->predicates().GetString(rec.predicate);
  line.object = graph_->VertexLabel(rec.object);
  line.confidence = rec.meta.confidence;
  line.curated = rec.meta.curated;
  line.source = rec.meta.source == kInvalidSource
                    ? ""
                    : graph_->sources().GetString(rec.meta.source);
  line.timestamp = rec.meta.timestamp;
  return line;
}

template <typename Graph>
Result<Answer> QueryEngineT<Graph>::Execute(const Query& query) const {
  NOUS_SPAN("query");
  // Per-class query counts (Figure 5's five classes) under one family.
  MetricsRegistry::Global()
      .GetCounter("nous_query_total", "Queries executed by class",
                  {{"class", QueryKindName(query.kind)}})
      ->Increment();
  switch (query.kind) {
    case QueryKind::kTrending:
      return ExecuteTrending();
    case QueryKind::kEntity:
      return ExecuteEntity(query);
    case QueryKind::kRelationship:
    case QueryKind::kSearch:
      return ExecuteRelationship(query, query.kind);
    case QueryKind::kPattern:
      return ExecutePattern();
  }
  return Status::Internal("unhandled query kind");
}

template <typename Graph>
Result<Answer> QueryEngineT<Graph>::ExecuteText(
    const std::string& text) const {
  NOUS_ASSIGN_OR_RETURN(Query query, ParseQuery(text));
  return Execute(query);
}

template <typename Graph>
Answer QueryEngineT<Graph>::ExecuteTrending() const {
  Answer answer;
  answer.kind = QueryKind::kTrending;
  // Hot entities: activity within the trailing horizon. The graph
  // tracks its max live-edge timestamp incrementally, so trending
  // needs one edge pass instead of two.
  Timestamp newest = graph_->MaxEdgeTimestamp();
  Timestamp cutoff = config_.trending_horizon == 0
                         ? 0
                         : newest - config_.trending_horizon;
  Timestamp previous_cutoff =
      config_.trending_horizon == 0
          ? 0
          : cutoff - config_.trending_horizon;
  std::map<VertexId, size_t> activity;
  std::map<VertexId, size_t> previous_activity;
  std::vector<EdgeId> recent_edges;
  graph_->ForEachEdge([&](EdgeId e, const EdgeRecord& rec) {
    if (rec.meta.curated) return;  // trends come from the stream
    if (rec.meta.timestamp >= cutoff) {
      ++activity[rec.subject];
      ++activity[rec.object];
      recent_edges.push_back(e);
    } else if (config_.trending_horizon != 0 &&
               rec.meta.timestamp >= previous_cutoff) {
      ++previous_activity[rec.subject];
      ++previous_activity[rec.object];
    }
  });
  // Rising score = recent minus previous-window activity; raw recent
  // count when rising ranking is disabled.
  auto score_of = [&](VertexId v, size_t recent) -> double {
    if (!config_.trending_rising) return static_cast<double>(recent);
    auto it = previous_activity.find(v);
    size_t previous = it == previous_activity.end() ? 0 : it->second;
    return static_cast<double>(recent) -
           static_cast<double>(previous);
  };
  std::vector<std::pair<VertexId, size_t>> ranked(activity.begin(),
                                                  activity.end());
  std::sort(ranked.begin(), ranked.end(),
            [&](const auto& a, const auto& b) {
              double sa = score_of(a.first, a.second);
              double sb = score_of(b.first, b.second);
              if (sa != sb) return sa > sb;
              return a.second > b.second;
            });
  for (const auto& [v, count] : ranked) {
    if (answer.hot_entities.size() >= config_.trending_limit) break;
    answer.hot_entities.emplace_back(graph_->VertexLabel(v), count);
  }
  for (EdgeId e : recent_edges) {
    if (answer.facts.size() >= config_.trending_limit) break;
    answer.facts.push_back(MakeFactLine(e));
  }
  answer.patterns = RenderMinerPatterns();
  return answer;
}

template <typename Graph>
Result<Answer> QueryEngineT<Graph>::ExecuteEntity(
    const Query& query) const {
  NOUS_ASSIGN_OR_RETURN(VertexId v, ResolveEntity(query.entity_a));
  Answer answer;
  answer.kind = QueryKind::kEntity;
  std::set<EdgeId> edges;
  for (const AdjEntry& a : graph_->OutEdges(v)) edges.insert(a.edge);
  for (const AdjEntry& a : graph_->InEdges(v)) edges.insert(a.edge);
  for (EdgeId e : edges) {
    if (query.since != 0 &&
        graph_->Edge(e).meta.timestamp < query.since) {
      continue;  // temporal filter ("... since 2014")
    }
    answer.facts.push_back(MakeFactLine(e));
  }
  // Curated facts first, then by recency.
  std::sort(answer.facts.begin(), answer.facts.end(),
            [](const FactLine& a, const FactLine& b) {
              if (a.curated != b.curated) return a.curated > b.curated;
              return a.timestamp > b.timestamp;
            });
  return answer;
}

template <typename Graph>
Result<Answer> QueryEngineT<Graph>::ExecuteRelationship(
    const Query& query, QueryKind kind) const {
  NOUS_ASSIGN_OR_RETURN(VertexId s, ResolveEntity(query.entity_a));
  NOUS_ASSIGN_OR_RETURN(VertexId t, ResolveEntity(query.entity_b));
  PredicateId constraint = kInvalidPredicate;
  if (!query.predicate.empty()) {
    if (auto p = graph_->predicates().Lookup(query.predicate)) {
      constraint = *p;
    }
    // An unknown predicate stays unconstrained rather than failing:
    // why-questions phrase relations loosely ("use" vs "uses").
  }
  Answer answer;
  answer.kind = kind;
  PathSearchT<Graph> search(graph_, config_.path_search);
  answer.paths = search.FindPaths(s, t, constraint);
  if (answer.paths.empty() && constraint != kInvalidPredicate) {
    // Fall back to unconstrained explanation.
    answer.paths = search.FindPaths(s, t, kInvalidPredicate);
  }
  std::set<SourceId> sources;
  for (const PathResult& path : answer.paths) {
    for (SourceId src : path.sources) sources.insert(src);
  }
  answer.distinct_sources = sources.size();
  return answer;
}

template <typename Graph>
Answer QueryEngineT<Graph>::ExecutePattern() const {
  Answer answer;
  answer.kind = QueryKind::kPattern;
  answer.patterns = RenderMinerPatterns();
  return answer;
}

}  // namespace nous

#endif  // NOUS_QA_QUERY_ENGINE_H_
