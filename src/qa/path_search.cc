#include "qa/path_search.h"

namespace nous {

// The search itself is a template over the graph view (single fused
// graph vs sharded scatter-gather view); anchor the common
// instantiation here so every query call site doesn't re-instantiate
// the beam search.
template class PathSearchT<PropertyGraph>;

template double ComputePathCoherence<PropertyGraph>(
    const PropertyGraph&, const std::vector<VertexId>&);

}  // namespace nous
