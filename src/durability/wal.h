#ifndef NOUS_DURABILITY_WAL_H_
#define NOUS_DURABILITY_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace nous {

/// When the WAL forces appended records to stable storage.
enum class FsyncPolicy {
  kAlways,    ///< fsync after every append (durable to the last batch)
  kInterval,  ///< fsync every `fsync_interval_records` appends
  kNever,     ///< rely on the OS page cache (tests / throwaway runs)
};

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  /// Appends between fsyncs under kInterval (>= 1).
  size_t fsync_interval_records = 16;
};

/// One committed record recovered from the log.
struct WalRecord {
  uint64_t seq = 0;
  std::string payload;
};

/// What WalReader::ReadAll saw, including how much tail it dropped.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Byte offset of the end of the last intact record — the safe
  /// truncation point before re-opening the log for append.
  uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes that failed framing or CRC checks.
  uint64_t dropped_bytes = 0;
  /// Frames discarded from the tail (0 or 1 under the torn-write
  /// model; >1 only if the file was corrupted mid-stream, in which
  /// case everything after the corruption is dropped too).
  uint64_t dropped_records = 0;
};

/// Append-only, CRC-framed write-ahead log.
///
/// Layout: an 8-byte file magic, then a sequence of frames
///   [u32 frame-magic][u64 seq][u32 payload-len][u32 crc][payload]
/// where crc = CRC-32C(payload, seeded with CRC-32C(seq||len)), so a
/// bit flip anywhere in the header or payload fails verification.
/// Readers stop at the first bad frame and report the dropped tail —
/// a torn final write is data the writer never acknowledged, so
/// dropping it preserves exactly the committed prefix.
///
/// Fault points (see FaultInjector): "wal_append" (kFail: nothing
/// written; kTorn: a prefix of the frame hits the file, then error),
/// "wal_fsync" (kFail), "wal_close" (kTruncate: arg bytes chopped
/// after close — simulates a crash with unsynced page cache).
///
/// Not internally synchronized: NOUS serializes appends under the
/// pipeline's ingest commit lock.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for append, creating it (with the file magic) when
  /// absent. An existing file is trusted as-is: recovery must have
  /// already truncated any torn tail (WalReader::ReadAll +
  /// TruncateFile(valid_bytes)).
  Status Open(const std::string& path, const WalOptions& options);

  /// Appends one record and applies the fsync policy. On any error the
  /// record is NOT committed — the caller must not acknowledge the
  /// batch, and the file may hold a torn frame that the next
  /// recovery's CRC scan will drop.
  Status Append(uint64_t seq, std::string_view payload);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Syncs (best effort) and closes the file. Idempotent.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  /// Records appended since Open (not counting pre-existing ones).
  uint64_t appended_records() const { return appended_records_; }

 private:
  int fd_ = -1;
  std::string path_;
  WalOptions options_;
  uint64_t appended_records_ = 0;
  size_t records_since_sync_ = 0;
};

/// Reads every intact record of a WAL file. Never fails on torn or
/// corrupt tails — those are reported in the result; only I/O errors
/// or a bad file magic produce an error Status. A missing file reads
/// as an empty log.
class WalReader {
 public:
  static Result<WalReadResult> ReadAll(const std::string& path);
};

/// Incremental WAL follower: reads frames as the writer appends them,
/// treating clean end-of-log as "poll again later" rather than done.
/// This is the leader-side source for WAL shipping — it never holds
/// any lock the writer needs, it just re-reads the growing file.
///
/// The reader survives WAL *resets* (checkpointing deletes and
/// recreates wal.log): each Next() compares the path's current inode
/// against the open fd and reports kReset when the file was swapped
/// or truncated under it, so the caller can decide whether to re-read
/// from the top or resync from a checkpoint image.
class WalTailReader {
 public:
  enum class EventKind {
    kRecord,    ///< `record` holds the next intact frame
    kEndOfLog,  ///< no complete frame past the current offset — poll later
    kReset,     ///< the file vanished, shrank, or was replaced — reopened
                ///< from the top on the next call
  };

  struct Event {
    EventKind kind = EventKind::kEndOfLog;
    WalRecord record;
  };

  WalTailReader() = default;
  ~WalTailReader();
  WalTailReader(const WalTailReader&) = delete;
  WalTailReader& operator=(const WalTailReader&) = delete;

  /// Points the reader at a WAL path. The file need not exist yet.
  void Open(const std::string& path);

  /// Advances by at most one frame. Only I/O errors fail; torn tails
  /// and swapped files are Events, not errors.
  Result<Event> Next();

  void Close();

  /// Byte offset of the next unread frame in the current file.
  uint64_t offset() const { return offset_; }

 private:
  std::string path_;
  int fd_ = -1;
  uint64_t inode_ = 0;
  uint64_t offset_ = 0;
};

/// 8-byte magic at offset 0 of every WAL file.
extern const char kWalFileMagic[8];
/// Per-frame magic word.
constexpr uint32_t kWalFrameMagic = 0x4C41574Eu;  // "NWAL" little-endian

}  // namespace nous

#endif  // NOUS_DURABILITY_WAL_H_
