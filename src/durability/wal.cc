#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "durability/fs_util.h"
#include "obs/trace.h"

namespace nous {

const char kWalFileMagic[8] = {'N', 'O', 'U', 'S', 'W', 'A', 'L', '1'};

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

/// CRC over the frame: payload chained onto the (seq, len) header
/// words, so header corruption is as detectable as payload corruption.
uint32_t FrameCrc(uint64_t seq, uint32_t len, std::string_view payload) {
  BinaryWriter header;
  header.U64(seq);
  header.U32(len);
  uint32_t crc = Crc32c(header.data());
  return Crc32c(payload.data(), payload.size(), crc);
}

Status WriteAllFd(int fd, const char* data, size_t size,
                  const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

WalWriter::~WalWriter() { Close().ok(); }

Status WalWriter::Open(const std::string& path, const WalOptions& options) {
  if (is_open()) {
    return Status::FailedPrecondition("WAL already open: " + path_);
  }
  options_ = options;
  if (options_.fsync_interval_records == 0) {
    options_.fsync_interval_records = 1;
  }
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) return Status::Internal(Errno("open", path));
  fd_ = fd;
  path_ = path;
  appended_records_ = 0;
  records_since_sync_ = 0;
  // The file needs the magic if it is new OR empty — recovery truncates
  // a log whose tail tore inside the magic itself down to zero bytes,
  // and appending frames to a magic-less file would poison every later
  // read. A partial magic (0 < size < 8) is started over the same way.
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    Status status = Status::Internal(Errno("fstat", path_));
    Close().ok();
    return status;
  }
  if (st.st_size < static_cast<off_t>(sizeof(kWalFileMagic))) {
    Status status;
    if (st.st_size > 0 && ::ftruncate(fd_, 0) != 0) {
      status = Status::Internal(Errno("ftruncate", path_));
    }
    if (status.ok()) {
      status = WriteAllFd(fd_, kWalFileMagic, sizeof(kWalFileMagic),
                          path_);
    }
    if (status.ok()) status = Sync();
    if (!status.ok()) {
      Close().ok();
      return status;
    }
  }
  return Status::Ok();
}

Status WalWriter::Append(uint64_t seq, std::string_view payload) {
  if (!is_open()) return Status::FailedPrecondition("WAL not open");
  // Covers frame build + write + the fsync policy (Sync() nests its
  // own wal_fsync span under this one).
  NOUS_SPAN_VAR(span, "wal_append");
  span.Attr("bytes", payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  BinaryWriter frame;
  frame.U32(kWalFrameMagic);
  frame.U64(seq);
  frame.U32(len);
  frame.U32(FrameCrc(seq, len, payload));
  frame.Raw(payload.data(), payload.size());

  size_t persist = frame.size();
  Status injected;
  if (auto fault = FaultInjector::Global().Hit("wal_append")) {
    switch (fault->kind) {
      case FaultKind::kFail:
        return Status::Internal("fault injected: wal_append fail");
      case FaultKind::kTorn:
        persist = fault->arg > 0 ? std::min<size_t>(
                                       static_cast<size_t>(fault->arg),
                                       frame.size())
                                 : frame.size() / 2;
        injected = Status::Internal("fault injected: wal_append torn");
        break;
      default:
        break;
    }
  }

  NOUS_RETURN_IF_ERROR(WriteAllFd(fd_, frame.data().data(), persist, path_));
  if (!injected.ok()) return injected;  // torn frame is on disk, unacked

  ++appended_records_;
  ++records_since_sync_;
  switch (options_.fsync_policy) {
    case FsyncPolicy::kAlways:
      return Sync();
    case FsyncPolicy::kInterval:
      if (records_since_sync_ >= options_.fsync_interval_records) {
        return Sync();
      }
      return Status::Ok();
    case FsyncPolicy::kNever:
      return Status::Ok();
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (!is_open()) return Status::FailedPrecondition("WAL not open");
  NOUS_SPAN("wal_fsync");
  if (auto fault = FaultInjector::Global().Hit("wal_fsync")) {
    if (fault->kind == FaultKind::kFail) {
      return Status::Internal("fault injected: wal_fsync fail");
    }
    if (fault->kind == FaultKind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->arg));
    }
  }
  if (::fsync(fd_) != 0) return Status::Internal(Errno("fsync", path_));
  records_since_sync_ = 0;
  return Status::Ok();
}

Status WalWriter::Close() {
  if (!is_open()) return Status::Ok();
  Status status;
  if (options_.fsync_policy != FsyncPolicy::kNever) {
    status = Sync();
  }
  ::close(fd_);
  fd_ = -1;
  if (auto fault = FaultInjector::Global().Hit("wal_close")) {
    if (fault->kind == FaultKind::kTruncate && fault->arg > 0) {
      struct stat st;
      if (::stat(path_.c_str(), &st) == 0) {
        uint64_t size = static_cast<uint64_t>(st.st_size);
        uint64_t chop = std::min<uint64_t>(
            static_cast<uint64_t>(fault->arg), size);
        TruncateFile(path_, size - chop).ok();
      }
    }
  }
  return status;
}

Result<WalReadResult> WalReader::ReadAll(const std::string& path) {
  WalReadResult result;
  if (!FileExists(path)) return result;
  NOUS_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  if (contents.size() < sizeof(kWalFileMagic)) {
    // A file this short cannot hold the magic the writer fsyncs at
    // creation; treat it as an empty log with a dropped tail.
    result.dropped_bytes = contents.size();
    return result;
  }
  if (std::memcmp(contents.data(), kWalFileMagic, sizeof(kWalFileMagic)) !=
      0) {
    return Status::DataLoss("not a NOUS WAL file: " + path);
  }

  BinaryReader reader(contents);
  reader.Skip(sizeof(kWalFileMagic)).ok();
  result.valid_bytes = reader.offset();

  while (!reader.AtEnd()) {
    uint32_t magic = 0;
    uint64_t seq = 0;
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!reader.U32(&magic).ok() || magic != kWalFrameMagic ||
        !reader.U64(&seq).ok() || !reader.U32(&len).ok() ||
        !reader.U32(&crc).ok() || reader.remaining() < len) {
      break;  // torn or corrupt frame header: everything after is tail
    }
    std::string_view payload(contents.data() + reader.offset(), len);
    if (FrameCrc(seq, len, payload) != crc) break;
    reader.Skip(len).ok();
    WalRecord record;
    record.seq = seq;
    record.payload.assign(payload);
    result.records.push_back(std::move(record));
    result.valid_bytes = reader.offset();
  }

  result.dropped_bytes = contents.size() - result.valid_bytes;
  result.dropped_records = result.dropped_bytes > 0 ? 1 : 0;
  return result;
}

WalTailReader::~WalTailReader() { Close(); }

void WalTailReader::Open(const std::string& path) {
  Close();
  path_ = path;
}

void WalTailReader::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inode_ = 0;
  offset_ = 0;
}

Result<WalTailReader::Event> WalTailReader::Next() {
  Event event;
  if (path_.empty()) {
    return Status::FailedPrecondition("WalTailReader not opened");
  }

  // (1) Lazily (re)open and verify the file magic.
  if (fd_ < 0) {
    int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return event;  // not created yet: end of log
      return Status::Internal(Errno("open", path_));
    }
    char magic[sizeof(kWalFileMagic)];
    ssize_t n = ::pread(fd, magic, sizeof(magic), 0);
    if (n < 0) {
      Status status = Status::Internal(Errno("pread", path_));
      ::close(fd);
      return status;
    }
    if (static_cast<size_t>(n) < sizeof(magic)) {
      // Magic not fully written yet; try again later.
      ::close(fd);
      return event;
    }
    if (std::memcmp(magic, kWalFileMagic, sizeof(magic)) != 0) {
      ::close(fd);
      event.kind = EventKind::kReset;
      return event;
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      Status status = Status::Internal(Errno("fstat", path_));
      ::close(fd);
      return status;
    }
    fd_ = fd;
    inode_ = static_cast<uint64_t>(st.st_ino);
    offset_ = sizeof(kWalFileMagic);
  }

  // (2) Detect the writer swapping the file (checkpoint resets delete
  // and recreate wal.log) or truncating under us.
  struct stat by_name {};
  if (::stat(path_.c_str(), &by_name) != 0 ||
      static_cast<uint64_t>(by_name.st_ino) != inode_) {
    ::close(fd_);
    fd_ = -1;
    inode_ = 0;
    offset_ = 0;
    event.kind = EventKind::kReset;
    return event;
  }
  struct stat by_fd {};
  if (::fstat(fd_, &by_fd) != 0) {
    return Status::Internal(Errno("fstat", path_));
  }
  const uint64_t size = static_cast<uint64_t>(by_fd.st_size);
  if (size < offset_) {
    ::close(fd_);
    fd_ = -1;
    inode_ = 0;
    offset_ = 0;
    event.kind = EventKind::kReset;
    return event;
  }

  // (3) Try to read one frame header at the current offset.
  constexpr size_t kHeader = 4 + 8 + 4 + 4;  // magic + seq + len + crc
  char header[kHeader];
  ssize_t n = ::pread(fd_, header, kHeader, static_cast<off_t>(offset_));
  if (n < 0) return Status::Internal(Errno("pread", path_));
  if (static_cast<size_t>(n) < kHeader) return event;  // mid-append
  uint32_t magic = 0;
  uint64_t seq = 0;
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&seq, header + 4, 8);
  std::memcpy(&len, header + 12, 4);
  std::memcpy(&crc, header + 16, 4);
  if (magic != kWalFrameMagic) {
    // Garbage where a frame should start: the tail was torn or the
    // file corrupted. Treat like a swap — reopen and let the caller
    // decide how far to trust the log.
    ::close(fd_);
    fd_ = -1;
    inode_ = 0;
    offset_ = 0;
    event.kind = EventKind::kReset;
    return event;
  }
  if (offset_ + kHeader + len > size) {
    // Declared payload extends past the current end: either the append
    // is still in flight (poll again) or the length word is corrupt.
    // A cap guards against waiting forever on a corrupt length.
    if (len > (1u << 30)) {
      ::close(fd_);
      fd_ = -1;
      inode_ = 0;
      offset_ = 0;
      event.kind = EventKind::kReset;
      return event;
    }
    return event;
  }

  // (4) Read and verify the payload.
  std::string payload(len, '\0');
  size_t got = 0;
  while (got < len) {
    ssize_t r = ::pread(fd_, payload.data() + got, len - got,
                        static_cast<off_t>(offset_ + kHeader + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("pread", path_));
    }
    if (r == 0) return event;  // shrank mid-read; re-check next call
    got += static_cast<size_t>(r);
  }
  if (FrameCrc(seq, len, payload) != crc) {
    if (size > offset_ + kHeader + len) {
      // Bytes exist past this frame, so it is not a trailing torn
      // write still in flight — the log is corrupt here.
      ::close(fd_);
      fd_ = -1;
      inode_ = 0;
      offset_ = 0;
      event.kind = EventKind::kReset;
      return event;
    }
    return event;  // trailing partial write; poll again
  }

  // (5) Intact frame.
  event.kind = EventKind::kRecord;
  event.record.seq = seq;
  event.record.payload = std::move(payload);
  offset_ += kHeader + len;
  return event;
}

}  // namespace nous
