#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "durability/fs_util.h"
#include "obs/trace.h"

namespace nous {

const char kWalFileMagic[8] = {'N', 'O', 'U', 'S', 'W', 'A', 'L', '1'};

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

/// CRC over the frame: payload chained onto the (seq, len) header
/// words, so header corruption is as detectable as payload corruption.
uint32_t FrameCrc(uint64_t seq, uint32_t len, std::string_view payload) {
  BinaryWriter header;
  header.U64(seq);
  header.U32(len);
  uint32_t crc = Crc32c(header.data());
  return Crc32c(payload.data(), payload.size(), crc);
}

Status WriteAllFd(int fd, const char* data, size_t size,
                  const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

WalWriter::~WalWriter() { Close().ok(); }

Status WalWriter::Open(const std::string& path, const WalOptions& options) {
  if (is_open()) {
    return Status::FailedPrecondition("WAL already open: " + path_);
  }
  options_ = options;
  if (options_.fsync_interval_records == 0) {
    options_.fsync_interval_records = 1;
  }
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) return Status::Internal(Errno("open", path));
  fd_ = fd;
  path_ = path;
  appended_records_ = 0;
  records_since_sync_ = 0;
  // The file needs the magic if it is new OR empty — recovery truncates
  // a log whose tail tore inside the magic itself down to zero bytes,
  // and appending frames to a magic-less file would poison every later
  // read. A partial magic (0 < size < 8) is started over the same way.
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    Status status = Status::Internal(Errno("fstat", path_));
    Close().ok();
    return status;
  }
  if (st.st_size < static_cast<off_t>(sizeof(kWalFileMagic))) {
    Status status;
    if (st.st_size > 0 && ::ftruncate(fd_, 0) != 0) {
      status = Status::Internal(Errno("ftruncate", path_));
    }
    if (status.ok()) {
      status = WriteAllFd(fd_, kWalFileMagic, sizeof(kWalFileMagic),
                          path_);
    }
    if (status.ok()) status = Sync();
    if (!status.ok()) {
      Close().ok();
      return status;
    }
  }
  return Status::Ok();
}

Status WalWriter::Append(uint64_t seq, std::string_view payload) {
  if (!is_open()) return Status::FailedPrecondition("WAL not open");
  // Covers frame build + write + the fsync policy (Sync() nests its
  // own wal_fsync span under this one).
  NOUS_SPAN_VAR(span, "wal_append");
  span.Attr("bytes", payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  BinaryWriter frame;
  frame.U32(kWalFrameMagic);
  frame.U64(seq);
  frame.U32(len);
  frame.U32(FrameCrc(seq, len, payload));
  frame.Raw(payload.data(), payload.size());

  size_t persist = frame.size();
  Status injected;
  if (auto fault = FaultInjector::Global().Hit("wal_append")) {
    switch (fault->kind) {
      case FaultKind::kFail:
        return Status::Internal("fault injected: wal_append fail");
      case FaultKind::kTorn:
        persist = fault->arg > 0 ? std::min<size_t>(
                                       static_cast<size_t>(fault->arg),
                                       frame.size())
                                 : frame.size() / 2;
        injected = Status::Internal("fault injected: wal_append torn");
        break;
      default:
        break;
    }
  }

  NOUS_RETURN_IF_ERROR(WriteAllFd(fd_, frame.data().data(), persist, path_));
  if (!injected.ok()) return injected;  // torn frame is on disk, unacked

  ++appended_records_;
  ++records_since_sync_;
  switch (options_.fsync_policy) {
    case FsyncPolicy::kAlways:
      return Sync();
    case FsyncPolicy::kInterval:
      if (records_since_sync_ >= options_.fsync_interval_records) {
        return Sync();
      }
      return Status::Ok();
    case FsyncPolicy::kNever:
      return Status::Ok();
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (!is_open()) return Status::FailedPrecondition("WAL not open");
  NOUS_SPAN("wal_fsync");
  if (auto fault = FaultInjector::Global().Hit("wal_fsync")) {
    if (fault->kind == FaultKind::kFail) {
      return Status::Internal("fault injected: wal_fsync fail");
    }
  }
  if (::fsync(fd_) != 0) return Status::Internal(Errno("fsync", path_));
  records_since_sync_ = 0;
  return Status::Ok();
}

Status WalWriter::Close() {
  if (!is_open()) return Status::Ok();
  Status status;
  if (options_.fsync_policy != FsyncPolicy::kNever) {
    status = Sync();
  }
  ::close(fd_);
  fd_ = -1;
  if (auto fault = FaultInjector::Global().Hit("wal_close")) {
    if (fault->kind == FaultKind::kTruncate && fault->arg > 0) {
      struct stat st;
      if (::stat(path_.c_str(), &st) == 0) {
        uint64_t size = static_cast<uint64_t>(st.st_size);
        uint64_t chop = std::min<uint64_t>(
            static_cast<uint64_t>(fault->arg), size);
        TruncateFile(path_, size - chop).ok();
      }
    }
  }
  return status;
}

Result<WalReadResult> WalReader::ReadAll(const std::string& path) {
  WalReadResult result;
  if (!FileExists(path)) return result;
  NOUS_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  if (contents.size() < sizeof(kWalFileMagic)) {
    // A file this short cannot hold the magic the writer fsyncs at
    // creation; treat it as an empty log with a dropped tail.
    result.dropped_bytes = contents.size();
    return result;
  }
  if (std::memcmp(contents.data(), kWalFileMagic, sizeof(kWalFileMagic)) !=
      0) {
    return Status::DataLoss("not a NOUS WAL file: " + path);
  }

  BinaryReader reader(contents);
  reader.Skip(sizeof(kWalFileMagic)).ok();
  result.valid_bytes = reader.offset();

  while (!reader.AtEnd()) {
    uint32_t magic = 0;
    uint64_t seq = 0;
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!reader.U32(&magic).ok() || magic != kWalFrameMagic ||
        !reader.U64(&seq).ok() || !reader.U32(&len).ok() ||
        !reader.U32(&crc).ok() || reader.remaining() < len) {
      break;  // torn or corrupt frame header: everything after is tail
    }
    std::string_view payload(contents.data() + reader.offset(), len);
    if (FrameCrc(seq, len, payload) != crc) break;
    reader.Skip(len).ok();
    WalRecord record;
    record.seq = seq;
    record.payload.assign(payload);
    result.records.push_back(std::move(record));
    result.valid_bytes = reader.offset();
  }

  result.dropped_bytes = contents.size() - result.valid_bytes;
  result.dropped_records = result.dropped_bytes > 0 ? 1 : 0;
  return result;
}

}  // namespace nous
