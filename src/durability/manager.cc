#include "durability/manager.h"

#include <algorithm>

#include "common/logging.h"
#include "durability/fs_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nous {

namespace {

Counter* WalRecords() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "nous_wal_records_total", "WAL records appended");
  return c;
}
Counter* WalBytes() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "nous_wal_bytes_total", "WAL payload bytes appended");
  return c;
}
Counter* WalAppendFailures() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "nous_wal_append_failures_total",
      "WAL appends that failed (batch not acknowledged)");
  return c;
}
Counter* Checkpoints() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "nous_checkpoint_total", "Checkpoints written");
  return c;
}
Counter* CheckpointFailures() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "nous_checkpoint_failures_total", "Checkpoint writes that failed");
  return c;
}
Counter* RecoveryDropped() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "nous_recovery_dropped_records_total",
      "Torn/corrupt WAL tail records dropped during recovery");
  return c;
}
}  // namespace

DurabilityManager::DurabilityManager(DurabilityOptions options)
    : options_(std::move(options)) {}

DurabilityManager::~DurabilityManager() { Close().ok(); }

std::string DurabilityManager::wal_path() const {
  return options_.dir + "/wal.log";
}

std::string DurabilityManager::checkpoint_path() const {
  return options_.dir + "/checkpoint.nous";
}

Result<DurabilityManager::RecoveredState> DurabilityManager::Recover() {
  NOUS_SPAN("recover");
  NOUS_RETURN_IF_ERROR(EnsureDirectory(options_.dir));
  RecoveredState state;

  if (FileExists(checkpoint_path())) {
    NOUS_ASSIGN_OR_RETURN(state.checkpoint,
                          ReadCheckpointFile(checkpoint_path()));
    state.has_checkpoint = true;
  }

  NOUS_ASSIGN_OR_RETURN(WalReadResult scan, WalReader::ReadAll(wal_path()));
  state.dropped_records = scan.dropped_records;
  state.dropped_bytes = scan.dropped_bytes;
  if (scan.dropped_bytes > 0) {
    NOUS_LOG(Warning) << "WAL recovery dropped " << scan.dropped_records
                      << " torn/corrupt tail record(s), "
                      << scan.dropped_bytes << " byte(s); truncating "
                      << wal_path() << " to " << scan.valid_bytes
                      << " bytes";
    RecoveryDropped()->Increment(
        std::max<uint64_t>(scan.dropped_records, 1));
    if (FileExists(wal_path())) {
      NOUS_RETURN_IF_ERROR(TruncateFile(wal_path(), scan.valid_bytes));
    }
  }

  const uint64_t floor_seq =
      state.has_checkpoint ? state.checkpoint.last_applied_seq : 0;
  for (WalRecord& record : scan.records) {
    // Records at or below the checkpoint seq survive a crash between
    // checkpoint rename and WAL reset; they are already applied.
    if (record.seq > floor_seq) state.replay.push_back(std::move(record));
  }
  std::stable_sort(state.replay.begin(), state.replay.end(),
                   [](const WalRecord& a, const WalRecord& b) {
                     return a.seq < b.seq;
                   });
  return state;
}

Status DurabilityManager::OpenWal(uint64_t last_applied_seq) {
  NOUS_RETURN_IF_ERROR(EnsureDirectory(options_.dir));
  WalOptions wal_options;
  wal_options.fsync_policy = options_.fsync_policy;
  wal_options.fsync_interval_records = options_.fsync_interval_records;
  NOUS_RETURN_IF_ERROR(wal_.Open(wal_path(), wal_options));
  last_logged_seq_ = last_applied_seq;
  batches_since_checkpoint_ = 0;
  return Status::Ok();
}

Result<uint64_t> DurabilityManager::LogBatch(std::string_view payload) {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition("durability: WAL not open");
  }
  const uint64_t seq = last_logged_seq_ + 1;
  Status status = wal_.Append(seq, payload);
  if (!status.ok()) {
    WalAppendFailures()->Increment();
    return status;
  }
  last_logged_seq_ = seq;
  ++batches_since_checkpoint_;
  WalRecords()->Increment();
  WalBytes()->Increment(payload.size());
  return seq;
}

bool DurabilityManager::ShouldCheckpoint() const {
  return options_.checkpoint_interval_batches > 0 &&
         batches_since_checkpoint_ >= options_.checkpoint_interval_batches;
}

Status DurabilityManager::WriteCheckpoint(std::string state) {
  NOUS_SPAN_VAR(span, "checkpoint");
  span.Attr("state_bytes", state.size());
  CheckpointData data;
  data.last_applied_seq = last_logged_seq_;
  data.state = std::move(state);
  Status status = WriteCheckpointFile(checkpoint_path(), data);
  if (!status.ok()) {
    CheckpointFailures()->Increment();
    return status;
  }

  // The checkpoint covers every logged record, so the WAL restarts
  // empty. A crash between these steps is safe: stale records carry
  // seq <= last_applied_seq and are skipped on replay.
  const bool was_open = wal_.is_open();
  if (was_open) NOUS_RETURN_IF_ERROR(wal_.Close());
  NOUS_RETURN_IF_ERROR(RemoveFile(wal_path()));
  NOUS_RETURN_IF_ERROR(FsyncParentDir(wal_path()));
  if (was_open) {
    WalOptions wal_options;
    wal_options.fsync_policy = options_.fsync_policy;
    wal_options.fsync_interval_records = options_.fsync_interval_records;
    NOUS_RETURN_IF_ERROR(wal_.Open(wal_path(), wal_options));
  }
  batches_since_checkpoint_ = 0;
  Checkpoints()->Increment();
  return Status::Ok();
}

Status DurabilityManager::InstallCheckpoint(uint64_t last_applied_seq,
                                            std::string state) {
  last_logged_seq_ = last_applied_seq;
  return WriteCheckpoint(std::move(state));
}

Status DurabilityManager::SyncWal() {
  if (!wal_.is_open()) return Status::Ok();
  return wal_.Sync();
}

Status DurabilityManager::Close() {
  if (!wal_.is_open()) return Status::Ok();
  return wal_.Close();
}

}  // namespace nous
