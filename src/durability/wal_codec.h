#ifndef NOUS_DURABILITY_WAL_CODEC_H_
#define NOUS_DURABILITY_WAL_CODEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/article_generator.h"

namespace nous {

/// Serializes one ingest batch for the WAL. Only the fields the
/// pipeline reads during ingest are kept (id, date, source, text);
/// gold annotations are evaluation-only and deliberately dropped —
/// replaying a recovered WAL through KgPipeline::IngestBatch
/// reproduces the KG without them.
std::string EncodeArticleBatch(const Article* articles, size_t count);

inline std::string EncodeArticleBatch(const std::vector<Article>& articles) {
  return EncodeArticleBatch(articles.data(), articles.size());
}

/// Inverse of EncodeArticleBatch. Rejects malformed payloads with
/// DataLoss/OutOfRange instead of crashing (a CRC-valid frame can
/// still be version-skewed).
Result<std::vector<Article>> DecodeArticleBatch(std::string_view payload);

}  // namespace nous

#endif  // NOUS_DURABILITY_WAL_CODEC_H_
