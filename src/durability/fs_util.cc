#include "durability/fs_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"

namespace nous {

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

Status WriteAllFd(int fd, const char* data, size_t size,
                  const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::Internal(Errno("mkdir", path));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(Errno("open", path));
    return Status::Internal(Errno("open", path));
  }
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::Internal(Errno("read", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Internal(Errno("truncate", path));
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(Errno("unlink", path));
  }
  return Status::Ok();
}

Status FsyncParentDir(const std::string& path) {
  std::string dir = ParentDir(path);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::Internal(Errno("open dir", dir));
  int rc = ::fsync(fd);
  ::close(fd);
  // Some filesystems (and sandboxes) reject directory fsync with
  // EINVAL; the rename is still ordered on everything we target.
  if (rc != 0 && errno != EINVAL) {
    return Status::Internal(Errno("fsync dir", dir));
  }
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return Status::Internal(Errno("open", tmp));

  size_t persist = contents.size();
  Status injected;
  if (auto fault = FaultInjector::Global().Hit("atomic_write")) {
    switch (fault->kind) {
      case FaultKind::kFail:
        persist = 0;
        injected = Status::Internal("fault injected: atomic_write fail");
        break;
      case FaultKind::kTorn:
        persist = fault->arg > 0
                      ? std::min<size_t>(static_cast<size_t>(fault->arg),
                                         contents.size())
                      : contents.size() / 2;
        injected = Status::Internal("fault injected: atomic_write torn");
        break;
      default:
        break;
    }
  }

  Status status = WriteAllFd(fd, contents.data(), persist, tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Internal(Errno("fsync", tmp));
  }
  ::close(fd);
  if (status.ok() && !injected.ok()) status = injected;
  if (!status.ok()) return status;  // tmp file left behind is harmless

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(Errno("rename", tmp + " -> " + path));
  }
  return FsyncParentDir(path);
}

}  // namespace nous
