#ifndef NOUS_DURABILITY_FS_UTIL_H_
#define NOUS_DURABILITY_FS_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace nous {

/// POSIX filesystem helpers shared by the WAL and checkpointer. All
/// failures surface as Status (errno folded into the message); nothing
/// here throws or aborts.

/// Creates `path` (one level) if it does not exist.
Status EnsureDirectory(const std::string& path);

bool FileExists(const std::string& path);

Result<std::string> ReadFileToString(const std::string& path);

/// Shrinks `path` to exactly `size` bytes.
Status TruncateFile(const std::string& path, uint64_t size);

Status RemoveFile(const std::string& path);

/// Writes `contents` to `path` with full-file atomicity: the bytes go
/// to `path + ".tmp"`, the temp file is fsynced, renamed over `path`,
/// and the parent directory is fsynced so the rename itself is
/// durable. A crash at any point leaves either the old file or the
/// new one — never a torn mix. Honors fault point "atomic_write"
/// (kFail → error before rename; kTorn → temp file keeps only a
/// prefix, then error).
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// fsyncs the directory containing `path` (no-op error suppression is
/// deliberate on filesystems that reject directory fsync).
Status FsyncParentDir(const std::string& path);

}  // namespace nous

#endif  // NOUS_DURABILITY_FS_UTIL_H_
