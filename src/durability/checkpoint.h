#ifndef NOUS_DURABILITY_CHECKPOINT_H_
#define NOUS_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace nous {

/// A materialized pipeline snapshot plus the WAL position it covers.
struct CheckpointData {
  /// Sequence number of the last batch applied before the snapshot;
  /// recovery replays only WAL records with seq > this.
  uint64_t last_applied_seq = 0;
  /// Opaque KgPipeline::SaveState payload.
  std::string state;
};

/// Writes `data` to `path` atomically (temp file + fsync + rename +
/// parent-dir fsync): a crash mid-checkpoint leaves the previous
/// checkpoint intact. The payload is CRC-framed, so a corrupted file
/// is detected at read time instead of poisoning recovery.
Status WriteCheckpointFile(const std::string& path,
                           const CheckpointData& data);

/// Reads and verifies a checkpoint. NotFound when absent; DataLoss on
/// bad magic, version skew, or CRC mismatch.
Result<CheckpointData> ReadCheckpointFile(const std::string& path);

}  // namespace nous

#endif  // NOUS_DURABILITY_CHECKPOINT_H_
