#include "durability/checkpoint.h"

#include <cstring>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "durability/fs_util.h"

namespace nous {

namespace {
const char kCheckpointMagic[8] = {'N', 'O', 'U', 'S', 'C', 'K', 'P', '1'};
constexpr uint32_t kCheckpointVersion = 1;
}  // namespace

Status WriteCheckpointFile(const std::string& path,
                           const CheckpointData& data) {
  // The CRC covers everything after the magic — version and
  // last_applied_seq included, since a flipped bit in the sequence
  // number would make recovery replay the wrong WAL suffix.
  BinaryWriter body;
  body.U32(kCheckpointVersion);
  body.U64(data.last_applied_seq);
  body.Str(data.state);
  BinaryWriter writer;
  writer.Raw(kCheckpointMagic, sizeof(kCheckpointMagic));
  writer.Raw(body.data().data(), body.size());
  writer.U32(Crc32c(body.data()));
  return AtomicWriteFile(path, writer.data());
}

Result<CheckpointData> ReadCheckpointFile(const std::string& path) {
  NOUS_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  if (contents.size() < sizeof(kCheckpointMagic) + sizeof(uint32_t) ||
      std::memcmp(contents.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::DataLoss("not a NOUS checkpoint: " + path);
  }
  std::string_view body(contents.data() + sizeof(kCheckpointMagic),
                        contents.size() - sizeof(kCheckpointMagic) -
                            sizeof(uint32_t));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, contents.data() + contents.size() -
                               sizeof(uint32_t),
              sizeof(stored_crc));
  if (Crc32c(body) != stored_crc) {
    return Status::DataLoss("checkpoint CRC mismatch: " + path);
  }
  BinaryReader reader(body);
  uint32_t version = 0;
  NOUS_RETURN_IF_ERROR(reader.U32(&version));
  if (version != kCheckpointVersion) {
    return Status::DataLoss("checkpoint version " + std::to_string(version) +
                            " unsupported");
  }
  CheckpointData data;
  NOUS_RETURN_IF_ERROR(reader.U64(&data.last_applied_seq));
  if (!reader.Str(&data.state).ok() || !reader.AtEnd()) {
    return Status::DataLoss("checkpoint truncated: " + path);
  }
  return data;
}

}  // namespace nous
