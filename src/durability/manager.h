#ifndef NOUS_DURABILITY_MANAGER_H_
#define NOUS_DURABILITY_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"

namespace nous {

/// Knobs for crash-safe ingest (Nous::Options::durability).
struct DurabilityOptions {
  /// Directory holding wal.log + checkpoint.nous. Created on demand.
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  /// WAL appends between fsyncs under kInterval.
  size_t fsync_interval_records = 16;
  /// Logged batches between automatic checkpoints (0 = checkpoint only
  /// when Nous::Checkpoint() is called).
  size_t checkpoint_interval_batches = 0;
};

/// Owns the WAL + checkpoint files of one durable NOUS instance and
/// the sequencing between them. The protocol (DESIGN.md §5.10):
///
///   ingest:     LogBatch(encode(batch))   -- log before apply
///               pipeline.IngestBatch(...) -- apply
///               ack                        -- only after both
///   checkpoint: WriteCheckpoint(pipeline.SaveState())
///               -> atomically replaces checkpoint.nous, then resets
///                  the WAL (records <= last_applied_seq are dead)
///   recovery:   Recover() -> checkpoint payload + WAL records with
///               seq > checkpoint.last_applied_seq, torn tail dropped
///               and the file truncated to its valid prefix.
///
/// Not internally synchronized: Nous serializes durable ingest under
/// its ingest mutex (acquired before the pipeline's kg_mutex).
class DurabilityManager {
 public:
  explicit DurabilityManager(DurabilityOptions options);
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// What a crashed instance left behind.
  struct RecoveredState {
    bool has_checkpoint = false;
    CheckpointData checkpoint;
    /// WAL records to replay, already filtered to
    /// seq > checkpoint.last_applied_seq and in seq order.
    std::vector<WalRecord> replay;
    /// Frames dropped from the torn/corrupt WAL tail.
    uint64_t dropped_records = 0;
    uint64_t dropped_bytes = 0;
  };

  /// Scans checkpoint + WAL, truncates any torn WAL tail to its valid
  /// prefix, and returns what survived. Call before OpenWal. A corrupt
  /// checkpoint is an error (stale-but-intact beats silently wrong);
  /// a torn WAL tail is not (it was never acknowledged).
  Result<RecoveredState> Recover();

  /// Opens the WAL for append; subsequent LogBatch calls are numbered
  /// from `last_applied_seq + 1`.
  Status OpenWal(uint64_t last_applied_seq);

  /// Appends one encoded batch and applies the fsync policy. On
  /// success returns the batch's sequence number; on failure nothing
  /// was committed and the caller must not acknowledge the batch.
  Result<uint64_t> LogBatch(std::string_view payload);

  /// True when checkpoint_interval_batches have been logged since the
  /// last checkpoint.
  bool ShouldCheckpoint() const;

  /// Atomically persists `state` (a KgPipeline::SaveState payload)
  /// covering everything logged so far, then resets the WAL to empty.
  Status WriteCheckpoint(std::string state);

  /// Installs a checkpoint image received from elsewhere (replication:
  /// a leader's full image covering `last_applied_seq`). Re-anchors the
  /// local sequence counter to the image, persists it, and resets the
  /// WAL — after this, LogBatch numbers from last_applied_seq + 1.
  Status InstallCheckpoint(uint64_t last_applied_seq, std::string state);

  /// Forces buffered WAL records to stable storage now.
  Status SyncWal();

  Status Close();

  uint64_t last_logged_seq() const { return last_logged_seq_; }
  std::string wal_path() const;
  std::string checkpoint_path() const;
  const DurabilityOptions& options() const { return options_; }

 private:
  DurabilityOptions options_;
  WalWriter wal_;
  uint64_t last_logged_seq_ = 0;
  uint64_t batches_since_checkpoint_ = 0;
};

}  // namespace nous

#endif  // NOUS_DURABILITY_MANAGER_H_
