#include "durability/wal_codec.h"

#include "common/binary_io.h"

namespace nous {

namespace {
/// Payload version; bump on any layout change.
constexpr uint32_t kBatchVersion = 1;
}  // namespace

std::string EncodeArticleBatch(const Article* articles, size_t count) {
  BinaryWriter writer;
  writer.U32(kBatchVersion);
  writer.U64(count);
  for (size_t i = 0; i < count; ++i) {
    const Article& a = articles[i];
    writer.Str(a.id);
    writer.U32(static_cast<uint32_t>(a.date.year));
    writer.U8(static_cast<uint8_t>(a.date.month));
    writer.U8(static_cast<uint8_t>(a.date.day));
    writer.Str(a.source);
    writer.Str(a.text);
  }
  return writer.Take();
}

Result<std::vector<Article>> DecodeArticleBatch(std::string_view payload) {
  BinaryReader reader(payload);
  uint32_t version = 0;
  NOUS_RETURN_IF_ERROR(reader.U32(&version));
  if (version != kBatchVersion) {
    return Status::DataLoss("WAL batch version " + std::to_string(version) +
                            " unsupported (expected " +
                            std::to_string(kBatchVersion) + ")");
  }
  uint64_t count = 0;
  NOUS_RETURN_IF_ERROR(reader.Count(&count, 8 + 6 + 16));
  std::vector<Article> articles;
  articles.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Article a;
    NOUS_RETURN_IF_ERROR(reader.Str(&a.id));
    uint32_t year = 0;
    uint8_t month = 0, day = 0;
    NOUS_RETURN_IF_ERROR(reader.U32(&year));
    NOUS_RETURN_IF_ERROR(reader.U8(&month));
    NOUS_RETURN_IF_ERROR(reader.U8(&day));
    a.date.year = static_cast<int>(year);
    a.date.month = month;
    a.date.day = day;
    NOUS_RETURN_IF_ERROR(reader.Str(&a.source));
    NOUS_RETURN_IF_ERROR(reader.Str(&a.text));
    articles.push_back(std::move(a));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("WAL batch has trailing bytes");
  }
  return articles;
}

}  // namespace nous
