#ifndef NOUS_REPLICATION_LEADER_H_
#define NOUS_REPLICATION_LEADER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/nous.h"
#include "replication/protocol.h"
#include "replication/socket.h"
#include "replication/telemetry.h"

namespace nous {

/// WAL-shipping leader (DESIGN.md §5.15): accepts follower
/// connections on a loopback port and streams every durable commit to
/// each of them — historical frames read back from the WAL file
/// (catch-up), live frames taken from a per-follower queue fed by the
/// Nous commit hook, full checkpoint images when a follower is too
/// far behind for the WAL to bridge.
///
/// Robustness contract:
///  - Ingest never blocks on a follower. OnCommit/OnCheckpoint only
///    enqueue pre-encoded frames into bounded per-session queues; a
///    queue that fills (slow or wedged follower) is cleared and the
///    session disconnected (overflow_disconnects in the telemetry) —
///    the follower reconnects and catches up from the WAL.
///  - A follower whose Hello seq the leader cannot bridge from its
///    WAL (records checkpointed away, or the follower is *ahead* of a
///    leader that lost unsynced WAL tail in a crash) gets a full
///    image, captured consistently from memory.
///  - Session threads never touch Nous ingest paths; they read the
///    WAL file and lock-free atomics only.
class ReplicationLeader : public CommitListener, public ReplicationTelemetry {
 public:
  struct Options {
    /// Loopback port to listen on (0 = ephemeral; see port()).
    uint16_t port = 0;
    /// Idle interval after which a session sends a heartbeat.
    int heartbeat_ms = 200;
    /// Max frames queued per follower before it is disconnected.
    size_t queue_capacity = 1024;
    /// Per-socket send/recv deadline.
    int io_timeout_ms = 5000;
  };

  /// `nous` must be durable (Recover() succeeded) and outlive this.
  ReplicationLeader(Nous* nous, Options options);
  ~ReplicationLeader() override;

  ReplicationLeader(const ReplicationLeader&) = delete;
  ReplicationLeader& operator=(const ReplicationLeader&) = delete;

  /// Binds the port, registers the commit hook, starts accepting.
  Status Start();

  /// Unregisters the commit hook, disconnects every follower, joins
  /// all threads. Idempotent; also run by the destructor.
  void Stop();

  uint16_t port() const { return listener_.port(); }

  // CommitListener (called under the Nous ingest mutex — enqueue only).
  void OnCommit(uint64_t seq, const std::string& payload,
                uint64_t kg_version) override;
  void OnCheckpoint(uint64_t seq, const std::string& state,
                    uint64_t kg_version) override;

  // ReplicationTelemetry.
  ReplicationView View() const override;

 private:
  /// One pre-encoded frame waiting in a session queue.
  struct QueueItem {
    ReplFrameType type = ReplFrameType::kWalBatch;
    uint64_t seq = 0;
    std::shared_ptr<const std::string> wire;
  };

  struct Session {
    TcpConn conn;
    std::thread thread;
    AnnotatedMutex mutex;
    std::condition_variable cv;
    std::deque<QueueItem> queue GUARDED_BY(mutex);
    bool stop GUARDED_BY(mutex) = false;
    /// Set when the queue overflowed; the serving loop disconnects.
    bool overflowed GUARDED_BY(mutex) = false;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeFollower(Session* session);
  /// Handshake: stream magic then the Hello frame, under a deadline.
  Status ReadHello(Session* session, ReplFrame* hello);
  /// Sends one data frame (kWalBatch/kCheckpoint), applying the
  /// repl_frame_drop / repl_frame_corrupt fault points. A dropped
  /// frame reports success — that is the point: the leader believes
  /// it sent it, and the follower must detect the gap.
  Status SendDataFrame(Session* session, const std::string& wire);
  /// Enqueues a pre-encoded frame on every live session, disconnecting
  /// sessions whose queue is full.
  void Broadcast(QueueItem item);
  void ReapFinishedSessions() REQUIRES(sessions_mutex_);

  Nous* nous_;
  Options options_;
  std::string wal_path_;
  TcpListener listener_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread accept_thread_;

  AnnotatedMutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_
      GUARDED_BY(sessions_mutex_);

  std::atomic<uint64_t> followers_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> checkpoints_sent_{0};
  std::atomic<uint64_t> overflow_disconnects_{0};
};

}  // namespace nous

#endif  // NOUS_REPLICATION_LEADER_H_
