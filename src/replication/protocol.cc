#include "replication/protocol.h"

#include <cstring>

#include "common/binary_io.h"
#include "common/crc32.h"

namespace nous {

const char kReplStreamMagic[8] = {'N', 'O', 'U', 'S', 'R', 'E', 'P', '1'};

namespace {

/// CRC over the frame: payload chained onto the (type, seq, aux, len)
/// header words — same discipline as the WAL's FrameCrc, so header
/// corruption is as detectable as payload corruption.
uint32_t ReplFrameCrc(ReplFrameType type, uint64_t seq, uint64_t aux,
                      uint32_t len, std::string_view payload) {
  BinaryWriter header;
  header.U8(static_cast<uint8_t>(type));
  header.U64(seq);
  header.U64(aux);
  header.U32(len);
  uint32_t crc = Crc32c(header.data());
  return Crc32c(payload.data(), payload.size(), crc);
}

bool ValidType(uint8_t type) {
  return type >= static_cast<uint8_t>(ReplFrameType::kHello) &&
         type <= static_cast<uint8_t>(ReplFrameType::kHeartbeat);
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::string EncodeReplFrame(const ReplFrame& frame) {
  const uint32_t len = static_cast<uint32_t>(frame.payload.size());
  BinaryWriter wire;
  wire.U32(kReplFrameMagic);
  wire.U8(static_cast<uint8_t>(frame.type));
  wire.U64(frame.seq);
  wire.U64(frame.aux);
  wire.U32(len);
  wire.U32(ReplFrameCrc(frame.type, frame.seq, frame.aux, len,
                        frame.payload));
  wire.Raw(frame.payload.data(), frame.payload.size());
  return wire.Take();
}

std::string EncodeHelloPayload(uint64_t kg_version) {
  BinaryWriter payload;
  payload.U64(kg_version);
  return payload.Take();
}

uint64_t DecodeHelloKgVersion(std::string_view payload) {
  if (payload.size() < sizeof(uint64_t)) return 0;
  return ReadU64(payload.data());
}

Result<bool> ReplFrameParser::Next(ReplFrame* frame) {
  // Compact lazily: drop consumed prefix once it dominates the buffer
  // so long sessions do not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const char* base = buffer_.data() + consumed_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kReplFrameHeaderBytes) return false;

  const uint32_t magic = ReadU32(base);
  if (magic != kReplFrameMagic) {
    return Status::DataLoss("replication frame: bad magic");
  }
  const uint8_t type = static_cast<uint8_t>(base[4]);
  if (!ValidType(type)) {
    return Status::DataLoss("replication frame: unknown type " +
                            std::to_string(type));
  }
  const uint64_t seq = ReadU64(base + 5);
  const uint64_t aux = ReadU64(base + 13);
  const uint32_t len = ReadU32(base + 21);
  const uint32_t crc = ReadU32(base + 25);
  if (len > kMaxReplPayloadBytes) {
    return Status::DataLoss("replication frame: payload length " +
                            std::to_string(len) + " exceeds cap");
  }
  if (available < kReplFrameHeaderBytes + len) return false;

  std::string_view payload(base + kReplFrameHeaderBytes, len);
  if (ReplFrameCrc(static_cast<ReplFrameType>(type), seq, aux, len,
                   payload) != crc) {
    return Status::DataLoss("replication frame: CRC mismatch");
  }
  frame->type = static_cast<ReplFrameType>(type);
  frame->seq = seq;
  frame->aux = aux;
  frame->payload.assign(payload);
  consumed_ += kReplFrameHeaderBytes + len;
  return true;
}

}  // namespace nous
