#ifndef NOUS_REPLICATION_PROTOCOL_H_
#define NOUS_REPLICATION_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace nous {

/// Length-prefixed binary framing for WAL shipping (DESIGN.md §5.15).
/// Wire layout of one frame, all integers little-endian:
///
///   [u32 frame-magic][u8 type][u64 seq][u64 aux][u32 len][u32 crc]
///   [payload: len bytes]
///
/// crc = CRC-32C(payload, seeded with CRC-32C(type||seq||aux||len)),
/// mirroring the WAL's chained-header scheme: a bit flip anywhere in
/// the frame — header or payload — fails verification. The stream
/// carries no resync markers; on any framing or CRC failure the
/// receiver drops the connection and resyncs from its last applied
/// seq (the transport is TCP, so mid-stream corruption means a bug or
/// injected fault, not routine loss).
enum class ReplFrameType : uint8_t {
  /// follower -> leader, once per connection: seq = last applied seq,
  /// aux = flags (kHelloForceImage requests a full checkpoint image),
  /// payload = EncodeHelloPayload (the follower's kg_version, so a
  /// leader at the same seq but a different version — e.g. one whose
  /// recovery Finalize re-trained state the follower never saw — can
  /// detect the divergence and re-image instead of silently serving
  /// heartbeats forever).
  kHello = 1,
  /// leader -> follower: one committed WAL batch. seq = WAL seq,
  /// payload = the exact WAL payload (EncodeArticleBatch bytes),
  /// aux = the leader's kg_version after applying this batch, or 0
  /// when unknown (historical catch-up frames).
  kWalBatch = 2,
  /// leader -> follower: a full checkpoint image. seq = the WAL seq
  /// the image covers, aux = its kg_version, payload = the
  /// KgPipeline::SaveState bytes.
  kCheckpoint = 3,
  /// leader -> follower, on idle: seq = leader's last committed seq,
  /// aux = leader's kg_version, empty payload. Lets followers report
  /// lag and detect a stalled (frame-dropping) link.
  kHeartbeat = 4,
};

/// Hello aux flag: the follower's state diverged (or it never had
/// any); the leader must send a full checkpoint image before WAL
/// frames.
constexpr uint64_t kHelloForceImage = 1;

/// Per-frame magic word ("NRPF" little-endian).
constexpr uint32_t kReplFrameMagic = 0x4650524Eu;
/// 8-byte preamble the follower sends before its Hello, so a stray
/// client speaking another protocol is rejected before frame parsing.
extern const char kReplStreamMagic[8];
/// Upper bound on a frame payload; a declared length beyond it is
/// corruption, not a frame worth waiting for.
constexpr uint32_t kMaxReplPayloadBytes = 1u << 30;

struct ReplFrame {
  ReplFrameType type = ReplFrameType::kHeartbeat;
  uint64_t seq = 0;
  uint64_t aux = 0;
  std::string payload;
};

/// Serialized frame header size in bytes (magic + type + seq + aux +
/// len + crc).
constexpr size_t kReplFrameHeaderBytes = 4 + 1 + 8 + 8 + 4 + 4;

/// Encodes one frame to its wire form.
std::string EncodeReplFrame(const ReplFrame& frame);

/// Hello payload: the follower's durable kg_version as fixed64.
std::string EncodeHelloPayload(uint64_t kg_version);
/// Extracts the kg_version from a Hello payload; 0 (never a live
/// version) when the payload is absent or malformed — older or foreign
/// peers simply skip the same-seq divergence check.
uint64_t DecodeHelloKgVersion(std::string_view payload);

/// Incremental frame parser over an arbitrarily-chunked byte stream.
/// Feed bytes with Append, then drain frames with Next until it
/// reports "need more". Any framing violation (bad magic, bad type,
/// oversized length, CRC mismatch) is DataLoss: the stream cannot be
/// trusted past that point and the connection must be dropped.
class ReplFrameParser {
 public:
  void Append(const char* data, size_t size) {
    buffer_.append(data, size);
  }

  /// Ok(true): *frame holds the next complete frame. Ok(false): the
  /// buffered bytes end mid-frame; append more and retry. Error:
  /// corruption (parser state is poisoned; drop the connection).
  Result<bool> Next(ReplFrame* frame);

  /// Bytes buffered but not yet consumed by Next.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

}  // namespace nous

#endif  // NOUS_REPLICATION_PROTOCOL_H_
