#include "replication/follower.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace nous {

ReplicationFollower::ReplicationFollower(Nous* nous, Options options)
    : nous_(nous), options_(std::move(options)), rng_(options_.jitter_seed) {
  if (options_.reconnect_initial_ms <= 0) options_.reconnect_initial_ms = 50;
  if (options_.reconnect_max_ms < options_.reconnect_initial_ms) {
    options_.reconnect_max_ms = options_.reconnect_initial_ms;
  }
  if (options_.heartbeat_stall_limit <= 0) {
    options_.heartbeat_stall_limit = 10;
  }
}

ReplicationFollower::~ReplicationFollower() { Stop(); }

Status ReplicationFollower::Start() {
  if (started_) {
    return Status::FailedPrecondition(
        "replication follower already started");
  }
  if (!nous_->durable()) {
    return Status::FailedPrecondition(
        "replication follower requires a durable Nous (call Recover "
        "first)");
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  started_ = true;
  return Status::Ok();
}

void ReplicationFollower::Stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  {
    MutexLock lock(conn_mutex_);
    if (active_conn_ != nullptr) active_conn_->Shutdown();
  }
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void ReplicationFollower::Backoff(int attempt) {
  const double base = std::min<double>(
      static_cast<double>(options_.reconnect_max_ms),
      static_cast<double>(options_.reconnect_initial_ms) *
          static_cast<double>(1ull << std::min(attempt, 16)));
  // Jitter in [0.5, 1.0)x so a fleet of followers does not reconnect
  // in lockstep after a leader restart.
  const int delay_ms =
      std::max(1, static_cast<int>(base * (0.5 + rng_.UniformDouble() / 2)));
  int remaining = delay_ms;
  while (remaining > 0 && running_.load(std::memory_order_acquire)) {
    const int slice = std::min(remaining, 50);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    remaining -= slice;
  }
}

void ReplicationFollower::Run() {
  bool force_image = false;
  int attempt = 0;
  while (running_.load(std::memory_order_acquire)) {
    const uint64_t seq_before = nous_->last_durable_seq();
    const uint64_t applied_before =
        frames_applied_.load(std::memory_order_relaxed) +
        checkpoints_applied_.load(std::memory_order_relaxed);
    RunSession(&force_image);
    if (!running_.load(std::memory_order_acquire)) break;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    const bool progressed =
        nous_->last_durable_seq() > seq_before ||
        frames_applied_.load(std::memory_order_relaxed) +
                checkpoints_applied_.load(std::memory_order_relaxed) >
            applied_before;
    attempt = progressed ? 0 : attempt + 1;
    Backoff(attempt);
  }
}

void ReplicationFollower::RunSession(bool* force_image) {
  Result<TcpConn> connected =
      TcpConn::Connect(options_.host, options_.port,
                       options_.connect_timeout_ms);
  if (!connected.ok()) return;
  TcpConn conn = std::move(*connected);
  conn.SetIoDeadline(options_.io_timeout_ms).ok();
  {
    MutexLock lock(conn_mutex_);
    active_conn_ = &conn;
  }
  // Ensure active_conn_ is cleared on every exit path below.
  struct ConnGuard {
    ReplicationFollower* self;
    ~ConnGuard() {
      MutexLock lock(self->conn_mutex_);
      self->active_conn_ = nullptr;
    }
  } guard{this};

  // Handshake: stream magic, then Hello with our resume position.
  ReplFrame hello;
  hello.type = ReplFrameType::kHello;
  hello.seq = nous_->last_durable_seq();
  hello.aux = *force_image ? kHelloForceImage : 0;
  hello.payload = EncodeHelloPayload(nous_->durable_kg_version());
  std::string handshake(kReplStreamMagic, sizeof(kReplStreamMagic));
  handshake += EncodeReplFrame(hello);
  if (!conn.SendAll(handshake).ok()) return;
  connected_.store(true, std::memory_order_release);

  ReplFrameParser parser;
  char buffer[64 * 1024];
  int idle_heartbeats = 0;
  int diverged_heartbeats = 0;
  while (running_.load(std::memory_order_acquire)) {
    Result<size_t> received = conn.Recv(buffer, sizeof(buffer));
    if (!received.ok() || *received == 0) break;
    parser.Append(buffer, *received);
    bool drop_connection = false;
    for (;;) {
      ReplFrame frame;
      Result<bool> have = parser.Next(&frame);
      if (!have.ok()) {
        // Framing/CRC violation: the stream cannot be trusted past
        // this point. Drop it and resync from our applied seq.
        corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
        drop_connection = true;
        break;
      }
      if (!*have) break;

      switch (frame.type) {
        case ReplFrameType::kWalBatch: {
          const uint64_t applied = nous_->last_durable_seq();
          if (frame.seq <= applied) break;  // duplicate after resume
          if (frame.seq > applied + 1) {
            // Frames went missing (dropped upstream). Reconnect and
            // re-request from our applied position.
            gaps_.fetch_add(1, std::memory_order_relaxed);
            drop_connection = true;
            break;
          }
          Status status = nous_->ApplyReplicatedBatch(
              frame.seq, frame.payload, frame.aux);
          if (status.code() == StatusCode::kDataLoss) {
            // Applied but diverged: our KG version disagrees with the
            // leader's. Only a full image can fix this.
            NOUS_LOG(Warning)
                << "replication: replica diverged, forcing image resync: "
                << status.ToString();
            *force_image = true;
            drop_connection = true;
            break;
          }
          if (!status.ok()) {
            NOUS_LOG(Warning) << "replication: batch apply failed: "
                              << status.ToString();
            drop_connection = true;
            break;
          }
          frames_applied_.fetch_add(1, std::memory_order_relaxed);
          *force_image = false;
          idle_heartbeats = 0;
          break;
        }
        case ReplFrameType::kCheckpoint: {
          const uint64_t applied = nous_->last_durable_seq();
          // Skip only images strictly behind us (a stale broadcast
          // from before a resync). Same-seq images are always applied:
          // they carry Finalize re-checkpoints and forced-image
          // resyncs, where the seq matches but the state must change.
          if (frame.seq < applied) break;
          Status status =
              nous_->ApplyReplicatedCheckpoint(frame.seq, frame.payload);
          if (!status.ok()) {
            NOUS_LOG(Warning) << "replication: checkpoint apply failed: "
                              << status.ToString();
            drop_connection = true;
            break;
          }
          checkpoints_applied_.fetch_add(1, std::memory_order_relaxed);
          resyncs_.fetch_add(1, std::memory_order_relaxed);
          *force_image = false;
          idle_heartbeats = 0;
          break;
        }
        case ReplFrameType::kHeartbeat: {
          leader_seq_.store(frame.seq, std::memory_order_release);
          leader_kg_version_.store(frame.aux, std::memory_order_release);
          if (frame.seq > nous_->last_durable_seq()) {
            // The leader is ahead but nothing reaches us between
            // heartbeats: its data sends are being eaten. Recycle.
            if (++idle_heartbeats >= options_.heartbeat_stall_limit) {
              gaps_.fetch_add(1, std::memory_order_relaxed);
              drop_connection = true;
            }
          } else if (frame.seq == nous_->last_durable_seq() &&
                     frame.aux != 0 &&
                     frame.aux != nous_->durable_kg_version()) {
            // Same seq, different version: our state silently forked
            // from the leader's (catch-up frames carry no version to
            // cross-check). Transient mismatch is normal while a
            // checkpoint image is in flight, so require a streak.
            if (++diverged_heartbeats >= options_.heartbeat_stall_limit) {
              NOUS_LOG(Warning)
                  << "replication: same-seq version mismatch on "
                  << diverged_heartbeats
                  << " consecutive heartbeats, forcing image resync";
              *force_image = true;
              drop_connection = true;
            }
          } else {
            idle_heartbeats = 0;
            diverged_heartbeats = 0;
          }
          break;
        }
        case ReplFrameType::kHello:
          // Leaders never send Hello; a peer that does is not ours.
          drop_connection = true;
          break;
      }
      if (drop_connection) break;
    }
    if (drop_connection) break;
  }

  connected_.store(false, std::memory_order_release);
  conn.Shutdown();
}

ReplicationView ReplicationFollower::View() const {
  ReplicationView view;
  view.role = "follower";
  view.connected = connected_.load(std::memory_order_acquire);
  view.last_seq = nous_->last_durable_seq();
  view.kg_version = nous_->durable_kg_version();
  view.leader_seq = leader_seq_.load(std::memory_order_acquire);
  view.leader_kg_version =
      leader_kg_version_.load(std::memory_order_acquire);
  view.lag_versions = view.leader_kg_version > view.kg_version
                          ? view.leader_kg_version - view.kg_version
                          : 0;
  view.frames_applied = frames_applied_.load(std::memory_order_relaxed);
  view.checkpoints_applied =
      checkpoints_applied_.load(std::memory_order_relaxed);
  view.reconnects = reconnects_.load(std::memory_order_relaxed);
  view.resyncs = resyncs_.load(std::memory_order_relaxed);
  view.gaps = gaps_.load(std::memory_order_relaxed);
  view.corrupt_frames = corrupt_frames_.load(std::memory_order_relaxed);
  return view;
}

}  // namespace nous
