#ifndef NOUS_REPLICATION_TELEMETRY_H_
#define NOUS_REPLICATION_TELEMETRY_H_

#include <cstdint>
#include <string>

namespace nous {

/// One consistent read of a replication endpoint's state, for
/// /api/stats, the staleness-gated /api/readyz, and the benches.
/// Leader- and follower-only fields report zero on the other role.
struct ReplicationView {
  std::string role;  // "leader" or "follower"
  /// Follower: the link to the leader is up. Leader: always true.
  bool connected = false;
  /// Leader: last committed (WAL-logged + applied) seq. Follower: last
  /// applied seq.
  uint64_t last_seq = 0;
  /// KG version matching last_seq on this endpoint.
  uint64_t kg_version = 0;
  /// Follower only: the leader's position from its latest heartbeat
  /// (0 until the first heartbeat arrives).
  uint64_t leader_seq = 0;
  uint64_t leader_kg_version = 0;
  /// Versions this endpoint trails its leader by (0 on the leader).
  uint64_t lag_versions = 0;

  // Leader-side counters.
  uint64_t followers = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t checkpoints_sent = 0;
  uint64_t overflow_disconnects = 0;

  // Follower-side counters.
  uint64_t frames_applied = 0;
  uint64_t checkpoints_applied = 0;
  uint64_t reconnects = 0;
  uint64_t resyncs = 0;
  uint64_t gaps = 0;
  uint64_t corrupt_frames = 0;
};

/// What the serving tier needs from a replication endpoint without
/// depending on the leader/follower machinery: a snapshot of its
/// state. Implementations (ReplicationLeader, ReplicationFollower)
/// must make View() safe to call from any thread.
class ReplicationTelemetry {
 public:
  virtual ~ReplicationTelemetry() = default;
  virtual ReplicationView View() const = 0;
};

}  // namespace nous

#endif  // NOUS_REPLICATION_TELEMETRY_H_
