#include "replication/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/fault_injection.h"

namespace nous {

namespace {

std::string Errno(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

/// Applies an armed repl_send / repl_recv fault. Returns true when the
/// instrumented call must report a dropped connection.
bool HitLinkFault(const char* point) {
  if (auto fault = FaultInjector::Global().Hit(point)) {
    if (fault->kind == FaultKind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          fault->arg > 0 ? fault->arg : 100));
      return false;
    }
    return true;
  }
  return false;
}

Status SetTimeout(int fd, int optname, int timeout_ms) {
  struct timeval tv {};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Status::Internal(Errno("setsockopt"));
  }
  return Status::Ok();
}

}  // namespace

TcpConn::~TcpConn() { Close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Result<TcpConn> TcpConn::Connect(const std::string& host, uint16_t port,
                                 int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  TcpConn conn(fd);  // owns the fd from here on

  sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("replication: bad host address: " +
                                   host);
  }

  // Non-blocking connect + poll: a down peer costs timeout_ms, never
  // the kernel's multi-minute SYN retry budget.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(Errno("fcntl"));
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Unavailable("connect " + host + ": " +
                               std::strerror(errno));
  }
  if (rc != 0) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int ready = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (ready == 0) return Status::Unavailable("connect timeout: " + host);
    if (ready < 0) return Status::Internal(Errno("poll"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return Status::Unavailable("connect " + host + ": " +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    return Status::Internal(Errno("fcntl"));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Status TcpConn::SetIoDeadline(int timeout_ms) {
  if (!valid()) return Status::FailedPrecondition("connection closed");
  if (timeout_ms <= 0) return Status::Ok();
  NOUS_RETURN_IF_ERROR(SetTimeout(fd_, SO_RCVTIMEO, timeout_ms));
  return SetTimeout(fd_, SO_SNDTIMEO, timeout_ms);
}

Status TcpConn::SendAll(std::string_view data) {
  if (!valid()) return Status::FailedPrecondition("connection closed");
  if (HitLinkFault("repl_send")) {
    return Status::Unavailable("fault injected: repl_send fail");
  }
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a vanished peer is an EPIPE error, not a SIGPIPE
    // that kills the process.
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable("send timeout");
      }
      return Status::Unavailable(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<size_t> TcpConn::Recv(char* buffer, size_t size) {
  if (!valid()) return Status::FailedPrecondition("connection closed");
  if (HitLinkFault("repl_recv")) {
    return Status::Unavailable("fault injected: repl_recv fail");
  }
  for (;;) {
    ssize_t n = ::recv(fd_, buffer, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("recv timeout");
    }
    return Status::Unavailable(Errno("recv"));
  }
}

void TcpConn::Shutdown() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Listen(uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already listening");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal(Errno("bind"));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    Status status = Status::Internal(Errno("listen"));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status status = Status::Internal(Errno("getsockname"));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::Ok();
}

Result<TcpConn> TcpListener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not listening");
  struct pollfd pfd {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return TcpConn();
    return Status::Internal(Errno("poll"));
  }
  if (ready == 0) return TcpConn();  // timeout: caller polls again
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return TcpConn();
    }
    return Status::Internal(Errno("accept"));
  }
  if (auto fault = FaultInjector::Global().Hit("repl_accept")) {
    if (fault->kind != FaultKind::kDelay) {
      // The peer "vanished" mid-handshake; it will back off and retry.
      ::close(fd);
      return TcpConn();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        fault->arg > 0 ? fault->arg : 100));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace nous
