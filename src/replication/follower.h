#ifndef NOUS_REPLICATION_FOLLOWER_H_
#define NOUS_REPLICATION_FOLLOWER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/nous.h"
#include "replication/protocol.h"
#include "replication/socket.h"
#include "replication/telemetry.h"

namespace nous {

/// WAL-shipping follower (DESIGN.md §5.15): maintains a connection to
/// the leader, replays shipped WAL batches through the local
/// durability path (log-before-apply, same as the leader), and
/// installs full checkpoint images when the leader sends one. The
/// local Nous keeps publishing lock-free snapshots, so queries serve
/// with zero coordination against the replication thread.
///
/// Robustness contract:
///  - Any framing/CRC violation, seq gap, or KG-version divergence
///    drops the connection; the next Hello resumes from the last
///    *applied* seq (or demands a full image after divergence), so a
///    dropped or corrupted frame can delay convergence but never
///    poison the replica.
///  - Reconnects use jittered exponential backoff, interruptible by
///    Stop() within ~50ms.
///  - A leader that heartbeats ahead of us without ever delivering
///    data (its sends are being dropped) is detected after
///    `heartbeat_stall_limit` idle heartbeats and the link recycled.
class ReplicationFollower : public ReplicationTelemetry {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    int connect_timeout_ms = 2000;
    int io_timeout_ms = 5000;
    int reconnect_initial_ms = 50;
    int reconnect_max_ms = 2000;
    /// Consecutive heartbeats showing the leader ahead with no data
    /// arriving before the link is declared wedged and recycled.
    int heartbeat_stall_limit = 10;
    /// Seed for the reconnect jitter (deterministic in tests).
    uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
  };

  /// `nous` must be durable (Recover() succeeded) and outlive this.
  ReplicationFollower(Nous* nous, Options options);
  ~ReplicationFollower() override;

  ReplicationFollower(const ReplicationFollower&) = delete;
  ReplicationFollower& operator=(const ReplicationFollower&) = delete;

  /// Starts the replication thread (connect + apply loop).
  Status Start();

  /// Stops and joins the replication thread. Idempotent.
  void Stop();

  // ReplicationTelemetry.
  ReplicationView View() const override;

 private:
  void Run();
  /// One connection lifetime: handshake, then apply frames until the
  /// stream breaks. `force_image` carries divergence state across
  /// reconnects (in: demand an image in the Hello; out: set when the
  /// session proved local state diverged).
  void RunSession(bool* force_image);
  /// Interruptible jittered-exponential-backoff sleep.
  void Backoff(int attempt);

  Nous* nous_;
  Options options_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread thread_;
  Rng rng_;  // only touched by the replication thread

  /// The live connection, for Stop() to shut down from outside.
  AnnotatedMutex conn_mutex_;
  TcpConn* active_conn_ GUARDED_BY(conn_mutex_) = nullptr;

  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> leader_seq_{0};
  std::atomic<uint64_t> leader_kg_version_{0};
  std::atomic<uint64_t> frames_applied_{0};
  std::atomic<uint64_t> checkpoints_applied_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<uint64_t> gaps_{0};
  std::atomic<uint64_t> corrupt_frames_{0};
};

}  // namespace nous

#endif  // NOUS_REPLICATION_FOLLOWER_H_
