#include "replication/leader.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "durability/wal.h"

namespace nous {

ReplicationLeader::ReplicationLeader(Nous* nous, Options options)
    : nous_(nous),
      options_(std::move(options)),
      wal_path_(nous->options().durability.dir + "/wal.log") {
  if (options_.heartbeat_ms <= 0) options_.heartbeat_ms = 200;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

ReplicationLeader::~ReplicationLeader() { Stop(); }

Status ReplicationLeader::Start() {
  if (started_) {
    return Status::FailedPrecondition("replication leader already started");
  }
  if (!nous_->durable()) {
    return Status::FailedPrecondition(
        "replication leader requires a durable Nous (call Recover first)");
  }
  NOUS_RETURN_IF_ERROR(listener_.Listen(options_.port));
  running_.store(true, std::memory_order_release);
  nous_->SetCommitListener(this);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  NOUS_LOG(Info) << "replication leader listening on 127.0.0.1:"
                 << listener_.port();
  return Status::Ok();
}

void ReplicationLeader::Stop() {
  if (!started_) return;
  // Unhook first: SetCommitListener blocks on the ingest mutex, so
  // once it returns no commit thread can touch the session queues.
  nous_->SetCommitListener(nullptr);
  running_.store(false, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  MutexLock lock(sessions_mutex_);
  for (auto& session : sessions_) {
    {
      MutexLock session_lock(session->mutex);
      session->stop = true;
    }
    session->cv.notify_all();
    session->conn.Shutdown();  // wakes a blocked Recv/SendAll
  }
  for (auto& session : sessions_) {
    if (session->thread.joinable()) session->thread.join();
  }
  sessions_.clear();
  started_ = false;
}

void ReplicationLeader::OnCommit(uint64_t seq, const std::string& payload,
                                 uint64_t kg_version) {
  ReplFrame frame;
  frame.type = ReplFrameType::kWalBatch;
  frame.seq = seq;
  frame.aux = kg_version;
  frame.payload = payload;
  QueueItem item;
  item.type = frame.type;
  item.seq = seq;
  item.wire = std::make_shared<const std::string>(EncodeReplFrame(frame));
  Broadcast(std::move(item));
}

void ReplicationLeader::OnCheckpoint(uint64_t seq, const std::string& state,
                                     uint64_t kg_version) {
  ReplFrame frame;
  frame.type = ReplFrameType::kCheckpoint;
  frame.seq = seq;
  frame.aux = kg_version;
  frame.payload = state;
  QueueItem item;
  item.type = frame.type;
  item.seq = seq;
  item.wire = std::make_shared<const std::string>(EncodeReplFrame(frame));
  Broadcast(std::move(item));
}

void ReplicationLeader::Broadcast(QueueItem item) {
  MutexLock lock(sessions_mutex_);
  for (auto& session : sessions_) {
    if (session->done.load(std::memory_order_acquire)) continue;
    bool overflowed = false;
    {
      MutexLock session_lock(session->mutex);
      if (session->stop || session->overflowed) continue;
      if (session->queue.size() >= options_.queue_capacity) {
        // Slow follower: shed it rather than stall or grow without
        // bound. It reconnects and catches up from the WAL.
        session->queue.clear();
        session->overflowed = true;
        overflowed = true;
      } else {
        session->queue.push_back(item);
      }
    }
    session->cv.notify_all();
    if (overflowed) {
      overflow_disconnects_.fetch_add(1, std::memory_order_relaxed);
      session->conn.Shutdown();
    }
  }
}

void ReplicationLeader::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    Result<TcpConn> conn = listener_.Accept(100);
    if (!conn.ok()) {
      if (running_.load(std::memory_order_acquire)) {
        NOUS_LOG(Warning) << "replication accept failed: "
                          << conn.status().ToString();
      }
      return;
    }
    MutexLock lock(sessions_mutex_);
    ReapFinishedSessions();
    if (!conn->valid() || !running_.load(std::memory_order_acquire)) {
      continue;  // timeout / dropped accept: poll again
    }
    auto session = std::make_unique<Session>();
    session->conn = std::move(*conn);
    Session* raw = session.get();
    session->thread = std::thread([this, raw] { ServeFollower(raw); });
    sessions_.push_back(std::move(session));
  }
}

void ReplicationLeader::ReapFinishedSessions() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Status ReplicationLeader::ReadHello(Session* session, ReplFrame* hello) {
  char buffer[4096];
  std::string preamble;
  ReplFrameParser parser;
  bool magic_checked = false;
  for (;;) {
    NOUS_ASSIGN_OR_RETURN(size_t n,
                          session->conn.Recv(buffer, sizeof(buffer)));
    if (n == 0) {
      return Status::Unavailable("peer closed during replication handshake");
    }
    if (!magic_checked) {
      preamble.append(buffer, n);
      if (preamble.size() < sizeof(kReplStreamMagic)) continue;
      if (std::memcmp(preamble.data(), kReplStreamMagic,
                      sizeof(kReplStreamMagic)) != 0) {
        return Status::InvalidArgument("not a NOUS replication stream");
      }
      magic_checked = true;
      parser.Append(preamble.data() + sizeof(kReplStreamMagic),
                    preamble.size() - sizeof(kReplStreamMagic));
    } else {
      parser.Append(buffer, n);
    }
    ReplFrame frame;
    NOUS_ASSIGN_OR_RETURN(bool have, parser.Next(&frame));
    if (!have) continue;
    if (frame.type != ReplFrameType::kHello) {
      return Status::InvalidArgument(
          "replication handshake: expected Hello frame");
    }
    *hello = std::move(frame);
    return Status::Ok();
  }
}

Status ReplicationLeader::SendDataFrame(Session* session,
                                        const std::string& wire) {
  FaultInjector& faults = FaultInjector::Global();
  if (auto fault = faults.Hit("repl_frame_drop")) {
    if (fault->kind == FaultKind::kFail) {
      // Silently swallow the frame. The leader's cursor still
      // advances — exactly the failure the follower's seq-gap
      // detection exists to catch.
      return Status::Ok();
    }
  }
  if (auto fault = faults.Hit("repl_frame_corrupt")) {
    if (fault->kind == FaultKind::kFail) {
      std::string corrupted = wire;
      corrupted[corrupted.size() / 2] ^= 0x20;
      return session->conn.SendAll(corrupted);
    }
  }
  Status status = session->conn.SendAll(wire);
  if (status.ok()) {
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(wire.size(), std::memory_order_relaxed);
  }
  return status;
}

void ReplicationLeader::ServeFollower(Session* session) {
  session->conn.SetIoDeadline(options_.io_timeout_ms).ok();
  ReplFrame hello;
  Status handshake = ReadHello(session, &hello);
  if (!handshake.ok()) {
    session->conn.Shutdown();
    session->done.store(true, std::memory_order_release);
    return;
  }
  followers_.fetch_add(1, std::memory_order_relaxed);

  // The follower resumes after everything it already applied. A
  // follower *ahead* of us means we lost unsynced WAL tail in a crash
  // — its state is unreachable from ours, so re-image it. So is a
  // follower at our seq but a different kg_version: our state moved
  // without a WAL record (a recovery-time Finalize re-trained it).
  uint64_t sent = hello.seq;
  const uint64_t hello_kgv = DecodeHelloKgVersion(hello.payload);
  bool need_image = (hello.aux & kHelloForceImage) != 0 ||
                    sent > nous_->last_durable_seq() ||
                    (hello_kgv != 0 && sent == nous_->last_durable_seq() &&
                     hello_kgv != nous_->durable_kg_version());

  WalTailReader tail;
  tail.Open(wal_path_);
  // Consecutive non-progress events (WAL resets, unbridgeable queue
  // gaps). A couple are normal around a checkpoint; a streak means
  // the WAL can no longer bridge this follower — fall back to a full
  // image instead of spinning.
  int stalled_rounds = 0;
  // Seq of the last checkpoint image/frame this session shipped. A WAL
  // reset is only safe to read past when the follower already holds
  // the state the new log builds on (see the kReset branch).
  uint64_t last_ckpt_sent = 0;

  while (running_.load(std::memory_order_acquire)) {
    {
      MutexLock lock(session->mutex);
      if (session->stop || session->overflowed) break;
    }
    if (stalled_rounds > 3) {
      need_image = true;
      stalled_rounds = 0;
    }

    if (need_image) {
      Result<Nous::ReplicationImage> image =
          nous_->CaptureReplicationImage();
      if (!image.ok()) break;
      ReplFrame frame;
      frame.type = ReplFrameType::kCheckpoint;
      frame.seq = image->seq;
      frame.aux = image->kg_version;
      frame.payload = std::move(image->state);
      if (!SendDataFrame(session, EncodeReplFrame(frame)).ok()) break;
      checkpoints_sent_.fetch_add(1, std::memory_order_relaxed);
      sent = frame.seq;
      last_ckpt_sent = frame.seq;
      need_image = false;
      stalled_rounds = 0;
      MutexLock lock(session->mutex);
      while (!session->queue.empty() &&
             session->queue.front().seq <= sent) {
        session->queue.pop_front();
      }
      continue;
    }

    // Phase 1: catch up from the WAL file.
    Result<WalTailReader::Event> event = tail.Next();
    if (!event.ok()) break;
    if (event->kind == WalTailReader::EventKind::kRecord) {
      WalRecord& rec = event->record;
      if (rec.seq <= sent) continue;  // already shipped
      if (rec.seq > sent + 1) {
        // The records bridging the gap were checkpointed away.
        need_image = true;
        continue;
      }
      ReplFrame frame;
      frame.type = ReplFrameType::kWalBatch;
      frame.seq = rec.seq;
      // Historical frame: the KG version it produced is unknowable
      // from the log alone; 0 = "do not cross-check". Divergence is
      // still caught by the next live frame or checkpoint.
      frame.aux = 0;
      frame.payload = std::move(rec.payload);
      if (!SendDataFrame(session, EncodeReplFrame(frame)).ok()) break;
      sent = rec.seq;
      stalled_rounds = 0;
      continue;
    }
    if (event->kind == WalTailReader::EventKind::kReset) {
      // The WAL was reset by a checkpoint; every record in the new log
      // was applied ON TOP of that checkpoint's state. Reading past
      // the reset is only sound once the follower holds that state —
      // a Finalize checkpoint mutates the KG with no WAL record, so
      // skipping it diverges the follower silently. The checkpoint
      // rides in the live queue (commit order), so deliver it now,
      // before any new-log records.
      QueueItem queued_ckpt;
      bool have_ckpt = false;
      {
        MutexLock lock(session->mutex);
        for (auto it = session->queue.begin(); it != session->queue.end();
             ++it) {
          if (it->type == ReplFrameType::kCheckpoint && it->seq >= sent) {
            queued_ckpt = std::move(*it);
            session->queue.erase(it);
            have_ckpt = true;
            break;
          }
        }
      }
      if (have_ckpt) {
        if (!SendDataFrame(session, *queued_ckpt.wire).ok()) break;
        checkpoints_sent_.fetch_add(1, std::memory_order_relaxed);
        sent = std::max(sent, queued_ckpt.seq);
        last_ckpt_sent = queued_ckpt.seq;
        stalled_rounds = 0;
      } else if (last_ckpt_sent >= sent) {
        // Already shipped a state image at/past `sent`: the new log's
        // base state is on the follower. Safe to read on.
      } else {
        // The bridging checkpoint is gone (overflow, or the follower
        // connected after it was broadcast). A streak forces an image.
        ++stalled_rounds;
      }
      continue;
    }

    // Phase 2: end of log — serve the live queue, or heartbeat.
    // Snapshot the durable seq *before* inspecting the queue: a commit
    // published after this point wakes the cv wait below, so "queue
    // still empty afterwards" proves records ≤ durable_now are neither
    // in the WAL nor coming through the queue (checkpointed away).
    const uint64_t durable_now = nous_->last_durable_seq();
    const bool behind = sent < durable_now;
    QueueItem item;
    bool have_item = false;
    bool recheck_tail = false;
    {
      UniqueLock lock(session->mutex);
      while (!session->queue.empty()) {
        const QueueItem& front = session->queue.front();
        const bool stale =
            front.type == ReplFrameType::kWalBatch
                ? front.seq <= sent
                // A checkpoint at seq == sent is NOT stale: Finalize
                // re-checkpoints the same seq with a new KG.
                : front.seq < sent;
        if (!stale) break;
        session->queue.pop_front();
      }
      if (!session->queue.empty()) {
        QueueItem& front = session->queue.front();
        if (front.type == ReplFrameType::kCheckpoint ||
            front.seq == sent + 1) {
          item = std::move(front);
          session->queue.pop_front();
          have_item = true;
        } else {
          // front.seq > sent + 1: the bridge records are in the WAL
          // (or gone — the tail reports kReset / a gap and we image).
          recheck_tail = true;
        }
      } else if (!session->stop && !session->overflowed) {
        // When behind, wait only a sliver: we are very likely looking
        // at a WAL hole (records checkpointed away), and the sliver
        // just lets an in-flight enqueue land before we conclude that.
        session->cv.wait_for(
            lock.std_lock(),
            std::chrono::milliseconds(behind ? 10 : options_.heartbeat_ms));
      }
      if (session->stop || session->overflowed) break;
    }
    if (have_item) {
      if (!SendDataFrame(session, *item.wire).ok()) break;
      if (item.type == ReplFrameType::kCheckpoint) {
        checkpoints_sent_.fetch_add(1, std::memory_order_relaxed);
        last_ckpt_sent = std::max(last_ckpt_sent, item.seq);
      }
      sent = std::max(sent, item.seq);
      stalled_rounds = 0;
      continue;
    }
    if (recheck_tail) {
      ++stalled_rounds;
      continue;
    }
    if (behind) {
      // End of log, empty queue, follower still behind the durable
      // seq we saw before waiting: the bridging records are gone from
      // the WAL (a checkpoint reset it). The streak forces an image.
      ++stalled_rounds;
      continue;
    }
    // Idle: tell the follower where we are so it can measure lag and
    // detect a silently broken link.
    ReplFrame heartbeat;
    heartbeat.type = ReplFrameType::kHeartbeat;
    heartbeat.seq = nous_->last_durable_seq();
    heartbeat.aux = nous_->durable_kg_version();
    if (!session->conn.SendAll(EncodeReplFrame(heartbeat)).ok()) break;
  }

  followers_.fetch_sub(1, std::memory_order_relaxed);
  session->conn.Shutdown();
  session->done.store(true, std::memory_order_release);
}

ReplicationView ReplicationLeader::View() const {
  ReplicationView view;
  view.role = "leader";
  view.connected = true;
  view.last_seq = nous_->last_durable_seq();
  view.kg_version = nous_->durable_kg_version();
  view.followers = followers_.load(std::memory_order_relaxed);
  view.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  view.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  view.checkpoints_sent =
      checkpoints_sent_.load(std::memory_order_relaxed);
  view.overflow_disconnects =
      overflow_disconnects_.load(std::memory_order_relaxed);
  return view;
}

}  // namespace nous
