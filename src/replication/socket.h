#ifndef NOUS_REPLICATION_SOCKET_H_
#define NOUS_REPLICATION_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace nous {

/// Deadline-aware TCP connection used by the replication tier. Every
/// raw socket syscall in the repo lives here or in the HTTP server
/// (tools/nous_lint.py R11): the wrappers guarantee deadlines are set
/// and SIGPIPE never fires, so a dead peer costs a bounded wait, not
/// a wedged thread.
///
/// Fault points (see FaultInjector): "repl_send" (kFail: the send
/// reports a reset connection; kDelay: stalls arg ms first) and
/// "repl_recv" (same, on the receive side). They model a flaky or
/// slow link deterministically.
///
/// Move-only; the destructor closes. Shutdown() may be called from
/// another thread to wake a blocked Recv/SendAll (the standard POSIX
/// idiom for interrupting a peer thread without closing its fd from
/// under it).
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn();

  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;

  /// Connects to host:port with a bounded wait (non-blocking connect
  /// + poll); a down or unreachable peer costs at most timeout_ms.
  static Result<TcpConn> Connect(const std::string& host, uint16_t port,
                                 int timeout_ms);

  /// Arms SO_RCVTIMEO/SO_SNDTIMEO so a stalled peer turns into an
  /// Unavailable error instead of a blocked thread. 0 = no deadline.
  Status SetIoDeadline(int timeout_ms);

  /// Sends every byte or fails. Unavailable on timeout/reset.
  Status SendAll(std::string_view data);

  /// Receives up to `size` bytes. Ok(0) = clean EOF (peer closed);
  /// Unavailable on timeout or reset.
  Result<size_t> Recv(char* buffer, size_t size);

  /// Half-closes both directions, waking any thread blocked in this
  /// connection's Recv/SendAll. Does not release the fd.
  void Shutdown();

  void Close();
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Loopback-only listener for the leader's replication port.
/// Fault point "repl_accept" (kFail): the freshly accepted connection
/// is dropped as if the peer vanished mid-handshake.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and listens.
  Status Listen(uint16_t port);

  /// Waits up to timeout_ms for a connection. An invalid TcpConn
  /// means "nothing arrived" (timeout or a dropped/faulted accept) —
  /// poll again; an error Status means the listener itself is broken.
  Result<TcpConn> Accept(int timeout_ms);

  uint16_t port() const { return port_; }
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace nous

#endif  // NOUS_REPLICATION_SOCKET_H_
