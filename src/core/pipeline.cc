#include "core/pipeline.h"

#include <algorithm>
#include <set>
#include <thread>

#include "common/string_util.h"
#include "common/timer.h"
#include "linker/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nous {

namespace {

/// Registry instruments for every Figure-1 stage, resolved once and
/// cached (see DESIGN.md "Observability" for the naming convention).
struct PipelineMetrics {
  Counter* documents;
  Counter* sentences;
  Counter* raw_triples;
  Counter* linked;
  Counter* new_entities;
  Counter* mapped;
  Counter* unmapped_kept;
  Counter* unmapped_dropped;
  Counter* rejected;
  Counter* accepted;
  Counter* deduped;
  Counter* retractions;
  Gauge* window_edges;
  LatencyHistogram* extraction_latency;
  LatencyHistogram* linking_latency;
  LatencyHistogram* mapping_latency;
  LatencyHistogram* confidence_latency;
};

const PipelineMetrics& Metrics() {
  static PipelineMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    PipelineMetrics m;
    m.documents = r.GetCounter("nous_pipeline_documents_total",
                               "Documents ingested");
    m.sentences = r.GetCounter("nous_pipeline_sentences_total",
                               "Sentences seen by extraction");
    m.raw_triples = r.GetCounter("nous_extraction_triples_total",
                                 "Raw triples extracted (OpenIE+SRL)");
    m.linked = r.GetCounter("nous_linking_linked_total",
                            "Mentions linked to existing entities");
    m.new_entities = r.GetCounter("nous_linking_new_entities_total",
                                  "Mentions minted as new entities");
    m.mapped = r.GetCounter("nous_mapping_mapped_total",
                            "Triples mapped to an ontology predicate");
    m.unmapped_kept = r.GetCounter(
        "nous_mapping_unmapped_total",
        "Triples kept under a raw:<phrase> predicate");
    m.unmapped_dropped = r.GetCounter(
        "nous_mapping_dropped_total",
        "Unmapped triples dropped (keep_unmapped off)");
    m.rejected = r.GetCounter(
        "nous_confidence_rejected_total",
        "Triples rejected below min_accept_confidence");
    m.accepted = r.GetCounter("nous_pipeline_accepted_triples_total",
                              "New triples added to the fused KG");
    m.deduped = r.GetCounter("nous_pipeline_deduped_triples_total",
                             "Repeated reports merged into existing edges");
    m.retractions = r.GetCounter("nous_pipeline_retractions_total",
                                 "Edges weakened by negated reports");
    m.window_edges = r.GetGauge("nous_mining_window_edges",
                                "Live edges in the miner's sliding window");
    m.extraction_latency = r.GetHistogram(
        "nous_extraction_latency_seconds",
        "Latency of the extraction stage in seconds");
    m.linking_latency = r.GetHistogram(
        "nous_linking_latency_seconds",
        "Latency of the linking stage in seconds");
    m.mapping_latency = r.GetHistogram(
        "nous_mapping_latency_seconds",
        "Latency of the mapping stage in seconds");
    m.confidence_latency = r.GetHistogram(
        "nous_confidence_latency_seconds",
        "Latency of the confidence-scoring stage in seconds");
    return m;
  }();
  return metrics;
}

}  // namespace

std::string PipelineStats::ToString() const {
  return StrFormat(
      "docs=%zu extractions=%zu accepted=%zu deduped=%zu "
      "dropped(conf)=%zu dropped(unmapped)=%zu mapped=%zu raw_kept=%zu "
      "linked=%zu new_entities=%zu ds_alignments=%zu retractions=%zu\n"
      "stage seconds: extract=%.3f link=%.3f map=%.3f score=%.3f "
      "mine=%.3f",
      documents, extractions, accepted_triples, deduped_triples,
      dropped_low_confidence, dropped_unmapped, mapped_triples,
      unmapped_kept, linked_to_existing, new_entities, ds_alignments,
      retractions, extract_seconds, link_seconds, map_seconds,
      score_seconds, mine_seconds);
}

KgPipeline::KgPipeline(const CuratedKb* kb, PipelineConfig config)
    : config_(config),
      kb_(kb),
      lexicon_(Lexicon::Default()),
      ner_(&lexicon_),
      srl_(&lexicon_, &ner_, [&config] {
        OpenIeConfig ex = config.extraction;
        // Retraction handling needs the negated tuples delivered.
        if (config.negation_retracts) ex.drop_negated = false;
        return ex;
      }()),
      linker_(&graph_, config.linker),
      mapper_(&kb->ontology(), config.mapper),
      ds_trainer_(),
      bpr_([&config] {
        BprConfig b = config.bpr;
        // Force block-deterministic SGD so the trained model (and hence
        // every blended confidence) is independent of num_threads.
        if (b.sgd_block == 0) b.sgd_block = config.bpr_sgd_block;
        return b;
      }()) {
  // No lock here: the object is not yet shared, and the thread-safety
  // analysis treats constructors as NO_THREAD_SAFETY_ANALYSIS.
  size_t threads = config_.num_threads != 0
                       ? config_.num_threads
                       : static_cast<size_t>(
                             std::thread::hardware_concurrency());
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  bpr_.set_pool(pool_.get());
  mapper_.LoadDefaultSeeds();
  if (config_.enable_mining) {
    window_ = std::make_unique<TemporalWindow>(&window_graph_,
                                               config_.miner_window_edges);
    miner_ = std::make_unique<StreamingMiner>(config_.miner);
    window_->AddListener(miner_.get());
  }
  LoadCuratedKb();
  kg_version_ = 1;  // the curated bootstrap is the first KG version
  PublishSnapshot();
}

void KgPipeline::LoadCuratedKb() {
  // Entities: vertices with types, bags, alias registration, NER
  // gazetteer entries.
  std::vector<VertexId> kb_vertex(kb_->entities().size());
  for (size_t i = 0; i < kb_->entities().size(); ++i) {
    const KbEntity& e = kb_->entities()[i];
    VertexId v = graph_.GetOrAddVertex(e.name);
    kb_vertex[i] = v;
    graph_.SetVertexType(v, graph_.types().Intern(e.type_name));
    for (const std::string& term : e.context_terms) {
      graph_.AddVertexTerm(v, graph_.terms().Intern(ToLower(term)));
    }
    std::vector<std::string> surfaces = e.aliases;
    surfaces.push_back(e.name);
    linker_.RegisterEntity(v, surfaces, e.prior);
    for (const std::string& surface : surfaces) {
      ner_.AddGazetteerEntry(surface, e.ner_type);
    }
    // Person first names improve NER typing of unseen people.
    if (e.ner_type == EntityType::kPerson) {
      auto words = SplitWhitespace(e.name);
      if (words.size() >= 2) ner_.AddFirstName(words[0]);
    }
  }
  // Facts: curated edges in the fused KG and the miner window graph
  // (never expired there — inserted directly, not via the window).
  SourceId kb_source = graph_.sources().Intern("curated_kb");
  for (const KbFact& f : kb_->facts()) {
    VertexId s = kb_vertex[f.subject];
    VertexId o = kb_vertex[f.object];
    PredicateId p = graph_.predicates().Intern(f.predicate);
    EdgeMeta meta;
    meta.confidence = 1.0;
    meta.timestamp = f.timestamp;
    meta.source = kb_source;
    meta.curated = true;
    graph_.AddEdge(s, p, o, meta);
    curated_pairs_[{s, o}].push_back(f.predicate);
    accepted_ids_.push_back(IdTriple{s, p, o});
  }
  BootstrapMinerWindowLocked();
  if (config_.enable_link_prediction && !accepted_ids_.empty()) {
    bpr_.Train(accepted_ids_, graph_.NumVertices(),
               graph_.predicates().size());
  }
}

void KgPipeline::BootstrapMinerWindowLocked() {
  if (!config_.enable_mining) return;
  SourceId kb_source = graph_.sources().Intern("curated_kb");
  for (const KbFact& f : kb_->facts()) {
    EdgeMeta meta;
    meta.confidence = 1.0;
    meta.timestamp = f.timestamp;
    meta.source = kb_source;
    meta.curated = true;
    VertexId ws =
        window_graph_.GetOrAddVertex(kb_->entities()[f.subject].name);
    VertexId wo =
        window_graph_.GetOrAddVertex(kb_->entities()[f.object].name);
    window_graph_.SetVertexType(
        ws,
        window_graph_.types().Intern(kb_->entities()[f.subject].type_name));
    window_graph_.SetVertexType(
        wo,
        window_graph_.types().Intern(kb_->entities()[f.object].type_name));
    PredicateId wp = window_graph_.predicates().Intern(f.predicate);
    // Direct insertion (not window_->Add): curated facts never expire.
    EdgeId we = window_graph_.AddEdge(ws, wp, wo, meta);
    if (miner_ != nullptr) {
      miner_->OnEdgeAdded(window_graph_, we);
    }
  }
}

std::string KgPipeline::VertexTypeName(VertexId v) const {
  TypeId t = graph_.VertexType(v);
  if (t == kInvalidType) return "";
  return graph_.types().GetString(t);
}

void KgPipeline::Ingest(const Article& article) {
  ExtractedDoc doc = ExtractDocument(article);
  {
    WriterMutexLock lock(kg_mutex_);
    BeginOpCaptureLocked();
    CommitDocument(article, std::move(doc));
    ++kg_version_;
    EndOpCaptureLocked(/*finalize=*/false);
  }
  PublishSnapshot();
}

void KgPipeline::IngestBatch(const Article* articles, size_t count) {
  if (count == 0) return;
  NOUS_SPAN_VAR(span, "ingest_batch");
  span.Attr("batch_size", count);
  // Stage 1 fans out across the pool (pure per-document work); the
  // commit loop below fuses in arrival order under one write-lock
  // acquisition, so the KG is bit-identical to serial ingest for any
  // thread count.
  std::vector<ExtractedDoc> docs(count);
  if (pool_ != nullptr && count > 1) {
    pool_->ParallelFor(count, [this, articles, &docs](size_t i) {
      docs[i] = ExtractDocument(articles[i]);
    });
  } else {
    for (size_t i = 0; i < count; ++i) {
      docs[i] = ExtractDocument(articles[i]);
    }
  }
  {
    WriterMutexLock lock(kg_mutex_);
    BeginOpCaptureLocked();
    for (size_t i = 0; i < count; ++i) {
      CommitDocument(articles[i], std::move(docs[i]));
    }
    // One bump per batch (the WAL commit unit), so recovery replay
    // reproduces the exact version of the uncrashed run.
    ++kg_version_;
    EndOpCaptureLocked(/*finalize=*/false);
  }
  PublishSnapshot();
}

KgPipeline::ExtractedDoc KgPipeline::ExtractDocument(
    const Article& article) const {
  // ---- 1. Extraction (OpenIE + SRL dating). ----
  // Reads only the immutable lexicon/NER/SRL models plus thread-safe
  // metrics, so batch ingest runs it from pool threads.
  const PipelineMetrics& metrics = Metrics();
  // Null histogram: the stage observes nous_extraction_latency_seconds
  // manually below, so the span only feeds the trace buffer. It runs
  // on pool threads and parents under the submitting ingest_batch span
  // via the ThreadPool's TraceContext propagation.
  TraceSpan span("extraction", nullptr);
  WallTimer timer;
  ExtractedDoc doc;
  doc.frames =
      srl_.Extract(article.text, article.date, &doc.num_sentences);
  if (!doc.frames.empty()) {
    doc.doc_bag = BuildDocumentBag(article.text, lexicon_);
  }
  doc.extract_seconds = timer.ElapsedSeconds();
  metrics.sentences->Increment(doc.num_sentences);
  metrics.raw_triples->Increment(doc.frames.size());
  metrics.extraction_latency->Observe(doc.extract_seconds);
  return doc;
}

void KgPipeline::CommitDocument(const Article& article,
                                ExtractedDoc&& doc) {
  NOUS_SPAN("pipeline_ingest");
  const PipelineMetrics& metrics = Metrics();
  WallTimer timer;
  ++stats_.documents;
  metrics.documents->Increment();
  stats_.extractions += doc.frames.size();
  stats_.extract_seconds += doc.extract_seconds;
  if (doc.frames.empty()) return;
  const std::vector<SrlFrame>& frames = doc.frames;
  const TermBag& doc_bag = doc.doc_bag;

  // ---- 2. Joint entity linking over the document's mentions. ----
  timer.Restart();
  std::vector<std::string> surfaces;
  std::vector<EntityType> types;
  std::unordered_map<std::string, size_t> surface_index;
  auto add_surface = [&](const std::string& text, EntityType type) {
    if (surface_index.count(text) > 0) return;
    surface_index[text] = surfaces.size();
    surfaces.push_back(text);
    types.push_back(type);
  };
  for (const SrlFrame& frame : frames) {
    add_surface(frame.extraction.triple.subject,
                frame.extraction.subject_type);
    add_surface(frame.extraction.triple.object,
                frame.extraction.object_type);
  }
  std::vector<LinkDecision> decisions =
      linker_.LinkMentions(surfaces, types, doc_bag);
  for (const LinkDecision& d : decisions) {
    if (d.created_new) {
      ++stats_.new_entities;
      metrics.new_entities->Increment();
      // Seed the new vertex's bag with document context so LDA and
      // later linking have signal (the dynamic-KG AIDA adaptation).
      for (const auto& [term, weight] : doc_bag) {
        graph_.AddVertexTerm(d.vertex, graph_.terms().Intern(term),
                             std::min(weight, 3.0) * 0.5);
      }
    } else {
      ++stats_.linked_to_existing;
      metrics.linked->Increment();
    }
  }
  double link_seconds = timer.ElapsedSeconds();
  stats_.link_seconds += link_seconds;
  metrics.linking_latency->Observe(link_seconds);

  SourceId source_id = graph_.sources().Intern(article.source);
  for (const SrlFrame& frame : frames) {
    const RawExtraction& ex = frame.extraction;
    VertexId s = decisions[surface_index[ex.triple.subject]].vertex;
    VertexId o = decisions[surface_index[ex.triple.object]].vertex;
    if (s == o) continue;

    // Negated reports retract rather than assert (§3.4-adjacent
    // quality control): weaken any matching edge, add nothing.
    if (ex.negated && config_.negation_retracts) {
      MappingDecision neg_mapping = mapper_.Map(
          ex.relation, VertexTypeName(s), VertexTypeName(o));
      if (neg_mapping.mapped) {
        if (auto pred = graph_.predicates().Lookup(
                neg_mapping.predicate)) {
          if (auto existing = graph_.FindEdge(s, *pred, o)) {
            const EdgeRecord& rec = graph_.Edge(*existing);
            if (!rec.meta.curated) {
              SetEdgeConfidenceTracked(
                  *existing,
                  rec.meta.confidence * config_.retraction_factor);
              ++stats_.retractions;
              metrics.retractions->Increment();
            }
          }
        }
      }
      continue;
    }

    // ---- 3. Predicate mapping + distant supervision. ----
    // Map with the current model first; this document's own KB
    // alignment only informs *future* mappings, and a lone
    // co-occurrence stays below the mapper's evidence threshold.
    timer.Restart();
    MappingDecision mapping =
        mapper_.Map(ex.relation, VertexTypeName(s), VertexTypeName(o));
    auto pair_it = curated_pairs_.find({s, o});
    if (config_.enable_distant_supervision &&
        pair_it != curated_pairs_.end()) {
      for (const std::string& kb_pred : pair_it->second) {
        mapper_.AddEvidence(kb_pred, ex.relation,
                            config_.ds_alignment_weight);
        ++stats_.ds_alignments;
      }
    }
    std::string predicate_name;
    if (mapping.mapped) {
      predicate_name = mapping.predicate;
      ++stats_.mapped_triples;
      metrics.mapped->Increment();
    } else if (config_.keep_unmapped) {
      predicate_name = "raw:" + ex.relation;
      ++stats_.unmapped_kept;
      metrics.unmapped_kept->Increment();
    } else {
      ++stats_.dropped_unmapped;
      metrics.unmapped_dropped->Increment();
      double map_seconds = timer.ElapsedSeconds();
      stats_.map_seconds += map_seconds;
      metrics.mapping_latency->Observe(map_seconds);
      continue;
    }
    PredicateId p = graph_.predicates().Intern(predicate_name);
    double map_seconds = timer.ElapsedSeconds();
    stats_.map_seconds += map_seconds;
    metrics.mapping_latency->Observe(map_seconds);

    // ---- 4. Confidence via link prediction (§3.4). ----
    timer.Restart();
    double confidence = ex.confidence;
    if (mapping.mapped) confidence *= (0.7 + 0.3 * mapping.score);
    if (config_.enable_link_prediction && p < graph_.predicates().size()) {
      double prior = bpr_.Score(s, p, o);
      confidence *= (0.7 + 0.3 * prior);
    }
    if (config_.enable_source_trust) {
      // Relative trust: only below-average sources are penalized, so a
      // corpus where most facts are single-reported is not damped
      // across the board.
      confidence *= (0.6 + 0.4 * trust_.RelativeTrust(source_id));
    }
    confidence = std::clamp(confidence, 0.0, 1.0);
    double score_seconds = timer.ElapsedSeconds();
    stats_.score_seconds += score_seconds;
    metrics.confidence_latency->Observe(score_seconds);
    if (confidence < config_.min_accept_confidence) {
      ++stats_.dropped_low_confidence;
      metrics.rejected->Increment();
      continue;
    }

    // ---- 5. KG update (dedup: repeated reports strengthen, and
    // cross-source agreement feeds the trust tracker). ----
    Timestamp ts = frame.date.ToDayNumber();
    if (auto existing = graph_.FindEdge(s, p, o)) {
      const EdgeRecord& rec = graph_.Edge(*existing);
      double boosted =
          std::max(rec.meta.confidence,
                   1.0 - (1.0 - rec.meta.confidence) * (1.0 - confidence));
      SetEdgeConfidenceTracked(*existing, boosted);
      ++stats_.deduped_triples;
      metrics.deduped->Increment();
      if (config_.enable_source_trust &&
          rec.meta.source != source_id) {
        trust_.RecordCorroborated(source_id);
        if (rec.meta.source != kInvalidSource) {
          trust_.RecordCorroborated(rec.meta.source);
        }
      }
      continue;
    }
    if (config_.enable_source_trust) {
      // Curated agreement on the entity pair also corroborates.
      if (pair_it != curated_pairs_.end()) {
        trust_.RecordCorroborated(source_id);
      } else {
        trust_.RecordUncorroborated(source_id);
      }
    }
    EdgeMeta meta;
    meta.confidence = confidence;
    meta.timestamp = ts;
    meta.source = source_id;
    meta.curated = false;
    graph_.AddEdge(s, p, o, meta);
    accepted_ids_.push_back(IdTriple{s, p, o});
    ++stats_.accepted_triples;
    metrics.accepted->Increment();

    // ---- 6. Stream the fact into the miner's sliding window. ----
    if (config_.enable_mining) {
      WallTimer mine_timer;
      TimedTriple wt;
      wt.triple.subject = graph_.VertexLabel(s);
      wt.triple.predicate = predicate_name;
      wt.triple.object = graph_.VertexLabel(o);
      wt.timestamp = ts;
      wt.source = article.source;
      wt.confidence = confidence;
      VertexId ws = window_graph_.GetOrAddVertex(wt.triple.subject);
      VertexId wo = window_graph_.GetOrAddVertex(wt.triple.object);
      window_graph_.SetVertexType(
          ws, window_graph_.types().Intern(VertexTypeName(s)));
      window_graph_.SetVertexType(
          wo, window_graph_.types().Intern(VertexTypeName(o)));
      window_->Add(wt);
      stats_.mine_seconds += mine_timer.ElapsedSeconds();
      metrics.window_edges->Set(static_cast<double>(window_->size()));
    }
  }

  // ---- 7. Periodic model refresh. ----
  if (config_.enable_link_prediction &&
      config_.bpr_refresh_interval != 0 &&
      ++docs_since_refresh_ >= config_.bpr_refresh_interval) {
    docs_since_refresh_ = 0;
    RefreshBpr(config_.bpr_refresh_epochs);
  }
}

std::string KgPipeline::ReserveAdhocId() {
  return StrFormat(
      "adhoc_%zu", adhoc_counter_.fetch_add(1, std::memory_order_relaxed));
}

void KgPipeline::IngestText(const std::string& text, const Date& date,
                            const std::string& source) {
  Article article;
  article.id = ReserveAdhocId();
  article.date = date;
  article.source = source;
  article.text = text;
  Ingest(article);
}

namespace {
/// SaveState payload version; bump on any layout change.
/// v2: adds kg_version_ after the curated-KB fingerprint.
constexpr uint32_t kStateVersion = 2;
}  // namespace

std::string KgPipeline::SaveState() const {
  ReaderMutexLock lock(kg_mutex_);
  BinaryWriter writer;
  writer.U32(kStateVersion);
  // Cheap compatibility fingerprint: a checkpoint only makes sense
  // against the curated KB that shaped the graph's id space.
  writer.U64(kb_->entities().size());
  writer.U64(kb_->facts().size());
  writer.U64(kg_version_);

  graph_.SaveBinary(&writer);
  linker_.SaveBinary(&writer);
  mapper_.SaveBinary(&writer);
  bpr_.SaveBinary(&writer);
  trust_.SaveBinary(&writer);

  writer.U64(accepted_ids_.size());
  for (const IdTriple& t : accepted_ids_) {
    writer.U32(t[0]);
    writer.U32(t[1]);
    writer.U32(t[2]);
  }
  writer.U64(docs_since_refresh_);
  writer.U64(adhoc_counter_.load(std::memory_order_relaxed));

  writer.U64(stats_.documents);
  writer.U64(stats_.extractions);
  writer.U64(stats_.accepted_triples);
  writer.U64(stats_.deduped_triples);
  writer.U64(stats_.dropped_low_confidence);
  writer.U64(stats_.dropped_unmapped);
  writer.U64(stats_.mapped_triples);
  writer.U64(stats_.unmapped_kept);
  writer.U64(stats_.linked_to_existing);
  writer.U64(stats_.new_entities);
  writer.U64(stats_.ds_alignments);
  writer.U64(stats_.retractions);
  writer.F64(stats_.extract_seconds);
  writer.F64(stats_.link_seconds);
  writer.F64(stats_.map_seconds);
  writer.F64(stats_.score_seconds);
  writer.F64(stats_.mine_seconds);

  // Miner window: the streamed (non-curated) triples currently in the
  // window, oldest first, with the fused-KG type names needed to
  // replay them through the same code path as live ingest. The miner
  // itself is not serialized — its pattern state is a function of the
  // window content and is rebuilt by the replay.
  if (window_ == nullptr) {
    writer.U64(0);
  } else {
    const auto& edges = window_->edges();
    writer.U64(edges.size());
    for (EdgeId e : edges) {
      const EdgeRecord& rec = window_graph_.Edge(e);
      writer.Str(window_graph_.VertexLabel(rec.subject));
      writer.Str(window_graph_.predicates().GetString(rec.predicate));
      writer.Str(window_graph_.VertexLabel(rec.object));
      writer.I64(rec.meta.timestamp);
      writer.Str(rec.meta.source == kInvalidSource
                     ? ""
                     : window_graph_.sources().GetString(rec.meta.source));
      writer.F64(rec.meta.confidence);
      TypeId st = window_graph_.VertexType(rec.subject);
      TypeId ot = window_graph_.VertexType(rec.object);
      writer.Str(st == kInvalidType ? ""
                                    : window_graph_.types().GetString(st));
      writer.Str(ot == kInvalidType ? ""
                                    : window_graph_.types().GetString(ot));
    }
  }
  return writer.Take();
}

Status KgPipeline::LoadState(std::string_view payload) {
  {
    WriterMutexLock lock(kg_mutex_);
    NOUS_RETURN_IF_ERROR(LoadStateLocked(payload));
  }
  PublishSnapshot();
  return Status::Ok();
}

Status KgPipeline::LoadStateLocked(std::string_view payload) {
  BinaryReader reader(payload);
  uint32_t version = 0;
  NOUS_RETURN_IF_ERROR(reader.U32(&version));
  if (version != kStateVersion) {
    return Status::DataLoss("pipeline state version " +
                            std::to_string(version) + " unsupported");
  }
  uint64_t kb_entities = 0, kb_facts = 0;
  NOUS_RETURN_IF_ERROR(reader.U64(&kb_entities));
  NOUS_RETURN_IF_ERROR(reader.U64(&kb_facts));
  if (kb_entities != kb_->entities().size() ||
      kb_facts != kb_->facts().size()) {
    return Status::FailedPrecondition(
        "pipeline state was checkpointed against a different curated KB");
  }
  NOUS_RETURN_IF_ERROR(reader.U64(&kg_version_));

  NOUS_RETURN_IF_ERROR(graph_.LoadBinary(&reader));
  NOUS_RETURN_IF_ERROR(linker_.LoadBinary(&reader));
  NOUS_RETURN_IF_ERROR(mapper_.LoadBinary(&reader));
  NOUS_RETURN_IF_ERROR(bpr_.LoadBinary(&reader));
  NOUS_RETURN_IF_ERROR(trust_.LoadBinary(&reader));

  uint64_t num_accepted = 0;
  NOUS_RETURN_IF_ERROR(reader.Count(&num_accepted, 12));
  accepted_ids_.clear();
  accepted_ids_.reserve(num_accepted);
  for (uint64_t i = 0; i < num_accepted; ++i) {
    IdTriple t;
    NOUS_RETURN_IF_ERROR(reader.U32(&t[0]));
    NOUS_RETURN_IF_ERROR(reader.U32(&t[1]));
    NOUS_RETURN_IF_ERROR(reader.U32(&t[2]));
    accepted_ids_.push_back(t);
  }
  uint64_t docs_since = 0, adhoc = 0;
  NOUS_RETURN_IF_ERROR(reader.U64(&docs_since));
  NOUS_RETURN_IF_ERROR(reader.U64(&adhoc));
  docs_since_refresh_ = docs_since;
  adhoc_counter_.store(adhoc, std::memory_order_relaxed);

  uint64_t counts[12];
  for (uint64_t& c : counts) NOUS_RETURN_IF_ERROR(reader.U64(&c));
  stats_.documents = counts[0];
  stats_.extractions = counts[1];
  stats_.accepted_triples = counts[2];
  stats_.deduped_triples = counts[3];
  stats_.dropped_low_confidence = counts[4];
  stats_.dropped_unmapped = counts[5];
  stats_.mapped_triples = counts[6];
  stats_.unmapped_kept = counts[7];
  stats_.linked_to_existing = counts[8];
  stats_.new_entities = counts[9];
  stats_.ds_alignments = counts[10];
  stats_.retractions = counts[11];
  NOUS_RETURN_IF_ERROR(reader.F64(&stats_.extract_seconds));
  NOUS_RETURN_IF_ERROR(reader.F64(&stats_.link_seconds));
  NOUS_RETURN_IF_ERROR(reader.F64(&stats_.map_seconds));
  NOUS_RETURN_IF_ERROR(reader.F64(&stats_.score_seconds));
  NOUS_RETURN_IF_ERROR(reader.F64(&stats_.mine_seconds));

  // The window machinery accretes via listeners, so a load onto a
  // warm pipeline (replication resync) must rebuild it from scratch:
  // fresh graph + window + miner, curated base re-seeded, then the
  // saved stream triples replayed below. The render cache is dropped
  // too — the new miner restarts its generation counter, so a stale
  // set could alias a fresh generation.
  if (config_.enable_mining) {
    window_graph_ = PropertyGraph();
    miner_ = std::make_unique<StreamingMiner>(config_.miner);
    window_ = std::make_unique<TemporalWindow>(&window_graph_,
                                               config_.miner_window_edges);
    window_->AddListener(miner_.get());
    BootstrapMinerWindowLocked();
    rendered_patterns_.store(nullptr, std::memory_order_release);
  }

  uint64_t num_window = 0;
  NOUS_RETURN_IF_ERROR(reader.Count(&num_window, 8 * 5 + 8 + 8));
  for (uint64_t i = 0; i < num_window; ++i) {
    TimedTriple wt;
    std::string subject_type, object_type;
    NOUS_RETURN_IF_ERROR(reader.Str(&wt.triple.subject));
    NOUS_RETURN_IF_ERROR(reader.Str(&wt.triple.predicate));
    NOUS_RETURN_IF_ERROR(reader.Str(&wt.triple.object));
    NOUS_RETURN_IF_ERROR(reader.I64(&wt.timestamp));
    NOUS_RETURN_IF_ERROR(reader.Str(&wt.source));
    NOUS_RETURN_IF_ERROR(reader.F64(&wt.confidence));
    NOUS_RETURN_IF_ERROR(reader.Str(&subject_type));
    NOUS_RETURN_IF_ERROR(reader.Str(&object_type));
    if (window_ == nullptr) continue;  // mining disabled in this config
    VertexId ws = window_graph_.GetOrAddVertex(wt.triple.subject);
    VertexId wo = window_graph_.GetOrAddVertex(wt.triple.object);
    if (!subject_type.empty()) {
      window_graph_.SetVertexType(
          ws, window_graph_.types().Intern(subject_type));
    }
    if (!object_type.empty()) {
      window_graph_.SetVertexType(
          wo, window_graph_.types().Intern(object_type));
    }
    window_->Add(wt);
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("pipeline state has trailing bytes");
  }
  return Status::Ok();
}

void KgPipeline::EnsureAdhocCounterAtLeast(size_t value) {
  size_t current = adhoc_counter_.load(std::memory_order_relaxed);
  while (current < value &&
         !adhoc_counter_.compare_exchange_weak(current, value,
                                               std::memory_order_relaxed)) {
  }
}

void KgPipeline::RefreshBpr(size_t epochs) {
  WallTimer timer;
  bpr_.TrainIncremental(accepted_ids_, graph_.NumVertices(),
                        graph_.predicates().size(), epochs);
  stats_.score_seconds += timer.ElapsedSeconds();
}

void KgPipeline::Finalize() {
  {
    WriterMutexLock lock(kg_mutex_);
    BeginOpCaptureLocked();
    FinalizeLocked();
    ++kg_version_;
    EndOpCaptureLocked(/*finalize=*/true);
  }
  PublishSnapshot();
}

void KgPipeline::FinalizeLocked() {
  if (config_.enable_link_prediction) {
    RefreshBpr(config_.bpr.epochs);
    // Rescore extracted edges with the final model (dynamic-KG
    // confidence maintenance). The thread-safety analysis cannot see
    // held capabilities inside a lambda body, so the rescore callback
    // opts out; it runs strictly under the WriterMutexLock above.
    const double w = config_.bpr_rescore_weight;
    graph_.ForEachEdge(
        [this, w](EdgeId e, const EdgeRecord& rec) NO_THREAD_SAFETY_ANALYSIS {
          if (rec.meta.curated) return;
          double prior =
              bpr_.Score(rec.subject, rec.predicate, rec.object);
          double rescored = rec.meta.confidence * (1.0 - w) + prior * w;
          SetEdgeConfidenceTracked(e, std::clamp(rescored, 0.0, 1.0));
        });
  }
  // Fit in src/topic (pure), apply here: SetVertexTopics is a KG
  // write and stays inside the pipeline funnel (nous-layering).
  VertexTopicAssignments fitted = FitVertexTopics(graph_, config_.lda);
  for (size_t i = 0; i < fitted.vertices.size(); ++i) {
    graph_.SetVertexTopics(fitted.vertices[i], std::move(fitted.topics[i]));
  }
  lda_ = std::make_unique<LdaModel>(std::move(fitted.model));
}

void KgPipeline::EnableOpCapture() {
  WriterMutexLock lock(kg_mutex_);
  capture_ops_ = true;
  captured_.clear();
  capture_conf_.clear();
  capture_vertex_watermark_ = graph_.NumVertices();
  capture_edge_watermark_ = graph_.NumEdgeSlots();
  // Seed the late-typing watchlist with every currently untyped
  // vertex, so typings that land after a checkpoint restore still
  // reach the shards. Called again after LoadState for the same
  // reason (the ShardSet re-bootstraps from the restored graph).
  capture_untyped_.clear();
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    if (graph_.VertexType(v) == kInvalidType) {
      capture_untyped_.push_back(v);
    }
  }
}

std::vector<KgOpBatch> KgPipeline::TakeCapturedOps() {
  WriterMutexLock lock(kg_mutex_);
  std::vector<KgOpBatch> out = std::move(captured_);
  captured_.clear();
  return out;
}

void KgPipeline::BeginOpCaptureLocked() {
  if (!capture_ops_) return;
  capture_conf_.clear();
  capture_vertex_watermark_ = graph_.NumVertices();
  capture_edge_watermark_ = graph_.NumEdgeSlots();
}

void KgPipeline::SetEdgeConfidenceTracked(EdgeId e, double confidence) {
  graph_.SetEdgeConfidence(e, confidence);
  if (capture_ops_) capture_conf_.emplace_back(e, confidence);
}

void KgPipeline::EndOpCaptureLocked(bool finalize) {
  if (!capture_ops_) return;
  KgOpBatch batch;
  batch.finalize = finalize;
  // New vertices, ascending: replaying defines in gid order keeps each
  // shard's local insertion order aligned with global-id order, which
  // the composite view's tie-breaking relies on.
  for (VertexId v = static_cast<VertexId>(capture_vertex_watermark_);
       v < graph_.NumVertices(); ++v) {
    KgOp op;
    op.kind = KgOp::Kind::kDefineVertex;
    op.vertex = v;
    op.label = graph_.VertexLabel(v);
    TypeId t = graph_.VertexType(v);
    if (t != kInvalidType) {
      op.type_name = graph_.types().GetString(t);
    } else {
      capture_untyped_.push_back(v);
    }
    op.topics = graph_.VertexTopics(v);
    batch.ops.push_back(std::move(op));
  }
  // Confidence rewrites of pre-batch edges, in call order; rewrites of
  // edges created this batch are already folded into the kAddEdge meta
  // below (the fused KG never removes edge slots, so every slot past
  // the watermark is a new live edge).
  for (const auto& [e, conf] : capture_conf_) {
    if (e >= capture_edge_watermark_) continue;
    KgOp op;
    op.kind = KgOp::Kind::kSetEdgeConfidence;
    op.edge = e;
    op.confidence = conf;
    batch.ops.push_back(std::move(op));
  }
  // New edges, ascending slot order, with their end-of-batch meta.
  for (EdgeId e = static_cast<EdgeId>(capture_edge_watermark_);
       e < graph_.NumEdgeSlots(); ++e) {
    const EdgeRecord& rec = graph_.Edge(e);
    KgOp op;
    op.kind = KgOp::Kind::kAddEdge;
    op.edge = e;
    op.subject = rec.subject;
    op.object = rec.object;
    op.predicate_name = graph_.predicates().GetString(rec.predicate);
    if (rec.meta.source != kInvalidSource) {
      op.source_name = graph_.sources().GetString(rec.meta.source);
    }
    op.confidence = rec.meta.confidence;
    op.timestamp = rec.meta.timestamp;
    op.curated = rec.meta.curated;
    batch.ops.push_back(std::move(op));
  }
  // Late typings: the linker types a vertex at most once, so each
  // watched vertex graduates via exactly one kSetVertexType op.
  size_t kept = 0;
  for (VertexId v : capture_untyped_) {
    TypeId t = graph_.VertexType(v);
    if (t == kInvalidType) {
      capture_untyped_[kept++] = v;
      continue;
    }
    KgOp op;
    op.kind = KgOp::Kind::kSetVertexType;
    op.vertex = v;
    op.type_name = graph_.types().GetString(t);
    batch.ops.push_back(std::move(op));
  }
  capture_untyped_.resize(kept);
  if (finalize) {
    // Finalize refits LDA topics for every vertex; ship them all
    // rather than diffing the (dense) distributions.
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      KgOp op;
      op.kind = KgOp::Kind::kSetVertexTopics;
      op.vertex = v;
      op.topics = graph_.VertexTopics(v);
      batch.ops.push_back(std::move(op));
    }
  }
  captured_.push_back(std::move(batch));
}

void KgPipeline::PublishSnapshot() {
  if (!config_.publish_snapshots) return;
  NOUS_SPAN_VAR(span, "snapshot_publish");
  uint64_t version = 0;
  PropertyGraph graph;
  PipelineStats stats;
  std::shared_ptr<const RenderedPatternSet> pattern_set;
  {
    // Shared lock: concurrent publishers (rare — one per committed
    // ingest) clone independently; SnapshotStore keeps the newest.
    ReaderMutexLock lock(kg_mutex_);
    version = kg_version_;
    // O(1): shares every chunk with the live graph; later ingest
    // unshares only the chunks it touches (DESIGN.md §5.13).
    graph = graph_.Clone();
    stats = stats_;
    if (miner_ != nullptr) {
      uint64_t generation = miner_->generation();
      std::shared_ptr<const RenderedPatternSet> rendered =
          rendered_patterns_.load(std::memory_order_acquire);
      if (rendered == nullptr || rendered->miner_generation != generation) {
        auto fresh = std::make_shared<RenderedPatternSet>();
        fresh->miner_generation = generation;
        for (const PatternStats& stats : miner_->ClosedFrequentPatterns()) {
          RenderedPattern p;
          p.description = stats.pattern.ToString(window_graph_.predicates(),
                                                 &window_graph_.types());
          p.support = stats.support;
          p.embeddings = stats.embeddings;
          fresh->patterns.push_back(std::move(p));
        }
        rendered = std::move(fresh);
        rendered_patterns_.store(rendered, std::memory_order_release);
      }
      pattern_set = std::move(rendered);
    }
  }
  // The constructor runs the footprint estimate off the lock (chunk
  // byte caches make it O(chunks touched since the last pass)).
  auto snap = std::make_shared<const KgSnapshot>(
      version, std::move(graph), std::move(pattern_set), std::move(stats));
  CowFootprint footprint = snap->graph().Footprint();
  span.Attr("version", snap->version());
  span.Attr("graph_bytes", snap->approx_graph_bytes());
  span.Attr("graph_private_bytes", footprint.private_bytes);
  snapshots_.Publish(std::move(snap));
}

}  // namespace nous
