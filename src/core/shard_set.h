// Hash-sharded KG commit tier (DESIGN.md §5.16).
//
// The semantic pipeline stays one sequential planner; a ShardSet
// partitions its captured op stream (core/kg_ops.h) across N shards,
// each with its own commit lane thread, mutex, WAL segment
// (<dir>/wal/shard-<k>/wal.log), checkpoint, and ShardViewStore.
// Partitioning a deterministic stream keeps the fused KG bit-identical
// for every shard count; throughput comes from moving the per-batch
// WAL fsync out of the ingest critical section and overlapping the N
// per-shard fsync queues (group commit per lane).
//
// Threading: routing and WAL appends run on the ingest thread under
// Nous's ingest mutex (so WAL order == planner apply order); each lane
// applies its partition asynchronously under its own shard mutex and
// publishes an immutable ShardView per committed version. Durable acks
// (FsyncPolicy::kAlways) wait on the ledger, *after* the ingest mutex
// is released, so concurrent writers overlap their fsync waits.

#ifndef NOUS_CORE_SHARD_SET_H_
#define NOUS_CORE_SHARD_SET_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/kg_ops.h"
#include "durability/manager.h"
#include "durability/wal.h"
#include "graph/property_graph.h"
#include "graph/shard_view.h"

namespace nous {

/// What sharded recovery found on disk (mirrors Nous::RecoveryStats).
struct ShardRecoveryResult {
  bool restored_checkpoint = false;
  /// Article-batch WAL records to replay, merged across shard WALs in
  /// contiguous seq order (records past a seq gap — possible when one
  /// shard's unsynced tail tore — are dropped; they were never acked).
  std::vector<WalRecord> replay;
  uint64_t dropped_wal_records = 0;
  uint64_t dropped_wal_bytes = 0;
  /// Planner checkpoint payload (KgPipeline::SaveState bytes) when
  /// restored_checkpoint is true.
  std::string planner_state;
  uint64_t checkpoint_seq = 0;
};

class ShardSet {
 public:
  /// `num_shards` in [2, kMaxShards]; shards == 1 uses the legacy
  /// unsharded path and never constructs a ShardSet.
  explicit ShardSet(size_t num_shards);
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  size_t num_shards() const { return shards_.size(); }

  /// Rebuilds the router tables and every shard graph from the planner
  /// graph (synthetic defines + edges in global id order), publishing
  /// each shard's view at `version`. Lanes must be idle (init or
  /// post-recovery). Called once at startup and again after a
  /// checkpoint restore that had no usable per-shard checkpoints.
  void Bootstrap(const PropertyGraph& planner, uint64_t version);

  /// ---- Durability (all called under Nous's ingest mutex). ----

  /// Phase 1 of sharded Recover(): reads the planner checkpoint, the
  /// per-shard checkpoints + manifest (loading shard graphs from them
  /// when they are coherent, otherwise leaving shards empty for a
  /// later Bootstrap), truncates torn WAL tails, and returns the
  /// merged replay records. `dir` is DurabilityOptions::dir.
  Result<ShardRecoveryResult> RecoverDurable(const std::string& dir);

  /// True when RecoverDurable loaded every shard graph from a coherent
  /// per-shard checkpoint set (the caller then skips Bootstrap but must
  /// still call RebuildRouter).
  bool shards_restored() const { return shards_restored_; }

  /// Rebuilds router tables (labels, homes, ghost masks, edge homes)
  /// from the planner graph plus the current shard sidecars. Used on
  /// the checkpoint-restore fast path where Bootstrap is skipped.
  void RebuildRouter(const PropertyGraph& planner);

  /// Applies `batches` synchronously on the calling thread (recovery
  /// replay: lanes are not running yet).
  void ApplySynchronously(std::vector<KgOpBatch> batches, uint64_t version);

  /// Opens every shard WAL for append and starts the lane threads.
  /// `last_seq` seeds the durable ledger and the sequence counter.
  Status StartDurable(const std::string& dir, const DurabilityOptions& opts,
                      uint64_t last_seq);

  /// Starts lane threads without any WAL (non-durable sharded mode).
  void Start();

  /// Next WAL sequence number (last logged + 1). Durable mode only.
  uint64_t NextSeq() const { return last_seq_ + 1; }

  /// Appends one encoded article batch to seq's home-shard WAL
  /// without fsyncing (the home lane group-commits the fsync). On
  /// error nothing is committed and the planner must not apply.
  Status AppendWal(uint64_t seq, std::string_view payload);

  /// Routes each batch's ops to their home shards and enqueues the
  /// partitions on every lane (a lane with no ops still receives the
  /// version bump so its published view tracks the composite version).
  /// `seq` == 0 in non-durable mode; otherwise the home lane fsyncs
  /// its WAL before reporting `seq` durable to the ledger.
  void Commit(std::vector<KgOpBatch> batches, uint64_t version,
              uint64_t seq);

  /// Blocks until every lane queue is empty and applied. Queries and
  /// checkpoints use this to get a coherent composite view.
  void Drain();

  /// Blocks until `seq` (and everything before it) is fsynced on its
  /// home shard, or a lane hit a sticky fsync error. No-op unless the
  /// fsync policy is kAlways.
  Status WaitDurable(uint64_t seq);

  /// Drains the lanes, then atomically persists: per-shard
  /// checkpoints, the planner checkpoint (`planner_state`), and the
  /// manifest (the commit point for the shard fast path), finally
  /// resetting every shard WAL. Crash at any point recovers correctly:
  /// before the planner checkpoint lands the old state + WALs win;
  /// after it, a stale manifest just forces the Bootstrap slow path.
  Status WriteCheckpoint(const std::string& planner_state,
                         uint64_t kg_version);

  /// True when checkpoint_interval_batches commits have landed since
  /// the last checkpoint.
  bool ShouldCheckpoint() const;

  /// Current published view of every shard, in shard order.
  std::vector<std::shared_ptr<const ShardView>> CurrentViews() const;

  /// Composite version vector: one published version per shard.
  std::vector<uint64_t> CompositeVersion() const;

  uint64_t last_seq() const { return last_seq_; }

 private:
  struct LaneItem {
    uint64_t version = 0;
    /// Nonzero when this lane must fsync its WAL and report the seq
    /// durable (it is the seq's home lane).
    uint64_t fsync_seq = 0;
    std::vector<KgOp> ops;
  };

  /// One shard: graph + sidecars + commit lane. The lane thread is the
  /// only writer of the shard graph after Start(); Bootstrap/recovery
  /// write before any lane exists.
  struct Shard {
    explicit Shard(size_t index) : index(index) {}

    const size_t index;

    /// The shard's own kg_mutex.
    mutable AnnotatedSharedMutex mutex;
    PropertyGraph graph GUARDED_BY(mutex);
    /// local vertex id -> planner gid (insertion order, not sorted).
    CowVec<VertexId> vertex_gids GUARDED_BY(mutex);
    /// local edge slot -> planner egid (ascending).
    CowVec<EdgeId> edge_gids GUARDED_BY(mutex);
    /// planner gid -> local vertex id.
    std::unordered_map<VertexId, VertexId> gid_to_local GUARDED_BY(mutex);

    /// Commit queue.
    mutable AnnotatedMutex queue_mutex;
    std::condition_variable queue_cv;
    std::vector<LaneItem> queue GUARDED_BY(queue_mutex);
    bool busy GUARDED_BY(queue_mutex) = false;
    bool stop GUARDED_BY(queue_mutex) = false;
    /// Appends to this shard's WAL since its last fsync (kInterval).
    size_t appends_since_sync GUARDED_BY(queue_mutex) = 0;

    /// Per-shard WAL segment; appends happen on the ingest thread
    /// (under Nous's ingest mutex), fsyncs on the lane thread through
    /// a separate fd, so neither blocks the other.
    WalWriter wal;
    std::string wal_path;

    ShardViewStore views;
    std::thread lane;

    /// Durable-ack wakeups for commits whose home is this shard
    /// (waits pair with ShardSet::ledger_mutex_). Per-shard so a group
    /// fsync wakes only the writers it satisfied, not every waiter.
    std::condition_variable durable_cv;
  };

  void ApplyOps(Shard* shard, const std::vector<KgOp>& ops)
      REQUIRES(shard->mutex);
  void PublishView(Shard* shard, uint64_t version) EXCLUDES(shard->mutex);
  void LaneMain(Shard* shard);
  /// fsyncs shard's WAL through a fresh fd (stale-proof across WAL
  /// resets) honoring the "wal_fsync" fault point.
  Status FsyncShardWal(Shard* shard);
  void StopLanes();

  /// Routes one op batch into per-shard op lists, synthesizing ghost
  /// defines for cross-shard edge endpoints.
  void RouteBatch(const KgOpBatch& batch,
                  std::vector<std::vector<KgOp>>* per_shard);

  static std::string ShardDir(const std::string& dir, size_t k);
  std::string ManifestPath(const std::string& dir) const;
  std::string PlannerCheckpointPath(const std::string& dir) const;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// ---- Router state (ingest thread only, under Nous's ingest
  /// mutex; also written single-threaded by Bootstrap/recovery). ----
  std::vector<std::string> labels_;      // by gid
  std::vector<std::string> type_names_;  // by gid (latest known)
  std::vector<uint8_t> homes_;           // by gid
  std::vector<uint32_t> seen_;           // by gid: bitmask of shards
  std::vector<uint8_t> edge_homes_;      // by egid

  /// ---- Durable ledger. ----
  mutable AnnotatedMutex ledger_mutex_;
  /// Every seq <= durable_upto_ is fsynced on its home shard.
  uint64_t durable_upto_ GUARDED_BY(ledger_mutex_) = 0;
  /// fsynced seqs beyond durable_upto_ (out-of-order completions).
  std::set<uint64_t> durable_done_ GUARDED_BY(ledger_mutex_);
  Status ledger_error_ GUARDED_BY(ledger_mutex_);

  /// Written by the ingest thread under Nous's ingest mutex.
  uint64_t last_seq_ = 0;
  uint64_t batches_since_checkpoint_ = 0;
  DurabilityOptions durability_;
  std::string base_dir_;
  bool durable_ = false;
  bool started_ = false;
  bool shards_restored_ = false;
};

}  // namespace nous

#endif  // NOUS_CORE_SHARD_SET_H_
