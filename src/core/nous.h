#ifndef NOUS_CORE_NOUS_H_
#define NOUS_CORE_NOUS_H_

#include <memory>
#include <string>

#include "core/pipeline.h"
#include "corpus/document_stream.h"
#include "graph/graph_stats.h"
#include "qa/query_engine.h"

namespace nous {

/// Top-level facade: the public API a downstream user programs against.
///
///   CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), {});
///   Nous nous(&kb);
///   nous.IngestStream(&stream);
///   nous.Finalize();
///   auto answer = nous.Ask("tell me about DJI");
///
/// Wraps the construction pipeline (§3), the streaming miner (§3.5),
/// and the question-answering engine (§3.6, Figure 5's query classes).
class Nous {
 public:
  struct Options {
    PipelineConfig pipeline;
    QueryEngineConfig query;
  };

  /// `kb` must outlive the instance.
  explicit Nous(const CuratedKb* kb, Options options = {});

  /// Feeds one article through the construction pipeline.
  void Ingest(const Article& article);

  /// Drains a document stream, optionally finalizing afterwards.
  /// Articles are ingested in batches (KgPipeline::IngestBatch) so
  /// extraction fans out across the pipeline's worker pool; the fused
  /// KG is identical to one-at-a-time ingestion.
  void IngestStream(DocumentStream* stream, bool finalize = true);

  /// Ad-hoc text ingestion.
  void IngestText(const std::string& text, const Date& date,
                  const std::string& source);

  /// Fits topics + final confidence refresh. Idempotent-ish: may be
  /// called again after more ingestion.
  void Finalize();

  /// Parses and executes a natural-language-like query (Figure 5).
  /// Takes the pipeline's read lock, so queries are safe to run while
  /// another thread ingests.
  Result<Answer> Ask(const std::string& question);

  /// Executes a pre-built structured query. Read-locks like Ask().
  Result<Answer> Execute(const Query& query);

  /// Variants for callers that already hold a std::shared_lock on
  /// pipeline().kg_mutex() — e.g. the HTTP API, which serializes the
  /// answer under the same lock. Calling Ask()/Execute() while holding
  /// the lock would self-deadlock against a queued writer.
  Result<Answer> AskUnlocked(const std::string& question) const;
  Result<Answer> ExecuteUnlocked(const Query& query) const;

  const PropertyGraph& graph() const { return pipeline_.graph(); }
  const PipelineStats& stats() const { return pipeline_.stats(); }
  /// Read-locks the pipeline while walking the graph.
  GraphStats ComputeStats() const;
  KgPipeline& pipeline() { return pipeline_; }
  const StreamingMiner* miner() const { return pipeline_.miner(); }

 private:
  Options options_;
  KgPipeline pipeline_;
};

}  // namespace nous

#endif  // NOUS_CORE_NOUS_H_
